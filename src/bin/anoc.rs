//! `anoc` — the unified command-line entry point of the APPROX-NoC
//! reproduction: regenerate any table or figure, in text or CSV, on the
//! parallel campaign engine with result caching.
//!
//! ```sh
//! anoc run fig9
//! anoc run all --cycles 20000
//! anoc run ablations --no-cache
//! anoc run fig12 --csv > fig12.csv
//! anoc cache stats
//! anoc fig9 --cycles 50000        # legacy alias for `anoc run fig9`
//! ```
//!
//! All parsing and dispatch lives in [`approx_noc::harness::cli`].

fn main() {
    std::process::exit(approx_noc::harness::cli::run());
}
