//! `anoc` — the unified command-line entry point of the APPROX-NoC
//! reproduction: regenerate any table or figure, in text or CSV.
//!
//! ```sh
//! anoc table1
//! anoc fig9 --cycles 50000
//! anoc fig12 --cycles 15000 --csv > fig12.csv
//! anoc fig17 --out target/fig17
//! anoc extensions
//! anoc capture --out trace.txt --cycles 5000   # persist a benchmark trace
//! anoc replay --out trace.txt                  # simulate from a saved trace
//! anoc all --cycles 20000
//! ```

use approx_noc::harness::experiments::{self, BenchmarkMatrix};
use approx_noc::harness::{AreaModel, SystemConfig};
use approx_noc::traffic::{Benchmark, DestPattern};

struct Args {
    command: String,
    cycles: u64,
    csv: bool,
    out: String,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        command: String::new(),
        cycles: 0,
        csv: false,
        out: "target/fig17".into(),
        seed: 42,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--cycles" => {
                args.cycles = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--cycles needs a number"));
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--csv" => args.csv = true,
            "--out" => {
                args.out = it.next().unwrap_or_else(|| usage("--out needs a path"));
            }
            cmd if args.command.is_empty() && !cmd.starts_with('-') => {
                args.command = cmd.to_string();
            }
            other => usage(&format!("unknown argument {other}")),
        }
    }
    if args.command.is_empty() {
        usage("missing command");
    }
    args
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: anoc <table1|fig9|fig10|fig11|fig12|fig13|fig14|fig15|fig16|fig17|extensions|\
         capture|replay|all> [--cycles N] [--seed N] [--csv] [--out PATH]"
    );
    std::process::exit(2);
}

fn config(args: &Args, default_cycles: u64) -> SystemConfig {
    let cycles = if args.cycles == 0 {
        default_cycles
    } else {
        args.cycles
    };
    SystemConfig::paper().with_sim_cycles(cycles)
}

fn matrix_figures(args: &Args, which: &str) {
    let cfg = config(args, 50_000);
    let matrix = BenchmarkMatrix::run(&cfg, args.seed);
    match (which, args.csv) {
        ("fig9", false) => print!("{}", experiments::render_fig9(&experiments::fig9(&matrix))),
        ("fig9", true) => print!("{}", experiments::fig9_csv(&experiments::fig9(&matrix))),
        ("fig10", false) => print!(
            "{}",
            experiments::render_fig10(&experiments::fig10(&matrix))
        ),
        ("fig10", true) => print!("{}", experiments::fig10_csv(&experiments::fig10(&matrix))),
        ("fig11", false) => print!(
            "{}",
            experiments::render_fig11(&experiments::fig11(&matrix))
        ),
        ("fig11", true) => print!("{}", experiments::fig11_csv(&experiments::fig11(&matrix))),
        ("fig15", false) => {
            print!(
                "{}",
                experiments::render_fig15(&experiments::fig15(&matrix))
            );
            let area = AreaModel::default();
            println!(
                "\nSection 5.5 area: DI-VAXX {:.4} mm^2, FP-VAXX {:.4} mm^2",
                area.di_vaxx_encoder_mm2(),
                area.fp_vaxx_encoder_mm2()
            );
        }
        ("fig15", true) => print!("{}", experiments::fig15_csv(&experiments::fig15(&matrix))),
        _ => unreachable!(),
    }
}

fn run_fig12(args: &Args) {
    let cfg = config(args, 15_000);
    let rates: Vec<f64> = (1..=14).map(|i| i as f64 * 0.05).collect();
    for (bench, label) in [
        (Benchmark::Blackscholes, "blackscholes"),
        (Benchmark::Streamcluster, "streamcluster"),
    ] {
        for (pattern, pname) in [
            (DestPattern::UniformRandom, "UR"),
            (DestPattern::Transpose, "TR"),
        ] {
            let series = experiments::fig12(bench, pattern, &rates, &cfg, args.seed);
            let panel = format!("{label} {pname}");
            if args.csv {
                print!("{}", experiments::fig12_csv(&panel, &series));
            } else {
                print!("{}", experiments::render_fig12(&panel, &series));
            }
        }
    }
}

fn run_fig17(args: &Args) {
    let r = experiments::fig17(args.seed);
    std::fs::create_dir_all(&args.out).expect("create output directory");
    let precise = format!("{}/bodytrack_precise.pgm", args.out);
    let approx = format!("{}/bodytrack_approx.pgm", args.out);
    std::fs::write(&precise, &r.precise_pgm).expect("write precise frame");
    std::fs::write(&approx, &r.approx_pgm).expect("write approximate frame");
    println!(
        "Figure 17: vector difference {:.4}% (paper: 2.4%)\n  {precise}\n  {approx}",
        r.vector_difference * 100.0
    );
}

fn main() {
    let args = parse_args();
    if args.command == "all" {
        for cmd in [
            "table1",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "fig16",
            "fig17",
            "extensions",
        ] {
            println!("==== {cmd} ====");
            let sub = Args {
                command: cmd.into(),
                cycles: args.cycles,
                csv: false,
                out: args.out.clone(),
                seed: args.seed,
            };
            dispatch(&sub);
        }
    } else {
        dispatch(&args);
    }
}

fn dispatch(args: &Args) {
    match args.command.as_str() {
        "table1" => {
            for (k, v) in SystemConfig::paper().table1_rows() {
                println!("{k:<34} {v}");
            }
        }
        "fig9" | "fig10" | "fig11" | "fig15" => matrix_figures(args, &args.command),
        "fig12" => run_fig12(args),
        "fig13" => {
            let rows = experiments::fig13(&config(args, 15_000), args.seed);
            if args.csv {
                print!("{}", experiments::sensitivity_csv(&rows));
            } else {
                print!(
                    "{}",
                    experiments::render_sensitivity(
                        "Figure 13: Error Threshold Sensitivity",
                        &rows
                    )
                );
            }
        }
        "fig14" => {
            let rows = experiments::fig14(&config(args, 15_000), args.seed);
            if args.csv {
                print!("{}", experiments::sensitivity_csv(&rows));
            } else {
                print!(
                    "{}",
                    experiments::render_sensitivity(
                        "Figure 14: Approximable Packets Ratio Sensitivity",
                        &rows
                    )
                );
            }
        }
        "fig16" => {
            let rows = experiments::fig16(&config(args, 15_000), args.seed);
            if args.csv {
                print!("{}", experiments::fig16_csv(&rows));
            } else {
                print!("{}", experiments::render_fig16(&rows));
            }
        }
        "fig17" => run_fig17(args),
        "extensions" => {
            let cfg = config(args, 20_000);
            for b in [Benchmark::Blackscholes, Benchmark::Ssca2, Benchmark::X264] {
                let results = experiments::extension_study(b, &cfg, args.seed);
                println!("{}", experiments::render_extension(b, &results));
            }
        }
        "capture" => {
            use approx_noc::traffic::{BenchmarkTraffic, Trace};
            let cfg = config(args, 10_000);
            let mut source = BenchmarkTraffic::new(
                Benchmark::Ssca2,
                cfg.noc.num_nodes(),
                cfg.approx_ratio,
                args.seed,
            );
            let trace = Trace::capture(&mut source, cfg.warmup_cycles + cfg.sim_cycles);
            trace.save(&args.out).expect("write trace file");
            println!(
                "captured {} injections over {} cycles into {}",
                trace.len(),
                cfg.warmup_cycles + cfg.sim_cycles,
                args.out
            );
        }
        "replay" => {
            use approx_noc::harness::runner::run_with_source;
            use approx_noc::harness::Mechanism;
            use approx_noc::traffic::Trace;
            let cfg = config(args, 10_000);
            let trace = Trace::load(&args.out).expect("read trace file");
            println!("replaying {} injections from {}:", trace.len(), args.out);
            for m in Mechanism::ALL {
                let mut replay = trace.replay();
                let r = run_with_source(&mut replay, m, &cfg);
                println!(
                    "  {:<9} latency {:>8.2}  p99 {:>5}  norm_flits {:.3}  quality {:.4}",
                    m.name(),
                    r.avg_packet_latency(),
                    r.latency_percentile(99.0),
                    r.stats.normalized_data_flits(),
                    r.data_quality()
                );
            }
        }
        other => usage(&format!("unknown command {other}")),
    }
}
