//! # approx-noc
//!
//! A production-quality Rust reproduction of **APPROX-NoC: A Data
//! Approximation Framework for Network-On-Chip Architectures** (Boyapati,
//! Huang, Majumder, Yum, Kim — ISCA 2017).
//!
//! This façade crate re-exports the whole workspace:
//!
//! * [`core`] — data model, error thresholds and the VAXX approximate value
//!   compute logic (AVCL);
//! * [`compression`] — FP-COMP / DI-COMP NoC compression and their FP-VAXX /
//!   DI-VAXX approximate variants;
//! * [`noc`] — the cycle-accurate wormhole NoC simulator;
//! * [`traffic`] — synthetic traffic patterns and benchmark data-value models;
//! * [`apps`] — approximable application mini-kernels, the cache simulator
//!   and output-quality metrics;
//! * [`harness`] — experiment runners regenerating every table and figure of
//!   the paper.
//!
//! ## Quickstart
//!
//! ```
//! use approx_noc::harness::{Mechanism, SystemConfig};
//! use approx_noc::harness::experiments::run_benchmark;
//! use approx_noc::traffic::Benchmark;
//!
//! let config = SystemConfig::default().with_sim_cycles(20_000);
//! let result = run_benchmark(Benchmark::Blackscholes, Mechanism::FpVaxx, &config, 1);
//! assert!(result.avg_packet_latency() > 0.0);
//! ```

#![forbid(unsafe_code)]

pub use anoc_apps as apps;
pub use anoc_compression as compression;
pub use anoc_core as core;
pub use anoc_harness as harness;
pub use anoc_noc as noc;
pub use anoc_traffic as traffic;
