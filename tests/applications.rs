//! Integration tests over the application layer: every kernel runs against
//! every transport flavour with sane error behaviour, and the cache
//! simulator composes with the kernels' data.

use approx_noc::apps::cachesim::{CacheConfig, CacheSim, Memory};
use approx_noc::apps::kernel::evaluate;
use approx_noc::apps::kernel::ApproxKernel;
use approx_noc::apps::transport::{
    AdversarialTransport, ApproxTransport, BlockTransport, PreciseTransport,
};
use approx_noc::apps::{default_kernels, ssca2::Ssca2};
use approx_noc::core::data::DataType;
use approx_noc::core::threshold::ErrorThreshold;

#[test]
fn all_kernels_run_and_errors_are_ordered() {
    let t10 = ErrorThreshold::from_percent(10).expect("valid");
    for kernel in default_kernels() {
        let precise_a = kernel.run(&mut PreciseTransport);
        let precise_b = kernel.run(&mut PreciseTransport);
        assert_eq!(precise_a, precise_b, "{} nondeterministic", kernel.name());
        assert!(!precise_a.is_empty());

        let mut fp = ApproxTransport::fp_vaxx(t10);
        let (_, _, realistic) = evaluate(kernel.as_ref(), &mut fp);
        let mut adv = AdversarialTransport::new(t10);
        let (_, _, worst) = evaluate(kernel.as_ref(), &mut adv);
        assert!(
            realistic <= worst + 0.02,
            "{}: realistic {realistic} > worst-case {worst}",
            kernel.name()
        );
        assert!(worst <= 1.0, "{}: error metric out of range", kernel.name());
    }
}

#[test]
fn worst_case_error_grows_with_budget() {
    // The Figure 16 x-axis behaviour on the most sensitive kernels.
    for kernel in default_kernels() {
        let mut errs = Vec::new();
        for pct in [5u32, 20] {
            let t = ErrorThreshold::from_percent(pct).expect("valid");
            let mut adv = AdversarialTransport::new(t);
            let (_, _, e) = evaluate(kernel.as_ref(), &mut adv);
            errs.push(e);
        }
        assert!(
            errs[0] <= errs[1] + 0.05,
            "{}: error shrank with budget {errs:?}",
            kernel.name()
        );
    }
}

#[test]
fn ssca2_kernel_composes_with_cache_hierarchy() {
    // Graph weights staged in shared memory, read through private caches
    // with approximate data responses, then consumed by the BC kernel's
    // error metric — the full §5.4 pipeline.
    let kernel = Ssca2::new(64, 256, 3);
    let exact = kernel.run(&mut PreciseTransport);

    let mut memory = Memory::new(4096, DataType::F32).with_approx_range(0, 4096);
    for (i, v) in exact.iter().enumerate().take(4096) {
        memory.set_f32(i, *v as f32);
    }
    let mut cache = CacheSim::new(CacheConfig {
        cores: 4,
        capacity_bytes: 4 * 1024,
        ways: 2,
        line_bytes: 64,
    });
    let mut transport = ApproxTransport::di_vaxx(ErrorThreshold::from_percent(10).expect("valid"));
    let mut worst: f64 = 0.0;
    for core in 0..4 {
        for i in 0..exact.len().min(4096) {
            let seen = cache.read_f32(core, i, &memory, &mut transport) as f64;
            let truth = memory.f32_at(i) as f64;
            if truth != 0.0 {
                worst = worst.max((seen - truth).abs() / truth.abs());
            } else {
                assert_eq!(seen, truth, "zero words are special and exact");
            }
        }
    }
    assert!(
        worst <= 0.10 + 1e-6,
        "cache path violated threshold: {worst}"
    );
    assert!(cache.stats().transfers > 0);
}

#[test]
fn transports_compose_with_mixed_chunk_sizes() {
    let t = ErrorThreshold::from_percent(10).expect("valid");
    let mut fp = ApproxTransport::fp_vaxx(t);
    for len in [1usize, 15, 16, 17, 33] {
        let vals: Vec<f32> = (0..len).map(|i| 10.0 + i as f32).collect();
        let rx = fp.transmit_f32(&vals);
        assert_eq!(rx.len(), len);
        let ints: Vec<i32> = (0..len).map(|i| 1000 * (i as i32 + 1)).collect();
        let rxi = fp.transmit_i32(&ints);
        assert_eq!(rxi.len(), len);
    }
}
