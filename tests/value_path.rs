//! End-to-end value-path properties: whatever traffic flows through the full
//! simulator, approximable data respects the threshold and precise data is
//! bit-exact — for every mechanism.

use approx_noc::core::avcl::Avcl;
use approx_noc::core::data::{CacheBlock, NodeId};
use approx_noc::harness::{Mechanism, SystemConfig};
use approx_noc::noc::NocSim;
use approx_noc::traffic::{Benchmark, DataModel};
use proptest::prelude::*;

fn sim_for(mechanism: Mechanism, pct: u32) -> NocSim {
    let config = SystemConfig::paper().with_threshold(pct);
    let codecs = mechanism.codecs(config.noc.num_nodes(), config.threshold());
    NocSim::new(config.noc, codecs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every delivered word of every mechanism respects the error threshold
    /// of its block (exact blocks: zero error).
    #[test]
    fn delivered_words_respect_thresholds(
        seed in any::<u64>(),
        pct in prop::sample::select(vec![5u32, 10, 20]),
        mech_idx in 0usize..5,
        n_blocks in 4usize..20,
    ) {
        let mechanism = Mechanism::ALL[mech_idx];
        let mut sim = sim_for(mechanism, pct);
        let mut model = DataModel::new(Benchmark::Ssca2, seed);
        let nodes = sim.num_nodes() as u32;
        let mut rng = approx_noc::core::rng::Pcg32::seed_from_u64(seed ^ 0xABCD);
        let mut sent: Vec<(u64, CacheBlock)> = Vec::new();
        for i in 0..n_blocks {
            let approx = i % 2 == 0;
            let block = model.next_block(approx);
            let src = NodeId::from(rng.below(nodes) as usize);
            let mut dst = NodeId::from(rng.below(nodes) as usize);
            while dst == src {
                dst = NodeId::from(rng.below(nodes) as usize);
            }
            let id = sim.enqueue_data(src, dst, block.clone());
            sent.push((id, block));
        }
        prop_assert!(sim.drain(100_000));
        let mut delivered = sim.drain_delivered();
        delivered.sort_by_key(|d| d.id);
        prop_assert_eq!(delivered.len(), sent.len());
        let bound = pct as f64 / 100.0 + 1e-6;
        for (d, (id, precise)) in delivered.iter().zip(&sent) {
            prop_assert_eq!(d.id, *id);
            let got = d.block.as_ref().expect("data packet");
            prop_assert_eq!(got.len(), precise.len());
            if precise.is_approximable() {
                for (p, a) in precise.words().iter().zip(got.words()) {
                    let err = Avcl::relative_error(*p, *a, precise.dtype())
                        .unwrap_or(if p == a { 0.0 } else { 1.0 });
                    prop_assert!(
                        err <= bound,
                        "{mechanism} violated {pct}%: {p:#x} -> {a:#x} ({err})"
                    );
                }
            } else {
                prop_assert_eq!(got, precise, "{} corrupted precise data", mechanism);
            }
        }
    }
}

#[test]
fn threshold_zero_disables_all_approximation() {
    let mut sim = sim_for(Mechanism::FpVaxx, 0);
    let mut model = DataModel::new(Benchmark::Blackscholes, 77);
    let mut sent = Vec::new();
    for i in 0..10 {
        let block = model.next_block(true);
        sim.enqueue_data(NodeId(0), NodeId::from(1 + (i % 8) as usize), block.clone());
        sent.push(block);
    }
    assert!(sim.drain(50_000));
    let mut delivered = sim.drain_delivered();
    delivered.sort_by_key(|d| d.id);
    for (d, precise) in delivered.iter().zip(&sent) {
        assert_eq!(d.block.as_ref().unwrap(), precise);
    }
    assert_eq!(sim.stats().encode.approx_encoded, 0);
}
