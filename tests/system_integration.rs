//! Cross-crate integration tests: traffic models → codecs → cycle-accurate
//! NoC → statistics, exercising the paper's headline claims end to end.

use approx_noc::harness::runner::{run_benchmark, run_with_source};
use approx_noc::harness::{EnergyModel, Mechanism, SystemConfig};
use approx_noc::traffic::{Benchmark, DataPool, DestPattern, SyntheticTraffic};

fn quick() -> SystemConfig {
    SystemConfig::paper().with_sim_cycles(4_000)
}

#[test]
fn vaxx_never_loses_to_its_compression_counterpart_on_data_volume() {
    let cfg = quick();
    for b in [Benchmark::Blackscholes, Benchmark::Ssca2, Benchmark::X264] {
        let fp = run_benchmark(b, Mechanism::FpComp, &cfg, 7);
        let fp_vaxx = run_benchmark(b, Mechanism::FpVaxx, &cfg, 7);
        assert!(
            fp_vaxx.stats.normalized_data_flits() <= fp.stats.normalized_data_flits() + 0.02,
            "{b}: FP-VAXX {} vs FP-COMP {}",
            fp_vaxx.stats.normalized_data_flits(),
            fp.stats.normalized_data_flits()
        );
        let di = run_benchmark(b, Mechanism::DiComp, &cfg, 7);
        let di_vaxx = run_benchmark(b, Mechanism::DiVaxx, &cfg, 7);
        assert!(
            di_vaxx.stats.normalized_data_flits() <= di.stats.normalized_data_flits() + 0.02,
            "{b}: DI-VAXX {} vs DI-COMP {}",
            di_vaxx.stats.normalized_data_flits(),
            di.stats.normalized_data_flits()
        );
    }
}

#[test]
fn data_quality_exceeds_97_percent_at_default_threshold() {
    // The paper: "though we allow for 10% error rate the effective data
    // value quality is higher than 97%".
    let cfg = quick();
    for b in [
        Benchmark::Blackscholes,
        Benchmark::Swaptions,
        Benchmark::Ssca2,
    ] {
        for m in [Mechanism::DiVaxx, Mechanism::FpVaxx] {
            let r = run_benchmark(b, m, &cfg, 3);
            assert!(
                r.data_quality() > 0.97,
                "{b}/{m}: quality {}",
                r.data_quality()
            );
        }
    }
}

#[test]
fn exact_mechanisms_are_lossless_end_to_end() {
    let cfg = quick();
    for m in [Mechanism::Baseline, Mechanism::DiComp, Mechanism::FpComp] {
        let r = run_benchmark(Benchmark::Canneal, m, &cfg, 9);
        assert_eq!(r.data_quality(), 1.0, "{m} corrupted a block");
        assert_eq!(r.stats.encode.approx_encoded, 0);
    }
}

#[test]
fn throughput_improves_with_vaxx_under_synthetic_load() {
    // A mid-load synthetic point near baseline saturation: FP-VAXX keeps
    // latency down (the Figure 12 effect).
    let cfg = SystemConfig::paper().with_sim_cycles(3_000);
    let pool = DataPool::from_benchmark(Benchmark::Blackscholes, 256, 5);
    let run = |m: Mechanism| {
        let mut src = SyntheticTraffic::new(
            DestPattern::UniformRandom,
            cfg.noc.num_nodes(),
            pool.clone(),
            0.32,
            0.25,
            0.75,
            5,
        );
        run_with_source(&mut src, m, &cfg).avg_packet_latency()
    };
    let base = run(Mechanism::Baseline);
    let vaxx = run(Mechanism::FpVaxx);
    assert!(
        vaxx < base * 0.9,
        "FP-VAXX {vaxx} should beat baseline {base} near saturation"
    );
}

#[test]
fn dynamic_power_drops_with_flit_reduction() {
    let cfg = quick();
    let model = EnergyModel::default();
    let base = run_benchmark(Benchmark::X264, Mechanism::Baseline, &cfg, 11);
    let vaxx = run_benchmark(Benchmark::X264, Mechanism::FpVaxx, &cfg, 11);
    let p_base = model.dynamic_power(&base.activity);
    let p_vaxx = model.dynamic_power(&vaxx.activity);
    assert!(
        p_vaxx < p_base,
        "FP-VAXX power {p_vaxx} vs baseline {p_base}"
    );
}

#[test]
fn error_threshold_sensitivity_is_monotone_in_encoded_fraction() {
    // Figure 13's mechanism: a larger threshold can only widen matching.
    let mut fractions = Vec::new();
    for pct in [5u32, 10, 20] {
        let cfg = quick().with_threshold(pct);
        let r = run_benchmark(Benchmark::Blackscholes, Mechanism::FpVaxx, &cfg, 13);
        fractions.push(r.stats.encode.encoded_fraction());
    }
    assert!(
        fractions[0] <= fractions[1] + 0.01 && fractions[1] <= fractions[2] + 0.01,
        "encoded fractions not monotone: {fractions:?}"
    );
}

#[test]
fn approx_ratio_sensitivity_scales_approximated_words() {
    // Figure 14's mechanism: more approximable packets, more approx hits.
    let mut approx_counts = Vec::new();
    for ratio in [0.25, 0.75] {
        let cfg = quick().with_approx_ratio(ratio);
        let r = run_benchmark(Benchmark::Swaptions, Mechanism::FpVaxx, &cfg, 17);
        approx_counts.push(r.stats.encode.approx_fraction());
    }
    assert!(
        approx_counts[1] > approx_counts[0] * 1.5,
        "approx fractions {approx_counts:?}"
    );
}

#[test]
fn in_band_notifications_also_work() {
    // The ablation transport for dictionary updates: real control packets.
    let mut cfg = quick();
    cfg.noc.notify_in_band = true;
    let r = run_benchmark(Benchmark::Ssca2, Mechanism::DiVaxx, &cfg, 19);
    assert!(r.stats.packets > 0);
    assert_eq!(
        approx_noc::core::avcl::Avcl::default()
            .threshold()
            .percent(),
        10
    );
    assert!(r.data_quality() > 0.97);
}

#[test]
fn runs_are_reproducible() {
    let cfg = quick();
    let a = run_benchmark(Benchmark::Streamcluster, Mechanism::DiVaxx, &cfg, 23);
    let b = run_benchmark(Benchmark::Streamcluster, Mechanism::DiVaxx, &cfg, 23);
    assert_eq!(a.stats.packets, b.stats.packets);
    assert_eq!(a.stats.flits_injected, b.stats.flits_injected);
    assert_eq!(a.stats.queue_lat_sum, b.stats.queue_lat_sum);
    assert_eq!(a.stats.encode, b.stats.encode);
}

#[test]
fn extension_codecs_compose_with_the_network() {
    // The plug-and-play claim: BD-COMP/BD-VAXX, the adaptive wrapper and
    // the windowed encoder all run through the full simulator with sound
    // statistics.
    use approx_noc::harness::experiments::extension_study;
    let cfg = SystemConfig::paper().with_sim_cycles(2_500);
    let results = extension_study(Benchmark::Blackscholes, &cfg, 31);
    assert_eq!(results.len(), 6);
    for r in &results {
        assert!(r.stats.packets > 0, "{} delivered nothing", r.mechanism);
        assert!(
            r.data_quality() > 0.97,
            "{}: quality {}",
            r.mechanism,
            r.data_quality()
        );
    }
    // Exact mechanisms stay lossless.
    for idx in [0usize, 2, 4] {
        assert_eq!(
            results[idx].data_quality(),
            1.0,
            "{}",
            results[idx].mechanism
        );
    }
    // Each VAXX variant compresses at least as well as its exact partner.
    for (comp, vaxx) in [(0usize, 1usize), (2, 3)] {
        assert!(
            results[vaxx].stats.encode.compression_ratio()
                >= results[comp].stats.encode.compression_ratio() - 1e-9,
            "{} vs {}",
            results[vaxx].mechanism,
            results[comp].mechanism
        );
    }
}

#[test]
fn full_system_8x8_mesh_runs() {
    // The §5.4 configuration: 64 cores on an 8x8 mesh.
    let cfg = SystemConfig::full_system().with_sim_cycles(2_000);
    let base = run_benchmark(Benchmark::Ssca2, Mechanism::Baseline, &cfg, 41);
    let vaxx = run_benchmark(Benchmark::Ssca2, Mechanism::FpVaxx, &cfg, 41);
    assert_eq!(base.nodes, 64);
    assert!(base.stats.packets > 100);
    assert!(
        vaxx.avg_packet_latency() < base.avg_packet_latency(),
        "FP-VAXX {} vs baseline {} on the 8x8",
        vaxx.avg_packet_latency(),
        base.avg_packet_latency()
    );
    // Link utilization is sane and drops with compression.
    let links = 2 * (7 * 8 + 7 * 8);
    let u_base = base.activity.link_utilization(links);
    let u_vaxx = vaxx.activity.link_utilization(links);
    assert!(u_base > 0.0 && u_base <= 1.0);
    assert!(u_vaxx < u_base, "utilization {u_vaxx} vs {u_base}");
}

#[test]
fn saved_trace_replay_reproduces_the_live_run_exactly() {
    // The paper's decoupled flow: capture the communication trace, persist
    // it, then feed it to the NoC simulator — results must be identical to
    // driving the live source.
    use approx_noc::traffic::{BenchmarkTraffic, Trace};
    let cfg = SystemConfig::paper().with_sim_cycles(2_000);
    let cycles = cfg.warmup_cycles + cfg.sim_cycles;
    let mut live = BenchmarkTraffic::new(Benchmark::X264, cfg.noc.num_nodes(), 0.75, 77);
    let trace = Trace::capture(&mut live, cycles);

    let path = std::env::temp_dir().join(format!("anoc-roundtrip-{}", std::process::id()));
    trace.save(&path).expect("save trace");
    let loaded = Trace::load(&path).expect("load trace");
    std::fs::remove_file(&path).ok();

    let mut replay_a = trace.replay();
    let a = run_with_source(&mut replay_a, Mechanism::FpVaxx, &cfg);
    let mut replay_b = loaded.replay();
    let b = run_with_source(&mut replay_b, Mechanism::FpVaxx, &cfg);
    assert_eq!(a.stats.packets, b.stats.packets);
    assert_eq!(a.stats.flits_injected, b.stats.flits_injected);
    assert_eq!(a.stats.queue_lat_sum, b.stats.queue_lat_sum);
    assert_eq!(a.stats.net_lat_sum, b.stats.net_lat_sum);
    assert_eq!(a.stats.encode, b.stats.encode);

    // And the trace-driven run matches the live-source-driven run, since the
    // live source is deterministic too.
    let mut live2 = BenchmarkTraffic::new(Benchmark::X264, cfg.noc.num_nodes(), 0.75, 77);
    let c = run_with_source(&mut live2, Mechanism::FpVaxx, &cfg);
    assert_eq!(a.stats.packets, c.stats.packets);
    assert_eq!(a.stats.flits_injected, c.stats.flits_injected);
}
