//! The static frequent-pattern table (Figure 5) and masked approximate
//! matching against it (Figure 6).
//!
//! Each pattern class constrains a *fixed region* of the 32-bit word to a
//! sign-fill value and leaves a *free region* to travel as the adjunct data.
//! Exact FP-COMP matching checks the whole word against the fixed region;
//! FP-VAXX first widens the match by excluding the AVCL's don't-care bits
//! from the comparison (the shaded portion of Figure 6), then reconstructs
//! the canonical approximated word the decoder will materialise.

/// A frequent-pattern class (the 3-bit encoded index of Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FpcClass {
    /// `000` — zero run (3-bit run length).
    Zero = 0,
    /// `001` — 4-bit sign-extended value.
    Se4 = 1,
    /// `010` — one byte sign-extended.
    Se8 = 2,
    /// `011` — halfword sign-extended.
    Se16 = 3,
    /// `100` — halfword padded with a zero halfword.
    HalfPadded = 4,
    /// `101` — two halfwords, each a byte sign-extended.
    TwoHalfSe = 5,
    /// `111` — uncompressed word.
    Uncompressed = 7,
}

/// Matching priority: highest compression first, as arbitrated by the CA
/// logic of Figure 6. FP-VAXX always tries the highest-priority row (§5.3.1).
pub const MATCH_PRIORITY: [FpcClass; 6] = [
    FpcClass::Zero,
    FpcClass::Se4,
    FpcClass::Se8,
    FpcClass::Se16,
    FpcClass::HalfPadded,
    FpcClass::TwoHalfSe,
];

impl FpcClass {
    /// Converts a 3-bit encoded index back to a class.
    pub fn from_index(index: u8) -> Option<FpcClass> {
        match index {
            0 => Some(FpcClass::Zero),
            1 => Some(FpcClass::Se4),
            2 => Some(FpcClass::Se8),
            3 => Some(FpcClass::Se16),
            4 => Some(FpcClass::HalfPadded),
            5 => Some(FpcClass::TwoHalfSe),
            7 => Some(FpcClass::Uncompressed),
            _ => None,
        }
    }

    /// The adjunct data size in bits (the "encoded data size" column of
    /// Figure 5; 3 bits for a zero run's length, 32 for uncompressed).
    pub fn adjunct_bits(self) -> u8 {
        match self {
            FpcClass::Zero => 3,
            FpcClass::Se4 => 4,
            FpcClass::Se8 => 8,
            FpcClass::Se16 | FpcClass::HalfPadded | FpcClass::TwoHalfSe => 16,
            FpcClass::Uncompressed => 32,
        }
    }

    /// The `(fixed_region_mask, fill)` variants of this class. A word fits
    /// the class iff for some variant all fixed-region bits equal the fill.
    fn variants(self) -> &'static [(u32, u32)] {
        const ZERO: &[(u32, u32)] = &[(0xFFFF_FFFF, 0)];
        const SE4: &[(u32, u32)] = &[(0xFFFF_FFF8, 0), (0xFFFF_FFF8, 0xFFFF_FFF8)];
        const SE8: &[(u32, u32)] = &[(0xFFFF_FF80, 0), (0xFFFF_FF80, 0xFFFF_FF80)];
        const SE16: &[(u32, u32)] = &[(0xFFFF_8000, 0), (0xFFFF_8000, 0xFFFF_8000)];
        const HALF_PADDED: &[(u32, u32)] = &[(0x0000_FFFF, 0)];
        const TWO_HALF_SE: &[(u32, u32)] = &[
            (0xFF80_FF80, 0),
            (0xFF80_FF80, 0x0000_FF80),
            (0xFF80_FF80, 0xFF80_0000),
            (0xFF80_FF80, 0xFF80_FF80),
        ];
        match self {
            FpcClass::Zero => ZERO,
            FpcClass::Se4 => SE4,
            FpcClass::Se8 => SE8,
            FpcClass::Se16 => SE16,
            FpcClass::HalfPadded => HALF_PADDED,
            FpcClass::TwoHalfSe => TWO_HALF_SE,
            FpcClass::Uncompressed => &[],
        }
    }

    /// Projects `word` onto this class under a don't-care mask: finds the
    /// value `v` closest to `word` that (a) fits this pattern class and
    /// (b) agrees with `word` on every bit *not* in `dont_care`.
    ///
    /// With `dont_care == 0` this degenerates to exact FP-COMP matching
    /// (returns `Some(word)` iff `word` fits the class).
    pub fn project(self, word: u32, dont_care: u32) -> Option<u32> {
        let must = !dont_care;
        for &(fixed, fill) in self.variants() {
            if word & must & fixed == fill & must {
                // Free-region bits are taken from the original word so the
                // approximation stays as close as possible (and equals the
                // word exactly when the word already fits).
                return Some(fill | (word & !fixed));
            }
        }
        None
    }

    /// Extracts the adjunct data bits from a word known to fit this class.
    pub fn adjunct_of(self, value: u32) -> u32 {
        match self {
            FpcClass::Zero => 1, // run length 1; block layer merges runs
            FpcClass::Se4 => value & 0xF,
            FpcClass::Se8 => value & 0xFF,
            FpcClass::Se16 => value & 0xFFFF,
            FpcClass::HalfPadded => value >> 16,
            FpcClass::TwoHalfSe => ((value >> 8) & 0xFF00) | (value & 0xFF),
            FpcClass::Uncompressed => value,
        }
    }

    /// Reconstructs the word from its class and adjunct (the decoder side).
    /// For [`FpcClass::Zero`] the adjunct is a run length and the decoded
    /// value is a single zero word; the caller expands runs.
    pub fn decode(self, adjunct: u32) -> u32 {
        match self {
            FpcClass::Zero => 0,
            FpcClass::Se4 => ((adjunct as i32) << 28 >> 28) as u32,
            FpcClass::Se8 => ((adjunct as i32) << 24 >> 24) as u32,
            FpcClass::Se16 => ((adjunct as i32) << 16 >> 16) as u32,
            FpcClass::HalfPadded => adjunct << 16,
            FpcClass::TwoHalfSe => {
                let hi = ((adjunct >> 8) as u8 as i8 as i16) as u16 as u32;
                let lo = (adjunct as u8 as i8 as i16) as u16 as u32;
                (hi << 16) | lo
            }
            FpcClass::Uncompressed => adjunct,
        }
    }
}

/// Finds the highest-priority frequent pattern `word` can be (approximately)
/// matched to, returning the class and the canonical approximated value.
///
/// `dont_care` is the AVCL mask (0 for exact FP-COMP matching).
///
/// # Examples
///
/// ```
/// use anoc_compression::fpc::{best_match, FpcClass};
/// // -3 is a 4-bit sign-extended value.
/// assert_eq!(best_match((-3i32) as u32, 0), Some((FpcClass::Se4, (-3i32) as u32)));
/// // 0x12345678 fits nothing exactly...
/// assert_eq!(best_match(0x1234_5678, 0), None);
/// // ...but with the low 16 bits don't-care it projects onto "halfword
/// // padded with a zero halfword".
/// assert_eq!(
///     best_match(0x1234_5678, 0xFFFF),
///     Some((FpcClass::HalfPadded, 0x1234_0000))
/// );
/// ```
pub fn best_match(word: u32, dont_care: u32) -> Option<(FpcClass, u32)> {
    for class in MATCH_PRIORITY {
        if let Some(v) = class.project(word, dont_care) {
            return Some((class, v));
        }
    }
    None
}

/// Wide variant of [`best_match`]: classifies eight contiguous words in one
/// pass. The class/variant loop is hoisted outside the lane loop so each
/// `(fixed, fill)` row is compared against all eight words at once (masked by
/// the per-lane don't-care bits) and the hit mask is reduced per iteration —
/// the fixed-width bulk-compare structure a hardware CA stage or a SIMD
/// software decoder uses. Lane `i` of the result is bit-identical to
/// `best_match(words[i], dont_care[i])`.
pub fn best_match8(words: &[u32; 8], dont_care: &[u32; 8]) -> [Option<(FpcClass, u32)>; 8] {
    let mut out: [Option<(FpcClass, u32)>; 8] = [None; 8];
    // Lanes still unresolved, as a bitset reduced after every variant row.
    let mut pending: u8 = 0xFF;
    for class in MATCH_PRIORITY {
        if pending == 0 {
            break;
        }
        for &(fixed, fill) in class.variants() {
            let mut hits: u8 = 0;
            for lane in 0..8 {
                let must = !dont_care[lane];
                if pending & (1 << lane) != 0 && words[lane] & must & fixed == fill & must {
                    hits |= 1 << lane;
                    out[lane] = Some((class, fill | (words[lane] & !fixed)));
                }
            }
            pending &= !hits;
            if pending == 0 {
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_classification_of_figure5_examples() {
        assert_eq!(best_match(0, 0).unwrap().0, FpcClass::Zero);
        assert_eq!(best_match(7, 0).unwrap().0, FpcClass::Se4);
        assert_eq!(best_match((-8i32) as u32, 0).unwrap().0, FpcClass::Se4);
        assert_eq!(best_match(100, 0).unwrap().0, FpcClass::Se8);
        assert_eq!(best_match((-100i32) as u32, 0).unwrap().0, FpcClass::Se8);
        assert_eq!(best_match(30_000, 0).unwrap().0, FpcClass::Se16);
        assert_eq!(
            best_match((-30_000i32) as u32, 0).unwrap().0,
            FpcClass::Se16
        );
        assert_eq!(best_match(0xABCD_0000, 0).unwrap().0, FpcClass::HalfPadded);
        // two halfwords each byte sign-extended: 0x0042_FFC0
        assert_eq!(best_match(0x0042_FFC0, 0).unwrap().0, FpcClass::TwoHalfSe);
        assert_eq!(best_match(0x1234_5678, 0), None);
        // 0x8000_0000 has a zero low halfword, so it *is* halfword-padded.
        assert_eq!(best_match(0x8000_0000, 0).unwrap().0, FpcClass::HalfPadded);
        assert_eq!(best_match(0x8000_0001, 0), None);
    }

    #[test]
    fn exact_match_returns_word_unchanged() {
        for w in [0u32, 7, 0xFFu32, 0xFFFF_FF85, 0xABCD_0000, 0x0042_FFC0] {
            if let Some((_, v)) = best_match(w, 0) {
                assert_eq!(v, w, "exact match must not alter {w:#x}");
            }
        }
    }

    #[test]
    fn roundtrip_encode_decode() {
        let words = [
            0u32,
            5,
            (-5i32) as u32,
            120,
            (-120i32) as u32,
            30_000,
            (-29_999i32) as u32,
            0x7FFF_0000,
            0x0042_FFC0,
            0xFF85_0023u32,
        ];
        for w in words {
            if let Some((class, v)) = best_match(w, 0) {
                assert_eq!(v, w);
                if class != FpcClass::Zero {
                    let adj = class.adjunct_of(v);
                    assert!(adj < (1u64 << class.adjunct_bits()) as u32);
                    assert_eq!(class.decode(adj), v, "class {class:?} word {w:#x}");
                }
            }
        }
    }

    #[test]
    fn projection_respects_must_bits() {
        // 0x12345678 with low byte don't-care still cannot fit Se16.
        assert_eq!(FpcClass::Se16.project(0x1234_5678, 0xFF), None);
        // 0x00008123 with low byte don't-care: must bits 0x00008100 — Se16
        // needs bits 31..15 uniform; bit 15 is 1 but 31..16 are 0 -> no.
        assert_eq!(FpcClass::Se16.project(0x0000_8123, 0xFF), None);
        // 0x00007F23 with low byte don't-care fits Se16 (positive fill).
        assert_eq!(FpcClass::Se16.project(0x0000_7F23, 0xFF), Some(0x0000_7F23));
    }

    #[test]
    fn projection_keeps_free_bits_close() {
        // Word 0x0000_00FF: not a sign-extended byte (bit 7 set, bits 31..8
        // clear), and 4 don't-care bits don't rescue Se4/Se8 because bit 7 is
        // a must-bit. It lands on Se16 with the word unchanged.
        let (class, v) = best_match(0x0000_00FF, 0xF).unwrap();
        assert_eq!(class, FpcClass::Se16);
        assert_eq!(v, 0xFF);
        // 0x0000_0013: bit 4 is a must-bit in Se4's fixed region, so two
        // free low bits cannot rescue the match.
        assert_eq!(FpcClass::Se4.project(0x13, 0b11), None);
        // 5 fits signed-4-bit exactly, don't-care bits or not.
        assert_eq!(FpcClass::Se4.project(0x5, 0b11), Some(0x5));
        // 11 does not (it exceeds the signed 4-bit range [-8, 7]).
        assert_eq!(FpcClass::Se4.project(0xB, 0), None);
    }

    #[test]
    fn approximate_zero_match() {
        // Word 3 with two don't-care bits projects onto the zero pattern.
        assert_eq!(FpcClass::Zero.project(3, 0b11), Some(0));
        assert_eq!(best_match(3, 0b11).unwrap(), (FpcClass::Zero, 0));
        // But not when a must-bit is set.
        assert_eq!(FpcClass::Zero.project(4, 0b11), None);
    }

    #[test]
    fn two_half_se_decode() {
        let v = 0x0042_FFC0u32; // hi half = sext8(0x42), lo half = sext8(0xC0)
        let adj = FpcClass::TwoHalfSe.adjunct_of(v);
        assert_eq!(adj, 0x42C0);
        assert_eq!(FpcClass::TwoHalfSe.decode(adj), v);
    }

    #[test]
    fn class_index_roundtrip() {
        for class in MATCH_PRIORITY {
            assert_eq!(FpcClass::from_index(class as u8), Some(class));
        }
        assert_eq!(FpcClass::from_index(7), Some(FpcClass::Uncompressed));
        assert_eq!(FpcClass::from_index(6), None);
        assert_eq!(FpcClass::from_index(8), None);
    }

    #[test]
    fn best_match8_agrees_with_scalar() {
        let mut rng = anoc_core::rng::Pcg32::seed_from_u64(0xF8C8);
        for _ in 0..200 {
            let words: [u32; 8] = core::array::from_fn(|_| rng.next_u32() >> rng.below(28));
            let masks: [u32; 8] = core::array::from_fn(|_| (1u32 << rng.below(17)) - 1);
            let batch = best_match8(&words, &masks);
            for lane in 0..8 {
                assert_eq!(
                    batch[lane],
                    best_match(words[lane], masks[lane]),
                    "lane {lane}: word {:#x} mask {:#x}",
                    words[lane],
                    masks[lane]
                );
            }
        }
    }

    #[test]
    fn priority_prefers_denser_patterns() {
        // 0 fits every pattern; priority must pick Zero.
        assert_eq!(best_match(0, 0).unwrap().0, FpcClass::Zero);
        // 5 fits Se4/Se8/Se16; priority must pick Se4.
        assert_eq!(best_match(5, 0).unwrap().0, FpcClass::Se4);
    }
}
