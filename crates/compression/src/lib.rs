//! # anoc-compression
//!
//! NoC data-compression mechanisms and their VAXX approximate variants, as
//! evaluated in APPROX-NoC (ISCA 2017):
//!
//! * [`fpc`] — the static frequent-pattern table (Figure 5) with masked
//!   approximate matching (Figure 6);
//! * [`fp`] — the FP-COMP and FP-VAXX block codecs (§4.1);
//! * [`dictionary`] — encoder/decoder pattern-matching tables with the
//!   install/invalidate notification protocol (Figures 7–8);
//! * [`di`] — the DI-COMP and DI-VAXX block codecs (§4.2);
//! * [`bd`] — BD-COMP and BD-VAXX base-delta codecs (the plug-and-play
//!   extension over Zhan et al.'s cited mechanism);
//! * [`lz`] — the LZ-VAXX streaming approximate-LZ codec: cross-word
//!   back-references within a cache block, confirmed word-by-word against
//!   AVCL don't-care patterns;
//! * [`adaptive`] — Jin et al.'s on/off compression controller, wrappable
//!   around any encoder;
//! * [`cam`] — CAM/TCAM throughput, energy and area models (§4.3, §5.5).
//!
//! All codecs implement the [`anoc_core::codec::BlockEncoder`] /
//! [`anoc_core::codec::BlockDecoder`] traits, so the NI can host any of them
//! interchangeably — the "plug and play" property of the VAXX engine.
//!
//! ## Example
//!
//! ```
//! use anoc_compression::fp::{FpDecoder, FpEncoder};
//! use anoc_core::avcl::Avcl;
//! use anoc_core::codec::{BlockDecoder, BlockEncoder};
//! use anoc_core::data::{CacheBlock, NodeId};
//! use anoc_core::threshold::ErrorThreshold;
//!
//! let avcl = Avcl::new(ErrorThreshold::from_percent(10)?);
//! let mut encoder = FpEncoder::fp_vaxx(avcl);
//! let mut decoder = FpDecoder::new();
//!
//! let block = CacheBlock::from_i32(&[0, 0, 120, -7, 30_000, 65_543, 0, 0]);
//! let encoded = encoder.encode(&block, NodeId(1));
//! assert!(encoded.payload_bits() < block.size_bits() as u32);
//!
//! let decoded = decoder.decode(&encoded, NodeId(0)).block;
//! assert_eq!(decoded.len(), block.len());
//! # Ok::<(), anoc_core::threshold::ThresholdError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod bd;
pub mod cam;
pub mod di;
pub mod dictionary;
pub mod fp;
pub mod fpc;
pub mod lz;

pub use adaptive::{AdaptiveConfig, AdaptiveEncoder};
pub use bd::{BdDecoder, BdEncoder};
pub use di::{DiConfig, DiDecoder, DiEncoder};
pub use fp::{FpDecoder, FpEncoder};
pub use lz::{LzConfig, LzDecoder, LzEncoder};
