//! BD-COMP and BD-VAXX: base-delta block codecs — the plug-and-play
//! extension study.
//!
//! The paper's §6 cites Zhan et al. (ASP-DAC'14), who "introduced a
//! base-delta compression technique in NoCs to exploit the small
//! intra-variance in data communication", and claims VAXX "can be used in
//! the manner of plug and play module for any underlying NoC data
//! compression mechanisms" (§1). This module makes that claim concrete with
//! a third codec family: a block is encoded as one base word plus narrow
//! signed deltas, and BD-VAXX widens the delta fit using each word's
//! don't-care tolerance — a word that misses the delta range is *pulled* to
//! the nearest in-range value if that value still satisfies the threshold.
//!
//! Wire format per block (the classic BDI dual-base layout): a 3-bit
//! configuration tag selecting the delta width, the explicit base word, and
//! then per word a 1-bit fit flag — fitted words carry a 1-bit base selector
//! (implicit zero base vs the explicit base) plus the delta; misfits travel
//! raw. Blocks for which no width is profitable travel uncompressed.

use anoc_core::avcl::Avcl;
use anoc_core::codec::{
    BlockDecoder, BlockEncoder, CodecActivity, DecodeResult, EncodedBlock, WordCode,
};
use anoc_core::data::{CacheBlock, DataType, NodeId};

/// Delta widths tried, in increasing cost (Zhan et al. use byte-granular
/// deltas; 4-bit deltas capture near-repeats).
const DELTA_WIDTHS: [u8; 3] = [4, 8, 16];

/// Per-block configuration-tag overhead in bits.
const CONFIG_TAG_BITS: u8 = 3;

/// The BD-COMP / BD-VAXX encoder.
#[derive(Debug, Clone)]
pub struct BdEncoder {
    avcl: Option<Avcl>,
    activity: CodecActivity,
}

impl BdEncoder {
    /// Creates an exact base-delta encoder (BD-COMP).
    pub fn bd_comp() -> Self {
        BdEncoder {
            avcl: None,
            activity: CodecActivity::default(),
        }
    }

    /// Creates a BD-VAXX encoder with the given AVCL.
    pub fn bd_vaxx(avcl: Avcl) -> Self {
        BdEncoder {
            avcl: Some(avcl),
            activity: CodecActivity::default(),
        }
    }

    /// Whether this encoder approximates (BD-VAXX).
    pub fn is_vaxx(&self) -> bool {
        self.avcl.is_some()
    }

    /// Fits `word` to `anchor ± (2^(bits-1) - 1)`, exactly or (when
    /// allowed) by approximating it to the nearest in-range value within
    /// the word's own tolerance. Returns `(transmitted_value, approx)`.
    fn fit_delta(
        &self,
        word: u32,
        anchor: u32,
        bits: u8,
        dtype: DataType,
        approx_on: bool,
    ) -> Option<(u32, bool)> {
        let limit = (1i64 << (bits - 1)) - 1;
        let delta = word as i32 as i64 - anchor as i32 as i64;
        if delta.abs() <= limit {
            return Some((word, false));
        }
        if !approx_on {
            return None;
        }
        // Pull the word to the nearest edge of the delta range and check it
        // against the word's own don't-care tolerance.
        let clamped = anchor as i32 as i64 + delta.clamp(-limit, limit);
        let candidate = clamped as u32; // same 32-bit ring as the words
        let avcl = self.avcl.as_ref()?;
        if avcl.accepts(word, candidate, dtype) {
            Some((candidate, true))
        } else {
            None
        }
    }

    /// Encodes the block with `bits`-wide deltas against the dual base
    /// (implicit zero + the first word), per-word fit flags, and raw
    /// fallbacks. Always succeeds; the caller compares total cost.
    fn encode_config(&self, block: &CacheBlock, bits: u8, approx_on: bool) -> Vec<WordCode> {
        let words = block.words();
        let base = words[0];
        let mut codes = Vec::with_capacity(words.len());
        codes.push(WordCode::Raw {
            word: base,
            prefix_bits: CONFIG_TAG_BITS,
        });
        for &w in &words[1..] {
            // Try the explicit base, then the implicit zero base.
            let fit = self
                .fit_delta(w, base, bits, block.dtype(), approx_on)
                .or_else(|| self.fit_delta(w, 0, bits, block.dtype(), approx_on));
            match fit {
                Some((value, approx)) => codes.push(WordCode::Delta {
                    delta: (value as i32).wrapping_sub(base as i32),
                    // Wire cost: fit flag + base selector + delta bits.
                    delta_bits: bits + 2,
                    approx,
                }),
                None => codes.push(WordCode::Raw {
                    word: w,
                    prefix_bits: 1, // fit flag
                }),
            }
        }
        codes
    }
}

impl BlockEncoder for BdEncoder {
    fn name(&self) -> &'static str {
        if self.is_vaxx() {
            "BD-VAXX"
        } else {
            "BD-COMP"
        }
    }

    fn encode(&mut self, block: &CacheBlock, _dest: NodeId) -> EncodedBlock {
        let approx_on = self.is_vaxx() && block.is_approximable();
        self.activity.words_encoded += block.len() as u64;
        self.activity.cam_searches += 1; // one parallel delta comparison pass
        if approx_on {
            self.activity.avcl_ops += block.len() as u64;
        }
        let words = block.words();
        let codes = 'config: {
            if words.is_empty() {
                break 'config Vec::new();
            }
            // All-zero block: the tag alone suffices.
            if words.iter().all(|w| *w == 0) {
                break 'config words
                    .chunks(8)
                    .map(|c| WordCode::ZeroRun { len: c.len() as u8 })
                    .collect();
            }
            // Repeated (or approximately repeated) block: base + 0-bit deltas.
            if let Some(codes) = self.try_config_repeat(block, approx_on) {
                break 'config codes;
            }
            // Pick the cheapest delta width (DELTA_WIDTHS is a non-empty
            // const, so the min exists); fall back to uncompressed (one tag
            // bit) when no width is profitable.
            if let Some(best) = DELTA_WIDTHS
                .iter()
                .map(|bits| self.encode_config(block, *bits, approx_on))
                .min_by_key(|codes| codes.iter().map(WordCode::bits).sum::<u32>())
            {
                let best_bits: u32 = best.iter().map(WordCode::bits).sum();
                if u64::from(best_bits) < block.size_bits() + 1 {
                    break 'config best;
                }
            }
            words
                .iter()
                .map(|w| WordCode::Raw {
                    word: *w,
                    prefix_bits: 1,
                })
                .collect()
        };
        EncodedBlock::new(codes, block.dtype(), block.is_approximable())
    }

    fn activity(&self) -> CodecActivity {
        self.activity
    }
}

impl BdEncoder {
    /// The repeated-word configuration: every word equals (or approximates
    /// to) the base; only the base travels.
    fn try_config_repeat(&self, block: &CacheBlock, approx_on: bool) -> Option<Vec<WordCode>> {
        let words = block.words();
        let base = words[0];
        let mut codes = Vec::with_capacity(words.len());
        codes.push(WordCode::Raw {
            word: base,
            prefix_bits: CONFIG_TAG_BITS,
        });
        for &w in &words[1..] {
            if w == base {
                codes.push(WordCode::Delta {
                    delta: 0,
                    delta_bits: 0,
                    approx: false,
                });
            } else if approx_on && self.avcl.as_ref()?.accepts(w, base, block.dtype()) {
                codes.push(WordCode::Delta {
                    delta: 0,
                    delta_bits: 0,
                    approx: true,
                });
            } else {
                return None;
            }
        }
        Some(codes)
    }
}

/// The base-delta decoder (shared by BD-COMP and BD-VAXX).
#[derive(Debug, Clone, Default)]
pub struct BdDecoder {
    activity: CodecActivity,
}

impl BdDecoder {
    /// Creates a base-delta decoder.
    pub fn new() -> Self {
        BdDecoder::default()
    }
}

impl BlockDecoder for BdDecoder {
    fn name(&self) -> &'static str {
        "BD-decoder"
    }

    fn decode(&mut self, encoded: &EncodedBlock, _src: NodeId) -> DecodeResult {
        let mut words = Vec::with_capacity(encoded.word_count() as usize);
        let mut base = 0u32;
        for code in encoded.codes() {
            match *code {
                WordCode::Raw { word, prefix_bits } => {
                    // Only the config-tagged block base (3-bit prefix) sets
                    // the delta anchor; per-word raw fallbacks do not.
                    if prefix_bits >= CONFIG_TAG_BITS {
                        base = word;
                    }
                    words.push(word);
                }
                WordCode::ZeroRun { len } => {
                    words.extend(std::iter::repeat_n(0u32, len as usize));
                }
                WordCode::Delta { delta, .. } => {
                    words.push((base as i32).wrapping_add(delta) as u32);
                }
                ref other => unreachable!("base-delta stream cannot contain {other:?}"),
            }
        }
        self.activity.words_decoded += words.len() as u64;
        DecodeResult {
            block: CacheBlock::new(words, encoded.dtype(), encoded.is_approximable()),
            notifications: Vec::new(),
        }
    }

    fn activity(&self) -> CodecActivity {
        self.activity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anoc_core::threshold::ErrorThreshold;

    fn avcl(pct: u32) -> Avcl {
        Avcl::new(ErrorThreshold::from_percent(pct).unwrap())
    }

    fn roundtrip(enc: &mut BdEncoder, block: &CacheBlock) -> CacheBlock {
        let e = enc.encode(block, NodeId(1));
        BdDecoder::new().decode(&e, NodeId(0)).block
    }

    #[test]
    fn zero_block_is_six_bits_per_run() {
        let mut enc = BdEncoder::bd_comp();
        let block = CacheBlock::from_i32(&[0; 16]);
        let e = enc.encode(&block, NodeId(1));
        assert_eq!(e.payload_bits(), 12);
        assert_eq!(roundtrip(&mut enc, &block), block);
    }

    #[test]
    fn repeated_block_sends_only_the_base() {
        let mut enc = BdEncoder::bd_comp();
        let block = CacheBlock::from_i32(&[0x1234_5678; 16]);
        let e = enc.encode(&block, NodeId(1));
        // base (32 + 3 tag) + 15 zero-width deltas.
        assert_eq!(e.payload_bits(), 35);
        assert_eq!(roundtrip(&mut enc, &block), block);
    }

    #[test]
    fn low_variance_block_uses_narrow_deltas() {
        let mut enc = BdEncoder::bd_comp();
        let words: Vec<i32> = (0..16).map(|i| 1_000_000 + i).collect();
        let block = CacheBlock::from_i32(&words);
        let e = enc.encode(&block, NodeId(1));
        // Deltas 1..15 overflow the 4-bit limit (7), so the cheapest full
        // fit is 8-bit: base (35) + 15 x (8 + 2 flag/selector bits)... but
        // the 4-bit config with half the words raw can win; just bound it.
        assert!(e.payload_bits() <= 35 + 15 * 10, "{}", e.payload_bits());
        assert!(u64::from(e.payload_bits()) < block.size_bits());
        assert_eq!(roundtrip(&mut enc, &block), block);
    }

    #[test]
    fn mixed_block_compresses_partially() {
        // Two outliers among near-base words: per-word fit flags keep the
        // block compressible (the all-or-nothing scheme could not).
        let mut enc = BdEncoder::bd_comp();
        let mut words = vec![500_000i32; 14];
        words.push(0x7FFF_FFFF);
        words.push(-123_456_789);
        let block = CacheBlock::from_i32(&words);
        let e = enc.encode(&block, NodeId(1));
        assert!(u64::from(e.payload_bits()) < block.size_bits());
        let s = e.stats();
        assert!(s.raw >= 2 && s.exact_encoded >= 12, "{s:?}");
        assert_eq!(roundtrip(&mut enc, &block), block);
    }

    #[test]
    fn high_variance_block_stays_raw() {
        let mut enc = BdEncoder::bd_comp();
        let mut rng = anoc_core::rng::Pcg32::seed_from_u64(77);
        let words: Vec<i32> = (0..16)
            .map(|_| (rng.next_u32() | 0x4040_0000) as i32)
            .collect();
        let block = CacheBlock::from_i32(&words);
        let e = enc.encode(&block, NodeId(1));
        // Not inflated beyond one flag bit per word.
        assert!(u64::from(e.payload_bits()) <= block.size_bits() + 16);
        assert_eq!(roundtrip(&mut enc, &block), block);
    }

    #[test]
    fn zero_base_catches_small_words() {
        // Base is huge, but small words fit the implicit zero base.
        let mut enc = BdEncoder::bd_comp();
        let block = CacheBlock::from_i32(&[1_000_000, 5, -7, 100, 1_000_050, 3, 90, -2]);
        let e = enc.encode(&block, NodeId(1));
        assert!(u64::from(e.payload_bits()) < block.size_bits());
        assert_eq!(roundtrip(&mut enc, &block), block);
    }

    #[test]
    fn bd_comp_is_always_lossless() {
        let mut enc = BdEncoder::bd_comp();
        let mut rng = anoc_core::rng::Pcg32::seed_from_u64(5);
        for _ in 0..200 {
            let base = rng.next_u32() >> rng.below(16);
            let words: Vec<i32> = (0..16)
                .map(|_| (base as i32).wrapping_add(rng.next_u32() as i32 >> rng.below(28)))
                .collect();
            let block = CacheBlock::from_i32(&words);
            assert_eq!(roundtrip(&mut enc, &block), block);
        }
    }

    #[test]
    fn bd_vaxx_pulls_outliers_into_range() {
        let mut enc = BdEncoder::bd_vaxx(avcl(10));
        // Base 100_000; one word at +150 misses the 8-bit range (limit 127)
        // but its 10% tolerance (range 6250) allows pulling it to +127.
        let mut words = vec![100_000i32; 16];
        words[7] = 100_150;
        let block = CacheBlock::from_i32(&words);
        let e = enc.encode(&block, NodeId(1));
        let s = e.stats();
        assert!(s.approx_encoded >= 1, "{s:?}");
        let d = BdDecoder::new().decode(&e, NodeId(0)).block;
        for (p, a) in block.words().iter().zip(d.words()) {
            let err = Avcl::relative_error(*p, *a, DataType::Int).unwrap();
            assert!(err <= 0.10, "{p} -> {a}");
        }
        // The exact encoder cannot do this with 4-bit deltas... verify the
        // VAXX version compresses no worse than the exact one.
        let mut exact = BdEncoder::bd_comp();
        let e2 = exact.encode(&block, NodeId(1));
        assert!(e.payload_bits() <= e2.payload_bits());
    }

    #[test]
    fn bd_vaxx_respects_precise_blocks() {
        let mut enc = BdEncoder::bd_vaxx(avcl(20));
        let mut words = vec![50_000i32; 8];
        words[3] = 51_000; // outside every delta... within 16-bit (1000 < 32767)
        words[4] = 3_000_000; // genuinely far
        let block = CacheBlock::from_i32(&words).with_approximable(false);
        let d = roundtrip(&mut enc, &block);
        assert_eq!(d, block, "precise data must be bit-exact");
    }

    #[test]
    fn bd_vaxx_threshold_never_violated() {
        let t = ErrorThreshold::from_percent(10).unwrap();
        let mut enc = BdEncoder::bd_vaxx(Avcl::new(t));
        let mut dec = BdDecoder::new();
        let mut rng = anoc_core::rng::Pcg32::seed_from_u64(11);
        for _ in 0..300 {
            let base = (rng.next_u32() >> rng.below(12)) as i32;
            let words: Vec<i32> = (0..16)
                .map(|_| base.wrapping_add((rng.next_u32() >> rng.below(28)) as i32))
                .collect();
            let block = CacheBlock::from_i32(&words);
            let e = enc.encode(&block, NodeId(1));
            let d = dec.decode(&e, NodeId(0)).block;
            for (p, a) in block.words().iter().zip(d.words()) {
                let err = Avcl::relative_error(*p, *a, DataType::Int).unwrap();
                assert!(err <= 0.10 + 1e-12, "{p:#x} -> {a:#x} err {err}");
            }
        }
    }

    #[test]
    fn names_and_flags() {
        assert_eq!(BdEncoder::bd_comp().name(), "BD-COMP");
        assert_eq!(BdEncoder::bd_vaxx(avcl(10)).name(), "BD-VAXX");
        assert!(BdEncoder::bd_vaxx(avcl(10)).is_vaxx());
        assert!(!BdEncoder::bd_comp().is_vaxx());
        assert_eq!(BdDecoder::new().name(), "BD-decoder");
        assert_eq!(BdEncoder::bd_comp().compression_latency(), 3);
        assert_eq!(BdDecoder::new().decompression_latency(), 2);
    }

    #[test]
    fn empty_block() {
        let mut enc = BdEncoder::bd_comp();
        let block = CacheBlock::precise(vec![]);
        let e = enc.encode(&block, NodeId(1));
        assert!(e.is_empty());
        assert_eq!(roundtrip(&mut enc, &block), block);
    }
}
