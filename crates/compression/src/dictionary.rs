//! Encoder/decoder pattern-matching tables for dictionary-based compression
//! (Figures 7 and 8 of the paper, after Jin et al., MICRO'08).
//!
//! Decoders *learn*: they watch the uncompressed words arriving from each
//! sender, count recurrences, and on promotion install the pattern in their
//! PMT, sending an **install** notification (pattern, encoded index) to the
//! sender's encoder. On replacement they send **invalidate** notifications to
//! every encoder whose valid bit is set. Encoders mirror this state: per
//! pattern, a vector of per-destination encoded indices (DI-COMP), or a
//! ternary approximate pattern plus per-destination original patterns
//! (DI-VAXX, built by the Approximate Pattern Compute Logic at install time
//! so the AVCL is off the packetization critical path).

use anoc_core::avcl::{low_mask, ApproxPattern, Avcl};
use anoc_core::codec::Notification;
use anoc_core::data::{DataType, NodeId};
use anoc_core::snap::{SnapError, SnapReader, SnapWriter};

/// Number of PMT entries in both encoders and decoders (Table 1: 8).
pub const DEFAULT_PMT_ENTRIES: usize = 8;

/// Cap on the ternary (don't-care) width of a DI-VAXX TCAM entry. A TCAM
/// row's length fixes the per-row compare budget in hardware; bounding it at
/// a halfword lets every row use the same fixed-width masked compare (the
/// Snippet-3 bounded-entry move) instead of sizing rows for the widest mask
/// any install might produce. Keys whose APCL mask is wider are installed
/// with the mask truncated to this many low bits — strictly tighter, so the
/// error guarantee is untouched.
pub const MAX_TCAM_TERNARY_BITS: u32 = 16;

/// Recurrences a candidate pattern needs before promotion into the PMT.
pub const PROMOTE_THRESHOLD: u32 = 2;

/// Size of the decoder's candidate (pre-PMT) tracking filter.
const CANDIDATE_ENTRIES: usize = 16;

/// A decoder PMT entry: data pattern, frequency counter, and one valid bit
/// per remote encoder (Figure 7b). The slot position doubles as the encoded
/// index.
#[derive(Debug, Clone)]
struct DecoderEntry {
    pattern: u32,
    freq: u32,
    valid: Vec<bool>,
}

/// The decoder-side pattern matching table.
#[derive(Debug, Clone)]
pub struct DecoderPmt {
    slots: Vec<Option<DecoderEntry>>,
    candidates: Vec<(u32, u32)>,
    num_nodes: usize,
    /// Count of decode-time index lookups whose slot no longer held the
    /// pattern the packet was encoded against (an in-flight replacement
    /// race, resolved by the consistency protocol).
    races: u64,
}

impl DecoderPmt {
    /// Creates a decoder PMT with `entries` slots, in a system of
    /// `num_nodes` nodes.
    pub fn new(entries: usize, num_nodes: usize) -> Self {
        DecoderPmt {
            slots: vec![None; entries],
            candidates: Vec::with_capacity(CANDIDATE_ENTRIES),
            num_nodes,
            races: 0,
        }
    }

    /// Number of PMT slots.
    pub fn entries(&self) -> usize {
        self.slots.len()
    }

    /// Bits needed to express an encoded index.
    pub fn index_bits(&self) -> u8 {
        usize::BITS
            .saturating_sub(self.slots.len().leading_zeros() + 1)
            .max(1) as u8
    }

    /// The pattern currently stored at `index`, if any.
    pub fn pattern_at(&self, index: u8) -> Option<u32> {
        self.slots
            .get(index as usize)
            .and_then(|s| s.as_ref().map(|e| e.pattern))
    }

    /// Races observed so far (stale in-flight indices).
    pub fn races(&self) -> u64 {
        self.races
    }

    /// Records a dictionary hit arriving from `src` at `index`. The packet
    /// carries `expected`, the pattern the encoder believed the index mapped
    /// to; a mismatch is counted as a (protocol-resolved) race.
    pub fn record_hit(&mut self, index: u8, expected: u32) {
        match self.slots.get_mut(index as usize).and_then(Option::as_mut) {
            Some(entry) if entry.pattern == expected => {
                entry.freq = entry.freq.saturating_add(1);
            }
            _ => self.races += 1,
        }
    }

    /// Observes an uncompressed word arriving from `src`, learning frequent
    /// patterns. Returns the notifications to send (install to `src`,
    /// invalidations to displaced encoders).
    pub fn observe_raw(
        &mut self,
        word: u32,
        src: NodeId,
        dtype: DataType,
    ) -> Vec<(NodeId, Notification)> {
        let mut notes = Vec::new();
        // Already tracked? Bump frequency; announce to this sender if new.
        if let Some((idx, entry)) = self
            .slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| s.as_mut().map(|e| (i, e)))
            .find(|(_, e)| e.pattern == word)
        {
            entry.freq = entry.freq.saturating_add(1);
            if !entry.valid[src.index()] {
                entry.valid[src.index()] = true;
                notes.push((
                    src,
                    Notification::Install {
                        pattern: word,
                        index: idx as u8,
                        dtype,
                    },
                ));
            }
            return notes;
        }
        // Track as a candidate.
        if let Some(c) = self.candidates.iter_mut().find(|c| c.0 == word) {
            c.1 += 1;
            if c.1 >= PROMOTE_THRESHOLD {
                let word = c.0;
                self.candidates.retain(|c| c.0 != word);
                notes.extend(self.promote(word, src, dtype));
            }
        } else {
            if self.candidates.len() == CANDIDATE_ENTRIES {
                // Evict the coldest candidate (a full table has a minimum).
                if let Some(coldest) = self
                    .candidates
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, c)| c.1)
                    .map(|(i, _)| i)
                {
                    self.candidates.swap_remove(coldest);
                }
            }
            self.candidates.push((word, 1));
        }
        notes
    }

    /// Promotes `word` into the PMT, evicting the least-frequently-used
    /// entry if the table is full.
    fn promote(&mut self, word: u32, src: NodeId, dtype: DataType) -> Vec<(NodeId, Notification)> {
        let mut notes = Vec::new();
        let slot = match self.slots.iter().position(Option::is_none) {
            Some(empty) => empty,
            None => {
                // A zero-slot PMT can store nothing; drop the promotion.
                let Some(victim_idx) = self
                    .slots
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.as_ref().map(|e| e.freq).unwrap_or(0))
                    .map(|(i, _)| i)
                else {
                    return notes;
                };
                // The full-table scan above guarantees the slot is occupied.
                if let Some(victim) = self.slots[victim_idx].take() {
                    for (node, valid) in victim.valid.iter().enumerate() {
                        if *valid {
                            notes.push((
                                NodeId::from(node),
                                Notification::Invalidate {
                                    pattern: victim.pattern,
                                },
                            ));
                        }
                    }
                } else {
                    debug_assert!(false, "victim slot in a full PMT is occupied");
                }
                victim_idx
            }
        };
        let mut valid = vec![false; self.num_nodes];
        valid[src.index()] = true;
        self.slots[slot] = Some(DecoderEntry {
            pattern: word,
            freq: PROMOTE_THRESHOLD,
            valid,
        });
        notes.push((
            src,
            Notification::Install {
                pattern: word,
                index: slot as u8,
                dtype,
            },
        ));
        notes
    }

    /// Ages all frequency counters (halving), so stale patterns lose
    /// priority when the communication phase changes.
    pub fn decay(&mut self) {
        for entry in self.slots.iter_mut().flatten() {
            entry.freq /= 2;
        }
        for c in &mut self.candidates {
            c.1 /= 2;
        }
        self.candidates.retain(|c| c.1 > 0);
    }

    /// Serializes the learned table (slots, candidate filter, race counter)
    /// for a simulator snapshot. Structural parameters (slot count, node
    /// count) are construction-time configuration and are not written.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.slots.len());
        for slot in &self.slots {
            match slot {
                Some(e) => {
                    w.bool(true);
                    w.u32(e.pattern);
                    w.u32(e.freq);
                    w.usize(e.valid.len());
                    for &v in &e.valid {
                        w.bool(v);
                    }
                }
                None => w.bool(false),
            }
        }
        w.usize(self.candidates.len());
        for &(word, freq) in &self.candidates {
            w.u32(word);
            w.u32(freq);
        }
        w.u64(self.races);
    }

    /// Restores state written by [`save_state`](Self::save_state) into an
    /// identically configured table.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let slots = r.usize()?;
        if slots != self.slots.len() {
            return Err(SnapError::Invalid("decoder PMT slot count"));
        }
        for slot in &mut self.slots {
            *slot = if r.bool()? {
                let pattern = r.u32()?;
                let freq = r.u32()?;
                let nodes = r.usize()?;
                let mut valid = Vec::with_capacity(nodes);
                for _ in 0..nodes {
                    valid.push(r.bool()?);
                }
                if valid.len() != self.num_nodes {
                    return Err(SnapError::Invalid("decoder PMT valid width"));
                }
                Some(DecoderEntry {
                    pattern,
                    freq,
                    valid,
                })
            } else {
                None
            };
        }
        let cands = r.usize()?;
        if cands > CANDIDATE_ENTRIES {
            return Err(SnapError::Invalid("decoder candidate count"));
        }
        self.candidates.clear();
        for _ in 0..cands {
            let word = r.u32()?;
            let freq = r.u32()?;
            self.candidates.push((word, freq));
        }
        self.races = r.u64()?;
        Ok(())
    }
}

/// One per-destination record of a DI-VAXX encoder entry: the encoded index
/// announced by that destination's decoder, and the original (precise)
/// pattern it resolves to (Figure 8's "idx / op" pairs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DestRecord {
    /// Encoded index at the destination decoder.
    pub index: u8,
    /// The original pattern stored at that index.
    pub original: u32,
}

/// An encoder PMT entry. For DI-COMP the key is the exact pattern; for
/// DI-VAXX it is the ternary approximate pattern computed by the APCL at
/// install time, and `per_dest` additionally carries the original patterns.
/// The install-time data type is kept so a threshold retarget can recompute
/// the key's mask plane (see [`EncoderPmt::set_apcl`]).
#[derive(Debug, Clone)]
pub struct EncoderEntry {
    key: ApproxPattern,
    dtype: DataType,
    freq: u32,
    per_dest: Vec<Option<DestRecord>>,
}

impl EncoderEntry {
    /// The ternary key of this entry.
    pub fn key(&self) -> ApproxPattern {
        self.key
    }

    /// The per-destination record for `dest`, if announced.
    pub fn dest(&self, dest: NodeId) -> Option<DestRecord> {
        self.per_dest.get(dest.index()).copied().flatten()
    }
}

/// The encoder-side pattern matching table (binary CAM for DI-COMP, TCAM
/// with original-pattern storage for DI-VAXX).
#[derive(Debug, Clone)]
pub struct EncoderPmt {
    entries: Vec<EncoderEntry>,
    capacity: usize,
    num_nodes: usize,
    /// `Some` for DI-VAXX (the APCL), `None` for DI-COMP.
    apcl: Option<Avcl>,
}

impl EncoderPmt {
    /// Creates a DI-COMP (exact) encoder PMT.
    pub fn di_comp(capacity: usize, num_nodes: usize) -> Self {
        EncoderPmt {
            entries: Vec::with_capacity(capacity),
            capacity,
            num_nodes,
            apcl: None,
        }
    }

    /// Creates a DI-VAXX (ternary) encoder PMT with the given APCL.
    pub fn di_vaxx(capacity: usize, num_nodes: usize, apcl: Avcl) -> Self {
        EncoderPmt {
            entries: Vec::with_capacity(capacity),
            capacity,
            num_nodes,
            apcl: Some(apcl),
        }
    }

    /// Whether this PMT stores ternary (TCAM) keys.
    pub fn is_ternary(&self) -> bool {
        self.apcl.is_some()
    }

    /// Replaces the APCL at run time (the dynamic-threshold hook of the
    /// staged-warmup methodology, DESIGN.md §11) and reprograms the mask
    /// plane: every stored key's don't-care mask is recomputed from its
    /// install-time pattern under the new threshold, exactly as a ternary
    /// CAM whose masks derive from a global threshold register behaves when
    /// that register is rewritten. Key *values* store the full install-time
    /// pattern, so the rewrite is deterministic and idempotent. No-op on a
    /// DI-COMP (binary CAM) table.
    pub fn set_apcl(&mut self, apcl: Avcl) {
        if self.apcl.is_some() {
            self.apcl = Some(apcl);
            for e in &mut self.entries {
                let p = apcl.approx_pattern(e.key.value(), e.dtype);
                e.key = ApproxPattern::new(p.value(), p.mask() & low_mask(MAX_TCAM_TERNARY_BITS));
            }
        }
    }

    /// Serializes the learned entries for a simulator snapshot. Keys are
    /// stored verbatim (value + mask + install dtype), so restoring is
    /// independent of the APCL installed at load time.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.entries.len());
        for e in &self.entries {
            w.u32(e.key.value());
            w.u32(e.key.mask());
            w.u8(match e.dtype {
                DataType::Int => 0,
                DataType::F32 => 1,
            });
            w.u32(e.freq);
            w.usize(e.per_dest.len());
            for rec in &e.per_dest {
                match rec {
                    Some(r) => {
                        w.bool(true);
                        w.u8(r.index);
                        w.u32(r.original);
                    }
                    None => w.bool(false),
                }
            }
        }
    }

    /// Restores state written by [`save_state`](Self::save_state) into an
    /// identically configured table.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.usize()?;
        if n > self.capacity {
            return Err(SnapError::Invalid("encoder PMT entry count"));
        }
        self.entries.clear();
        for _ in 0..n {
            let value = r.u32()?;
            let mask = r.u32()?;
            let dtype = match r.u8()? {
                0 => DataType::Int,
                1 => DataType::F32,
                _ => return Err(SnapError::Invalid("encoder PMT entry dtype")),
            };
            let freq = r.u32()?;
            let dests = r.usize()?;
            if dests != self.num_nodes {
                return Err(SnapError::Invalid("encoder PMT dest width"));
            }
            let mut per_dest = Vec::with_capacity(dests);
            for _ in 0..dests {
                per_dest.push(if r.bool()? {
                    let index = r.u8()?;
                    let original = r.u32()?;
                    Some(DestRecord { index, original })
                } else {
                    None
                });
            }
            self.entries.push(EncoderEntry {
                key: ApproxPattern::new(value, mask),
                dtype,
                freq,
                per_dest,
            });
        }
        Ok(())
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the PMT is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Applies an install/invalidate notification from `from`'s decoder.
    pub fn apply(&mut self, from: NodeId, note: Notification) {
        match note {
            Notification::Install {
                pattern,
                index,
                dtype,
            } => self.install(from, pattern, index, dtype),
            Notification::Invalidate { pattern } => self.invalidate(from, pattern),
        }
    }

    fn install(&mut self, from: NodeId, pattern: u32, index: u8, dtype: DataType) {
        let key = match &self.apcl {
            Some(apcl) => {
                let p = apcl.approx_pattern(pattern, dtype);
                ApproxPattern::new(p.value(), p.mask() & low_mask(MAX_TCAM_TERNARY_BITS))
            }
            None => ApproxPattern::exact(pattern),
        };
        let record = DestRecord {
            index,
            original: pattern,
        };
        if let Some(entry) = self.entries.iter_mut().find(|e| e.key == key) {
            entry.per_dest[from.index()] = Some(record);
            entry.freq = entry.freq.saturating_add(1);
            return;
        }
        if self.entries.len() == self.capacity {
            // Evict the LFU entry; its per-destination indices simply stop
            // being used (the decoders keep their own state). A zero-capacity
            // PMT (no victim in a "full" empty table) stores nothing.
            let Some(victim) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.freq)
                .map(|(i, _)| i)
            else {
                return;
            };
            self.entries.swap_remove(victim);
        }
        let mut per_dest = vec![None; self.num_nodes];
        per_dest[from.index()] = Some(record);
        self.entries.push(EncoderEntry {
            key,
            dtype,
            freq: 1,
            per_dest,
        });
    }

    fn invalidate(&mut self, from: NodeId, pattern: u32) {
        for entry in &mut self.entries {
            if let Some(rec) = entry.per_dest[from.index()] {
                if rec.original == pattern {
                    entry.per_dest[from.index()] = None;
                }
            }
        }
        self.entries
            .retain(|e| e.per_dest.iter().any(Option::is_some));
    }

    /// Exact lookup: an entry whose **original** pattern for `dest` equals
    /// `word`. This is the only path non-approximable data may use (§4.2.1).
    pub fn lookup_exact(&mut self, word: u32, dest: NodeId) -> Option<DestRecord> {
        let hit = self
            .entries
            .iter_mut()
            .find(|e| matches!(e.per_dest[dest.index()], Some(r) if r.original == word));
        if let Some(entry) = hit {
            entry.freq = entry.freq.saturating_add(1);
            entry.per_dest[dest.index()]
        } else {
            None
        }
    }

    /// Ternary (TCAM) lookup for approximable data: an entry whose approximate
    /// pattern matches `word` and that has a record for `dest`.
    ///
    /// When `strict` is set the hit is additionally confirmed against
    /// `word`'s *own* error tolerance (the recovered original must lie within
    /// the threshold of the precise word), so the data-error guarantee holds
    /// exactly; without it the raw TCAM semantics of the paper apply.
    pub fn lookup_approx(
        &mut self,
        word: u32,
        dest: NodeId,
        dtype: DataType,
        strict: bool,
    ) -> Option<DestRecord> {
        let apcl = self.apcl.as_ref()?;
        let confirm = |rec: &DestRecord| !strict || apcl.accepts(word, rec.original, dtype);
        let hit = self.entries.iter_mut().find(|e| {
            e.key.matches(word) && matches!(&e.per_dest[dest.index()], Some(r) if confirm(r))
        });
        if let Some(entry) = hit {
            entry.freq = entry.freq.saturating_add(1);
            entry.per_dest[dest.index()]
        } else {
            None
        }
    }

    /// Ages all frequency counters.
    pub fn decay(&mut self) {
        for e in &mut self.entries {
            e.freq /= 2;
        }
    }

    /// Fault-injection hook: flips one bit of one stored original pattern,
    /// all chosen by `entropy`. The corrupted record keeps encoding against
    /// the wrong original — the realistic silent-data-corruption mode of a
    /// soft error in the PMT storage array. Returns whether a record was hit
    /// (the addressed per-destination slot may be empty).
    pub fn corrupt(&mut self, entropy: u64) -> bool {
        if self.entries.is_empty() || self.num_nodes == 0 {
            return false;
        }
        let entry = (entropy as usize) % self.entries.len();
        let dest = ((entropy >> 16) as usize) % self.num_nodes;
        let bit = ((entropy >> 40) % u32::BITS as u64) as u32;
        if let Some(rec) = &mut self.entries[entry].per_dest[dest] {
            rec.original ^= 1 << bit;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anoc_core::threshold::ErrorThreshold;

    const N: usize = 4;

    fn dec() -> DecoderPmt {
        DecoderPmt::new(DEFAULT_PMT_ENTRIES, N)
    }

    #[test]
    fn decoder_learns_after_promote_threshold() {
        let mut d = dec();
        let src = NodeId(1);
        assert!(d.observe_raw(0xAB, src, DataType::Int).is_empty());
        let notes = d.observe_raw(0xAB, src, DataType::Int);
        assert_eq!(notes.len(), 1);
        match notes[0] {
            (to, Notification::Install { pattern, index, .. }) => {
                assert_eq!(to, src);
                assert_eq!(pattern, 0xAB);
                assert_eq!(d.pattern_at(index), Some(0xAB));
            }
            ref other => panic!("expected install, got {other:?}"),
        }
    }

    #[test]
    fn decoder_announces_to_each_new_sender() {
        let mut d = dec();
        d.observe_raw(7, NodeId(0), DataType::Int);
        d.observe_raw(7, NodeId(0), DataType::Int); // promoted, announced to 0
        let notes = d.observe_raw(7, NodeId(2), DataType::Int);
        assert_eq!(notes.len(), 1);
        assert_eq!(notes[0].0, NodeId(2));
        // Sender 0 is not re-announced.
        assert!(d.observe_raw(7, NodeId(0), DataType::Int).is_empty());
    }

    #[test]
    fn decoder_eviction_invalidates_all_holders() {
        let mut d = DecoderPmt::new(2, N);
        // Fill both slots, pattern 1 known to nodes 0 and 1.
        for s in [NodeId(0), NodeId(0), NodeId(1)] {
            d.observe_raw(1, s, DataType::Int);
        }
        for _ in 0..2 {
            d.observe_raw(2, NodeId(0), DataType::Int);
        }
        // Give pattern 2 more hits so pattern 1 is the LFU victim... they
        // both sit at freq 2+; bump pattern 2.
        d.observe_raw(2, NodeId(0), DataType::Int);
        d.decay(); // 1: freq 3/2=1, 2: freq 3/2=1 — decay keeps relative order
        for _ in 0..3 {
            d.observe_raw(2, NodeId(0), DataType::Int);
        }
        // Promote a third pattern; victim must be pattern 1.
        let mut notes = Vec::new();
        for _ in 0..2 {
            notes.extend(d.observe_raw(3, NodeId(3), DataType::Int));
        }
        let invalidations: Vec<_> = notes
            .iter()
            .filter(|(_, n)| matches!(n, Notification::Invalidate { pattern: 1 }))
            .map(|(to, _)| *to)
            .collect();
        assert_eq!(invalidations, vec![NodeId(0), NodeId(1)]);
        assert!(notes.iter().any(
            |(to, n)| *to == NodeId(3) && matches!(n, Notification::Install { pattern: 3, .. })
        ));
    }

    #[test]
    fn decoder_race_counting() {
        let mut d = dec();
        for _ in 0..2 {
            d.observe_raw(0xCAFE, NodeId(0), DataType::Int);
        }
        d.record_hit(0, 0xCAFE);
        assert_eq!(d.races(), 0);
        d.record_hit(0, 0xBEEF);
        assert_eq!(d.races(), 1);
        d.record_hit(7, 0xCAFE); // empty slot
        assert_eq!(d.races(), 2);
    }

    #[test]
    fn index_bits() {
        assert_eq!(DecoderPmt::new(8, N).index_bits(), 3);
        assert_eq!(DecoderPmt::new(16, N).index_bits(), 4);
        assert_eq!(DecoderPmt::new(2, N).index_bits(), 1);
    }

    #[test]
    fn encoder_di_comp_exact_lookup() {
        let mut e = EncoderPmt::di_comp(8, N);
        assert!(e.is_empty());
        e.apply(
            NodeId(2),
            Notification::Install {
                pattern: 0xFACE,
                index: 5,
                dtype: DataType::Int,
            },
        );
        let rec = e.lookup_exact(0xFACE, NodeId(2)).unwrap();
        assert_eq!(rec.index, 5);
        assert_eq!(rec.original, 0xFACE);
        // Not announced for another destination.
        assert!(e.lookup_exact(0xFACE, NodeId(3)).is_none());
        // Approximate lookup is unavailable on a binary CAM.
        assert!(e
            .lookup_approx(0xFACE, NodeId(2), DataType::Int, true)
            .is_none());
    }

    #[test]
    fn encoder_invalidate_clears_dest() {
        let mut e = EncoderPmt::di_comp(8, N);
        e.apply(
            NodeId(1),
            Notification::Install {
                pattern: 42,
                index: 0,
                dtype: DataType::Int,
            },
        );
        e.apply(
            NodeId(2),
            Notification::Install {
                pattern: 42,
                index: 3,
                dtype: DataType::Int,
            },
        );
        e.apply(NodeId(1), Notification::Invalidate { pattern: 42 });
        assert!(e.lookup_exact(42, NodeId(1)).is_none());
        assert_eq!(e.lookup_exact(42, NodeId(2)).unwrap().index, 3);
        e.apply(NodeId(2), Notification::Invalidate { pattern: 42 });
        assert!(e.is_empty());
    }

    #[test]
    fn encoder_capacity_evicts_lfu() {
        let mut e = EncoderPmt::di_comp(2, N);
        for (p, i) in [(1u32, 0u8), (2, 1)] {
            e.apply(
                NodeId(0),
                Notification::Install {
                    pattern: p,
                    index: i,
                    dtype: DataType::Int,
                },
            );
        }
        // Heat up pattern 2.
        e.lookup_exact(2, NodeId(0));
        e.lookup_exact(2, NodeId(0));
        e.apply(
            NodeId(0),
            Notification::Install {
                pattern: 3,
                index: 0,
                dtype: DataType::Int,
            },
        );
        assert_eq!(e.len(), 2);
        assert!(e.lookup_exact(1, NodeId(0)).is_none(), "LFU evicted");
        assert!(e.lookup_exact(2, NodeId(0)).is_some());
        assert!(e.lookup_exact(3, NodeId(0)).is_some());
    }

    #[test]
    fn di_vaxx_tcam_match_and_strict_confirm() {
        let apcl = Avcl::new(ErrorThreshold::from_percent(25).unwrap());
        let mut e = EncoderPmt::di_vaxx(8, N, apcl);
        assert!(e.is_ternary());
        // Reference pattern 1000 at 25%: range 250, 7 don't-care bits.
        e.apply(
            NodeId(1),
            Notification::Install {
                pattern: 1000,
                index: 2,
                dtype: DataType::Int,
            },
        );
        // 1005 matches the ternary key and confirms strictly.
        let rec = e
            .lookup_approx(1005, NodeId(1), DataType::Int, true)
            .unwrap();
        assert_eq!(rec.original, 1000);
        // A word whose own tolerance cannot absorb the recovered original
        // fails the strict confirm even if the TCAM fires: 4 (tolerance 1)
        // would decode to 1000 — but 4 doesn't TCAM-match anyway. Construct
        // a sharper case: word 960 matches key (1000 & !0x7F = 0x3C0 ==
        // 960 & !0x7F)? 960 = 0x3C0, base(1000)=0x3C0 -> TCAM fires. 960's
        // own tolerance at 25% is 240 >= |1000-960| = 40, so it confirms.
        assert!(e
            .lookup_approx(960, NodeId(1), DataType::Int, true)
            .is_some());
        // Exact path finds the original.
        assert_eq!(e.lookup_exact(1000, NodeId(1)).unwrap().index, 2);
        // ...but not a merely-close word.
        assert!(e.lookup_exact(1001, NodeId(1)).is_none());
    }

    #[test]
    fn di_vaxx_strict_rejects_out_of_tolerance() {
        // 100% threshold on the stored pattern makes a huge TCAM mask; a
        // small word can then TCAM-match a big original that its own
        // (smaller) tolerance cannot accept.
        let apcl = Avcl::new(ErrorThreshold::from_percent(100).unwrap());
        let mut e = EncoderPmt::di_vaxx(8, N, apcl);
        e.apply(
            NodeId(0),
            Notification::Install {
                pattern: 200,
                index: 0,
                dtype: DataType::Int,
            },
        );
        // 200 at 100%: range 200, k = 7 -> key base = 200 & !0x7F = 128.
        // Word 130: TCAM matches (130 & !0x7F = 128). 130's own tolerance
        // is 130 >= |200-130| = 70 -> actually accepted. Try word 129:
        // tolerance 129 >= 71 -> accepted too. With 100% everything close
        // passes; use a 10% APCL-mask mismatch instead via relaxed=false:
        let strict_hit = e.lookup_approx(130, NodeId(0), DataType::Int, true);
        assert!(strict_hit.is_some());
        // Now a genuinely failing confirm: install with 100% (wide key) but
        // confirm against a word whose own 100% tolerance still misses?
        // |200 - w| <= w requires w >= 100: word 100..: passes. w < 100
        // cannot TCAM-match since base(w)=... w=64: 64 & !0x7F = 0 != 128.
        // The geometry guarantees strictness is rarely needed at equal
        // thresholds — which is exactly the paper's argument. Document by
        // asserting the non-strict path agrees here.
        assert_eq!(
            e.lookup_approx(130, NodeId(0), DataType::Int, false),
            strict_hit
        );
    }

    #[test]
    fn tcam_entry_width_is_capped() {
        // A huge pattern at 50% would want ~30 don't-care bits; the stored
        // row must be clipped to MAX_TCAM_TERNARY_BITS.
        let apcl = Avcl::new(ErrorThreshold::from_percent(50).unwrap());
        let mut e = EncoderPmt::di_vaxx(8, N, apcl);
        let pattern = 0x4000_0000u32;
        e.apply(
            NodeId(0),
            Notification::Install {
                pattern,
                index: 0,
                dtype: DataType::Int,
            },
        );
        // Inside the capped halfword: matches.
        assert!(e
            .lookup_approx(pattern | 0xFFFF, NodeId(0), DataType::Int, false)
            .is_some());
        // Outside the cap (bit 16 differs) the uncapped mask would have
        // matched; the bounded row must not.
        assert!(e
            .lookup_approx(pattern | 0x1_0000, NodeId(0), DataType::Int, false)
            .is_none());
    }

    #[test]
    fn decoder_candidate_table_bounded() {
        let mut d = dec();
        for w in 0..100u32 {
            d.observe_raw(w, NodeId(0), DataType::Int);
        }
        // No pattern repeated, so nothing promoted.
        for i in 0..8 {
            assert!(d.pattern_at(i).is_none());
        }
    }

    #[test]
    fn decay_halves_frequencies() {
        let mut d = dec();
        for _ in 0..4 {
            d.observe_raw(9, NodeId(0), DataType::Int);
        }
        d.decay();
        // Still present after decay.
        assert!(d.pattern_at(0) == Some(9));
        let mut e = EncoderPmt::di_comp(4, N);
        e.apply(
            NodeId(0),
            Notification::Install {
                pattern: 9,
                index: 0,
                dtype: DataType::Int,
            },
        );
        e.decay();
        assert_eq!(e.len(), 1);
    }
}
