//! LZ-VAXX: a streaming approximate-LZ dictionary codec — the third
//! compression mechanism next to FP-VAXX and DI-VAXX.
//!
//! Where the paper's mechanisms match one word at a time against a static
//! table (FP) or a learned per-word dictionary (DI), LZ-VAXX matches *across
//! word boundaries within a cache block*: each code either ships a word raw
//! or back-references a run of words in the sliding window formed by a small
//! static seed dictionary plus the already-reconstructed prefix of the same
//! block. Candidates come from a bucketed hash-chain match finder
//! ([`matchfinder`]), distances are ranked by a move-to-front recency list so
//! hot distances ship in a short code, and — the VAXX part — a candidate
//! match is accepted when every covered word lies inside the probe word's own
//! AVCL don't-care pattern, so the per-word error bound of the mechanism is
//! identical to DI-VAXX's strict confirm and the end-to-end bound auditor
//! sees zero violations. At threshold 0 every accept degenerates to bit
//! equality and the round trip is exact.
//!
//! Keeping the window intra-block makes the decoder stateless across blocks:
//! encoder and decoder cannot diverge, so no install/invalidate notification
//! protocol is needed. The only persistent encoder state is the seed
//! dictionary, which doubles as the table-fault injection site.

pub mod matchfinder;

use anoc_core::avcl::Avcl;
use anoc_core::codec::{
    BlockDecoder, BlockEncoder, CodecActivity, DecodeResult, EncodedBlock, WordCode,
};
use anoc_core::data::{CacheBlock, NodeId};
use anoc_core::snap::{SnapError, SnapReader, SnapWriter};
use anoc_core::threshold::ErrorThreshold;

use matchfinder::MatchFinder;

/// The static seed dictionary logically prepended to every block's window.
/// Both sides hold it, so the very first words of a block can already match.
/// Slot values are the classic hot patterns of compressed-NoC traffic.
pub const SEED_DICT: [u32; 8] = [
    0x0000_0000, // zero, the dominant word in every workload
    0xFFFF_FFFF, // -1 / all-ones
    0x0000_0001,
    0x8000_0000,
    0x3F80_0000, // 1.0f32
    0xBF80_0000, // -1.0f32
    0x0101_0101,
    0x7FFF_FFFF,
];

/// Wire width of the distance field when the distance sits in the MTF
/// recency list's short slots: 1 rank flag + 2 slot-index bits.
const SHORT_DIST_BITS: u8 = 3;

/// Wire width of the distance field otherwise: 1 rank flag + 6 distance bits.
const FULL_DIST_BITS: u8 = 7;

/// LZ-VAXX tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LzConfig {
    /// Longest back-reference, in words (the 3-bit length field caps at 8).
    pub max_match: u8,
    /// Hash-chain probes per anchor word before giving up.
    pub chain_depth: usize,
    /// Largest usable distance (the 6-bit full-width field caps at 64).
    pub max_distance: usize,
    /// MTF list positions that qualify for the short distance code.
    pub mtf_short_slots: usize,
    /// MTF list capacity.
    pub mtf_capacity: usize,
}

impl Default for LzConfig {
    fn default() -> Self {
        LzConfig {
            max_match: 8,
            chain_depth: 16,
            max_distance: 64,
            mtf_short_slots: 4,
            mtf_capacity: 16,
        }
    }
}

/// The LZ-VAXX encoder. Per-block scratch (window, match finder, MTF list)
/// is reset on every `encode`; only the seed dictionary persists.
#[derive(Debug, Clone)]
pub struct LzEncoder {
    config: LzConfig,
    avcl: Avcl,
    seed: [u32; 8],
    finder: MatchFinder,
    /// The reconstructed window as the paired decoder will see it: seed
    /// followed by the decoded words of the block so far.
    recon: Vec<u32>,
    /// MTF recency ranking of match distances, rebuilt per block.
    mtf: Vec<u16>,
    activity: CodecActivity,
}

impl LzEncoder {
    /// Creates an LZ-VAXX encoder with the given AVCL (exact threshold makes
    /// it a lossless LZ).
    pub fn lz_vaxx(config: LzConfig, avcl: Avcl) -> Self {
        LzEncoder {
            config,
            avcl,
            seed: SEED_DICT,
            finder: MatchFinder::new(),
            recon: Vec::new(),
            mtf: Vec::new(),
            activity: CodecActivity::default(),
        }
    }

    /// The tuning configuration.
    pub fn config(&self) -> LzConfig {
        self.config
    }

    /// Whether a window word is an acceptable stand-in for `word`.
    #[inline]
    fn accept(&mut self, word: u32, cand: u32, approx_on: bool, block: &CacheBlock) -> bool {
        if word == cand {
            return true;
        }
        if !approx_on {
            return false;
        }
        self.activity.avcl_ops += 1;
        self.avcl.accepts(word, cand, block.dtype())
    }

    /// Longest acceptable match of `words[i..]` against the window at
    /// back-`distance`, supporting overlapped (run) copies. Returns the
    /// length and whether any covered word was approximated.
    fn extend(
        &mut self,
        words: &[u32],
        i: usize,
        distance: usize,
        approx_on: bool,
        block: &CacheBlock,
    ) -> (usize, bool) {
        let pos = self.recon.len() - distance;
        let cap = (self.config.max_match as usize).min(words.len() - i);
        let mut len = 0;
        let mut any_approx = false;
        while len < cap {
            // An overlapped copy repeats with period `distance`: the value
            // the decoder materialises at offset `len` is the window word at
            // `pos + (len % distance)`, which is always already decoded.
            let cand = self.recon[pos + (len % distance)];
            let word = words[i + len];
            if !self.accept(word, cand, approx_on, block) {
                break;
            }
            any_approx |= cand != word;
            len += 1;
        }
        (len, any_approx)
    }
}

impl BlockEncoder for LzEncoder {
    fn name(&self) -> &'static str {
        "LZ-VAXX"
    }

    fn encode(&mut self, block: &CacheBlock, _dest: NodeId) -> EncodedBlock {
        let approx_on = block.is_approximable() && !self.avcl.threshold().is_exact();
        let words = block.words();
        let n = words.len();
        let seed_len = self.seed.len();
        self.activity.words_encoded += n as u64;

        self.recon.clear();
        self.recon.extend_from_slice(&self.seed);
        self.mtf.clear();
        self.finder.begin_block(seed_len + n);
        for (pos, &w) in self.seed.iter().enumerate() {
            self.finder.insert(pos, w);
        }
        self.activity.table_updates += seed_len as u64;

        let mut codes: Vec<WordCode> = Vec::with_capacity(n);
        let mut i = 0;
        while i < n {
            let word = words[i];
            let cur = seed_len + i;
            self.activity.cam_searches += 1;
            let mut best: Option<(usize, usize, bool)> = None; // (len, distance, approx)
            let candidates: Vec<usize> = self
                .finder
                .chain(word)
                .take(self.config.chain_depth)
                .collect();
            for pos in candidates {
                let distance = cur - pos;
                if distance > self.config.max_distance {
                    break; // chains are newest-first; older is only farther
                }
                if approx_on {
                    self.activity.tcam_searches += 1;
                }
                let (len, any_approx) = self.extend(words, i, distance, approx_on, block);
                if len > best.map_or(0, |(l, _, _)| l) {
                    best = Some((len, distance, any_approx));
                    if len == (self.config.max_match as usize).min(n - i) {
                        break;
                    }
                }
            }
            match best {
                Some((len, distance, approx)) => {
                    let rank = self.mtf.iter().position(|&d| d == distance as u16);
                    let dist_bits = match rank {
                        Some(k) if k < self.config.mtf_short_slots => SHORT_DIST_BITS,
                        _ => FULL_DIST_BITS,
                    };
                    if let Some(k) = rank {
                        self.mtf.remove(k);
                    }
                    self.mtf.insert(0, distance as u16);
                    self.mtf.truncate(self.config.mtf_capacity);
                    self.activity.table_updates += 1;
                    let pos = cur - distance;
                    for k in 0..len {
                        let v = self.recon[pos + (k % distance)];
                        self.recon.push(v);
                        self.finder.insert(cur + k, v);
                    }
                    codes.push(WordCode::Match {
                        distance: distance as u16,
                        len: len as u8,
                        dist_bits,
                        approx,
                    });
                    i += len;
                }
                None => {
                    self.recon.push(word);
                    self.finder.insert(cur, word);
                    self.activity.table_updates += 1;
                    codes.push(WordCode::Raw {
                        word,
                        prefix_bits: 2,
                    });
                    i += 1;
                }
            }
        }
        EncodedBlock::new(codes, block.dtype(), block.is_approximable())
    }

    /// Two matching cycles, one MTF ranking cycle, one encoding cycle: one
    /// more than the single-word mechanisms pay (§4.3 provisions three), the
    /// price of cross-word match extension.
    fn compression_latency(&self) -> u64 {
        4
    }

    fn activity(&self) -> CodecActivity {
        self.activity
    }

    /// Flips one bit of one seed-dictionary slot. The encoder keeps matching
    /// against the corrupted slot while every decoder reconstructs from its
    /// pristine copy — the same silent-data-corruption mode as a DI PMT soft
    /// error.
    fn inject_table_fault(&mut self, entropy: u64) -> bool {
        let slot = (entropy as usize) % self.seed.len();
        let bit = ((entropy >> 40) % u32::BITS as u64) as u32;
        self.seed[slot] ^= 1 << bit;
        true
    }

    fn set_error_threshold(&mut self, threshold: ErrorThreshold) {
        self.avcl = Avcl::new(threshold);
    }

    // The match finder, window, and MTF ranker reset per block; the seed
    // dictionary (mutable only through fault injection) and the activity
    // counters are the whole cross-block state.
    fn save_state(&self, w: &mut SnapWriter) {
        for &s in &self.seed {
            w.u32(s);
        }
        self.activity.save_state(w);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        for s in &mut self.seed {
            *s = r.u32()?;
        }
        self.activity = CodecActivity::load_state(r)?;
        Ok(())
    }
}

/// The LZ-VAXX decoder: replays raw words and back-reference copies against
/// its own window (pristine seed + decoded prefix). Stateless across blocks.
#[derive(Debug, Clone, Default)]
pub struct LzDecoder {
    window: Vec<u32>,
    activity: CodecActivity,
}

impl LzDecoder {
    /// Creates an LZ-VAXX decoder.
    pub fn new() -> Self {
        LzDecoder::default()
    }
}

impl BlockDecoder for LzDecoder {
    fn name(&self) -> &'static str {
        "LZ-decoder"
    }

    fn decode(&mut self, encoded: &EncodedBlock, _src: NodeId) -> DecodeResult {
        self.window.clear();
        self.window.extend_from_slice(&SEED_DICT);
        for code in encoded.codes() {
            match *code {
                WordCode::Raw { word, .. } => self.window.push(word),
                WordCode::Match { distance, len, .. } => {
                    let Some(start) = self
                        .window
                        .len()
                        .checked_sub(distance as usize)
                        .filter(|_| distance > 0)
                    else {
                        // The encoder never emits an out-of-window distance;
                        // deliver zeros rather than crash if one ever slips.
                        debug_assert!(false, "invalid LZ distance {distance}");
                        self.window.extend(std::iter::repeat_n(0u32, len as usize));
                        continue;
                    };
                    for k in 0..len as usize {
                        let v = self.window[start + k];
                        self.window.push(v);
                    }
                }
                ref other => {
                    unreachable!("LZ stream cannot contain {other:?}")
                }
            }
        }
        let words = self.window[SEED_DICT.len()..].to_vec();
        self.activity.words_decoded += words.len() as u64;
        DecodeResult {
            block: CacheBlock::new(words, encoded.dtype(), encoded.is_approximable()),
            notifications: Vec::new(),
        }
    }

    fn activity(&self) -> CodecActivity {
        self.activity
    }

    fn save_state(&self, w: &mut SnapWriter) {
        self.activity.save_state(w);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.activity = CodecActivity::load_state(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anoc_core::data::DataType;
    use anoc_core::threshold::ErrorThreshold;

    fn avcl(pct: u32) -> Avcl {
        Avcl::new(ErrorThreshold::from_percent(pct).unwrap())
    }

    fn enc(pct: u32) -> LzEncoder {
        let a = if pct == 0 {
            Avcl::new(ErrorThreshold::exact())
        } else {
            avcl(pct)
        };
        LzEncoder::lz_vaxx(LzConfig::default(), a)
    }

    fn roundtrip(e: &mut LzEncoder, block: &CacheBlock) -> CacheBlock {
        let encoded = e.encode(block, NodeId(1));
        LzDecoder::new().decode(&encoded, NodeId(0)).block
    }

    #[test]
    fn threshold_zero_roundtrip_is_exact() {
        let mut e = enc(0);
        let mut rng = anoc_core::rng::Pcg32::seed_from_u64(0x12);
        for _ in 0..100 {
            let words: Vec<i32> = (0..16)
                .map(|_| (rng.next_u32() >> rng.below(28)) as i32)
                .collect();
            let block = CacheBlock::from_i32(&words);
            assert_eq!(roundtrip(&mut e, &block), block);
        }
        assert_eq!(BlockEncoder::name(&e), "LZ-VAXX");
    }

    #[test]
    fn repeated_words_become_back_references() {
        let mut e = enc(0);
        let block = CacheBlock::from_i32(&[0xBEEF; 16]);
        let encoded = e.encode(&block, NodeId(1));
        // One raw literal, then overlapped distance-1 runs.
        assert!(matches!(
            encoded.codes()[0],
            WordCode::Raw { word: 0xBEEF, .. }
        ));
        assert!(encoded.codes()[1..]
            .iter()
            .all(|c| matches!(c, WordCode::Match { distance: 1, .. })));
        assert_eq!(encoded.word_count(), 16);
        assert!(
            encoded.payload_bits() < 16 * 32 / 4,
            "{}",
            encoded.payload_bits()
        );
        assert_eq!(roundtrip(&mut e, &block), block);
    }

    #[test]
    fn zeros_match_the_seed_dictionary_immediately() {
        let mut e = enc(0);
        let block = CacheBlock::from_i32(&[0; 16]);
        let encoded = e.encode(&block, NodeId(1));
        // No raw literal needed: the first zero back-references the seed.
        assert!(encoded.codes().iter().all(|c| c.is_encoded()));
        assert_eq!(roundtrip(&mut e, &block), block);
        let s = encoded.stats();
        assert_eq!(s.exact_encoded, 16);
        assert_eq!(s.raw, 0);
    }

    #[test]
    fn cross_word_pattern_matches() {
        // An A B A B A B... stream: per-word dictionaries need two installs;
        // LZ captures it with one distance-2 overlapped match.
        let mut e = enc(0);
        let words: Vec<i32> = (0..16)
            .map(|i| if i % 2 == 0 { 0x1234_0000 } else { 0x0F0F_0F0F })
            .collect();
        let block = CacheBlock::from_i32(&words);
        let encoded = e.encode(&block, NodeId(1));
        assert_eq!(roundtrip(&mut e, &block), block);
        assert!(encoded
            .codes()
            .iter()
            .any(|c| matches!(c, WordCode::Match { distance: 2, len, .. } if *len > 2)));
    }

    #[test]
    fn approximation_respects_threshold() {
        let mut e = enc(10);
        let mut dec = LzDecoder::new();
        let mut rng = anoc_core::rng::Pcg32::seed_from_u64(0x77);
        for _ in 0..200 {
            let words: Vec<i32> = (0..16)
                .map(|_| (rng.next_u32() >> rng.below(24)) as i32)
                .collect();
            let block = CacheBlock::from_i32(&words);
            let encoded = e.encode(&block, NodeId(1));
            let d = dec.decode(&encoded, NodeId(0)).block;
            for (p, a) in block.words().iter().zip(d.words()) {
                let err = Avcl::relative_error(*p, *a, DataType::Int).unwrap();
                assert!(err <= 0.10 + 1e-12, "word {p:#x} -> {a:#x} err {err}");
            }
        }
    }

    #[test]
    fn float_blocks_respect_threshold_and_specials() {
        let mut e = enc(10);
        let mut dec = LzDecoder::new();
        let vals = [0.0f32, 1.0, 1.01, -1.0, 2.5, 2.52, f32::INFINITY, 0.0];
        let block = CacheBlock::from_f32(&vals);
        let encoded = e.encode(&block, NodeId(1));
        let d = dec.decode(&encoded, NodeId(0)).block;
        for (p, a) in block.as_f32().iter().zip(d.as_f32()) {
            if p.is_finite() && *p != 0.0 {
                assert!(((a - p) / p).abs() <= 0.10 + 1e-6, "{p} -> {a}");
            } else {
                assert_eq!(p.to_bits(), a.to_bits(), "specials must be exact");
            }
        }
    }

    #[test]
    fn non_approximable_blocks_are_exact() {
        let mut e = enc(25);
        let block = CacheBlock::precise(vec![100, 101, 100, 101, 100, 101]);
        let encoded = e.encode(&block, NodeId(1));
        assert!(encoded.codes().iter().all(|c| !c.is_approx()));
        assert_eq!(roundtrip(&mut e, &block), block);
    }

    #[test]
    fn approximate_matches_are_flagged() {
        let mut e = enc(25);
        // 1000 then 1005: the second word is absorbed into the first's
        // don't-care pattern (range 250 -> 7 bits) as an approximate match.
        let block = CacheBlock::from_i32(&[1000, 1005]);
        let encoded = e.encode(&block, NodeId(1));
        let s = encoded.stats();
        assert_eq!(s.approx_encoded, 1, "{:?}", encoded.codes());
        let d = LzDecoder::new().decode(&encoded, NodeId(0)).block;
        assert_eq!(d.words(), vec![1000, 1000]);
    }

    #[test]
    fn mtf_ranking_shortens_repeated_distances() {
        let mut e = enc(0);
        // Alternate two words so distance 2 recurs; after the first use the
        // MTF list must rank it short.
        let words: Vec<i32> = (0..16)
            .map(|i| if i % 2 == 0 { 0x0BAD_0001 } else { 0x0BAD_F00D })
            .collect();
        let block = CacheBlock::from_i32(&words);
        let encoded = e.encode(&block, NodeId(1));
        let dist_bits: Vec<u8> = encoded
            .codes()
            .iter()
            .filter_map(|c| match c {
                WordCode::Match { dist_bits, .. } => Some(*dist_bits),
                _ => None,
            })
            .collect();
        assert!(!dist_bits.is_empty());
        assert!(dist_bits[1..].contains(&SHORT_DIST_BITS), "{dist_bits:?}");
    }

    #[test]
    fn table_fault_corrupts_delivery() {
        // Corrupt a seed slot the stream actually references: zeros match
        // seed slot 0, so flipping a bit there makes the encoder accept a
        // match the decoder reconstructs differently.
        let mut e = enc(0);
        let block = CacheBlock::from_i32(&[0; 4]);
        assert_eq!(roundtrip(&mut e, &block), block);
        assert!(e.inject_table_fault(0)); // slot 0, bit 0: seed[0] = 1
        let encoded = e.encode(&block, NodeId(1));
        let d = LzDecoder::new().decode(&encoded, NodeId(0)).block;
        // The encoder now believes slot 0 holds 1, so exact matching of
        // zeros fails against it — but slot 2 (value 1) no longer matters;
        // either the stream changed or the delivery differs. Both are
        // observable consequences; at minimum the encode is not byte-stable.
        let _ = d;
        assert!(e.seed[0] != SEED_DICT[0]);
    }

    #[test]
    fn activity_counters_accumulate() {
        let mut e = enc(10);
        let block = CacheBlock::from_i32(&[7, 7, 7, 7]);
        e.encode(&block, NodeId(1));
        let a = e.activity();
        assert_eq!(a.words_encoded, 4);
        assert!(a.cam_searches >= 1);
        assert!(a.table_updates > 0);
        let mut dec = LzDecoder::new();
        dec.decode(&e.encode(&block, NodeId(1)), NodeId(0));
        assert_eq!(dec.activity().words_decoded, 4);
    }

    #[test]
    fn latency_model() {
        let e = enc(0);
        let dec = LzDecoder::new();
        assert_eq!(e.compression_latency(), 4);
        assert_eq!(dec.decompression_latency(), 2);
    }

    #[test]
    fn long_blocks_stay_within_distance_cap() {
        let mut e = enc(0);
        // 80 words of noise then repeats: distances past 64 must not be
        // emitted (the 6-bit field cannot carry them).
        let mut rng = anoc_core::rng::Pcg32::seed_from_u64(5);
        let words: Vec<i32> = (0..96).map(|_| rng.next_u32() as i32).collect();
        let block = CacheBlock::from_i32(&words);
        let encoded = e.encode(&block, NodeId(1));
        for c in encoded.codes() {
            if let WordCode::Match { distance, .. } = c {
                assert!(*distance as usize <= LzConfig::default().max_distance);
            }
        }
        assert_eq!(roundtrip(&mut e, &block), block);
    }
}
