//! Adaptive compression: turn the encoder off when it stops paying.
//!
//! Jin et al. (MICRO'08) — the paper's DI-COMP source — propose "a data
//! compression mechanism that learns frequent data patterns ... and
//! adaptively turns the compression on/off based on the efficacy of
//! compression on the network performance". [`AdaptiveEncoder`] wraps any
//! [`BlockEncoder`] with that controller: while ON it tracks the achieved
//! compression ratio over a window of blocks and switches OFF when the
//! ratio drops below the profitability threshold (tag overhead plus codec
//! latency would then hurt); while OFF it bypasses compression — zero added
//! latency — and periodically probes a block through the encoder to detect
//! when compression becomes worthwhile again.

use anoc_core::codec::{BlockEncoder, CodecActivity, EncodedBlock, Notification, WordCode};
use anoc_core::data::{CacheBlock, NodeId};

/// Controller parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Blocks per evaluation window while ON.
    pub window_blocks: u32,
    /// Minimum compression ratio that keeps the encoder ON (must cover the
    /// tag overhead and the 3-cycle latency; Jin et al. use a small margin
    /// over 1.0).
    pub min_ratio: f64,
    /// While OFF, probe one block through the encoder every this many
    /// blocks.
    pub probe_interval: u32,
    /// Consecutive profitable probes required to switch back ON.
    pub probes_to_reenable: u32,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            window_blocks: 64,
            min_ratio: 1.10,
            probe_interval: 16,
            probes_to_reenable: 2,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    On,
    Off,
}

/// A [`BlockEncoder`] wrapper implementing the adaptive on/off controller.
pub struct AdaptiveEncoder<E> {
    inner: E,
    config: AdaptiveConfig,
    mode: Mode,
    window_in_bits: u64,
    window_out_bits: u64,
    window_count: u32,
    off_count: u32,
    good_probes: u32,
    /// Mode transitions observed (for tests/telemetry).
    transitions: u64,
}

impl<E: BlockEncoder> AdaptiveEncoder<E> {
    /// Wraps `inner` with the default controller parameters.
    pub fn new(inner: E) -> Self {
        AdaptiveEncoder::with_config(inner, AdaptiveConfig::default())
    }

    /// Wraps `inner` with explicit parameters.
    pub fn with_config(inner: E, config: AdaptiveConfig) -> Self {
        AdaptiveEncoder {
            inner,
            config,
            mode: Mode::On,
            window_in_bits: 0,
            window_out_bits: 0,
            window_count: 0,
            off_count: 0,
            good_probes: 0,
            transitions: 0,
        }
    }

    /// Whether compression is currently enabled.
    pub fn is_on(&self) -> bool {
        self.mode == Mode::On
    }

    /// Number of ON↔OFF transitions so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Read access to the wrapped encoder.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    fn bypass(block: &CacheBlock) -> EncodedBlock {
        let codes = block
            .words()
            .iter()
            .map(|w| WordCode::Raw {
                word: *w,
                prefix_bits: 0,
            })
            .collect();
        EncodedBlock::new(codes, block.dtype(), block.is_approximable())
    }

    fn block_ratio(block: &CacheBlock, encoded: &EncodedBlock) -> f64 {
        let out = encoded.payload_bits().max(1) as f64;
        block.size_bits() as f64 / out
    }
}

impl<E: BlockEncoder> BlockEncoder for AdaptiveEncoder<E> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn encode(&mut self, block: &CacheBlock, dest: NodeId) -> EncodedBlock {
        match self.mode {
            Mode::On => {
                let encoded = self.inner.encode(block, dest);
                self.window_in_bits += block.size_bits();
                self.window_out_bits += encoded.payload_bits() as u64;
                self.window_count += 1;
                if self.window_count >= self.config.window_blocks {
                    let ratio = self.window_in_bits as f64 / self.window_out_bits.max(1) as f64;
                    if ratio < self.config.min_ratio {
                        self.mode = Mode::Off;
                        self.transitions += 1;
                        self.off_count = 0;
                        self.good_probes = 0;
                    }
                    self.window_in_bits = 0;
                    self.window_out_bits = 0;
                    self.window_count = 0;
                }
                encoded
            }
            Mode::Off => {
                self.off_count += 1;
                if self.off_count.is_multiple_of(self.config.probe_interval) {
                    // Probe: run the encoder for real on this block.
                    let encoded = self.inner.encode(block, dest);
                    if Self::block_ratio(block, &encoded) >= self.config.min_ratio {
                        self.good_probes += 1;
                        if self.good_probes >= self.config.probes_to_reenable {
                            self.mode = Mode::On;
                            self.transitions += 1;
                        }
                    } else {
                        self.good_probes = 0;
                    }
                    encoded
                } else {
                    Self::bypass(block)
                }
            }
        }
    }

    /// The compression latency is only paid while the encoder is ON.
    fn compression_latency(&self) -> u64 {
        match self.mode {
            Mode::On => self.inner.compression_latency(),
            Mode::Off => 0,
        }
    }

    fn apply_notification(&mut self, from: NodeId, note: Notification) {
        self.inner.apply_notification(from, note);
    }

    fn activity(&self) -> CodecActivity {
        self.inner.activity()
    }
}

impl<E: std::fmt::Debug> std::fmt::Debug for AdaptiveEncoder<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveEncoder")
            .field("inner", &self.inner)
            .field("mode", &self.mode)
            .field("transitions", &self.transitions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp::{FpDecoder, FpEncoder};
    use anoc_core::codec::BlockDecoder;
    use anoc_core::rng::Pcg32;

    fn incompressible_block(rng: &mut Pcg32) -> CacheBlock {
        // High-entropy 32-bit values fit no frequent pattern.
        CacheBlock::from_i32(
            &(0..16)
                .map(|_| (rng.next_u32() | 0x8080_8080) as i32)
                .collect::<Vec<_>>(),
        )
        .with_approximable(false)
    }

    fn compressible_block() -> CacheBlock {
        CacheBlock::from_i32(&[0, 1, -2, 3, 0, 0, 7, -8, 0, 1, 2, 3, 0, 0, 0, 0])
    }

    fn cfg() -> AdaptiveConfig {
        AdaptiveConfig {
            window_blocks: 8,
            min_ratio: 1.10,
            probe_interval: 4,
            probes_to_reenable: 2,
        }
    }

    #[test]
    fn turns_off_on_incompressible_traffic() {
        let mut enc = AdaptiveEncoder::with_config(FpEncoder::fp_comp(), cfg());
        assert!(enc.is_on());
        let mut rng = Pcg32::seed_from_u64(1);
        for _ in 0..8 {
            enc.encode(&incompressible_block(&mut rng), NodeId(1));
        }
        assert!(!enc.is_on(), "should have turned off after one bad window");
        assert_eq!(enc.transitions(), 1);
        // While off, latency is zero and blocks travel tag-free.
        assert_eq!(enc.compression_latency(), 0);
        let e = enc.encode(&incompressible_block(&mut rng), NodeId(1));
        assert_eq!(e.payload_bits(), 512, "bypass adds no tag overhead");
    }

    #[test]
    fn probes_reenable_on_compressible_traffic() {
        let mut enc = AdaptiveEncoder::with_config(FpEncoder::fp_comp(), cfg());
        let mut rng = Pcg32::seed_from_u64(2);
        for _ in 0..8 {
            enc.encode(&incompressible_block(&mut rng), NodeId(1));
        }
        assert!(!enc.is_on());
        // Compressible traffic: every 4th block is probed; two good probes
        // re-enable.
        for _ in 0..8 {
            enc.encode(&compressible_block(), NodeId(1));
        }
        assert!(enc.is_on(), "probes should re-enable compression");
        assert_eq!(enc.transitions(), 2);
        assert_eq!(enc.compression_latency(), 3);
    }

    #[test]
    fn stays_on_for_compressible_traffic() {
        let mut enc = AdaptiveEncoder::with_config(FpEncoder::fp_comp(), cfg());
        for _ in 0..64 {
            enc.encode(&compressible_block(), NodeId(1));
        }
        assert!(enc.is_on());
        assert_eq!(enc.transitions(), 0);
    }

    #[test]
    fn every_mode_is_lossless() {
        let mut enc = AdaptiveEncoder::with_config(FpEncoder::fp_comp(), cfg());
        let mut dec = FpDecoder::new();
        let mut rng = Pcg32::seed_from_u64(3);
        // Alternate phases to force transitions, decoding everything.
        for phase in 0..6 {
            for _ in 0..10 {
                let block = if phase % 2 == 0 {
                    incompressible_block(&mut rng)
                } else {
                    compressible_block()
                };
                let e = enc.encode(&block, NodeId(1));
                let d = dec.decode(&e, NodeId(0)).block;
                assert_eq!(d, block);
            }
        }
        assert!(enc.transitions() >= 2, "phases should toggle the mode");
        assert_eq!(enc.name(), "FP-COMP");
        assert!(format!("{enc:?}").contains("AdaptiveEncoder"));
    }

    #[test]
    fn default_config_is_sane() {
        let c = AdaptiveConfig::default();
        assert!(c.min_ratio > 1.0);
        assert!(c.window_blocks > 0 && c.probe_interval > 0);
        let e = AdaptiveEncoder::new(FpEncoder::fp_comp());
        assert!(e.is_on());
        assert_eq!(e.inner().name(), "FP-COMP");
    }
}
