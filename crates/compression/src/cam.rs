//! Structural CAM/TCAM models: match throughput and per-operation energy.
//!
//! §4.3 provisions eight parallel (T)CAM matching units, each capable of two
//! matches per cycle (per the Agrawal & Sherwood TCAM model the paper cites),
//! so a 16-word cache block finishes matching inside the two provisioned
//! matching cycles. Energy-per-operation constants are derived from the same
//! model at 45 nm and consumed by the harness's dynamic power model; the area
//! figures are the ones the paper reports (§5.5).

/// Geometry of a CAM or TCAM structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CamSpec {
    /// Number of entries.
    pub entries: usize,
    /// Match width in bits.
    pub width_bits: u32,
    /// Ternary (TCAM) or binary (CAM).
    pub ternary: bool,
}

impl CamSpec {
    /// The 8-entry, 32-bit binary CAM used by FP-VAXX's PMT and the DI
    /// decoders.
    pub fn pmt_cam() -> Self {
        CamSpec {
            entries: 8,
            width_bits: 32,
            ternary: false,
        }
    }

    /// The 8-entry, 32-bit TCAM used by the DI-VAXX encoder PMT.
    pub fn pmt_tcam() -> Self {
        CamSpec {
            entries: 8,
            width_bits: 32,
            ternary: true,
        }
    }

    /// Energy of one search operation, in picojoules. TCAM cells burn
    /// roughly 1.5× a binary CAM's search energy at equal geometry
    /// (two-bit storage plus per-cell mask transistors).
    pub fn search_energy_pj(&self) -> f64 {
        let per_bit = if self.ternary { 0.0018 } else { 0.0012 };
        per_bit * self.entries as f64 * self.width_bits as f64
    }

    /// Energy of one write/update operation, in picojoules.
    pub fn update_energy_pj(&self) -> f64 {
        let per_bit = if self.ternary { 0.0009 } else { 0.0006 };
        per_bit * self.width_bits as f64
    }

    /// Estimated area in mm² at 45 nm (per-bit constants fitted so the
    /// encoder totals land at the paper's reported 0.0029/0.0037 mm²).
    pub fn area_mm2(&self) -> f64 {
        let per_bit = if self.ternary { 5.8e-6 } else { 3.9e-6 };
        per_bit * self.entries as f64 * self.width_bits as f64
    }
}

/// Parallel matching throughput of the NI's matching stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchThroughput {
    /// Number of parallel matching units (8 in §4.3).
    pub units: u32,
    /// Matches per cycle sustained by each unit (2 in §4.3).
    pub matches_per_cycle: u32,
}

impl Default for MatchThroughput {
    fn default() -> Self {
        MatchThroughput {
            units: 8,
            matches_per_cycle: 2,
        }
    }
}

impl MatchThroughput {
    /// Cycles needed to match `words` words.
    ///
    /// ```
    /// use anoc_compression::cam::MatchThroughput;
    /// let t = MatchThroughput::default();
    /// assert_eq!(t.match_cycles(16), 1); // a 64 B block matches in 1 cycle
    /// assert_eq!(t.match_cycles(17), 2);
    /// assert_eq!(t.match_cycles(0), 0);
    /// ```
    pub fn match_cycles(&self, words: u32) -> u64 {
        let per_cycle = self.units * self.matches_per_cycle;
        (words as u64).div_ceil(per_cycle as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcam_costs_more_than_cam() {
        let cam = CamSpec::pmt_cam();
        let tcam = CamSpec::pmt_tcam();
        assert!(tcam.search_energy_pj() > cam.search_energy_pj());
        assert!(tcam.update_energy_pj() > cam.update_energy_pj());
        assert!(tcam.area_mm2() > cam.area_mm2());
    }

    #[test]
    fn energies_scale_with_geometry() {
        let small = CamSpec {
            entries: 4,
            width_bits: 32,
            ternary: false,
        };
        let big = CamSpec {
            entries: 8,
            width_bits: 32,
            ternary: false,
        };
        assert!((big.search_energy_pj() / small.search_energy_pj() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn block_matches_within_provisioned_cycles() {
        // §4.3: 2 matching cycles are provisioned; a 16-word block needs 1.
        let t = MatchThroughput::default();
        assert!(t.match_cycles(16) <= 2);
        assert_eq!(t.match_cycles(32), 2);
    }
}
