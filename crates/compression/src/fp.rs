//! FP-COMP and FP-VAXX: static frequent-pattern block codecs (§4.1).
//!
//! FP-COMP compresses each word that exactly matches a row of the static
//! pattern table (Figure 5). FP-VAXX first runs the word through the AVCL to
//! obtain its don't-care bits, then matches only the remaining bits against
//! the pattern-matching table (Figure 6); the decoder is unchanged. Both
//! merge consecutive zero words into zero-run codes.

use anoc_core::avcl::Avcl;
use anoc_core::codec::{
    BlockDecoder, BlockEncoder, CodecActivity, DecodeResult, EncodedBlock, WordCode,
};
use anoc_core::data::{CacheBlock, NodeId};
use anoc_core::snap::{SnapError, SnapReader, SnapWriter};
use anoc_core::threshold::ErrorThreshold;
use anoc_core::window::WindowBudget;

use crate::fpc::{self, FpcClass};

/// Maximum zero-run length expressible in the 3-bit run-length adjunct.
const MAX_ZERO_RUN: u8 = 8;

/// The FP-COMP / FP-VAXX encoder. Stateless across blocks (the pattern table
/// is static), so one instance can serve a whole NI.
#[derive(Debug, Clone)]
pub struct FpEncoder {
    avcl: Option<Avcl>,
    window: Option<WindowBudget>,
    activity: CodecActivity,
}

impl FpEncoder {
    /// Creates a plain FP-COMP encoder (exact matching only).
    pub fn fp_comp() -> Self {
        FpEncoder {
            avcl: None,
            window: None,
            activity: CodecActivity::default(),
        }
    }

    /// Creates an FP-VAXX encoder with the given AVCL.
    pub fn fp_vaxx(avcl: Avcl) -> Self {
        FpEncoder {
            avcl: Some(avcl),
            window: None,
            activity: CodecActivity::default(),
        }
    }

    /// Creates an FP-VAXX encoder with a window-based cumulative error
    /// budget (§7 future work): words that compress exactly donate their
    /// unused tolerance to later words in the same window, yielding more
    /// approximate matches at the same average error.
    pub fn fp_vaxx_windowed(budget: WindowBudget) -> Self {
        let base = Avcl::new(budget.next_threshold());
        FpEncoder {
            avcl: Some(base),
            window: Some(budget),
            activity: CodecActivity::default(),
        }
    }

    /// Whether this encoder approximates (FP-VAXX) or is exact (FP-COMP).
    pub fn is_vaxx(&self) -> bool {
        self.avcl.is_some()
    }

    /// Whether this encoder pools error tolerance across a word window.
    pub fn is_windowed(&self) -> bool {
        self.window.is_some()
    }

    /// Replaces the AVCL at run time — the dynamic-threshold hook of §1
    /// ("can be dynamically adjusted at run time"). No-op on FP-COMP.
    /// Static pattern matching has no state to invalidate, so the change
    /// takes effect on the next word.
    pub fn set_avcl(&mut self, avcl: Avcl) {
        if self.avcl.is_some() {
            self.avcl = Some(avcl);
        }
    }
}

impl BlockEncoder for FpEncoder {
    fn name(&self) -> &'static str {
        if self.is_vaxx() {
            "FP-VAXX"
        } else {
            "FP-COMP"
        }
    }

    fn encode(&mut self, block: &CacheBlock, _dest: NodeId) -> EncodedBlock {
        let approx_on = self.avcl.is_some() && block.is_approximable();
        let mut codes: Vec<WordCode> = Vec::with_capacity(block.len());
        let mut zero_run: u8 = 0;
        fn flush_run(codes: &mut Vec<WordCode>, run: &mut u8) {
            if *run > 0 {
                codes.push(WordCode::ZeroRun { len: *run });
                *run = 0;
            }
        }
        fn emit(
            codes: &mut Vec<WordCode>,
            zero_run: &mut u8,
            word: u32,
            matched: Option<(FpcClass, u32)>,
        ) {
            match matched {
                Some((FpcClass::Zero, v)) => {
                    if v == word {
                        *zero_run += 1;
                        if *zero_run == MAX_ZERO_RUN {
                            flush_run(codes, zero_run);
                        }
                    } else {
                        // An approximated zero: single-word zero pattern,
                        // flagged approximate for the encoding statistics.
                        flush_run(codes, zero_run);
                        codes.push(WordCode::Pattern {
                            index: FpcClass::Zero as u8,
                            adjunct: 1,
                            adjunct_bits: FpcClass::Zero.adjunct_bits(),
                            approx: true,
                        });
                    }
                }
                Some((class, v)) => {
                    flush_run(codes, zero_run);
                    codes.push(WordCode::Pattern {
                        index: class as u8,
                        adjunct: class.adjunct_of(v),
                        adjunct_bits: class.adjunct_bits(),
                        approx: v != word,
                    });
                }
                None => {
                    flush_run(codes, zero_run);
                    codes.push(WordCode::Raw {
                        word,
                        prefix_bits: 3,
                    });
                }
            }
        }
        let words = block.words();
        self.activity.words_encoded += words.len() as u64;
        self.activity.cam_searches += words.len() as u64;
        if self.window.is_none() {
            // Wide path: eight contiguous words per iteration. The AVCL masks
            // for the whole group come out of one `approx_pattern8` call and
            // the pattern table is walked once per group by `best_match8`,
            // which reduces its hit mask per variant row instead of
            // re-dispatching per word. Lane results are bit-identical to the
            // scalar path.
            let avcl = if approx_on { self.avcl } else { None };
            for chunk in words.chunks(8) {
                let mut lanes = [0u32; 8];
                lanes[..chunk.len()].copy_from_slice(chunk);
                let masks = match &avcl {
                    Some(a) => {
                        self.activity.avcl_ops += chunk.len() as u64;
                        let pats = a.approx_pattern8(&lanes, block.dtype());
                        core::array::from_fn(|i| pats[i].mask())
                    }
                    None => [0u32; 8],
                };
                let matched = fpc::best_match8(&lanes, &masks);
                for (lane, &word) in chunk.iter().enumerate() {
                    emit(&mut codes, &mut zero_run, word, matched[lane]);
                }
            }
        } else {
            // Windowed mode stays word-at-a-time: each word's allowance
            // depends on the error the previous word banked, so the masks
            // cannot be batched.
            for &word in words {
                let mask = match self.avcl {
                    Some(installed) if approx_on => {
                        self.activity.avcl_ops += 1;
                        let avcl = match &self.window {
                            Some(budget) => {
                                Avcl::with_policy(budget.next_threshold(), installed.policy())
                            }
                            None => installed,
                        };
                        avcl.approx_pattern(word, block.dtype()).mask()
                    }
                    _ => 0,
                };
                let matched = fpc::best_match(word, mask);
                if let Some(budget) = &mut self.window {
                    if approx_on {
                        let incurred = match matched {
                            Some((_, v)) if v != word => {
                                Avcl::relative_error(word, v, block.dtype())
                                    .unwrap_or(0.0)
                                    .min(1.0)
                            }
                            _ => 0.0,
                        };
                        budget.record(incurred);
                    }
                }
                emit(&mut codes, &mut zero_run, word, matched);
            }
        }
        flush_run(&mut codes, &mut zero_run);
        EncodedBlock::new(codes, block.dtype(), block.is_approximable())
    }

    fn activity(&self) -> CodecActivity {
        self.activity
    }

    fn set_error_threshold(&mut self, threshold: ErrorThreshold) {
        self.set_avcl(Avcl::new(threshold));
    }

    // The pattern table is static, so the only mutable state worth a
    // snapshot is the activity counters. The window budget is deliberately
    // excluded: windowed encoders exist only in custom-mechanism runs, which
    // never take the snapshot path.
    fn save_state(&self, w: &mut SnapWriter) {
        self.activity.save_state(w);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.activity = CodecActivity::load_state(r)?;
        Ok(())
    }
}

/// The FP-COMP / FP-VAXX decoder — shared by both mechanisms, since the
/// approximation is entirely a source-side affair.
#[derive(Debug, Clone, Default)]
pub struct FpDecoder {
    activity: CodecActivity,
}

impl FpDecoder {
    /// Creates a frequent-pattern decoder.
    pub fn new() -> Self {
        FpDecoder::default()
    }
}

impl BlockDecoder for FpDecoder {
    fn name(&self) -> &'static str {
        "FP-decoder"
    }

    fn decode(&mut self, encoded: &EncodedBlock, _src: NodeId) -> DecodeResult {
        let mut words = Vec::with_capacity(encoded.word_count() as usize);
        for code in encoded.codes() {
            match *code {
                WordCode::Raw { word, .. } => words.push(word),
                WordCode::ZeroRun { len } => words.extend(std::iter::repeat_n(0u32, len as usize)),
                WordCode::Pattern { index, adjunct, .. } => {
                    // The encoder emits only valid pattern indices; deliver
                    // the adjunct raw rather than crash if one ever slips.
                    let Some(class) = FpcClass::from_index(index) else {
                        debug_assert!(false, "invalid FP pattern index {index}");
                        words.push(adjunct);
                        continue;
                    };
                    if class == FpcClass::Zero {
                        words.extend(std::iter::repeat_n(0u32, adjunct as usize));
                    } else {
                        words.push(class.decode(adjunct));
                    }
                }
                ref other @ (WordCode::Dict { .. }
                | WordCode::Delta { .. }
                | WordCode::Match { .. }) => {
                    unreachable!("frequent-pattern stream cannot contain {other:?}")
                }
            }
        }
        self.activity.words_decoded += words.len() as u64;
        DecodeResult {
            block: CacheBlock::new(words, encoded.dtype(), encoded.is_approximable()),
            notifications: Vec::new(),
        }
    }

    fn activity(&self) -> CodecActivity {
        self.activity
    }

    fn save_state(&self, w: &mut SnapWriter) {
        self.activity.save_state(w);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.activity = CodecActivity::load_state(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anoc_core::data::DataType;
    use anoc_core::threshold::ErrorThreshold;

    fn avcl(pct: u32) -> Avcl {
        Avcl::new(ErrorThreshold::from_percent(pct).unwrap())
    }

    fn roundtrip(enc: &mut FpEncoder, block: &CacheBlock) -> CacheBlock {
        let e = enc.encode(block, NodeId(1));
        FpDecoder::new().decode(&e, NodeId(0)).block
    }

    #[test]
    fn fp_comp_is_lossless() {
        let mut enc = FpEncoder::fp_comp();
        let block = CacheBlock::from_i32(&[0, 0, 0, 5, -120, 30_000, 0x12345678u32 as i32, 0]);
        assert_eq!(roundtrip(&mut enc, &block), block);
        assert_eq!(enc.name(), "FP-COMP");
    }

    #[test]
    fn fp_comp_compresses_frequent_patterns() {
        let mut enc = FpEncoder::fp_comp();
        let block = CacheBlock::from_i32(&[0; 16]);
        let e = enc.encode(&block, NodeId(1));
        // 16 zeros = two zero-runs of 8 = 12 bits vs 512.
        assert_eq!(e.payload_bits(), 12);
        assert_eq!(e.word_count(), 16);
        let s = e.stats();
        assert_eq!(s.exact_encoded, 16);
        assert_eq!(s.raw, 0);
    }

    #[test]
    fn fp_vaxx_on_non_approximable_block_is_exact() {
        let mut vaxx = FpEncoder::fp_vaxx(avcl(20));
        let block = CacheBlock::precise(vec![0x12345678, 0xDEADBEEF]);
        let decoded = roundtrip(&mut vaxx, &block);
        assert_eq!(decoded, block);
        let e = vaxx.encode(&block, NodeId(1));
        assert!(e.codes().iter().all(|c| !c.is_approx()));
    }

    #[test]
    fn fp_vaxx_widens_matches() {
        // 0x0000_8003: exactly matches nothing (bit 15 breaks Se16 and the
        // low bits break HalfPadded). Under 10% threshold the don't-care
        // width of 0x8003 (range 0x8003 >> 4 = 0x800) is 11 bits, enough to
        // clear the low bits and match... Se16 needs bit 15 = 0 with 0-fill
        // high bits; bit 15 is a must bit? 11 don't-care bits cover bits
        // 0..10, so bit 15 stays -> HalfPadded also needs low 16 bits zero,
        // bits 11..15 = 0x8000|0x3 -> bits 11..14 zero, bit 15 one. Project
        // fails on bit 15. TwoHalfSe: hi half 0x0000 fits (sext of 0x00);
        // lo half 0x8003 must be sext8: bit 15..7 ... bit 7 = 0, bits 15..8
        // = 0x80 not uniform with bit 7 -> bit 15 must-bit breaks it too.
        // So this word stays raw — a real example that approximation is not
        // magic when high bits disagree.
        let mut vaxx = FpEncoder::fp_vaxx(avcl(10));
        let block = CacheBlock::from_i32(&[0x8003]);
        let e = vaxx.encode(&block, NodeId(1));
        assert!(matches!(e.codes()[0], WordCode::Raw { .. }));

        // 0x0000_7F09 under 10%: don't-care width of 0x7F09 is 10 bits;
        // Se16 projects (bits 15.. are zero) -- exact in fact? 0x7F09 < 2^15
        // so it matches Se16 exactly. Pick something needing approximation:
        // 0x0001_0007 (65543): Se16 fails exactly (bit 16). 10% threshold:
        // range = 65543 >> 4 = 4096 -> 12 don't-care bits; bits 16.. remain
        // must bits -> still no Se16. HalfPadded: low 16 bits = 0x0007, all
        // inside the 12-bit mask. Projects to 0x0001_0000 (error 7/65543).
        let block2 = CacheBlock::from_i32(&[0x0001_0007]);
        let e2 = vaxx.encode(&block2, NodeId(1));
        match e2.codes()[0] {
            WordCode::Pattern { index, approx, .. } => {
                assert_eq!(index, FpcClass::HalfPadded as u8);
                assert!(approx);
            }
            ref other => panic!("expected approximated HalfPadded, got {other:?}"),
        }
        let decoded = FpDecoder::new().decode(&e2, NodeId(0)).block;
        assert_eq!(decoded.words()[0], 0x0001_0000);
    }

    #[test]
    fn fp_vaxx_approximation_respects_threshold() {
        let t = ErrorThreshold::from_percent(10).unwrap();
        let mut vaxx = FpEncoder::fp_vaxx(Avcl::new(t));
        let mut dec = FpDecoder::new();
        let mut rng = anoc_core::rng::Pcg32::seed_from_u64(99);
        for _ in 0..200 {
            let words: Vec<i32> = (0..8)
                .map(|_| rng.next_u32() as i32 >> (rng.below(24)))
                .collect();
            let block = CacheBlock::from_i32(&words);
            let e = vaxx.encode(&block, NodeId(1));
            let d = dec.decode(&e, NodeId(0)).block;
            for (p, a) in block.words().iter().zip(d.words()) {
                let err = Avcl::relative_error(*p, *a, DataType::Int).unwrap();
                assert!(err <= 0.10 + 1e-12, "word {p:#x} -> {a:#x} err {err}");
            }
        }
    }

    #[test]
    fn fp_vaxx_float_blocks() {
        let mut vaxx = FpEncoder::fp_vaxx(avcl(10));
        let mut dec = FpDecoder::new();
        let vals = [0.0f32, 1.0, -1.0, 2.6181, 1e-8, f32::INFINITY];
        let block = CacheBlock::from_f32(&vals);
        let e = vaxx.encode(&block, NodeId(1));
        let d = dec.decode(&e, NodeId(0)).block;
        for (p, a) in block.as_f32().iter().zip(d.as_f32()) {
            if p.is_finite() && *p != 0.0 {
                assert!(((a - p) / p).abs() <= 0.10 + 1e-6, "{p} -> {a}");
            } else {
                assert_eq!(p.to_bits(), a.to_bits(), "specials must be exact");
            }
        }
    }

    #[test]
    fn zero_run_capped_at_eight() {
        let mut enc = FpEncoder::fp_comp();
        let block = CacheBlock::from_i32(&[0; 20]);
        let e = enc.encode(&block, NodeId(1));
        let runs: Vec<u8> = e
            .codes()
            .iter()
            .map(|c| match c {
                WordCode::ZeroRun { len } => *len,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(runs, vec![8, 8, 4]);
        let d = FpDecoder::new().decode(&e, NodeId(0)).block;
        assert_eq!(d.words(), vec![0u32; 20]);
    }

    #[test]
    fn zero_run_broken_by_nonzero_word() {
        let mut enc = FpEncoder::fp_comp();
        let block = CacheBlock::from_i32(&[0, 0, 7, 0]);
        let e = enc.encode(&block, NodeId(1));
        assert_eq!(e.codes().len(), 3); // run(2), Se4(7), run(1)
        let d = FpDecoder::new().decode(&e, NodeId(0)).block;
        assert_eq!(d, block);
    }

    #[test]
    fn activity_counters_accumulate() {
        let mut enc = FpEncoder::fp_vaxx(avcl(10));
        let block = CacheBlock::from_i32(&[1, 2, 3, 4]);
        enc.encode(&block, NodeId(1));
        let a = enc.activity();
        assert_eq!(a.words_encoded, 4);
        assert_eq!(a.cam_searches, 4);
        assert_eq!(a.avcl_ops, 4);
        let mut exact = FpEncoder::fp_comp();
        exact.encode(&block, NodeId(1));
        assert_eq!(exact.activity().avcl_ops, 0);
    }

    #[test]
    fn default_latencies_match_paper() {
        let enc = FpEncoder::fp_comp();
        let dec = FpDecoder::new();
        assert_eq!(enc.compression_latency(), 3);
        assert_eq!(dec.decompression_latency(), 2);
    }
}

#[cfg(test)]
mod window_tests {
    use super::*;
    use anoc_core::window::WindowBudget;

    #[test]
    fn windowed_encoder_flags() {
        let w = FpEncoder::fp_vaxx_windowed(WindowBudget::new(16, 10));
        assert!(w.is_vaxx() && w.is_windowed());
        assert!(!FpEncoder::fp_comp().is_windowed());
    }

    #[test]
    fn windowed_mode_wins_more_approximate_matches() {
        use anoc_core::threshold::ErrorThreshold;
        // A stream where half the words are exactly compressible (zeros) and
        // half need > 10% tolerance to reach a frequent pattern. The plain
        // 10% FP-VAXX misses them; the windowed version banks the zeros'
        // budget and converts them.
        let mut rng = anoc_core::rng::Pcg32::seed_from_u64(3);
        let blocks: Vec<CacheBlock> = (0..100)
            .map(|_| {
                let words: Vec<i32> = (0..16)
                    .map(|i| {
                        if i % 2 == 0 {
                            0
                        } else {
                            // ~30% away from the all-zero-low-halfword shape
                            0x0001_0000 + rng.below(0x4000) as i32
                        }
                    })
                    .collect();
                CacheBlock::from_i32(&words)
            })
            .collect();
        let mut plain = FpEncoder::fp_vaxx(Avcl::new(ErrorThreshold::from_percent(10).unwrap()));
        let mut windowed = FpEncoder::fp_vaxx_windowed(WindowBudget::new(16, 10));
        let mut sp = anoc_core::codec::EncodeStats::default();
        let mut sw = anoc_core::codec::EncodeStats::default();
        for b in &blocks {
            sp.absorb_block(&plain.encode(b, NodeId(1)));
            sw.absorb_block(&windowed.encode(b, NodeId(1)));
        }
        assert!(
            sw.approx_encoded > sp.approx_encoded,
            "windowed {} vs plain {}",
            sw.approx_encoded,
            sp.approx_encoded
        );
        assert!(sw.compression_ratio() > sp.compression_ratio());
    }

    #[test]
    fn windowed_average_error_stays_near_base() {
        use anoc_core::metrics::QualityAccumulator;
        let mut rng = anoc_core::rng::Pcg32::seed_from_u64(5);
        let mut enc = FpEncoder::fp_vaxx_windowed(WindowBudget::new(16, 10));
        let mut dec = FpDecoder::new();
        let mut q = QualityAccumulator::new();
        for _ in 0..200 {
            let words: Vec<i32> = (0..16)
                .map(|_| (rng.next_u32() >> rng.below(20)) as i32)
                .collect();
            let block = CacheBlock::from_i32(&words);
            let e = enc.encode(&block, NodeId(1));
            let d = dec.decode(&e, NodeId(0)).block;
            q.record_block(&block, &d);
        }
        // Average relative error across the stream stays at/under the 10%
        // base even though single words may exceed it (window semantics).
        assert!(
            q.mean_relative_error() <= 0.10 + 1e-9,
            "mean error {}",
            q.mean_relative_error()
        );
    }
}

#[cfg(test)]
mod dynamic_threshold_tests {
    use super::*;
    use anoc_core::control::QualityController;
    use anoc_core::metrics::QualityAccumulator;
    use anoc_core::threshold::ErrorThreshold;

    #[test]
    fn set_avcl_changes_matching_behaviour() {
        let mut enc = FpEncoder::fp_vaxx(Avcl::new(ErrorThreshold::from_percent(1).unwrap()));
        // 0x0018_8007: bit 15 of the low halfword blocks HalfPadded until
        // the don't-care mask covers the whole halfword (needs ~10%).
        let block = CacheBlock::from_i32(&[0x0018_8007]);
        let tight = enc.encode(&block, NodeId(1));
        assert_eq!(tight.stats().raw, 1, "1% threshold cannot approximate");
        enc.set_avcl(Avcl::new(ErrorThreshold::from_percent(10).unwrap()));
        let wide = enc.encode(&block, NodeId(1));
        assert_eq!(wide.stats().approx_encoded, 1, "10% threshold can");
        // FP-COMP ignores the hook.
        let mut exact = FpEncoder::fp_comp();
        exact.set_avcl(Avcl::new(ErrorThreshold::from_percent(50).unwrap()));
        assert!(!exact.is_vaxx());
    }

    #[test]
    fn controller_drives_the_encoder_loop() {
        // Close the loop: encode epochs, measure realized quality, let the
        // controller adjust the threshold. Quality floor must hold.
        let mut controller = QualityController::paper_defaults();
        let mut enc = FpEncoder::fp_vaxx(Avcl::new(controller.threshold()));
        let mut dec = FpDecoder::new();
        let mut rng = anoc_core::rng::Pcg32::seed_from_u64(9);
        for _epoch in 0..10 {
            let mut q = QualityAccumulator::new();
            for _ in 0..50 {
                let words: Vec<i32> = (0..16)
                    .map(|_| (rng.next_u32() >> rng.below(20)) as i32)
                    .collect();
                let block = CacheBlock::from_i32(&words);
                let e = enc.encode(&block, NodeId(1));
                let d = dec.decode(&e, NodeId(0)).block;
                q.record_block(&block, &d);
            }
            let next = controller.observe(q.quality());
            enc.set_avcl(Avcl::new(next));
            assert!(
                q.quality() > 0.95,
                "epoch quality collapsed: {}",
                q.quality()
            );
        }
        // With FP-VAXX's conservative realized error, the controller should
        // have grown the threshold towards its cap.
        assert!(controller.percent() >= 10, "{}", controller.percent());
    }
}
