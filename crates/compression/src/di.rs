//! DI-COMP and DI-VAXX: dynamic dictionary block codecs (§4.2).
//!
//! The decoder learns recurring patterns and announces encoded indices to the
//! paired encoders via notifications; the encoder compresses any word whose
//! pattern (exactly, or approximately through the DI-VAXX TCAM) has an
//! announced index for the packet's destination. Words that miss travel raw
//! with a one-bit flag, and the decoder observes them to keep learning.

use anoc_core::avcl::Avcl;
use anoc_core::codec::{
    BlockDecoder, BlockEncoder, CodecActivity, DecodeResult, EncodedBlock, Notification, WordCode,
};
use anoc_core::data::{CacheBlock, NodeId};
use anoc_core::snap::{SnapError, SnapReader, SnapWriter};
use anoc_core::threshold::ErrorThreshold;

use crate::dictionary::{DecoderPmt, EncoderPmt, DEFAULT_PMT_ENTRIES};

/// Configuration shared by the dictionary codecs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiConfig {
    /// PMT entries at both the encoder and the decoder (Table 1: 8).
    pub pmt_entries: usize,
    /// Number of nodes in the network (for valid-bit / index vectors).
    pub num_nodes: usize,
    /// DI-VAXX only: confirm TCAM hits against the precise word's own
    /// tolerance so the error-threshold guarantee is exact.
    pub strict_threshold: bool,
    /// Decay (halve) frequency counters every this many observed words; 0
    /// disables aging.
    pub decay_interval: u64,
}

impl DiConfig {
    /// The paper's configuration for a network of `num_nodes` nodes.
    pub fn for_nodes(num_nodes: usize) -> Self {
        DiConfig {
            pmt_entries: DEFAULT_PMT_ENTRIES,
            num_nodes,
            strict_threshold: true,
            decay_interval: 4096,
        }
    }
}

/// The DI-COMP / DI-VAXX encoder for one node.
#[derive(Debug, Clone)]
pub struct DiEncoder {
    pmt: EncoderPmt,
    avcl: Option<Avcl>,
    config: DiConfig,
    index_bits: u8,
    words_seen: u64,
    activity: CodecActivity,
}

impl DiEncoder {
    /// Creates a DI-COMP (exact) encoder.
    pub fn di_comp(config: DiConfig) -> Self {
        DiEncoder {
            pmt: EncoderPmt::di_comp(config.pmt_entries, config.num_nodes),
            avcl: None,
            config,
            index_bits: index_bits(config.pmt_entries),
            words_seen: 0,
            activity: CodecActivity::default(),
        }
    }

    /// Creates a DI-VAXX encoder whose APCL uses `avcl`.
    pub fn di_vaxx(config: DiConfig, avcl: Avcl) -> Self {
        DiEncoder {
            pmt: EncoderPmt::di_vaxx(config.pmt_entries, config.num_nodes, avcl),
            avcl: Some(avcl),
            config,
            index_bits: index_bits(config.pmt_entries),
            words_seen: 0,
            activity: CodecActivity::default(),
        }
    }

    /// Whether this encoder approximates (DI-VAXX).
    pub fn is_vaxx(&self) -> bool {
        self.avcl.is_some()
    }

    /// Read access to the PMT (for inspection in tests/ablation benches).
    pub fn pmt(&self) -> &EncoderPmt {
        &self.pmt
    }
}

fn index_bits(entries: usize) -> u8 {
    (usize::BITS - (entries.max(2) - 1).leading_zeros()) as u8
}

impl BlockEncoder for DiEncoder {
    fn name(&self) -> &'static str {
        if self.is_vaxx() {
            "DI-VAXX"
        } else {
            "DI-COMP"
        }
    }

    fn encode(&mut self, block: &CacheBlock, dest: NodeId) -> EncodedBlock {
        let approx_on = self.is_vaxx() && block.is_approximable();
        let mut codes = Vec::with_capacity(block.len());
        for &word in block.words() {
            self.activity.words_encoded += 1;
            self.words_seen += 1;
            if self.config.decay_interval > 0
                && self.words_seen.is_multiple_of(self.config.decay_interval)
            {
                self.pmt.decay();
            }
            // Approximate (TCAM) path first for approximable data: the paper
            // always prefers the pre-computed approximate pattern match
            // because it is what the TCAM returns in one search.
            let hit = if approx_on {
                self.activity.tcam_searches += 1;
                self.pmt
                    .lookup_approx(word, dest, block.dtype(), self.config.strict_threshold)
                    .map(|rec| (rec, rec.original != word))
                    .or_else(|| self.pmt.lookup_exact(word, dest).map(|rec| (rec, false)))
            } else {
                self.activity.cam_searches += 1;
                self.pmt.lookup_exact(word, dest).map(|rec| (rec, false))
            };
            match hit {
                Some((rec, approx)) => codes.push(WordCode::Dict {
                    index: rec.index,
                    index_bits: self.index_bits,
                    approx,
                    pattern: rec.original,
                }),
                None => codes.push(WordCode::Raw {
                    word,
                    prefix_bits: 1,
                }),
            }
        }
        EncodedBlock::new(codes, block.dtype(), block.is_approximable())
    }

    fn apply_notification(&mut self, from: NodeId, note: Notification) {
        self.activity.notifications += 1;
        self.activity.table_updates += 1;
        if self.is_vaxx() {
            self.activity.avcl_ops += 1; // APCL runs at install time
        }
        self.pmt.apply(from, note);
    }

    fn activity(&self) -> CodecActivity {
        self.activity
    }

    fn inject_table_fault(&mut self, entropy: u64) -> bool {
        self.pmt.corrupt(entropy)
    }

    fn set_error_threshold(&mut self, threshold: ErrorThreshold) {
        if self.avcl.is_some() {
            let avcl = Avcl::new(threshold);
            self.avcl = Some(avcl);
            self.pmt.set_apcl(avcl);
        }
    }

    fn save_state(&self, w: &mut SnapWriter) {
        self.pmt.save_state(w);
        w.u64(self.words_seen);
        self.activity.save_state(w);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.pmt.load_state(r)?;
        self.words_seen = r.u64()?;
        self.activity = CodecActivity::load_state(r)?;
        Ok(())
    }
}

/// The dictionary decoder for one node — identical for DI-COMP and DI-VAXX
/// (a plain CAM indexed by the encoded index, §4.2.1).
#[derive(Debug, Clone)]
pub struct DiDecoder {
    pmt: DecoderPmt,
    config: DiConfig,
    words_seen: u64,
    activity: CodecActivity,
}

impl DiDecoder {
    /// Creates a dictionary decoder.
    pub fn new(config: DiConfig) -> Self {
        DiDecoder {
            pmt: DecoderPmt::new(config.pmt_entries, config.num_nodes),
            config,
            words_seen: 0,
            activity: CodecActivity::default(),
        }
    }

    /// Stale-index races observed (resolved by the consistency protocol).
    pub fn races(&self) -> u64 {
        self.pmt.races()
    }

    /// Read access to the PMT.
    pub fn pmt(&self) -> &DecoderPmt {
        &self.pmt
    }
}

impl BlockDecoder for DiDecoder {
    fn name(&self) -> &'static str {
        "DI-decoder"
    }

    fn decode(&mut self, encoded: &EncodedBlock, src: NodeId) -> DecodeResult {
        let mut words = Vec::with_capacity(encoded.len());
        let mut notifications = Vec::new();
        for code in encoded.codes() {
            self.activity.words_decoded += 1;
            self.words_seen += 1;
            if self.config.decay_interval > 0
                && self.words_seen.is_multiple_of(self.config.decay_interval)
            {
                self.pmt.decay();
            }
            match *code {
                WordCode::Raw { word, .. } => {
                    // Learning happens on the uncompressed stream.
                    let notes = self.pmt.observe_raw(word, src, encoded.dtype());
                    self.activity.notifications += notes.len() as u64;
                    notifications.extend(notes);
                    words.push(word);
                }
                WordCode::Dict { index, pattern, .. } => {
                    self.activity.cam_searches += 1;
                    self.pmt.record_hit(index, pattern);
                    words.push(pattern);
                }
                ref other => {
                    unreachable!("dictionary stream cannot contain {other:?}")
                }
            }
        }
        DecodeResult {
            block: CacheBlock::new(words, encoded.dtype(), encoded.is_approximable()),
            notifications,
        }
    }

    fn activity(&self) -> CodecActivity {
        self.activity
    }

    fn save_state(&self, w: &mut SnapWriter) {
        self.pmt.save_state(w);
        w.u64(self.words_seen);
        self.activity.save_state(w);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.pmt.load_state(r)?;
        self.words_seen = r.u64()?;
        self.activity = CodecActivity::load_state(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anoc_core::avcl::Avcl;
    use anoc_core::data::DataType;
    use anoc_core::threshold::ErrorThreshold;

    const N: usize = 4;

    fn config() -> DiConfig {
        DiConfig::for_nodes(N)
    }

    /// Runs blocks from node 0's encoder to node 1's decoder, delivering
    /// notifications instantly, and returns the decoded blocks.
    fn run_pair(
        enc: &mut DiEncoder,
        dec: &mut DiDecoder,
        blocks: &[CacheBlock],
    ) -> Vec<CacheBlock> {
        let dest = NodeId(1);
        let src = NodeId(0);
        let mut out = Vec::new();
        for b in blocks {
            let e = enc.encode(b, dest);
            let r = dec.decode(&e, src);
            for (to, note) in r.notifications {
                assert_eq!(to, src, "single-pair test notifies only the source");
                enc.apply_notification(dest, note);
            }
            out.push(r.block);
        }
        out
    }

    #[test]
    fn di_comp_learns_and_compresses() {
        let mut enc = DiEncoder::di_comp(config());
        let mut dec = DiDecoder::new(config());
        let block = CacheBlock::from_i32(&[0x7777, 0x7777, 0x7777, 0x7777]);
        // First block: all raw (learning); after the install, hits.
        let out = run_pair(&mut enc, &mut dec, &[block.clone(), block.clone()]);
        assert_eq!(out[0], block);
        assert_eq!(out[1], block);
        let e = enc.encode(&block, NodeId(1));
        let s = e.stats();
        assert_eq!(s.exact_encoded, 4, "all words compress after learning");
        assert_eq!(e.payload_bits(), 4 * 4); // 1 flag + 3 index bits each
        assert_eq!(enc.name(), "DI-COMP");
    }

    #[test]
    fn di_comp_is_lossless() {
        let mut enc = DiEncoder::di_comp(config());
        let mut dec = DiDecoder::new(config());
        let mut rng = anoc_core::rng::Pcg32::seed_from_u64(7);
        let blocks: Vec<CacheBlock> = (0..50)
            .map(|_| {
                // Skewed value distribution so the dictionary gets traction.
                let words: Vec<i32> = (0..8).map(|_| (rng.below(6) * 1000) as i32).collect();
                CacheBlock::from_i32(&words).with_approximable(false)
            })
            .collect();
        let out = run_pair(&mut enc, &mut dec, &blocks);
        for (i, (got, want)) in out.iter().zip(&blocks).enumerate() {
            assert_eq!(got, want, "block {i} corrupted");
        }
        assert_eq!(dec.races(), 0);
    }

    #[test]
    fn di_vaxx_approximates_close_values() {
        let t = ErrorThreshold::from_percent(10).unwrap();
        let mut enc = DiEncoder::di_vaxx(config(), Avcl::new(t));
        let mut dec = DiDecoder::new(config());
        assert!(enc.is_vaxx());
        // Teach the dictionary the pattern 10_000.
        let teach = CacheBlock::from_i32(&[10_000; 4]);
        run_pair(&mut enc, &mut dec, &[teach.clone(), teach]);
        // Now a close value compresses approximately.
        let close = CacheBlock::from_i32(&[10_100, 10_000, 9_900, 10_050]);
        let e = enc.encode(&close, NodeId(1));
        let s = e.stats();
        assert!(
            s.approx_encoded >= 2,
            "close values should hit the TCAM: {s:?}"
        );
        let d = dec.decode(&e, NodeId(0)).block;
        for (p, a) in close.words().iter().zip(d.words()) {
            let err = Avcl::relative_error(*p, *a, DataType::Int).unwrap();
            assert!(err <= 0.10, "{p} -> {a}");
        }
    }

    #[test]
    fn di_vaxx_exact_path_for_precise_blocks() {
        let t = ErrorThreshold::from_percent(20).unwrap();
        let mut enc = DiEncoder::di_vaxx(config(), Avcl::new(t));
        let mut dec = DiDecoder::new(config());
        let teach = CacheBlock::from_i32(&[5_000; 4]).with_approximable(false);
        run_pair(&mut enc, &mut dec, &[teach.clone(), teach]);
        // A precise block with a merely-close value must NOT compress...
        let precise = CacheBlock::from_i32(&[5_001; 4]).with_approximable(false);
        let e = enc.encode(&precise, NodeId(1));
        assert_eq!(e.stats().raw, 4);
        // ...but the exact original still does, via the original-pattern
        // storage (Figure 8), and decodes bit-exactly.
        let exact = CacheBlock::from_i32(&[5_000; 4]).with_approximable(false);
        let e2 = enc.encode(&exact, NodeId(1));
        assert_eq!(e2.stats().exact_encoded, 4);
        let d = dec.decode(&e2, NodeId(0)).block;
        assert_eq!(d, exact);
    }

    #[test]
    fn per_destination_isolation() {
        let mut enc = DiEncoder::di_comp(config());
        // Install for destination 1 only.
        enc.apply_notification(
            NodeId(1),
            Notification::Install {
                pattern: 123,
                index: 0,
                dtype: DataType::Int,
            },
        );
        let block = CacheBlock::from_i32(&[123]).with_approximable(false);
        assert_eq!(enc.encode(&block, NodeId(1)).stats().exact_encoded, 1);
        assert_eq!(enc.encode(&block, NodeId(2)).stats().raw, 1);
    }

    #[test]
    fn notification_roundtrip_keeps_tables_consistent() {
        let cfg = DiConfig {
            pmt_entries: 2,
            ..config()
        };
        let mut enc = DiEncoder::di_comp(cfg);
        let mut dec = DiDecoder::new(cfg);
        // Cycle through 3 patterns in a 2-entry PMT to force evictions.
        let mut blocks = Vec::new();
        for round in 0..6 {
            let v = 1000 * (round % 3 + 1);
            blocks.push(CacheBlock::from_i32(&[v; 4]).with_approximable(false));
        }
        let out = run_pair(&mut enc, &mut dec, &blocks);
        for (got, want) in out.iter().zip(&blocks) {
            assert_eq!(got, want);
        }
    }

    #[test]
    fn decoder_learns_from_raw_words_only() {
        let mut enc = DiEncoder::di_comp(config());
        let mut dec = DiDecoder::new(config());
        let block = CacheBlock::from_i32(&[0xAA; 4]);
        run_pair(&mut enc, &mut dec, &[block.clone(), block.clone()]);
        let before = dec.activity().notifications;
        // Fully compressed traffic produces no new notifications.
        let e = enc.encode(&block, NodeId(1));
        assert_eq!(e.stats().exact_encoded, 4);
        dec.decode(&e, NodeId(0));
        assert_eq!(dec.activity().notifications, before);
    }

    #[test]
    fn index_bit_width() {
        assert_eq!(index_bits(8), 3);
        assert_eq!(index_bits(16), 4);
        assert_eq!(index_bits(2), 1);
    }

    #[test]
    fn default_latencies_match_paper() {
        let enc = DiEncoder::di_comp(config());
        let dec = DiDecoder::new(config());
        assert_eq!(enc.compression_latency(), 3);
        assert_eq!(dec.decompression_latency(), 2);
    }

    #[test]
    fn snapshot_round_trip_preserves_learned_state() {
        use anoc_core::snap::{SnapReader, SnapWriter};
        // Train a pair, snapshot it, restore into fresh instances, and check
        // the restored pair behaves exactly like the original from there on.
        let t = ErrorThreshold::from_percent(10).unwrap();
        let mut enc = DiEncoder::di_vaxx(config(), Avcl::new(t));
        let mut dec = DiDecoder::new(config());
        let teach = CacheBlock::from_i32(&[10_000; 4]);
        run_pair(&mut enc, &mut dec, &[teach.clone(), teach]);

        let mut w = SnapWriter::new();
        enc.save_state(&mut w);
        dec.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut enc2 = DiEncoder::di_vaxx(config(), Avcl::new(t));
        let mut dec2 = DiDecoder::new(config());
        let mut r = SnapReader::new(&bytes);
        enc2.load_state(&mut r).unwrap();
        dec2.load_state(&mut r).unwrap();
        assert!(r.is_exhausted());

        let probe = CacheBlock::from_i32(&[10_100, 10_000, 9_900, 10_050]);
        let a = enc.encode(&probe, NodeId(1));
        let b = enc2.encode(&probe, NodeId(1));
        assert_eq!(a.codes(), b.codes(), "restored encoder diverged");
        assert_eq!(
            dec.decode(&a, NodeId(0)).block,
            dec2.decode(&b, NodeId(0)).block
        );
        assert_eq!(enc.activity(), enc2.activity());
        // Re-serializing the restored pair yields the original bytes... only
        // after accounting for the probe encode above, so snapshot again.
        let mut w1 = SnapWriter::new();
        enc.save_state(&mut w1);
        dec.save_state(&mut w1);
        let mut w2 = SnapWriter::new();
        enc2.save_state(&mut w2);
        dec2.save_state(&mut w2);
        assert_eq!(w1.into_bytes(), w2.into_bytes());
    }

    #[test]
    fn snapshot_rejects_mismatched_geometry() {
        let enc = DiEncoder::di_comp(config());
        let mut w = anoc_core::snap::SnapWriter::new();
        enc.save_state(&mut w);
        let bytes = w.into_bytes();
        // A table sized for a different node count must refuse the blob.
        let other = DiConfig::for_nodes(N + 1);
        let mut enc2 = DiEncoder::di_comp(other);
        // Empty-entry tables serialize no dest vectors, so grow an entry
        // first to exercise the width check.
        let mut enc3 = DiEncoder::di_comp(config());
        enc3.apply_notification(
            NodeId(1),
            Notification::Install {
                pattern: 42,
                index: 0,
                dtype: anoc_core::data::DataType::Int,
            },
        );
        let mut w3 = anoc_core::snap::SnapWriter::new();
        enc3.save_state(&mut w3);
        let bytes3 = w3.into_bytes();
        let mut r3 = anoc_core::snap::SnapReader::new(&bytes3);
        assert!(enc2.load_state(&mut r3).is_err());
        // Truncated stream is a typed error, not a panic.
        let mut short = anoc_core::snap::SnapReader::new(&bytes[..bytes.len() - 1]);
        let mut enc4 = DiEncoder::di_comp(config());
        assert!(enc4.load_state(&mut short).is_err());
    }

    #[test]
    fn set_error_threshold_retargets_vaxx_only() {
        let tight = ErrorThreshold::from_percent(1).unwrap();
        let wide = ErrorThreshold::from_percent(10).unwrap();
        let install = Notification::Install {
            pattern: 10_000,
            index: 0,
            dtype: DataType::Int,
        };
        let mut enc = DiEncoder::di_vaxx(config(), Avcl::new(tight));
        enc.apply_notification(NodeId(1), install);
        // 1%: a value 1% away misses the narrow TCAM key.
        let probe = CacheBlock::from_i32(&[10_100; 4]);
        assert_eq!(enc.encode(&probe, NodeId(1)).stats().raw, 4);
        enc.set_error_threshold(wide);
        // Retargeting reprograms the mask plane: the key installed under the
        // 1% APCL now matches with the 10% tolerance, as if the global
        // threshold register of the TCAM had been rewritten.
        assert_eq!(enc.encode(&probe, NodeId(1)).stats().approx_encoded, 4);
        // Retargeting back down restores the narrow mask (idempotent rewrite
        // from the stored install-time pattern).
        enc.set_error_threshold(tight);
        assert_eq!(enc.encode(&probe, NodeId(1)).stats().raw, 4);
        enc.set_error_threshold(wide);
        assert_eq!(enc.encode(&probe, NodeId(1)).stats().approx_encoded, 4);
        // DI-COMP ignores the hook entirely.
        let mut exact = DiEncoder::di_comp(config());
        exact.set_error_threshold(wide);
        assert!(!exact.is_vaxx());
    }
}
