//! Bucketed hash-chain match finding over the LZ-VAXX sliding window.
//!
//! The window (static seed dictionary + the reconstructed prefix of the
//! current cache block) is indexed by hash buckets keyed on a word's high
//! halfword. Each bucket heads a singly linked chain through the window,
//! newest position first, so a probe visits the most recent — and therefore
//! cheapest-to-rank — candidates before older ones.
//!
//! Bucketing on the *high* halfword is what makes the structure work for
//! approximate matching: a DI-VAXX-style don't-care mask is a contiguous
//! low-bit run capped at 16 bits, so every candidate a probe word could
//! accept under such a mask agrees with it on the high halfword and lands in
//! the same chain. Wider masks (enormous magnitudes at high thresholds) may
//! miss candidates in other buckets; that only costs compression, never
//! correctness, because every candidate is still confirmed word-by-word.

/// log2 of the number of hash buckets.
pub const HASH_BITS: u32 = 8;

const BUCKETS: usize = 1 << HASH_BITS;

/// Sentinel link value for "end of chain".
const NIL: i16 = -1;

/// The bucketed hash-chain index over one block's window.
#[derive(Debug, Clone)]
pub struct MatchFinder {
    /// Most recent window position per bucket.
    heads: Vec<i16>,
    /// Per window position, the previous position in the same bucket.
    links: Vec<i16>,
}

impl MatchFinder {
    /// Creates an empty match finder.
    pub fn new() -> Self {
        MatchFinder {
            heads: vec![NIL; BUCKETS],
            links: Vec::new(),
        }
    }

    /// The bucket a word hashes to (keyed on its high halfword).
    #[inline]
    pub fn bucket(word: u32) -> usize {
        ((word >> 16).wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
    }

    /// Resets the index for a new block whose window holds `window_len`
    /// positions (seed + block words).
    pub fn begin_block(&mut self, window_len: usize) {
        self.heads.fill(NIL);
        self.links.clear();
        self.links.resize(window_len, NIL);
    }

    /// Indexes the window word at `pos` (positions must be inserted in
    /// increasing order so chains stay newest-first).
    pub fn insert(&mut self, pos: usize, word: u32) {
        let b = Self::bucket(word);
        if let Some(link) = self.links.get_mut(pos) {
            *link = self.heads[b];
            self.heads[b] = pos as i16;
        } else {
            debug_assert!(false, "insert past the declared window length");
        }
    }

    /// Walks the chain of candidate window positions for `word`, newest
    /// first. The caller bounds the walk with its chain-depth budget.
    pub fn chain(&self, word: u32) -> Chain<'_> {
        Chain {
            links: &self.links,
            cur: self.heads[Self::bucket(word)],
        }
    }
}

impl Default for MatchFinder {
    fn default() -> Self {
        MatchFinder::new()
    }
}

/// Iterator over one bucket's chain, newest position first.
#[derive(Debug)]
pub struct Chain<'a> {
    links: &'a [i16],
    cur: i16,
}

impl Iterator for Chain<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.cur < 0 {
            return None;
        }
        let pos = self.cur as usize;
        self.cur = self.links.get(pos).copied().unwrap_or(NIL);
        Some(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chains_are_newest_first() {
        let mut f = MatchFinder::new();
        f.begin_block(8);
        for pos in [0usize, 3, 5] {
            f.insert(pos, 0x0001_0000);
        }
        let hits: Vec<usize> = f.chain(0x0001_0000).collect();
        assert_eq!(hits, vec![5, 3, 0]);
    }

    #[test]
    fn low_halfword_differences_share_a_bucket() {
        // Candidates inside a ≤16-bit don't-care mask agree on the high
        // halfword, so they must be discoverable from one probe.
        let mut f = MatchFinder::new();
        f.begin_block(4);
        f.insert(0, 0x00AB_0000);
        f.insert(1, 0x00AB_FFFF);
        let hits: Vec<usize> = f.chain(0x00AB_1234).collect();
        assert_eq!(hits, vec![1, 0]);
    }

    #[test]
    fn probe_never_misses_same_high_halfword_entries() {
        // The structural guarantee: whatever the hash does, a probe's chain
        // contains every inserted position whose high halfword matches.
        let mut f = MatchFinder::new();
        let words: Vec<u32> = (0..32).map(|i| ((i % 5) << 16) | (i * 77)).collect();
        f.begin_block(words.len());
        for (pos, &w) in words.iter().enumerate() {
            f.insert(pos, w);
        }
        for probe in [0u32, 0x0002_1234, 0x0004_FFFF] {
            let chain: Vec<usize> = f.chain(probe).collect();
            for (pos, &w) in words.iter().enumerate() {
                if w >> 16 == probe >> 16 {
                    assert!(chain.contains(&pos), "probe {probe:#x} missed pos {pos}");
                }
            }
        }
    }

    #[test]
    fn begin_block_clears_previous_state() {
        let mut f = MatchFinder::new();
        f.begin_block(4);
        f.insert(0, 42);
        f.begin_block(4);
        assert_eq!(f.chain(42).count(), 0);
    }
}
