//! Property-based tests: codec round-trips, threshold preservation and
//! dictionary consistency under arbitrary traffic.

use anoc_compression::di::{DiConfig, DiDecoder, DiEncoder};
use anoc_compression::fp::{FpDecoder, FpEncoder};
use anoc_compression::fpc::{best_match, FpcClass};
use anoc_core::avcl::Avcl;
use anoc_core::codec::{BlockDecoder, BlockEncoder};
use anoc_core::data::{CacheBlock, DataType, NodeId};
use anoc_core::threshold::ErrorThreshold;
use proptest::prelude::*;

pub fn int_block() -> impl Strategy<Value = CacheBlock> {
    prop::collection::vec(any::<i32>(), 1..=32).prop_map(|v| CacheBlock::from_i32(&v))
}

fn skewed_block() -> impl Strategy<Value = CacheBlock> {
    // A mix of zeros, small values and repeated hot values — the regime
    // compression actually faces.
    prop::collection::vec(
        prop_oneof![
            Just(0i32),
            -128i32..=127,
            Just(424242),
            Just(-31000),
            any::<i32>(),
        ],
        1..=32,
    )
    .prop_map(|v| CacheBlock::from_i32(&v))
}

proptest! {
    /// Exact FPC classification round-trips every word it accepts.
    #[test]
    fn fpc_exact_roundtrip(word in any::<u32>()) {
        if let Some((class, v)) = best_match(word, 0) {
            prop_assert_eq!(v, word, "exact match must not modify the word");
            if class != FpcClass::Zero {
                let adj = class.adjunct_of(v);
                prop_assert!(u64::from(adj) < (1u64 << class.adjunct_bits()));
                prop_assert_eq!(class.decode(adj), v);
            }
        }
    }

    /// Masked projection always satisfies the mask contract: the projected
    /// value agrees with the word outside the don't-care bits.
    #[test]
    fn fpc_projection_contract(word in any::<u32>(), k in 0u32..=31) {
        let mask = (1u32 << k) - 1;
        if let Some((_, v)) = best_match(word, mask) {
            prop_assert_eq!(v & !mask, word & !mask);
        }
    }

    /// FP-COMP is lossless on arbitrary blocks.
    #[test]
    fn fp_comp_lossless(block in int_block()) {
        let mut enc = FpEncoder::fp_comp();
        let mut dec = FpDecoder::new();
        let e = enc.encode(&block, NodeId(1));
        prop_assert_eq!(e.word_count() as usize, block.len());
        let d = dec.decode(&e, NodeId(0)).block;
        prop_assert_eq!(d, block);
    }

    /// FP-COMP never inflates a block beyond the 3-bit-per-word tag bound.
    #[test]
    fn fp_comp_bounded_expansion(block in int_block()) {
        let mut enc = FpEncoder::fp_comp();
        let e = enc.encode(&block, NodeId(1));
        prop_assert!(u64::from(e.payload_bits()) <= block.size_bits() + 3 * block.len() as u64);
    }

    /// FP-VAXX on non-approximable blocks is bit-exact.
    #[test]
    fn fp_vaxx_precise_path_lossless(block in int_block(), pct in 1u32..=100) {
        let block = block.with_approximable(false);
        let avcl = Avcl::new(ErrorThreshold::from_percent(pct).unwrap());
        let mut enc = FpEncoder::fp_vaxx(avcl);
        let d = FpDecoder::new().decode(&enc.encode(&block, NodeId(1)), NodeId(0)).block;
        prop_assert_eq!(d, block);
    }

    /// FP-VAXX never violates the error threshold on integer data.
    #[test]
    fn fp_vaxx_threshold_preserved(block in skewed_block(), pct in 1u32..=50) {
        let avcl = Avcl::new(ErrorThreshold::from_percent(pct).unwrap());
        let mut enc = FpEncoder::fp_vaxx(avcl);
        let mut dec = FpDecoder::new();
        let d = dec.decode(&enc.encode(&block, NodeId(1)), NodeId(0)).block;
        for (p, a) in block.words().iter().zip(d.words()) {
            let err = Avcl::relative_error(*p, *a, DataType::Int).unwrap();
            prop_assert!(err <= pct as f64 / 100.0 + 1e-12, "{p:#x} -> {a:#x}");
        }
    }

    /// FP-VAXX float path: value error bounded, specials untouched.
    #[test]
    fn fp_vaxx_float_threshold(vals in prop::collection::vec(prop::num::f32::NORMAL, 1..=32)) {
        let avcl = Avcl::new(ErrorThreshold::from_percent(10).unwrap());
        let mut enc = FpEncoder::fp_vaxx(avcl);
        let mut dec = FpDecoder::new();
        let block = CacheBlock::from_f32(&vals);
        let d = dec.decode(&enc.encode(&block, NodeId(1)), NodeId(0)).block;
        for (p, a) in vals.iter().zip(d.as_f32()) {
            prop_assert!(((a - p) / p).abs() <= 0.10 + 1e-6, "{p} -> {a}");
        }
    }

    /// DI-COMP is lossless under arbitrary streams with the notification
    /// protocol in the loop (encoder and decoder stay consistent).
    #[test]
    fn di_comp_lossless_stream(blocks in prop::collection::vec(skewed_block(), 1..30)) {
        let cfg = DiConfig::for_nodes(4);
        let mut enc = DiEncoder::di_comp(cfg);
        let mut dec = DiDecoder::new(cfg);
        for block in &blocks {
            let block = block.clone().with_approximable(false);
            let e = enc.encode(&block, NodeId(1));
            let r = dec.decode(&e, NodeId(0));
            prop_assert_eq!(&r.block, &block);
            for (_, note) in r.notifications {
                enc.apply_notification(NodeId(1), note);
            }
        }
        // Note: `dec.races()` may be non-zero — a raw word early in a block
        // can evict a pattern that a Dict code later in the same block still
        // references (encoded against the pre-block table). The protocol
        // resolves it, and the losslessness assertions above prove it did.
    }

    /// DI-VAXX (strict) never violates the threshold on approximable data
    /// and stays lossless on precise data, within one stream.
    #[test]
    fn di_vaxx_mixed_stream(
        blocks in prop::collection::vec((skewed_block(), any::<bool>()), 1..25),
        pct in 5u32..=25,
    ) {
        let cfg = DiConfig::for_nodes(4);
        let t = ErrorThreshold::from_percent(pct).unwrap();
        let mut enc = DiEncoder::di_vaxx(cfg, Avcl::new(t));
        let mut dec = DiDecoder::new(cfg);
        for (block, approx) in &blocks {
            let block = block.clone().with_approximable(*approx);
            let e = enc.encode(&block, NodeId(1));
            let r = dec.decode(&e, NodeId(0));
            if *approx {
                for (p, a) in block.words().iter().zip(r.block.words()) {
                    let err = Avcl::relative_error(*p, *a, DataType::Int).unwrap();
                    prop_assert!(err <= pct as f64 / 100.0 + 1e-12);
                }
            } else {
                prop_assert_eq!(&r.block, &block);
            }
            for (_, note) in r.notifications {
                enc.apply_notification(NodeId(1), note);
            }
        }
    }
}

mod bd_properties {
    use super::*;
    use anoc_compression::bd::{BdDecoder, BdEncoder};

    fn clustered_block() -> impl Strategy<Value = CacheBlock> {
        (
            any::<i32>(),
            prop::collection::vec(-40_000i32..=40_000, 1..=31),
        )
            .prop_map(|(base, offsets)| {
                let mut words = vec![base];
                words.extend(offsets.iter().map(|o| base.wrapping_add(*o)));
                CacheBlock::from_i32(&words)
            })
    }

    proptest! {
        /// BD-COMP round-trips any block bit-exactly.
        #[test]
        fn bd_comp_lossless(block in super::int_block()) {
            let mut enc = BdEncoder::bd_comp();
            let e = enc.encode(&block, NodeId(1));
            prop_assert_eq!(e.word_count() as usize, block.len());
            let d = BdDecoder::new().decode(&e, NodeId(0)).block;
            prop_assert_eq!(d, block);
        }

        /// BD-COMP never inflates beyond one flag bit per word (+ the tag).
        #[test]
        fn bd_comp_bounded_expansion(block in super::int_block()) {
            let mut enc = BdEncoder::bd_comp();
            let e = enc.encode(&block, NodeId(1));
            prop_assert!(
                u64::from(e.payload_bits()) <= block.size_bits() + block.len() as u64 + 3
            );
        }

        /// Clustered (low intra-variance) blocks actually compress.
        #[test]
        fn bd_comp_compresses_clusters(block in clustered_block()) {
            prop_assume!(block.len() >= 8);
            let mut enc = BdEncoder::bd_comp();
            let e = enc.encode(&block, NodeId(1));
            prop_assert!(
                u64::from(e.payload_bits()) < block.size_bits(),
                "{} bits for a {}-bit clustered block",
                e.payload_bits(),
                block.size_bits()
            );
        }

        /// BD-VAXX respects the threshold on approximable data and is exact
        /// on precise data.
        #[test]
        fn bd_vaxx_threshold(block in clustered_block(), pct in 5u32..=25, approx in any::<bool>()) {
            let block = block.with_approximable(approx);
            let t = ErrorThreshold::from_percent(pct).unwrap();
            let mut enc = BdEncoder::bd_vaxx(Avcl::new(t));
            let e = enc.encode(&block, NodeId(1));
            let d = BdDecoder::new().decode(&e, NodeId(0)).block;
            if approx {
                for (p, a) in block.words().iter().zip(d.words()) {
                    let err = Avcl::relative_error(*p, *a, DataType::Int).unwrap();
                    prop_assert!(err <= pct as f64 / 100.0 + 1e-12, "{p:#x} -> {a:#x}");
                }
            } else {
                prop_assert_eq!(d, block);
            }
        }
    }
}

mod lz_properties {
    use super::*;
    use anoc_compression::lz::{LzConfig, LzDecoder, LzEncoder};
    use anoc_core::codec::WordCode;

    fn lz_at(pct: u32) -> LzEncoder {
        let t = if pct == 0 {
            ErrorThreshold::exact()
        } else {
            ErrorThreshold::from_percent(pct).unwrap()
        };
        LzEncoder::lz_vaxx(LzConfig::default(), Avcl::new(t))
    }

    proptest! {
        /// Threshold 0 round-trips any block bit-exactly (every accepted
        /// match degenerates to equality).
        #[test]
        fn lz_exact_roundtrip(block in super::int_block()) {
            let mut enc = lz_at(0);
            let e = enc.encode(&block, NodeId(1));
            prop_assert_eq!(e.word_count() as usize, block.len());
            let d = LzDecoder::new().decode(&e, NodeId(0)).block;
            prop_assert_eq!(d, block);
        }

        /// Accepts-implies-bound: every decoded word of an approximable
        /// block lies within the configured threshold of the golden word,
        /// under arbitrary per-encoder stream history.
        #[test]
        fn lz_accepts_implies_bound(
            blocks in prop::collection::vec((super::skewed_block(), any::<bool>()), 1..20),
            pct in 1u32..=50,
        ) {
            let mut enc = lz_at(pct);
            let mut dec = LzDecoder::new();
            for (block, approx) in &blocks {
                let block = block.clone().with_approximable(*approx);
                let e = enc.encode(&block, NodeId(1));
                let d = dec.decode(&e, NodeId(0)).block;
                if *approx {
                    for (p, a) in block.words().iter().zip(d.words()) {
                        let err = Avcl::relative_error(*p, *a, DataType::Int).unwrap();
                        prop_assert!(err <= pct as f64 / 100.0 + 1e-12, "{p:#x} -> {a:#x}");
                    }
                } else {
                    prop_assert_eq!(&d, &block);
                }
            }
        }

        /// Float path: value error bounded on normal floats.
        #[test]
        fn lz_float_threshold(vals in prop::collection::vec(prop::num::f32::NORMAL, 1..=32)) {
            let mut enc = lz_at(10);
            let block = CacheBlock::from_f32(&vals);
            let d = LzDecoder::new().decode(&enc.encode(&block, NodeId(1)), NodeId(0)).block;
            for (p, a) in vals.iter().zip(d.as_f32()) {
                prop_assert!(((a - p) / p).abs() <= 0.10 + 1e-6, "{p} -> {a}");
            }
        }

        /// Structural invariants of the emitted stream: spans cover the
        /// block exactly, every distance is in range and backed by enough
        /// window, and no foreign code kinds appear.
        #[test]
        fn lz_stream_well_formed(block in super::skewed_block(), pct in 0u32..=50) {
            let cfg = LzConfig::default();
            let mut enc = lz_at(pct);
            let e = enc.encode(&block, NodeId(1));
            let seed_len = anoc_compression::lz::SEED_DICT.len();
            let mut covered = 0usize;
            for code in e.codes() {
                match *code {
                    WordCode::Raw { .. } => covered += 1,
                    WordCode::Match { distance, len, dist_bits, .. } => {
                        prop_assert!(len >= 1 && len <= cfg.max_match);
                        prop_assert!(distance >= 1);
                        prop_assert!((distance as usize) <= cfg.max_distance);
                        prop_assert!(
                            (distance as usize) <= seed_len + covered,
                            "distance {distance} exceeds window at word {covered}"
                        );
                        prop_assert!(dist_bits == 3 || dist_bits == 7);
                        covered += len as usize;
                    }
                    ref other => prop_assert!(false, "foreign code {other:?}"),
                }
            }
            prop_assert_eq!(covered, block.len());
        }
    }
}
