//! Snapshot integration tests: save/restore must be bit-exact (byte-stable
//! blobs, identical resumed behaviour at any shard count), stale or corrupt
//! blobs must fail as typed errors, and a fault-injection campaign forked
//! from a snapshot must reproduce the uninterrupted run's violation curve
//! exactly.

use anoc_compression::{DiConfig, DiDecoder, DiEncoder};
use anoc_core::avcl::Avcl;
use anoc_core::data::{CacheBlock, NodeId};
use anoc_core::rng::Pcg32;
use anoc_core::threshold::ErrorThreshold;
use anoc_noc::{FaultPlan, NocConfig, NocSim, NodeCodec, SnapshotError};
use proptest::prelude::*;

fn baseline_sim(config: NocConfig) -> NocSim {
    let n = config.num_nodes();
    NocSim::new(config, (0..n).map(|_| NodeCodec::baseline()).collect())
}

/// A DI-VAXX network: the codecs carry learned dictionary state, so a round
/// trip exercises the codec save/load hooks, not just the kernel.
fn di_vaxx_sim(config: NocConfig, threshold: ErrorThreshold) -> NocSim {
    let n = config.num_nodes();
    let codecs = (0..n)
        .map(|_| {
            let c = DiConfig::for_nodes(n);
            NodeCodec::new(
                Box::new(DiEncoder::di_vaxx(c, Avcl::new(threshold))),
                Box::new(DiDecoder::new(c)),
            )
        })
        .collect();
    NocSim::new(config, codecs)
}

/// Offers one cycle's deterministic traffic, keyed only on `(salt, cycle)`
/// so the original and a restored simulation can be driven identically.
fn offer_traffic(sim: &mut NocSim, salt: u64, cycle: u64) {
    let nodes = sim.num_nodes();
    let mut rng = Pcg32::seed_from_u64(salt ^ cycle.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    for node in 0..nodes {
        if rng.below(100) >= 6 {
            continue;
        }
        let mut d = rng.below(nodes as u32) as usize;
        if d == node {
            d = (d + 1) % nodes;
        }
        let base = rng.next_u32() as i32 & 0x00FF_FFF0;
        let words: Vec<i32> = (0..16)
            .map(|i| base + (rng.below(8) as i32) + i % 2)
            .collect();
        sim.enqueue_data(
            NodeId(node as u16),
            NodeId(d as u16),
            CacheBlock::from_i32(&words),
        );
    }
}

/// Runs `cycles` steps of deterministic traffic, discarding deliveries.
fn run_traffic(sim: &mut NocSim, salt: u64, from: u64, cycles: u64) {
    for c in from..from + cycles {
        offer_traffic(sim, salt, c);
        sim.step();
        sim.discard_delivered();
    }
}

/// Renders everything a sweep cell reports, so equality here is equality of
/// the experiment's observable output.
fn fingerprint(sim: &NocSim) -> String {
    let s = sim.stats();
    let f = &s.faults;
    format!(
        "cyc={} pk={} dp={} fi={} fd={} ql={} nl={} bf={} enc={}/{}/{} bits={}/{} q={:.12} hist_p99={} max={} flips={} stalls={} checked={} viol={} lost={}",
        s.cycles,
        s.packets,
        s.data_packets,
        s.flits_injected,
        s.flits_delivered,
        s.queue_lat_sum,
        s.net_lat_sum,
        s.baseline_data_flits,
        s.encode.exact_encoded,
        s.encode.approx_encoded,
        s.encode.raw,
        s.encode.bits_in,
        s.encode.bits_out,
        s.quality.quality(),
        s.latency_histogram.percentile(99.0),
        s.latency_histogram.max(),
        f.bit_flips,
        f.port_stalls,
        f.bound_checked_words,
        f.bound_violations,
        f.words_lost,
    )
}

const FP: u64 = 0xA55A_1234_5678_9ABC;

#[test]
fn round_trip_is_byte_identical_and_resumes_exactly() {
    let threshold = ErrorThreshold::from_percent(10).expect("valid");
    let mut sim = di_vaxx_sim(NocConfig::paper_4x4_cmesh(), threshold);
    sim.begin_measurement();
    run_traffic(&mut sim, 1, 0, 400);
    assert!(sim.outstanding_packets() > 0, "want packets mid-flight");

    let blob = sim.save_snapshot(FP).expect("save");

    // Restored state re-serializes to the identical byte sequence.
    let mut restored = di_vaxx_sim(NocConfig::paper_4x4_cmesh(), threshold);
    restored.restore_snapshot(&blob, FP).expect("restore");
    let blob2 = restored.save_snapshot(FP).expect("re-save");
    assert_eq!(
        blob, blob2,
        "serialize → restore → serialize must be stable"
    );

    // The restored simulation is indistinguishable from the original.
    run_traffic(&mut sim, 1, 400, 400);
    run_traffic(&mut restored, 1, 400, 400);
    assert!(sim.try_drain(100_000).expect("drain original"));
    assert!(restored.try_drain(100_000).expect("drain restored"));
    sim.record_unfinished();
    restored.record_unfinished();
    assert_eq!(fingerprint(&sim), fingerprint(&restored));
}

#[test]
fn restore_at_any_shard_count_is_bit_identical() {
    let mut source = baseline_sim(NocConfig::mesh_3x3());
    source.begin_measurement();
    run_traffic(&mut source, 2, 0, 300);
    let blob = source.save_snapshot(FP).expect("save");
    run_traffic(&mut source, 2, 300, 300);
    assert!(source.try_drain(100_000).expect("drain"));
    let want = fingerprint(&source);

    for shards in [1usize, 2, 3, 4] {
        let mut sim = baseline_sim(NocConfig::mesh_3x3());
        sim.set_shards(shards);
        sim.restore_snapshot(&blob, FP).expect("restore");
        run_traffic(&mut sim, 2, 300, 300);
        assert!(sim.try_drain(100_000).expect("drain"));
        assert_eq!(fingerprint(&sim), want, "shard count {shards} diverged");
    }

    // And the reverse direction: a sharded save restores serially.
    let mut sharded = baseline_sim(NocConfig::mesh_3x3());
    sharded.set_shards(3);
    sharded.begin_measurement();
    run_traffic(&mut sharded, 2, 0, 300);
    let blob3 = sharded.save_snapshot(FP).expect("save sharded");
    let mut serial = baseline_sim(NocConfig::mesh_3x3());
    serial.restore_snapshot(&blob3, FP).expect("restore serial");
    run_traffic(&mut serial, 2, 300, 300);
    assert!(serial.try_drain(100_000).expect("drain"));
    assert_eq!(fingerprint(&serial), want);
}

/// Satellite: a fault campaign forked from a snapshot must re-arm
/// `set_fault_plan` / `set_watchdog` / `set_bound_check` *before* restoring,
/// and then reproduce the uninterrupted run bit-exactly — including the
/// monotonic bound-violation curve over the bit-flip rate.
#[test]
fn fault_active_fork_preserves_the_violation_curve() {
    let threshold = ErrorThreshold::from_percent(10).expect("valid");
    let watchdog = 50_000;
    let curve: Vec<(String, String)> = [2_000u32, 50_000, 400_000]
        .iter()
        .map(|&ppm| {
            let plan = FaultPlan::bit_flips(11, ppm);
            // Uninterrupted run: warmup + measurement in one life.
            let mut cold = baseline_sim(NocConfig::mesh_3x3());
            cold.set_fault_plan(plan);
            cold.set_watchdog(watchdog);
            cold.set_bound_check(threshold);
            cold.begin_measurement();
            run_traffic(&mut cold, 3, 0, 250);
            let blob = cold.save_snapshot(FP).expect("save mid-campaign");
            run_traffic(&mut cold, 3, 250, 250);
            cold.try_drain(100_000).expect("drain cold");

            // Forked run: fresh sim, re-arm, then restore (the restored
            // fault-RNG cursor and progress clock overwrite what arming
            // reset — the documented ordering contract).
            let mut warm = baseline_sim(NocConfig::mesh_3x3());
            warm.set_fault_plan(plan);
            warm.set_watchdog(watchdog);
            warm.set_bound_check(threshold);
            warm.restore_snapshot(&blob, FP).expect("restore");
            run_traffic(&mut warm, 3, 250, 250);
            warm.try_drain(100_000).expect("drain warm");
            (fingerprint(&cold), fingerprint(&warm))
        })
        .collect();
    for (cold, warm) in &curve {
        assert_eq!(cold, warm);
    }
    // The violation curve itself is still monotone in the flip rate.
    let viol: Vec<u64> = curve
        .iter()
        .map(|(c, _)| {
            c.split_whitespace()
                .find_map(|kv| kv.strip_prefix("viol="))
                .and_then(|v| v.parse().ok())
                .expect("viol field")
        })
        .collect();
    assert!(viol.windows(2).all(|w| w[0] <= w[1]), "{viol:?}");
    assert!(*viol.last().expect("nonempty") > 0, "{viol:?}");
}

/// Tentpole regression: a run with an *armed per-flow QoS controller* and an
/// *active lossy-link plan* saved mid-run must restore bit-identically at a
/// different shard count — controller percents, cooldowns, lazily installed
/// encoder thresholds and the loss-RNG cursor all resume exactly. The
/// arming calls come *before* `restore_snapshot` (the fault-campaign
/// ordering contract); the restored state overwrites what arming reset.
#[test]
fn qos_and_loss_active_fork_restores_exactly_across_shard_counts() {
    use anoc_core::control::QosSpec;
    use anoc_noc::LossPlan;

    let threshold = ErrorThreshold::from_percent(20).expect("valid");
    let spec = QosSpec::paper(970_000);
    let plan = LossPlan::scaled(17, 5_000, 100);
    let arm = |sim: &mut NocSim| {
        sim.set_qos(spec);
        sim.set_loss_plan(plan);
        sim.set_bound_check(threshold);
    };

    // Uninterrupted run: enough cycles that at least two control epochs
    // fire (epoch is 500 cycles) and the lossy links erase words, so the
    // snapshot carries genuinely adapted controller state.
    let mut cold = di_vaxx_sim(NocConfig::mesh_3x3(), threshold);
    arm(&mut cold);
    cold.begin_measurement();
    run_traffic(&mut cold, 5, 0, 1_100);
    assert!(
        cold.stats().faults.words_lost > 0,
        "lossy plan should have erased words before the save"
    );
    let percents_at_save = cold.qos_percents().expect("armed bank");
    assert!(
        percents_at_save.iter().any(|&p| p != spec.initial_percent),
        "controllers should have adapted before the save: {percents_at_save:?}"
    );
    let blob = cold.save_snapshot(FP).expect("save mid-campaign");
    run_traffic(&mut cold, 5, 1_100, 600);
    assert!(cold.try_drain(100_000).expect("drain cold"));
    let want = fingerprint(&cold);

    for shards in [1usize, 2, 4] {
        // The restoring sim is built with *exact-threshold* codecs — the
        // shape of the harness's staged path — so this also proves restore
        // reprograms the encoders from the serialized per-node installed
        // percents rather than trusting construction state.
        let mut warm = di_vaxx_sim(NocConfig::mesh_3x3(), ErrorThreshold::exact());
        warm.set_shards(shards);
        arm(&mut warm);
        warm.restore_snapshot(&blob, FP).expect("restore");
        assert_eq!(
            warm.qos_percents().expect("armed bank"),
            percents_at_save,
            "controller state must resume exactly"
        );
        run_traffic(&mut warm, 5, 1_100, 600);
        assert!(warm.try_drain(100_000).expect("drain warm"));
        assert_eq!(fingerprint(&warm), want, "shard count {shards} diverged");
    }

    // Armament mismatch is a typed structural error, not silent divergence:
    // the blob says a QoS bank exists, the target sim has none.
    let mut unarmed = di_vaxx_sim(NocConfig::mesh_3x3(), threshold);
    unarmed.set_loss_plan(plan);
    unarmed.set_bound_check(threshold);
    let err = unarmed
        .restore_snapshot(&blob, FP)
        .expect_err("unarmed target accepted a QoS-armed blob");
    assert_eq!(err, SnapshotError::Structure("QoS armament mismatch"));
}

#[test]
fn stale_or_corrupt_blobs_fail_as_typed_errors() {
    let mut sim = baseline_sim(NocConfig::mesh_3x3());
    run_traffic(&mut sim, 4, 0, 100);
    let blob = sim.save_snapshot(FP).expect("save");

    // Truncations at every prefix of the header and a mid-body cut: all
    // must surface as an error, never a panic or a half-restored sim.
    for cut in [0, 4, 7, 8, 11, 12, 19, 20, blob.len() / 2, blob.len() - 1] {
        let mut target = baseline_sim(NocConfig::mesh_3x3());
        let err = target
            .restore_snapshot(&blob[..cut], FP)
            .expect_err("truncated blob accepted");
        assert!(
            matches!(err, SnapshotError::Truncated | SnapshotError::BadMagic),
            "cut at {cut}: {err}"
        );
    }

    // Foreign file: wrong magic.
    let mut bad = blob.clone();
    bad[0] ^= 0xFF;
    let err = baseline_sim(NocConfig::mesh_3x3())
        .restore_snapshot(&bad, FP)
        .expect_err("bad magic accepted");
    assert_eq!(err, SnapshotError::BadMagic);

    // Stale format: wrong version word (bytes 8..12, little-endian). The
    // previous on-disk generation (v1, before the QoS/loss planes) must be
    // rejected the same way as an unknown future version.
    for stale_version in [1u32, 99] {
        let mut stale = blob.clone();
        stale[8..12].copy_from_slice(&stale_version.to_le_bytes());
        let err = baseline_sim(NocConfig::mesh_3x3())
            .restore_snapshot(&stale, FP)
            .expect_err("wrong version accepted");
        assert_eq!(err, SnapshotError::BadVersion(stale_version));
    }

    // Different configuration: fingerprint mismatch.
    let err = baseline_sim(NocConfig::mesh_3x3())
        .restore_snapshot(&blob, FP ^ 1)
        .expect_err("wrong fingerprint accepted");
    assert_eq!(err, SnapshotError::FingerprintMismatch);

    // A geometry mismatch is caught by the structural echo even when the
    // fingerprint (wrongly) matches.
    let err = baseline_sim(NocConfig::paper_4x4_cmesh())
        .restore_snapshot(&blob, FP)
        .expect_err("wrong geometry accepted");
    assert_eq!(err, SnapshotError::Structure("network geometry"));

    // Trailing garbage means the blob is not what was saved.
    let mut padded = blob.clone();
    padded.push(0);
    let err = baseline_sim(NocConfig::mesh_3x3())
        .restore_snapshot(&padded, FP)
        .expect_err("trailing bytes accepted");
    assert_eq!(err, SnapshotError::Structure("trailing bytes"));
}

#[test]
fn unclean_states_refuse_to_save() {
    // Undrained deliveries: the log is driver-facing state a restored run
    // could not reproduce.
    let mut sim = baseline_sim(NocConfig::mesh_3x3());
    sim.enqueue_control(NodeId(0), NodeId(8));
    assert!(sim.drain(500));
    let err = sim.save_snapshot(FP).expect_err("undrained deliveries");
    assert!(matches!(err, SnapshotError::Unclean(_)), "{err}");
    sim.drain_delivered();
    sim.save_snapshot(FP).expect("clean after draining");

    // Tracing holds per-packet history keyed by ids a restored run reuses.
    let mut traced = baseline_sim(NocConfig::mesh_3x3());
    traced.enable_tracing();
    let err = traced.save_snapshot(FP).expect_err("tracing active");
    assert!(matches!(err, SnapshotError::Unclean(_)), "{err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// serialize → restore → serialize is byte-identical for arbitrary
    /// mid-flight states (same shard count), and the resumed run matches.
    #[test]
    fn round_trip_byte_identity(
        salt in 0u64..1_000_000,
        warm in 1u64..300,
        shards in 1usize..4,
    ) {
        let mut sim = baseline_sim(NocConfig::mesh_3x3());
        sim.set_shards(shards);
        sim.begin_measurement();
        run_traffic(&mut sim, salt, 0, warm);
        let blob = sim.save_snapshot(salt).expect("save");
        let mut restored = baseline_sim(NocConfig::mesh_3x3());
        restored.set_shards(shards);
        restored.restore_snapshot(&blob, salt).expect("restore");
        let blob2 = restored.save_snapshot(salt).expect("re-save");
        prop_assert_eq!(&blob, &blob2);
        run_traffic(&mut sim, salt, warm, 100);
        run_traffic(&mut restored, salt, warm, 100);
        prop_assert!(sim.try_drain(100_000).expect("drain"));
        prop_assert!(restored.try_drain(100_000).expect("drain"));
        prop_assert_eq!(fingerprint(&sim), fingerprint(&restored));
    }
}
