//! NoC integration tests exercising codec-coupled behaviour that the unit
//! tests (baseline codecs only) cannot reach: in-band dictionary
//! notifications, the §4.3 latency-hiding optimizations, and allocation
//! fairness under sustained contention.

use anoc_compression::di::{DiConfig, DiDecoder, DiEncoder};
use anoc_core::avcl::Avcl;
use anoc_core::data::{CacheBlock, NodeId};
use anoc_core::rng::Pcg32;
use anoc_core::threshold::ErrorThreshold;
use anoc_noc::{NocConfig, NocSim, NodeCodec, PacketKind};

fn di_codecs(nodes: usize, in_band: bool) -> Vec<NodeCodec> {
    let _ = in_band;
    let cfg = DiConfig::for_nodes(nodes);
    let t = ErrorThreshold::from_percent(10).expect("valid");
    (0..nodes)
        .map(|_| {
            NodeCodec::new(
                Box::new(DiEncoder::di_vaxx(cfg, Avcl::new(t))),
                Box::new(DiDecoder::new(cfg)),
            )
        })
        .collect()
}

#[test]
fn in_band_notifications_travel_as_control_packets() {
    let mut config = NocConfig::mesh_3x3();
    config.notify_in_band = true;
    let nodes = config.num_nodes();
    let mut sim = NocSim::new(config, di_codecs(nodes, true));
    // Repeated data from node 0 to node 8, spaced out so earlier blocks are
    // decoded (and the dictionary learned) before later ones are encoded:
    // the decoder must send install notifications back as real single-flit
    // control packets.
    for round in 0..8 {
        sim.enqueue_data(NodeId(0), NodeId(8), CacheBlock::from_i32(&[0xBEEF; 16]));
        let _ = round;
        sim.run(200);
    }
    assert!(sim.drain(20_000));
    let delivered = sim.drain_delivered();
    let controls = delivered
        .iter()
        .filter(|d| d.kind == PacketKind::Control)
        .count();
    let datas = delivered
        .iter()
        .filter(|d| d.kind == PacketKind::Data)
        .count();
    assert_eq!(datas, 8);
    assert!(
        controls >= 1,
        "dictionary installs should appear as control packets"
    );
    // All notification packets flow decoder -> encoder (node 8 -> node 0).
    for d in delivered.iter().filter(|d| d.kind == PacketKind::Control) {
        assert_eq!(d.src, NodeId(8));
        assert_eq!(d.dest, NodeId(0));
    }
    // And the dictionary did its job: later blocks compress.
    assert!(
        sim.stats().encode.encoded_fraction() > 0.3,
        "{:?}",
        sim.stats().encode
    );
}

#[test]
fn latency_hiding_reduces_exposed_compression_latency() {
    // A single packet into an empty NI pays the exposed compression latency;
    // with both optimizations it pays comp - 1, without them the full comp.
    let run = |hide: bool, overlap: bool| {
        let mut config = NocConfig::mesh_3x3();
        config.hide_compression = hide;
        config.va_overlap = overlap;
        let nodes = config.num_nodes();
        let t = ErrorThreshold::from_percent(10).expect("valid");
        let codecs = (0..nodes)
            .map(|_| {
                NodeCodec::new(
                    Box::new(anoc_compression::fp::FpEncoder::fp_vaxx(Avcl::new(t))),
                    Box::new(anoc_compression::fp::FpDecoder::new()),
                )
            })
            .collect();
        let mut sim = NocSim::new(config, codecs);
        sim.enqueue_data(NodeId(0), NodeId(8), CacheBlock::from_i32(&[7; 16]));
        assert!(sim.drain(10_000));
        sim.stats().avg_queue_latency()
    };
    let with_overlap = run(true, true);
    let without_overlap = run(true, false);
    // The VA overlap shaves exactly one exposed cycle for a lone packet.
    assert!(
        (without_overlap - with_overlap - 1.0).abs() < 1e-9,
        "with {with_overlap} vs without {without_overlap}"
    );
    // With an empty queue hide_compression alone changes nothing (nothing to
    // amortize against) — the exposed latency is the same.
    let no_hiding = run(false, false);
    assert!((no_hiding - without_overlap).abs() < 1e-9);
}

#[test]
fn queue_overlap_hides_compression_under_backlog() {
    // With a backlog, hide_compression removes the exposed latency entirely
    // for the queued packets.
    let run = |hide: bool| {
        let mut config = NocConfig::mesh_3x3();
        config.hide_compression = hide;
        config.va_overlap = false;
        let nodes = config.num_nodes();
        let t = ErrorThreshold::from_percent(10).expect("valid");
        let codecs = (0..nodes)
            .map(|_| {
                NodeCodec::new(
                    Box::new(anoc_compression::fp::FpEncoder::fp_vaxx(Avcl::new(t))),
                    Box::new(anoc_compression::fp::FpDecoder::new()),
                )
            })
            .collect();
        let mut sim = NocSim::new(config, codecs);
        for _ in 0..10 {
            sim.enqueue_data(
                NodeId(0),
                NodeId(8),
                CacheBlock::from_i32(&[0x12345678; 16]),
            );
        }
        assert!(sim.drain(20_000));
        sim.stats().queue_lat_sum
    };
    let hidden = run(true);
    let exposed = run(false);
    assert!(
        hidden < exposed,
        "queue overlap should hide compression: {hidden} vs {exposed}"
    );
}

#[test]
fn drain_phase_deliveries_still_count() {
    // A packet created inside the measurement window but delivered after
    // `end_measurement()` (the standard warmup/measure/drain methodology)
    // must still contribute its delivered flits. Gating delivery accounting
    // on the window being open undercounts exactly the window's tail.
    let config = NocConfig::mesh_3x3();
    let nodes = config.num_nodes();
    let mut sim = NocSim::new(config, (0..nodes).map(|_| NodeCodec::baseline()).collect());
    sim.begin_measurement();
    sim.enqueue_data(NodeId(0), NodeId(8), CacheBlock::from_i32(&[3; 16]));
    sim.run(2); // still in flight
    sim.end_measurement();
    assert!(sim.drain(10_000));
    let s = sim.stats();
    assert_eq!(s.packets, 1);
    assert_eq!(s.flits_injected, 9);
    assert_eq!(
        s.flits_delivered, s.flits_injected,
        "measured flits delivered during the drain phase must count"
    );
}

#[test]
fn short_queue_cannot_absorb_compression_latency() {
    // §4.3: with latency hiding, compression overlaps the queue wait — but
    // a packet behind a short queue still pays the residual compression
    // cycles that have not elapsed by the time it reaches the queue head.
    // A 1-deep queue shifts the overlap window; it does not erase it.
    let mut config = NocConfig::mesh_3x3();
    config.hide_compression = true;
    config.va_overlap = false;
    let nodes = config.num_nodes();
    let t = ErrorThreshold::from_percent(10).expect("valid");
    let codecs = (0..nodes)
        .map(|_| {
            NodeCodec::new(
                Box::new(anoc_compression::fp::FpEncoder::fp_vaxx(Avcl::new(t))),
                Box::new(anoc_compression::fp::FpDecoder::new()),
            )
        })
        .collect();
    let mut sim = NocSim::new(config, codecs);
    sim.enable_tracing();
    // A single-flit control packet ahead: the data packet reaches the queue
    // head after ~2 cycles, well before its 3 compression cycles elapse.
    sim.enqueue_control(NodeId(0), NodeId(8));
    let pid = sim.enqueue_data(NodeId(0), NodeId(8), CacheBlock::from_i32(&[7; 16]));
    assert!(sim.drain(10_000));
    let trace = sim.trace(pid).expect("tracing enabled");
    let injected = trace
        .iter()
        .find(|(_, e)| *e == anoc_noc::packet::TraceEvent::Injected)
        .expect("packet was injected")
        .0;
    let comp = 3; // FP encoder compression latency (no VA-overlap credit)
    assert!(
        injected >= comp,
        "data packet injected at {injected}, before its {comp} compression cycles elapsed"
    );
}

#[test]
fn switch_allocation_is_fair_under_contention() {
    // Three nodes hammer one destination; per-source delivered counts should
    // be within a reasonable band of each other (round-robin arbitration).
    let config = NocConfig::mesh_3x3();
    let nodes = config.num_nodes();
    let mut sim = NocSim::new(config, (0..nodes).map(|_| NodeCodec::baseline()).collect());
    let sources = [NodeId(0), NodeId(2), NodeId(6)];
    let mut offered = std::collections::BTreeMap::new();
    for round in 0..600 {
        if round % 2 == 0 {
            for s in sources {
                sim.enqueue_data(s, NodeId(4), CacheBlock::from_i32(&[1; 16]));
                *offered.entry(s).or_insert(0u32) += 1;
            }
        }
        sim.step();
    }
    sim.drain(100_000);
    let delivered = sim.drain_delivered();
    let mut per_src = std::collections::BTreeMap::new();
    for d in &delivered {
        *per_src.entry(d.src).or_insert(0u32) += 1;
    }
    let counts: Vec<u32> = sources.iter().map(|s| per_src[s]).collect();
    let min = *counts.iter().min().expect("three sources");
    let max = *counts.iter().max().expect("three sources");
    assert_eq!(counts.iter().sum::<u32>() as usize, delivered.len());
    assert!(
        max - min <= max / 3 + 2,
        "unfair delivery counts: {counts:?}"
    );
}

/// Runs a fixed uniform-random workload (baseline codecs, warmup +
/// measurement + full drain inside the measurement window) and renders every
/// statistic and activity counter into one string. The workload deliberately
/// avoids the paths whose accounting the measurement-window and
/// latency-hiding fixes intentionally changed (no `end_measurement()` before
/// draining, zero-latency codecs), so the fingerprint pins the *kernel*:
/// any slab/scratch-buffer/worklist refactor must reproduce it bit for bit.
fn kernel_fingerprint(config: NocConfig) -> String {
    kernel_fingerprint_sharded(config, 1, 400, 800)
}

/// The same workload, on a kernel partitioned into `shards` spatial shards.
/// DESIGN.md §10's invariant is that the result is bit-identical for any
/// shard count, so this must reproduce `kernel_fingerprint` exactly.
fn kernel_fingerprint_sharded(
    config: NocConfig,
    shards: usize,
    warmup: u64,
    measure: u64,
) -> String {
    let nodes = config.num_nodes();
    let mut sim = NocSim::new(config, (0..nodes).map(|_| NodeCodec::baseline()).collect());
    sim.set_shards(shards);
    let mut rng = Pcg32::seed_from_u64(0xA90C);
    let offer = |sim: &mut NocSim, rng: &mut Pcg32| {
        for node in 0..nodes {
            let roll = rng.below(100);
            if roll >= 6 {
                continue;
            }
            let mut d = rng.below(nodes as u32) as usize;
            if d == node {
                d = (d + 1) % nodes;
            }
            if roll < 4 {
                sim.enqueue_control(NodeId(node as u16), NodeId(d as u16));
            } else {
                let w = rng.next_u32() as i32;
                sim.enqueue_data(
                    NodeId(node as u16),
                    NodeId(d as u16),
                    CacheBlock::from_i32(&[w; 16]),
                );
            }
        }
    };
    for _ in 0..warmup {
        offer(&mut sim, &mut rng);
        sim.step();
    }
    sim.begin_measurement();
    for _ in 0..measure {
        offer(&mut sim, &mut rng);
        sim.step();
    }
    assert!(sim.drain(100_000), "workload failed to drain");
    sim.record_unfinished();
    let s = sim.stats();
    let a = sim.activity_report();
    format!(
        "cyc={} pk={} dp={} cp={} ql={} nl={} dl={} fi={} dfi={} cfi={} fd={} bdf={} unf={} hist={} p50={} p99={} bw={} br={} va={} xb={} lt={}",
        s.cycles,
        s.packets,
        s.data_packets,
        s.control_packets,
        s.queue_lat_sum,
        s.net_lat_sum,
        s.decode_lat_sum,
        s.flits_injected,
        s.data_flits_injected,
        s.control_flits_injected,
        s.flits_delivered,
        s.baseline_data_flits,
        s.unfinished,
        s.latency_histogram.samples(),
        s.latency_histogram.percentile(50.0),
        s.latency_histogram.percentile(99.0),
        a.routers.buffer_writes,
        a.routers.buffer_reads,
        a.routers.vc_allocs,
        a.routers.crossbar_traversals,
        a.routers.link_traversals,
    )
}

/// Determinism guard for the allocation-free kernel refactor: these strings
/// were captured from the pre-refactor `HashMap`-based kernel (PR 1 state)
/// and every subsequent kernel must reproduce them exactly.
#[test]
fn kernel_refactor_is_behavior_preserving() {
    assert_eq!(
        kernel_fingerprint(NocConfig::mesh_3x3()),
        "cyc=821 pk=446 dp=138 cp=308 ql=347 nl=5872 dl=0 fi=1550 dfi=1242 cfi=308 fd=1550 \
         bdf=1242 unf=0 hist=446 p50=13 p99=47 bw=6484 br=6484 va=1844 xb=6484 lt=4235"
    );
    assert_eq!(
        kernel_fingerprint(NocConfig::paper_4x4_cmesh()),
        "cyc=846 pk=1517 dp=510 cp=1007 ql=1829 nl=28511 dl=0 fi=5597 dfi=4590 cfi=1007 fd=5597 \
         bdf=4590 unf=0 hist=1517 p50=19 p99=63 bw=29454 br=29454 va=8102 xb=29454 lt=21172"
    );
    assert_eq!(
        kernel_fingerprint(NocConfig::mesh_8x8()),
        "cyc=854 pk=3162 dp=1064 cp=2098 ql=4127 nl=90706 dl=0 fi=11674 dfi=9576 cfi=2098 \
         fd=11674 bdf=9576 unf=0 hist=3162 p50=27 p99=79 bw=107774 br=107774 va=29230 xb=107774 \
         lt=90593"
    );
}

/// Shard-count independence (DESIGN.md §10): the two-phase barrier must make
/// the sharded kernel bit-identical to the serial one — every statistic and
/// every activity counter — on the paper topology and on a scale-out 16×16
/// concentrated mesh whose partition crosses many boundary links.
#[test]
fn sharded_kernel_is_bit_identical_across_shard_counts() {
    let serial = kernel_fingerprint_sharded(NocConfig::paper_4x4_cmesh(), 1, 400, 800);
    for shards in [2, 4] {
        assert_eq!(
            kernel_fingerprint_sharded(NocConfig::paper_4x4_cmesh(), shards, 400, 800),
            serial,
            "4x4 cmesh fingerprint diverged at {shards} shards"
        );
    }
    // The serial 4x4 fingerprint is also pinned in
    // `kernel_refactor_is_behavior_preserving`, so shard-independence here
    // transitively pins the sharded kernel to the golden string.
    let serial_16 = kernel_fingerprint_sharded(NocConfig::cmesh_16x16(), 1, 200, 400);
    for shards in [2, 4] {
        assert_eq!(
            kernel_fingerprint_sharded(NocConfig::cmesh_16x16(), shards, 200, 400),
            serial_16,
            "16x16 cmesh fingerprint diverged at {shards} shards"
        );
    }
}

#[test]
fn shard_count_is_clamped_and_queryable() {
    let config = NocConfig::mesh_3x3();
    let nodes = config.num_nodes();
    let mut sim = NocSim::new(config, (0..nodes).map(|_| NodeCodec::baseline()).collect());
    assert_eq!(sim.shard_count(), 1);
    sim.set_shards(4);
    assert_eq!(sim.shard_count(), 4);
    sim.set_shards(100); // clamped to the 9 routers
    assert_eq!(sim.shard_count(), 9);
    sim.set_shards(1);
    assert_eq!(sim.shard_count(), 1);
}

#[test]
fn drain_reports_failure_when_deadline_too_short() {
    let config = NocConfig::mesh_3x3();
    let nodes = config.num_nodes();
    let mut sim = NocSim::new(config, (0..nodes).map(|_| NodeCodec::baseline()).collect());
    for _ in 0..50 {
        sim.enqueue_data(NodeId(0), NodeId(8), CacheBlock::from_i32(&[1; 16]));
    }
    assert!(!sim.drain(10), "50 big packets cannot drain in 10 cycles");
    assert!(sim.outstanding_packets() > 0);
    assert!(sim.drain(100_000), "and they do drain eventually");
}

#[test]
fn traced_pipeline_timing_is_three_cycles_per_hop() {
    use anoc_noc::packet::TraceEvent;
    let config = NocConfig::mesh_3x3();
    let nodes = config.num_nodes();
    let mut sim = NocSim::new(config, (0..nodes).map(|_| NodeCodec::baseline()).collect());
    sim.enable_tracing();
    // Node 0 -> node 2: two X hops, uncontended.
    let pid = sim.enqueue_control(NodeId(0), NodeId(2));
    assert!(sim.drain(1_000));
    let trace = sim.trace(pid).expect("tracing enabled").to_vec();
    // Created at 0, injected next cycle, first router +1 (link), second
    // router +3 (BW cycle + VA/SA cycle + ST/LT), eject +3 more.
    let at = |ev: TraceEvent| {
        trace
            .iter()
            .find(|(_, e)| *e == ev)
            .unwrap_or_else(|| panic!("missing {ev:?} in {trace:?}"))
            .0
    };
    assert_eq!(at(TraceEvent::Created), 0);
    let injected = at(TraceEvent::Injected);
    let r0 = at(TraceEvent::RouterArrival { router: 0 });
    let r1 = at(TraceEvent::RouterArrival { router: 1 });
    let r2 = at(TraceEvent::RouterArrival { router: 2 });
    let ejected = at(TraceEvent::Ejected);
    assert_eq!(r0, injected + 1, "NI link is one cycle");
    assert_eq!(r1 - r0, 3, "three-stage router pipeline per hop");
    assert_eq!(r2 - r1, 3);
    assert_eq!(ejected - r2, 3, "ejection passes through the last router");
    assert_eq!(
        at(TraceEvent::Completed),
        ejected,
        "control packets decode in 0 cycles"
    );
    // Untracked packets have no trace.
    assert!(sim.trace(pid + 1).is_none());
}

fn lz_codecs(nodes: usize, percent: u32) -> Vec<NodeCodec> {
    use anoc_compression::lz::{LzConfig, LzDecoder, LzEncoder};
    let t = if percent == 0 {
        ErrorThreshold::exact()
    } else {
        ErrorThreshold::from_percent(percent).expect("valid")
    };
    (0..nodes)
        .map(|_| {
            NodeCodec::new(
                Box::new(LzEncoder::lz_vaxx(LzConfig::default(), Avcl::new(t))),
                Box::new(LzDecoder::new()),
            )
        })
        .collect()
}

#[test]
fn lz_vaxx_delivers_within_bound_through_the_noc() {
    // End-to-end: LZ-VAXX codecs in the NIs, the bound auditor armed at the
    // same 10% the encoder approximates at. Every delivered word must sit
    // within the threshold of what was enqueued, and the auditor must agree.
    use anoc_core::data::DataType;
    let config = NocConfig::mesh_3x3();
    let nodes = config.num_nodes();
    let mut sim = NocSim::new(config, lz_codecs(nodes, 10));
    sim.set_bound_check(ErrorThreshold::from_percent(10).expect("valid"));
    let mut rng = Pcg32::seed_from_u64(0x12F0);
    let mut sent = Vec::new();
    for _ in 0..12 {
        // Benchmark-shaped data: runs of a base value with small jitter
        // (inside the 10% budget), zeros, and some noise words.
        let base = (rng.next_u32() >> 12) as i32 + 1;
        let words: Vec<i32> = (0..16)
            .map(|i| match i % 4 {
                0 | 1 => base + (rng.below(1 + base as u32 / 16) as i32),
                2 => 0,
                _ => (rng.next_u32() >> rng.below(24)) as i32,
            })
            .collect();
        let block = CacheBlock::from_i32(&words);
        sent.push(block.clone());
        sim.enqueue_data(NodeId(0), NodeId(8), block);
        sim.run(100); // spaced, so deliveries stay in order
    }
    assert!(sim.drain(20_000));
    assert!(
        sim.take_fatal_error().is_none(),
        "bound checker must not fire on a fault-free LZ-VAXX run"
    );
    let delivered: Vec<_> = sim
        .drain_delivered()
        .into_iter()
        .filter(|d| d.kind == PacketKind::Data)
        .collect();
    assert_eq!(delivered.len(), sent.len());
    for (orig, d) in sent.iter().zip(&delivered) {
        let got = d.block.as_ref().expect("data packet has a block");
        for (p, a) in orig.words().iter().zip(got.words()) {
            let err = Avcl::relative_error(*p, *a, DataType::Int).unwrap();
            assert!(err <= 0.10 + 1e-9, "word {p:#x} -> {a:#x} err {err}");
        }
    }
    let s = sim.stats();
    assert!(s.faults.bound_checked_words > 0, "auditor saw no words");
    assert_eq!(s.faults.bound_violations, 0);
    assert!(
        s.encode.bits_out < s.encode.bits_in,
        "LZ-VAXX failed to compress: {:?}",
        s.encode
    );
}

#[test]
fn lz_vaxx_seed_dictionary_is_a_fault_site() {
    // The dict-corruption fault site must reach the LZ encoder's seed
    // dictionary: with corruption at every opportunity the injector's
    // counter climbs, and the run completes (violations are non-fatal while
    // faults are active).
    use anoc_noc::FaultPlan;
    let config = NocConfig::mesh_3x3();
    let nodes = config.num_nodes();
    let mut sim = NocSim::new(config, lz_codecs(nodes, 10));
    sim.set_fault_plan(FaultPlan {
        seed: 7,
        dict_corrupt_ppm: 1_000_000,
        ..FaultPlan::none()
    });
    sim.set_bound_check(ErrorThreshold::from_percent(10).expect("valid"));
    for i in 0..10 {
        sim.enqueue_data(
            NodeId(0),
            NodeId(8),
            CacheBlock::from_i32(&[i, i, 1000 + i, 1000 + i]),
        );
        sim.run(100);
    }
    assert!(sim.drain(20_000));
    assert!(sim.take_fatal_error().is_none());
    let s = sim.stats();
    assert!(
        s.faults.dict_corruptions >= 10,
        "every data enqueue should corrupt a seed slot: {:?}",
        s.faults
    );
    assert!(s.faults.bound_checked_words > 0);
}
