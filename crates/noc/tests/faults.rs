//! Fault-injection integration tests: inert plans must be bit-identical to
//! no plan at all, seeded plans must be reproducible, the bound checker's
//! violation curve must track the bit-flip rate, and the watchdog must turn
//! a credit-starvation deadlock into a structured error instead of a hang.

use anoc_core::data::{CacheBlock, NodeId};
use anoc_core::rng::Pcg32;
use anoc_core::threshold::ErrorThreshold;
use anoc_noc::{FaultPlan, NocConfig, NocSim, NodeCodec, SimError};

/// Runs a fixed uniform-random workload under `plan` (with the bound checker
/// armed) and renders the statistics that matter for fault experiments.
fn fault_fingerprint(plan: Option<FaultPlan>) -> String {
    let config = NocConfig::mesh_3x3();
    let nodes = config.num_nodes();
    let mut sim = NocSim::new(config, (0..nodes).map(|_| NodeCodec::baseline()).collect());
    if let Some(plan) = plan {
        sim.set_fault_plan(plan);
    }
    sim.set_bound_check(ErrorThreshold::from_percent(10).expect("valid"));
    sim.set_watchdog(50_000);
    let mut rng = Pcg32::seed_from_u64(0xFA17);
    sim.begin_measurement();
    for _ in 0..600 {
        for node in 0..nodes {
            if rng.below(100) >= 5 {
                continue;
            }
            let mut d = rng.below(nodes as u32) as usize;
            if d == node {
                d = (d + 1) % nodes;
            }
            let w = rng.next_u32() as i32;
            sim.enqueue_data(
                NodeId(node as u16),
                NodeId(d as u16),
                CacheBlock::from_i32(&[w; 16]),
            );
        }
        sim.step();
    }
    sim.try_drain(100_000).expect("drain must not deadlock");
    let s = sim.stats();
    let f = &s.faults;
    format!(
        "cyc={} pk={} fi={} fd={} nl={} flips={} stalls={} cdrop={} cdup={} dict={} checked={} viol={}",
        s.cycles,
        s.packets,
        s.flits_injected,
        s.flits_delivered,
        s.net_lat_sum,
        f.bit_flips,
        f.port_stalls,
        f.credits_dropped,
        f.credits_duplicated,
        f.dict_corruptions,
        f.bound_checked_words,
        f.bound_violations,
    )
}

#[test]
fn inert_fault_plans_are_bit_identical_to_no_plan() {
    let bare = fault_fingerprint(None);
    let none = fault_fingerprint(Some(FaultPlan::none()));
    // Zero rates with a nonzero seed must also be inert: fault sites may not
    // draw from the fault RNG unless their rate is nonzero.
    let seeded_inert = fault_fingerprint(Some(FaultPlan {
        seed: 0xDEAD_BEEF,
        ..FaultPlan::none()
    }));
    assert_eq!(bare, none);
    assert_eq!(bare, seeded_inert);
    assert!(bare.contains("flips=0"), "{bare}");
    assert!(bare.contains("viol=0"), "{bare}");
    assert!(
        !bare.contains("checked=0"),
        "bound checker never ran: {bare}"
    );
}

#[test]
fn seeded_fault_plans_are_reproducible() {
    let plan = FaultPlan {
        seed: 7,
        link_bit_flip_ppm: 20_000,
        port_stall_ppm: 5_000,
        stall_cycles: 3,
        credit_drop_ppm: 0,
        credit_dup_ppm: 0,
        dict_corrupt_ppm: 0,
    };
    let a = fault_fingerprint(Some(plan));
    let b = fault_fingerprint(Some(plan));
    assert_eq!(a, b);
    assert!(!a.contains("flips=0"), "plan injected nothing: {a}");
    // A different fault seed at the same rates perturbs different bits.
    let c = fault_fingerprint(Some(FaultPlan { seed: 8, ..plan }));
    assert_ne!(a, c);
}

#[test]
fn bound_violations_grow_with_bit_flip_rate() {
    let curve: Vec<(u64, u64, u64)> = [0u32, 2_000, 50_000, 400_000]
        .iter()
        .map(|&ppm| {
            let fp = fault_fingerprint(Some(FaultPlan::bit_flips(11, ppm)));
            let grab = |tag: &str| -> u64 {
                fp.split_whitespace()
                    .find_map(|kv| kv.strip_prefix(tag))
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("missing {tag} in {fp}"))
            };
            (grab("flips="), grab("checked="), grab("viol="))
        })
        .collect();
    // Same workload, so the same words are audited at every rate.
    assert!(curve.windows(2).all(|w| w[0].1 == w[1].1), "{curve:?}");
    // No faults, no flips, no violations.
    assert_eq!((curve[0].0, curve[0].2), (0, 0), "{curve:?}");
    // Flips strictly increase with the rate; violations never decrease and
    // eventually appear.
    assert!(curve.windows(2).all(|w| w[0].0 < w[1].0), "{curve:?}");
    assert!(curve.windows(2).all(|w| w[0].2 <= w[1].2), "{curve:?}");
    assert!(curve.last().expect("nonempty").2 > 0, "{curve:?}");
}

#[test]
fn watchdog_reports_credit_starvation_as_deadlock() {
    let config = NocConfig::mesh_3x3();
    let nodes = config.num_nodes();
    let mut sim = NocSim::new(config, (0..nodes).map(|_| NodeCodec::baseline()).collect());
    // Every credit return is dropped: downstream buffers drain their credit
    // pool and the network wedges with packets in flight.
    sim.set_fault_plan(FaultPlan {
        seed: 1,
        credit_drop_ppm: 1_000_000,
        ..FaultPlan::none()
    });
    sim.set_watchdog(2_000);
    for i in 0..200 {
        let src = (i % nodes) as u16;
        let dest = ((i + 4) % nodes) as u16;
        sim.enqueue_data(
            NodeId(src),
            NodeId(dest),
            CacheBlock::from_i32(&[i as i32; 16]),
        );
    }
    let err = sim.try_drain(1_000_000).expect_err("must deadlock");
    match err {
        SimError::Deadlock(dump) => {
            assert!(dump.live_packets > 0, "{dump}");
            assert!(!dump.stuck.is_empty(), "{dump}");
            assert!(dump.cycle >= dump.last_progress + 2_000, "{dump}");
            // The rendering is the operator-facing diagnostic: it must name
            // the stall and show the oldest stuck packets.
            let text = dump.to_string();
            assert!(text.contains("stuck"), "{text}");
        }
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn watchdog_stays_quiet_on_healthy_runs() {
    let config = NocConfig::mesh_3x3();
    let nodes = config.num_nodes();
    let mut sim = NocSim::new(config, (0..nodes).map(|_| NodeCodec::baseline()).collect());
    sim.set_watchdog(1_000);
    for i in 0..50 {
        sim.enqueue_data(NodeId(0), NodeId(8), CacheBlock::from_i32(&[i; 16]));
    }
    sim.try_drain(100_000).expect("healthy run");
    // Long idle stretches after completion must not trip the watchdog.
    sim.try_run(5_000).expect("idle network is not a deadlock");
    assert_eq!(sim.stats().faults.bound_violations, 0);
}
