//! Property-based tests of the network's delivery guarantees: every offered
//! packet arrives, in full, bit-exact (baseline), at the right node, and the
//! flit books balance — plus the DESIGN.md §10 invariant that sharded and
//! serial execution are bit-identical, faults and failures included.

use anoc_core::data::{CacheBlock, NodeId};
use anoc_core::threshold::ErrorThreshold;
use anoc_noc::{FaultPlan, NocConfig, NocSim, NodeCodec, PacketKind};
use proptest::prelude::*;

fn baseline_sim(config: NocConfig) -> NocSim {
    let n = config.num_nodes();
    NocSim::new(config, (0..n).map(|_| NodeCodec::baseline()).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every offered packet is delivered exactly once at its destination,
    /// regardless of the (src, dest, payload-size) mix.
    #[test]
    fn all_packets_delivered(
        packets in prop::collection::vec((0usize..9, 0usize..9, 0usize..3), 1..60),
    ) {
        let mut sim = baseline_sim(NocConfig::mesh_3x3());
        let mut expected = Vec::new();
        for (s, d, kind) in packets {
            if s == d {
                continue;
            }
            let (src, dest) = (NodeId::from(s), NodeId::from(d));
            match kind {
                0 => {
                    sim.enqueue_control(src, dest);
                    expected.push((dest, None));
                }
                1 => {
                    let block = CacheBlock::from_i32(&[s as i32; 16]);
                    sim.enqueue_data(src, dest, block.clone());
                    expected.push((dest, Some(block)));
                }
                _ => {
                    let block = CacheBlock::from_i32(&[d as i32; 4]);
                    sim.enqueue_data(src, dest, block.clone());
                    expected.push((dest, Some(block)));
                }
            }
        }
        prop_assert!(sim.drain(50_000), "network failed to drain");
        let mut delivered = sim.drain_delivered();
        prop_assert_eq!(delivered.len(), expected.len());
        delivered.sort_by_key(|p| p.id);
        for (got, (dest, block)) in delivered.iter().zip(&expected) {
            prop_assert_eq!(got.dest, *dest);
            prop_assert_eq!(got.block.as_ref(), block.as_ref());
            match (&got.kind, block) {
                (PacketKind::Control, None) | (PacketKind::Data, Some(_)) => {}
                other => prop_assert!(false, "kind mismatch {other:?}"),
            }
        }
    }

    /// Flit conservation: after draining, delivered flits equal injected
    /// flits and no packet is left outstanding.
    #[test]
    fn flit_conservation(
        packets in prop::collection::vec((0usize..32, 0usize..32), 1..80),
    ) {
        let mut sim = baseline_sim(NocConfig::paper_4x4_cmesh());
        for (s, d) in packets {
            if s == d {
                continue;
            }
            sim.enqueue_data(
                NodeId::from(s),
                NodeId::from(d),
                CacheBlock::from_i32(&[7; 16]),
            );
        }
        prop_assert!(sim.drain(100_000));
        let stats = sim.stats();
        prop_assert_eq!(stats.flits_injected, stats.flits_delivered);
        prop_assert_eq!(sim.outstanding_packets(), 0);
        prop_assert_eq!(stats.unfinished, 0);
    }

    /// [`NetStats`] invariants hold at every measure/drain boundary under
    /// random burst traffic: the measured flit books never over-count
    /// deliveries, the latency histogram carries exactly one sample per
    /// completed measured packet, and once the network drains the measured
    /// books balance exactly — packets injected inside the window are
    /// counted on delivery even when that delivery lands during drain.
    #[test]
    fn stats_invariants_across_measurement_boundaries(
        warmup in prop::collection::vec((0usize..9, 0usize..9), 0..20),
        bursts in prop::collection::vec(
            (prop::collection::vec((0usize..9, 0usize..9, 0usize..2), 1..8), 1u64..30),
            1..10,
        ),
        tail_cycles in 0u64..40,
    ) {
        let mut sim = baseline_sim(NocConfig::mesh_3x3());
        // Warmup traffic that is still in flight when measurement starts.
        for (s, d) in warmup {
            if s != d {
                sim.enqueue_control(NodeId::from(s), NodeId::from(d));
            }
        }
        sim.run(25);
        sim.begin_measurement();
        for (packets, gap) in bursts {
            for (s, d, kind) in packets {
                if s == d {
                    continue;
                }
                let (src, dest) = (NodeId::from(s), NodeId::from(d));
                if kind == 0 {
                    sim.enqueue_control(src, dest);
                } else {
                    sim.enqueue_data(src, dest, CacheBlock::from_i32(&[s as i32; 8]));
                }
            }
            sim.run(gap);
            let st = sim.stats();
            prop_assert!(
                st.flits_delivered <= st.flits_injected,
                "mid-window over-count: delivered {} > injected {}",
                st.flits_delivered,
                st.flits_injected,
            );
            prop_assert_eq!(st.latency_histogram.samples(), st.packets);
            prop_assert_eq!(st.packets, st.data_packets + st.control_packets);
        }
        sim.run(tail_cycles);
        // Close the window with measured packets still in flight, then drain.
        sim.end_measurement();
        prop_assert!(sim.drain(100_000), "network failed to drain");
        sim.record_unfinished();
        let st = sim.stats();
        prop_assert_eq!(st.flits_injected, st.flits_delivered);
        prop_assert_eq!(st.latency_histogram.samples(), st.packets);
        prop_assert_eq!(st.packets, st.data_packets + st.control_packets);
        prop_assert_eq!(st.unfinished, 0);
    }

    /// Latency decomposition is internally consistent: queue + net + decode
    /// sums to the reported average, and net latency covers at least the
    /// hop-count pipeline depth.
    #[test]
    fn latency_decomposition_consistent(s in 0usize..9, d in 0usize..9) {
        prop_assume!(s != d);
        let mut sim = baseline_sim(NocConfig::mesh_3x3());
        sim.enqueue_control(NodeId::from(s), NodeId::from(d));
        prop_assert!(sim.drain(10_000));
        let st = sim.stats();
        let total = st.avg_queue_latency() + st.avg_net_latency() + st.avg_decode_latency();
        prop_assert!((total - st.avg_packet_latency()).abs() < 1e-9);
        let hops = sim.mesh().hops(NodeId::from(s), NodeId::from(d)) as f64;
        prop_assert!(st.avg_net_latency() >= 3.0 * hops, "net {} hops {hops}", st.avg_net_latency());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No configuration deadlock: any mesh geometry down to single-VC,
    /// single-flit buffers drains arbitrary traffic (XY + credit flow
    /// control is deadlock-free; this hunts for flow-control bugs).
    #[test]
    fn no_deadlock_under_minimal_resources(
        width in 2usize..=4,
        height in 2usize..=4,
        concentration in 1usize..=2,
        vcs in 1usize..=4,
        vc_buffer in 1usize..=4,
        packets in prop::collection::vec((any::<u16>(), any::<u16>(), 1u32..=20), 1..50),
    ) {
        let config = NocConfig {
            width,
            height,
            concentration,
            vcs,
            vc_buffer,
            ..NocConfig::paper_4x4_cmesh()
        };
        let nodes = config.num_nodes();
        let mut sim = baseline_sim(config);
        let mut offered = 0;
        for (s, d, words) in packets {
            let src = NodeId((s as usize % nodes) as u16);
            let dest = NodeId((d as usize % nodes) as u16);
            if src == dest {
                continue;
            }
            sim.enqueue_data(src, dest, CacheBlock::from_i32(&vec![7; words as usize]));
            offered += 1;
        }
        prop_assert!(sim.drain(500_000), "network deadlocked or livelocked");
        prop_assert_eq!(sim.drain_delivered().len(), offered);
        prop_assert_eq!(sim.stats().flits_injected, sim.stats().flits_delivered);
    }
}

/// Runs one randomized scenario — geometry, threshold, fault plan, watchdog,
/// traffic — at a given shard count and renders everything observable:
/// the `try_drain` outcome (including any `DeadlockDump`/`BoundViolation`
/// payload), the full `NetStats`, and the delivered-packet log.
fn sharded_scenario_transcript(
    config: &NocConfig,
    shards: usize,
    plan: FaultPlan,
    threshold_pct: u32,
    watchdog: u64,
    packets: &[(u16, u16, u32)],
    drain_budget: u64,
) -> String {
    let nodes = config.num_nodes();
    let mut sim = NocSim::new(
        config.clone(),
        (0..nodes).map(|_| NodeCodec::baseline()).collect(),
    );
    sim.set_shards(shards);
    sim.set_fault_plan(plan);
    if let Ok(t) = ErrorThreshold::from_percent(threshold_pct) {
        sim.set_bound_check(t);
    }
    sim.set_watchdog(watchdog);
    for &(s, d, words) in packets {
        let src = NodeId((s as usize % nodes) as u16);
        let dest = NodeId((d as usize % nodes) as u16);
        if src == dest {
            continue;
        }
        sim.enqueue_data(src, dest, CacheBlock::from_i32(&vec![9; words as usize]));
    }
    let outcome = sim.try_drain(drain_budget);
    sim.record_unfinished();
    let delivered = sim.drain_delivered();
    format!(
        "outcome={outcome:?} stats={:?} delivered={delivered:?}",
        sim.stats()
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// DESIGN.md §10: sharded execution is bit-identical to serial execution
    /// — identical `NetStats`, identical delivered packets, and identical
    /// failure outcomes (`DeadlockDump` from credit-starvation deadlocks,
    /// `BoundViolation` payloads) — across random geometries, thresholds and
    /// active fault plans.
    #[test]
    fn sharded_execution_is_bit_identical_to_serial(
        width in 2usize..=4,
        height in 2usize..=4,
        concentration in 1usize..=2,
        vcs in 1usize..=2,
        vc_buffer in 1usize..=2,
        shards in 2usize..=4,
        fseed in any::<u64>(),
        flip_ppm in prop::sample::select(vec![0u32, 20_000, 300_000]),
        stall_ppm in prop::sample::select(vec![0u32, 50_000, 500_000]),
        stall_cycles in 1u32..=5,
        cdrop_ppm in prop::sample::select(vec![0u32, 5_000, 400_000]),
        cdup_ppm in prop::sample::select(vec![0u32, 5_000]),
        threshold_pct in prop::sample::select(vec![0u32, 5, 25]),
        watchdog in prop::sample::select(vec![150u64, 400]),
        drain_budget in prop::sample::select(vec![300u64, 5_000]),
        packets in prop::collection::vec((any::<u16>(), any::<u16>(), 1u32..=16), 1..40),
    ) {
        let config = NocConfig {
            width,
            height,
            concentration,
            vcs,
            vc_buffer,
            ..NocConfig::paper_4x4_cmesh()
        };
        let plan = FaultPlan {
            seed: fseed,
            link_bit_flip_ppm: flip_ppm,
            port_stall_ppm: stall_ppm,
            stall_cycles,
            credit_drop_ppm: cdrop_ppm,
            credit_dup_ppm: cdup_ppm,
            dict_corrupt_ppm: 0, // baseline codecs have no dictionary
        };
        let serial = sharded_scenario_transcript(
            &config, 1, plan, threshold_pct, watchdog, &packets, drain_budget,
        );
        let sharded = sharded_scenario_transcript(
            &config, shards, plan, threshold_pct, watchdog, &packets, drain_budget,
        );
        prop_assert_eq!(serial, sharded, "shard count {} diverged", shards);
    }
}
