//! Versioned binary snapshots of the complete simulator state.
//!
//! A snapshot captures everything [`NocSim`](crate::NocSim) needs to resume
//! bit-identically: routers (VC buffers, credits, allocator round-robin
//! state), NIs and their queues, the slab packet store, the event ring, the
//! fault-RNG cursor, progress bookkeeping and the measurement statistics.
//! The blob starts with a magic, a format version and a caller-supplied
//! configuration fingerprint, so a stale or mismatched snapshot is rejected
//! with a typed [`SnapshotError`] — never misparsed into a plausible-looking
//! simulation (DESIGN.md §11).
//!
//! Deliberately *excluded* from the blob (and why):
//!
//! * the mesh, config and router wiring — pure functions of the
//!   configuration, which the fingerprint pins;
//! * the shard partition and worker threads — snapshots serialize packets
//!   and ring events in a canonical shard-independent order, so a blob
//!   saved at one shard count restores bit-identically at any other;
//! * the delivered-packet log and per-packet traces — observability state
//!   the driver drains each step; saving refuses if either is non-empty;
//! * the bound checker, watchdog, fault *plan*, loss *plan* and QoS *spec*
//!   — armed by the caller, who must re-arm them before restoring (the
//!   restored fault/loss RNG cursors, controller-bank state and progress
//!   clock then overwrite what arming reset; a blob carrying QoS state
//!   refuses to restore into a simulator whose bank is not armed).
//!
//! Serialization uses the little-endian primitives of [`anoc_core::snap`],
//! so blobs are byte-stable across hosts.

use std::fmt;

use anoc_core::codec::{EncodeStats, EncodedBlock, Notification, WordCode};
use anoc_core::data::{CacheBlock, DataType, NodeId};
use anoc_core::metrics::QualityAccumulator;
use anoc_core::snap::{SnapError, SnapReader, SnapWriter};

use crate::faults::FaultStats;
use crate::histogram::LatencyHistogram;
use crate::packet::{Flit, PacketKind, PacketState};
use crate::router::LinkDest;
use crate::stats::NetStats;

/// First eight bytes of every snapshot blob.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"ANOCSNAP";

/// Current snapshot format version. Bump on any layout change.
///
/// v2: packets carry their approximation level and lossy-link erasures,
/// `FaultStats` gained `words_lost`, and the blob serializes the loss-RNG
/// cursor plus (when armed) the per-flow QoS controller bank. v1 blobs
/// predate all of that and are rejected, never misparsed.
pub const SNAPSHOT_VERSION: u32 = 2;

/// A typed failure while saving or restoring a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The blob ended before the expected field.
    Truncated,
    /// The blob does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The blob's format version is not [`SNAPSHOT_VERSION`].
    BadVersion(u32),
    /// The blob was saved under a different configuration fingerprint.
    FingerprintMismatch,
    /// A field decoded to a value inconsistent with the target simulator.
    Structure(&'static str),
    /// The simulator is not in a snapshot-safe state (see the field).
    Unclean(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => {
                write!(f, "snapshot format v{v}, expected v{SNAPSHOT_VERSION}")
            }
            SnapshotError::FingerprintMismatch => {
                write!(f, "snapshot was saved under a different configuration")
            }
            SnapshotError::Structure(what) => write!(f, "inconsistent snapshot field: {what}"),
            SnapshotError::Unclean(what) => write!(f, "state not snapshot-safe: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<SnapError> for SnapshotError {
    fn from(e: SnapError) -> Self {
        match e {
            SnapError::Truncated => SnapshotError::Truncated,
            SnapError::Invalid(what) => SnapshotError::Structure(what),
        }
    }
}

// ---- value helpers shared by the sim serializer --------------------------

pub(crate) fn save_node(w: &mut SnapWriter, n: NodeId) {
    w.u32(n.0 as u32);
}

pub(crate) fn load_node(r: &mut SnapReader<'_>) -> Result<NodeId, SnapError> {
    u16::try_from(r.u32()?)
        .map(NodeId)
        .map_err(|_| SnapError::Invalid("node id"))
}

pub(crate) fn save_opt_u64(w: &mut SnapWriter, v: Option<u64>) {
    match v {
        Some(x) => {
            w.bool(true);
            w.u64(x);
        }
        None => w.bool(false),
    }
}

pub(crate) fn load_opt_u64(r: &mut SnapReader<'_>) -> Result<Option<u64>, SnapError> {
    Ok(if r.bool()? { Some(r.u64()?) } else { None })
}

pub(crate) fn save_opt_usize(w: &mut SnapWriter, v: Option<usize>) {
    match v {
        Some(x) => {
            w.bool(true);
            w.usize(x);
        }
        None => w.bool(false),
    }
}

/// Reads an `Option<usize>` bounded by `limit` (exclusive).
pub(crate) fn load_opt_usize_below(
    r: &mut SnapReader<'_>,
    limit: usize,
    what: &'static str,
) -> Result<Option<usize>, SnapError> {
    if !r.bool()? {
        return Ok(None);
    }
    let v = r.usize()?;
    if v >= limit {
        return Err(SnapError::Invalid(what));
    }
    Ok(Some(v))
}

fn save_dtype(w: &mut SnapWriter, d: DataType) {
    w.u8(match d {
        DataType::Int => 0,
        DataType::F32 => 1,
    });
}

fn load_dtype(r: &mut SnapReader<'_>) -> Result<DataType, SnapError> {
    match r.u8()? {
        0 => Ok(DataType::Int),
        1 => Ok(DataType::F32),
        _ => Err(SnapError::Invalid("data type tag")),
    }
}

pub(crate) fn save_block(w: &mut SnapWriter, b: &CacheBlock) {
    w.usize(b.len());
    for &word in b.words() {
        w.u32(word);
    }
    save_dtype(w, b.dtype());
    w.bool(b.is_approximable());
}

pub(crate) fn load_block(r: &mut SnapReader<'_>) -> Result<CacheBlock, SnapError> {
    let n = r.usize()?;
    if n > 1 << 16 {
        return Err(SnapError::Invalid("cache block length"));
    }
    let mut words = Vec::with_capacity(n);
    for _ in 0..n {
        words.push(r.u32()?);
    }
    let dtype = load_dtype(r)?;
    let approximable = r.bool()?;
    Ok(CacheBlock::new(words, dtype, approximable))
}

fn save_code(w: &mut SnapWriter, c: &WordCode) {
    match *c {
        WordCode::Raw { word, prefix_bits } => {
            w.u8(0);
            w.u32(word);
            w.u8(prefix_bits);
        }
        WordCode::Pattern {
            index,
            adjunct,
            adjunct_bits,
            approx,
        } => {
            w.u8(1);
            w.u8(index);
            w.u32(adjunct);
            w.u8(adjunct_bits);
            w.bool(approx);
        }
        WordCode::ZeroRun { len } => {
            w.u8(2);
            w.u8(len);
        }
        WordCode::Delta {
            delta,
            delta_bits,
            approx,
        } => {
            w.u8(3);
            w.u32(delta as u32);
            w.u8(delta_bits);
            w.bool(approx);
        }
        WordCode::Match {
            distance,
            len,
            dist_bits,
            approx,
        } => {
            w.u8(4);
            w.u32(distance as u32);
            w.u8(len);
            w.u8(dist_bits);
            w.bool(approx);
        }
        WordCode::Dict {
            index,
            index_bits,
            approx,
            pattern,
        } => {
            w.u8(5);
            w.u8(index);
            w.u8(index_bits);
            w.bool(approx);
            w.u32(pattern);
        }
    }
}

fn load_code(r: &mut SnapReader<'_>) -> Result<WordCode, SnapError> {
    Ok(match r.u8()? {
        0 => WordCode::Raw {
            word: r.u32()?,
            prefix_bits: r.u8()?,
        },
        1 => WordCode::Pattern {
            index: r.u8()?,
            adjunct: r.u32()?,
            adjunct_bits: r.u8()?,
            approx: r.bool()?,
        },
        2 => WordCode::ZeroRun { len: r.u8()? },
        3 => WordCode::Delta {
            delta: r.u32()? as i32,
            delta_bits: r.u8()?,
            approx: r.bool()?,
        },
        4 => WordCode::Match {
            distance: u16::try_from(r.u32()?).map_err(|_| SnapError::Invalid("match distance"))?,
            len: r.u8()?,
            dist_bits: r.u8()?,
            approx: r.bool()?,
        },
        5 => WordCode::Dict {
            index: r.u8()?,
            index_bits: r.u8()?,
            approx: r.bool()?,
            pattern: r.u32()?,
        },
        _ => return Err(SnapError::Invalid("word code tag")),
    })
}

pub(crate) fn save_encoded(w: &mut SnapWriter, e: &EncodedBlock) {
    w.usize(e.codes().len());
    for c in e.codes() {
        save_code(w, c);
    }
    save_dtype(w, e.dtype());
    w.bool(e.is_approximable());
}

pub(crate) fn load_encoded(r: &mut SnapReader<'_>) -> Result<EncodedBlock, SnapError> {
    let n = r.usize()?;
    if n > 1 << 16 {
        return Err(SnapError::Invalid("encoded block length"));
    }
    let mut codes = Vec::with_capacity(n);
    for _ in 0..n {
        codes.push(load_code(r)?);
    }
    let dtype = load_dtype(r)?;
    let approximable = r.bool()?;
    Ok(EncodedBlock::new(codes, dtype, approximable))
}

pub(crate) fn save_notification(w: &mut SnapWriter, n: &Notification) {
    match *n {
        Notification::Install {
            pattern,
            index,
            dtype,
        } => {
            w.u8(0);
            w.u32(pattern);
            w.u8(index);
            save_dtype(w, dtype);
        }
        Notification::Invalidate { pattern } => {
            w.u8(1);
            w.u32(pattern);
        }
    }
}

pub(crate) fn load_notification(r: &mut SnapReader<'_>) -> Result<Notification, SnapError> {
    Ok(match r.u8()? {
        0 => Notification::Install {
            pattern: r.u32()?,
            index: r.u8()?,
            dtype: load_dtype(r)?,
        },
        1 => Notification::Invalidate { pattern: r.u32()? },
        _ => return Err(SnapError::Invalid("notification tag")),
    })
}

/// Writes a flit with its slab slot translated by `remap` (to a canonical
/// index on save, back to a slot on restore).
pub(crate) fn save_flit(
    w: &mut SnapWriter,
    f: &Flit,
    remap: &impl Fn(u32) -> Option<u32>,
) -> Result<(), SnapError> {
    let slot = remap(f.slot).ok_or(SnapError::Invalid("flit references a dead slot"))?;
    w.u32(slot);
    w.u32(f.seq);
    w.bool(f.is_tail);
    save_node(w, f.dest);
    w.u64(f.ready_at);
    Ok(())
}

pub(crate) fn load_flit(
    r: &mut SnapReader<'_>,
    remap: &impl Fn(u32) -> Option<u32>,
) -> Result<Flit, SnapError> {
    let canon = r.u32()?;
    let slot = remap(canon).ok_or(SnapError::Invalid("flit references an unknown packet"))?;
    Ok(Flit {
        slot,
        seq: r.u32()?,
        is_tail: r.bool()?,
        dest: load_node(r)?,
        ready_at: r.u64()?,
    })
}

pub(crate) fn save_link_dest(w: &mut SnapWriter, d: LinkDest) {
    match d {
        LinkDest::Router { router, port } => {
            w.u8(0);
            w.usize(router);
            w.usize(port);
        }
        LinkDest::Eject { node } => {
            w.u8(1);
            w.usize(node);
        }
    }
}

pub(crate) fn load_link_dest(
    r: &mut SnapReader<'_>,
    num_routers: usize,
    num_nodes: usize,
) -> Result<LinkDest, SnapError> {
    Ok(match r.u8()? {
        0 => {
            let router = r.usize()?;
            let port = r.usize()?;
            if router >= num_routers {
                return Err(SnapError::Invalid("arrival router id"));
            }
            LinkDest::Router { router, port }
        }
        1 => {
            let node = r.usize()?;
            if node >= num_nodes {
                return Err(SnapError::Invalid("arrival node id"));
            }
            LinkDest::Eject { node }
        }
        _ => return Err(SnapError::Invalid("link destination tag")),
    })
}

/// Serializes one packet's full state. Flit slots are not involved — flits
/// reference packets, not the other way around.
pub(crate) fn save_packet(w: &mut SnapWriter, p: &PacketState) {
    w.u64(p.id);
    save_node(w, p.src);
    save_node(w, p.dest);
    w.u8(match p.kind {
        PacketKind::Control => 0,
        PacketKind::Data => 1,
    });
    w.u64(p.created);
    w.u64(p.ready_at);
    w.u64(p.head_gate);
    save_opt_u64(w, p.inject_start);
    w.u32(p.num_flits);
    w.u32(p.baseline_flits);
    w.u32(p.ejected_flits);
    match &p.payload {
        Some(e) => {
            w.bool(true);
            save_encoded(w, e);
        }
        None => w.bool(false),
    }
    match &p.precise {
        Some(b) => {
            w.bool(true);
            save_block(w, b);
        }
        None => w.bool(false),
    }
    match &p.notification {
        Some(n) => {
            w.bool(true);
            save_notification(w, n);
        }
        None => w.bool(false),
    }
    w.usize(p.corrupt.len());
    for &(word, bit) in &p.corrupt {
        w.u32(word);
        w.u32(bit);
    }
    w.u32(p.approx_level);
    w.usize(p.lost.len());
    for &word in &p.lost {
        w.u32(word);
    }
    w.bool(p.measured);
}

pub(crate) fn load_packet(r: &mut SnapReader<'_>) -> Result<PacketState, SnapError> {
    let id = r.u64()?;
    let src = load_node(r)?;
    let dest = load_node(r)?;
    let kind = match r.u8()? {
        0 => PacketKind::Control,
        1 => PacketKind::Data,
        _ => return Err(SnapError::Invalid("packet kind tag")),
    };
    let created = r.u64()?;
    let ready_at = r.u64()?;
    let head_gate = r.u64()?;
    let inject_start = load_opt_u64(r)?;
    let num_flits = r.u32()?;
    let baseline_flits = r.u32()?;
    let ejected_flits = r.u32()?;
    let payload = if r.bool()? {
        Some(load_encoded(r)?)
    } else {
        None
    };
    let precise = if r.bool()? {
        Some(load_block(r)?)
    } else {
        None
    };
    let notification = if r.bool()? {
        Some(load_notification(r)?)
    } else {
        None
    };
    let nc = r.usize()?;
    if nc > 1 << 24 {
        return Err(SnapError::Invalid("corruption event count"));
    }
    let mut corrupt = Vec::with_capacity(nc);
    for _ in 0..nc {
        let word = r.u32()?;
        let bit = r.u32()?;
        corrupt.push((word, bit));
    }
    let approx_level = r.u32()?;
    let nl = r.usize()?;
    if nl > 1 << 24 {
        return Err(SnapError::Invalid("loss event count"));
    }
    let mut lost = Vec::with_capacity(nl);
    for _ in 0..nl {
        lost.push(r.u32()?);
    }
    let measured = r.bool()?;
    Ok(PacketState {
        id,
        src,
        dest,
        kind,
        created,
        ready_at,
        head_gate,
        inject_start,
        num_flits,
        baseline_flits,
        ejected_flits,
        payload,
        precise,
        notification,
        corrupt,
        approx_level,
        lost,
        measured,
    })
}

/// Serializes the full measurement-window statistics, histogram included.
pub(crate) fn save_stats(w: &mut SnapWriter, s: &NetStats) {
    for v in [
        s.cycles,
        s.packets,
        s.data_packets,
        s.control_packets,
        s.queue_lat_sum,
        s.net_lat_sum,
        s.decode_lat_sum,
        s.flits_injected,
        s.data_flits_injected,
        s.control_flits_injected,
        s.flits_delivered,
        s.baseline_data_flits,
    ] {
        w.u64(v);
    }
    s.encode.save_state(w);
    w.u64(s.quality.words());
    w.f64_bits(s.quality.error_sum());
    w.f64_bits(s.quality.max_relative_error());
    w.u64(s.unfinished);
    let f = &s.faults;
    for v in [
        f.bit_flips,
        f.port_stalls,
        f.credits_dropped,
        f.credits_duplicated,
        f.dict_corruptions,
        f.bound_checked_words,
        f.bound_violations,
        f.words_lost,
    ] {
        w.u64(v);
    }
    w.u64(s.latency_histogram.max());
    let buckets: Vec<(usize, u64)> = s.latency_histogram.nonzero_buckets().collect();
    w.usize(buckets.len());
    for (b, c) in buckets {
        w.usize(b);
        w.u64(c);
    }
}

pub(crate) fn load_stats(r: &mut SnapReader<'_>) -> Result<NetStats, SnapError> {
    let cycles = r.u64()?;
    let packets = r.u64()?;
    let data_packets = r.u64()?;
    let control_packets = r.u64()?;
    let queue_lat_sum = r.u64()?;
    let net_lat_sum = r.u64()?;
    let decode_lat_sum = r.u64()?;
    let flits_injected = r.u64()?;
    let data_flits_injected = r.u64()?;
    let control_flits_injected = r.u64()?;
    let flits_delivered = r.u64()?;
    let baseline_data_flits = r.u64()?;
    let encode = EncodeStats::load_state(r)?;
    let q_words = r.u64()?;
    let q_error_sum = r.f64_bits()?;
    let q_max = r.f64_bits()?;
    let quality = QualityAccumulator::from_raw(q_words, q_error_sum, q_max);
    let unfinished = r.u64()?;
    let faults = FaultStats {
        bit_flips: r.u64()?,
        port_stalls: r.u64()?,
        credits_dropped: r.u64()?,
        credits_duplicated: r.u64()?,
        dict_corruptions: r.u64()?,
        bound_checked_words: r.u64()?,
        bound_violations: r.u64()?,
        words_lost: r.u64()?,
    };
    let hist_max = r.u64()?;
    let nb = r.usize()?;
    if nb > 4096 {
        return Err(SnapError::Invalid("histogram bucket count"));
    }
    let mut buckets = Vec::with_capacity(nb);
    for _ in 0..nb {
        let b = r.usize()?;
        let c = r.u64()?;
        buckets.push((b, c));
    }
    let latency_histogram = LatencyHistogram::from_buckets(buckets, hist_max)
        .ok_or(SnapError::Invalid("histogram bucket index"))?;
    Ok(NetStats {
        cycles,
        packets,
        data_packets,
        control_packets,
        queue_lat_sum,
        net_lat_sum,
        decode_lat_sum,
        flits_injected,
        data_flits_injected,
        control_flits_injected,
        flits_delivered,
        baseline_data_flits,
        encode,
        quality,
        unfinished,
        faults,
        latency_histogram,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        assert!(SnapshotError::BadMagic.to_string().contains("magic"));
        assert!(SnapshotError::BadVersion(7).to_string().contains("v7"));
        assert!(SnapshotError::FingerprintMismatch
            .to_string()
            .contains("configuration"));
        assert!(SnapshotError::Unclean("tracing enabled")
            .to_string()
            .contains("tracing"));
        let e: SnapshotError = SnapError::Truncated.into();
        assert_eq!(e, SnapshotError::Truncated);
        let e: SnapshotError = SnapError::Invalid("x").into();
        assert_eq!(e, SnapshotError::Structure("x"));
    }

    #[test]
    fn word_codes_round_trip() {
        let codes = vec![
            WordCode::Raw {
                word: 0xdead_beef,
                prefix_bits: 3,
            },
            WordCode::Pattern {
                index: 5,
                adjunct: 0x1234,
                adjunct_bits: 16,
                approx: true,
            },
            WordCode::ZeroRun { len: 8 },
            WordCode::Delta {
                delta: -42,
                delta_bits: 8,
                approx: false,
            },
            WordCode::Match {
                distance: 17,
                len: 4,
                dist_bits: 5,
                approx: true,
            },
            WordCode::Dict {
                index: 3,
                index_bits: 3,
                approx: false,
                pattern: 99,
            },
        ];
        let block = EncodedBlock::new(codes, DataType::F32, true);
        let mut w = SnapWriter::new();
        save_encoded(&mut w, &block);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = load_encoded(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back.codes(), block.codes());
        assert_eq!(back.dtype(), block.dtype());
        assert_eq!(back.is_approximable(), block.is_approximable());
    }

    #[test]
    fn bad_tags_are_typed_errors() {
        let mut r = SnapReader::new(&[9]);
        assert!(load_dtype(&mut r).is_err());
        let mut r = SnapReader::new(&[9]);
        assert!(load_code(&mut r).is_err());
        let mut r = SnapReader::new(&[9]);
        assert!(load_notification(&mut r).is_err());
        let mut r = SnapReader::new(&[9]);
        assert!(load_link_dest(&mut r, 4, 8).is_err());
    }
}
