//! NoC configuration (the knobs of Table 1).

/// Configuration of the simulated network.
///
/// The default reproduces Table 1: a 4×4 concentrated 2D mesh (32 nodes, two
/// per router) of three-stage routers at 2 GHz, four virtual channels with
/// four-flit buffers, 64-bit flits, wormhole switching and XY routing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NocConfig {
    /// Mesh width in routers.
    pub width: usize,
    /// Mesh height in routers.
    pub height: usize,
    /// Nodes (NIs) attached to each router.
    pub concentration: usize,
    /// Virtual channels per input port.
    pub vcs: usize,
    /// Buffer depth per virtual channel, in flits.
    pub vc_buffer: usize,
    /// Flit width in bits.
    pub flit_bits: u32,
    /// Overlap compression latency with NI queueing time (§4.3's first
    /// latency-hiding optimization).
    pub hide_compression: bool,
    /// Overlap the header flit's VC arbitration with compression (§4.3's
    /// second optimization), shaving one exposed cycle.
    pub va_overlap: bool,
    /// Ship dictionary notifications as real single-flit control packets
    /// instead of an instantaneous side channel.
    pub notify_in_band: bool,
}

impl NocConfig {
    /// The paper's Table 1 network.
    pub fn paper_4x4_cmesh() -> Self {
        NocConfig {
            width: 4,
            height: 4,
            concentration: 2,
            vcs: 4,
            vc_buffer: 4,
            flit_bits: 64,
            hide_compression: true,
            va_overlap: true,
            notify_in_band: false,
        }
    }

    /// A small 3×3 mesh (the running example of Figure 7).
    pub fn mesh_3x3() -> Self {
        NocConfig {
            width: 3,
            height: 3,
            concentration: 1,
            ..NocConfig::paper_4x4_cmesh()
        }
    }

    /// The 8×8 mesh used for the full-system runs (§5.4).
    pub fn mesh_8x8() -> Self {
        NocConfig {
            width: 8,
            height: 8,
            concentration: 1,
            ..NocConfig::paper_4x4_cmesh()
        }
    }

    /// An arbitrary concentrated mesh with the paper's router parameters
    /// (Table 1 VCs, buffers and flit width) — the scale-out topologies the
    /// ROADMAP targets are instances of this.
    pub fn cmesh(width: usize, height: usize, concentration: usize) -> Self {
        NocConfig {
            width,
            height,
            concentration,
            ..NocConfig::paper_4x4_cmesh()
        }
    }

    /// A datacenter-scale 16×16 concentrated mesh (512 nodes), the smallest
    /// of the ROADMAP's scale-out topologies.
    pub fn cmesh_16x16() -> Self {
        NocConfig::cmesh(16, 16, 2)
    }

    /// Total number of routers.
    pub fn num_routers(&self) -> usize {
        self.width * self.height
    }

    /// Total number of nodes (NIs).
    pub fn num_nodes(&self) -> usize {
        self.num_routers() * self.concentration
    }

    /// Number of payload flits a data payload of `bits` occupies.
    pub fn payload_flits(&self, bits: u32) -> u32 {
        bits.div_ceil(self.flit_bits).max(1)
    }

    /// Total flits of a data packet carrying `bits` of payload (one header
    /// flit plus the payload flits; internal fragmentation in the tail flit
    /// is real, per §5.2.1).
    pub fn data_packet_flits(&self, bits: u32) -> u32 {
        1 + self.payload_flits(bits)
    }

    /// Validates structural soundness.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.width == 0 || self.height == 0 {
            return Err("mesh dimensions must be positive".into());
        }
        if self.concentration == 0 {
            return Err("concentration must be positive".into());
        }
        if self.vcs == 0 {
            return Err("at least one virtual channel is required".into());
        }
        if self.vc_buffer == 0 {
            return Err("VC buffers must hold at least one flit".into());
        }
        if self.flit_bits == 0 {
            return Err("flit width must be positive".into());
        }
        if self.num_nodes() > u16::MAX as usize {
            return Err("node ids are 16-bit".into());
        }
        Ok(())
    }
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig::paper_4x4_cmesh()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_counts() {
        let c = NocConfig::paper_4x4_cmesh();
        assert_eq!(c.num_routers(), 16);
        assert_eq!(c.num_nodes(), 32);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn packet_flit_arithmetic() {
        let c = NocConfig::default();
        // Uncompressed 64 B block: 512 bits -> 8 payload + 1 header.
        assert_eq!(c.data_packet_flits(512), 9);
        // 100 bits round up to 2 flits + header.
        assert_eq!(c.data_packet_flits(100), 3);
        // Even an empty payload needs one flit.
        assert_eq!(c.data_packet_flits(0), 2);
        assert_eq!(c.payload_flits(64), 1);
        assert_eq!(c.payload_flits(65), 2);
    }

    #[test]
    fn validation_catches_zeroes() {
        for f in [
            NocConfig {
                width: 0,
                ..Default::default()
            },
            NocConfig {
                concentration: 0,
                ..Default::default()
            },
            NocConfig {
                vcs: 0,
                ..Default::default()
            },
            NocConfig {
                vc_buffer: 0,
                ..Default::default()
            },
            NocConfig {
                flit_bits: 0,
                ..Default::default()
            },
        ] {
            assert!(f.validate().is_err());
        }
    }

    #[test]
    fn presets() {
        assert_eq!(NocConfig::mesh_3x3().num_nodes(), 9);
        assert_eq!(NocConfig::mesh_8x8().num_nodes(), 64);
        assert_eq!(NocConfig::cmesh_16x16().num_nodes(), 512);
        assert!(NocConfig::cmesh_16x16().validate().is_ok());
        assert_eq!(NocConfig::cmesh(32, 32, 2).num_nodes(), 2048);
    }
}
