//! # anoc-noc
//!
//! A cycle-accurate network-on-chip simulator: wormhole switching,
//! credit-based virtual-channel flow control, three-stage routers, XY routing
//! on (concentrated) 2D meshes, and network interfaces hosting pluggable
//! APPROX-NoC block codecs.
//!
//! This is the substrate the paper evaluates on ("a cycle accurate, in house
//! NoC simulator", §5.1), rebuilt from the parameters of Table 1.
//!
//! ## Example
//!
//! ```
//! use anoc_noc::{NocConfig, NocSim, NodeCodec};
//! use anoc_core::data::{CacheBlock, NodeId};
//!
//! let config = NocConfig::paper_4x4_cmesh();
//! let codecs = (0..config.num_nodes()).map(|_| NodeCodec::baseline()).collect();
//! let mut sim = NocSim::new(config, codecs);
//!
//! sim.enqueue_data(NodeId(0), NodeId(31), CacheBlock::from_i32(&[42; 16]));
//! assert!(sim.drain(1_000));
//! let delivered = sim.drain_delivered();
//! assert_eq!(delivered[0].block.as_ref().unwrap().as_i32(), vec![42; 16]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod faults;
pub mod histogram;
pub mod ni;
pub mod packet;
pub mod router;
mod shard;
pub mod sim;
pub mod snapshot;
pub mod stats;
pub mod topology;

pub use config::NocConfig;
pub use faults::{FaultPlan, FaultStats, LossPlan, SimError};
pub use histogram::LatencyHistogram;
pub use ni::NodeCodec;
pub use packet::{Delivered, PacketId, PacketKind};
pub use sim::NocSim;
pub use snapshot::{SnapshotError, SNAPSHOT_VERSION};
pub use stats::{ActivityReport, NetStats};
pub use topology::{Direction, Mesh};
