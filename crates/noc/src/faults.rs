//! Deterministic fault injection and structured simulation failures.
//!
//! APPROX-NoC's contract is a bounded-error guarantee (§3): every word a
//! VAXX codec approximates must stay within the programmer's `e%`
//! threshold. Nothing in a healthy run exercises that guarantee
//! adversarially, so this module provides a seeded [`FaultPlan`] that can
//! flip payload bits on link traversals, stall router input ports, drop or
//! duplicate flow-control credits, and corrupt encoder dictionary entries —
//! each at an independent parts-per-million rate — plus the structured
//! [`SimError`] the simulator raises when its end-to-end bound checker or
//! no-forward-progress watchdog fires.
//!
//! All rates are integers (parts per million) and the plan carries its own
//! RNG seed, so a plan renders exactly into a campaign cell's content key
//! and the same plan + seed reproduces bit-identically on any thread count.

use std::fmt;

use anoc_core::data::NodeId;

use crate::packet::{PacketId, PacketKind};

/// Denominator of every fault rate: rates are parts per million.
pub const PPM: u32 = 1_000_000;

/// A deterministic, seeded fault-injection plan.
///
/// All rates are parts-per-million probabilities evaluated once per
/// opportunity site (per link traversal, per router arrival, per credit
/// return, per encoded block). A plan with every rate at zero draws no
/// random numbers at all, so it is bit-identical to running without a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    /// Seed of the dedicated fault RNG stream (independent of traffic
    /// seeds, so enabling faults never perturbs offered traffic).
    pub seed: u64,
    /// Per-link-traversal probability (ppm) of flipping one random payload
    /// bit of the traversing data packet.
    pub link_bit_flip_ppm: u32,
    /// Per-router-arrival probability (ppm) of stalling the arriving flit
    /// for [`FaultPlan::stall_cycles`] extra cycles.
    pub port_stall_ppm: u32,
    /// Extra cycles a stalled flit waits before allocation eligibility.
    pub stall_cycles: u32,
    /// Per-credit-return probability (ppm) of losing the credit forever
    /// (drives the network toward credit starvation and deadlock).
    pub credit_drop_ppm: u32,
    /// Per-credit-return probability (ppm) of returning the credit twice.
    pub credit_dup_ppm: u32,
    /// Per-encoded-block probability (ppm) of corrupting one stored entry
    /// of the source NI encoder's dictionary table.
    pub dict_corrupt_ppm: u32,
}

impl FaultPlan {
    /// The inert plan: every rate zero, nothing is ever injected.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            link_bit_flip_ppm: 0,
            port_stall_ppm: 0,
            stall_cycles: 0,
            credit_drop_ppm: 0,
            credit_dup_ppm: 0,
            dict_corrupt_ppm: 0,
        }
    }

    /// A plan that only flips link bits, at `ppm` per traversal.
    pub fn bit_flips(seed: u64, ppm: u32) -> Self {
        FaultPlan {
            seed,
            link_bit_flip_ppm: ppm,
            ..FaultPlan::none()
        }
    }

    /// Whether any fault site has a nonzero rate. Inactive plans draw no
    /// random numbers and perturb nothing.
    pub fn is_active(&self) -> bool {
        self.link_bit_flip_ppm > 0
            || self.port_stall_ppm > 0
            || self.credit_drop_ppm > 0
            || self.credit_dup_ppm > 0
            || self.dict_corrupt_ppm > 0
    }

    /// Canonical single-line rendering for campaign content keys: equal
    /// plans render equally, distinct plans distinctly.
    pub fn key_fragment(&self) -> String {
        format!(
            "fseed={} flip={} stall={}x{} cdrop={} cdup={} dict={}",
            self.seed,
            self.link_bit_flip_ppm,
            self.port_stall_ppm,
            self.stall_cycles,
            self.credit_drop_ppm,
            self.credit_dup_ppm,
            self.dict_corrupt_ppm
        )
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// A deterministic, seeded lossy-link plan — the LORAX-style degradation
/// scenario family: every data-flit link traversal may lose one payload
/// word, at a rate that *scales with how aggressively the payload was
/// approximated* (a lower-swing, further-compressed signal is easier to
/// lose). Lost words arrive zeroed; the delivered-word auditor and bound
/// checker then account the damage like any other degradation.
///
/// Same discipline as [`FaultPlan`]: integer ppm rates, a dedicated RNG
/// seed carried by the plan, and an inert plan draws no random numbers, so
/// it is bit-identical to running without one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LossPlan {
    /// Seed of the dedicated loss RNG stream (independent of the traffic
    /// and fault streams).
    pub seed: u64,
    /// Base per-link-traversal probability (ppm) of erasing one payload
    /// word of the traversing data packet.
    pub loss_ppm: u32,
    /// Additional loss probability (ppm) per percentage point of the
    /// packet's approximation level at encode time: the effective rate of a
    /// packet encoded under an `a%` threshold is
    /// `loss_ppm + approx_scale_ppm * a`, saturating at [`PPM`].
    pub approx_scale_ppm: u32,
}

impl LossPlan {
    /// The inert plan: nothing is ever lost.
    pub fn none() -> Self {
        LossPlan {
            seed: 0,
            loss_ppm: 0,
            approx_scale_ppm: 0,
        }
    }

    /// A plan with a flat per-traversal rate, independent of approximation.
    pub fn uniform(seed: u64, loss_ppm: u32) -> Self {
        LossPlan {
            seed,
            loss_ppm,
            approx_scale_ppm: 0,
        }
    }

    /// A plan whose rate grows with the approximation level.
    pub fn scaled(seed: u64, loss_ppm: u32, approx_scale_ppm: u32) -> Self {
        LossPlan {
            seed,
            loss_ppm,
            approx_scale_ppm,
        }
    }

    /// Whether any traversal can lose anything. Inactive plans draw no
    /// random numbers and perturb nothing.
    pub fn is_active(&self) -> bool {
        self.loss_ppm > 0 || self.approx_scale_ppm > 0
    }

    /// The effective loss rate (ppm) for a packet approximated under an
    /// `approx_percent`% threshold, saturating at [`PPM`].
    pub fn effective_ppm(&self, approx_percent: u32) -> u32 {
        self.loss_ppm
            .saturating_add(self.approx_scale_ppm.saturating_mul(approx_percent))
            .min(PPM)
    }

    /// Canonical single-line rendering for campaign content keys.
    pub fn key_fragment(&self) -> String {
        format!(
            "lseed={} loss={} lscale={}",
            self.seed, self.loss_ppm, self.approx_scale_ppm
        )
    }
}

impl Default for LossPlan {
    fn default() -> Self {
        LossPlan::none()
    }
}

/// Counters of injected faults and bound-checker outcomes, carried inside
/// `NetStats` (reset with the measurement window like every other counter).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Payload bits flipped on link traversals.
    pub bit_flips: u64,
    /// Router arrivals delayed by an injected port stall.
    pub port_stalls: u64,
    /// Flow-control credits dropped (lost forever).
    pub credits_dropped: u64,
    /// Flow-control credits returned twice.
    pub credits_duplicated: u64,
    /// Encoder dictionary entries corrupted.
    pub dict_corruptions: u64,
    /// Delivered data words compared against the golden payload.
    pub bound_checked_words: u64,
    /// Delivered words whose relative error exceeded the active threshold.
    pub bound_violations: u64,
    /// Payload words erased by an active [`LossPlan`] (delivered as zero).
    pub words_lost: u64,
}

/// A structured, diagnosable simulation failure.
#[derive(Debug, Clone)]
pub enum SimError {
    /// The watchdog saw no forward progress for its whole horizon while
    /// packets were still outstanding.
    Deadlock(DeadlockDump),
    /// The end-to-end bound checker caught a delivered word outside the
    /// active error threshold while no faults were being injected.
    BoundViolation(BoundViolation),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock(dump) => write!(f, "network deadlock: {dump}"),
            SimError::BoundViolation(v) => write!(f, "error-bound violation: {v}"),
        }
    }
}

impl std::error::Error for SimError {}

/// One delivered word that broke the threshold guarantee.
#[derive(Debug, Clone)]
pub struct BoundViolation {
    /// Cycle of delivery.
    pub cycle: u64,
    /// The offending packet.
    pub packet: PacketId,
    /// Its source node.
    pub src: NodeId,
    /// Its destination node.
    pub dest: NodeId,
    /// Index of the word inside the block.
    pub word_index: usize,
    /// The golden (pre-approximation) word.
    pub precise: u32,
    /// The delivered word.
    pub approx: u32,
    /// Measured relative error (`f64::INFINITY` for corrupted zeros).
    pub relative_error: f64,
    /// The threshold the word had to respect, in percent.
    pub threshold_percent: u32,
}

impl fmt::Display for BoundViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "packet {} ({}->{}) word {} delivered {:#010x} for golden {:#010x} \
             (relative error {:.4} > {}%) at cycle {}",
            self.packet,
            self.src.index(),
            self.dest.index(),
            self.word_index,
            self.approx,
            self.precise,
            self.relative_error,
            self.threshold_percent,
            self.cycle
        )
    }
}

/// One packet stuck in a deadlocked network, oldest first in the dump.
#[derive(Debug, Clone)]
pub struct StuckPacket {
    /// Packet id.
    pub id: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dest: NodeId,
    /// Control or data.
    pub kind: PacketKind,
    /// Creation cycle.
    pub created: u64,
    /// Cycles since creation at dump time.
    pub age: u64,
    /// Flits already received at the destination.
    pub ejected_flits: u32,
    /// Total flits of the packet.
    pub num_flits: u32,
}

/// Per-output-port flow-control state: for each port, each VC's
/// `(remaining credits, wormhole holder)` where the holder is the
/// `(input port, input VC)` currently owning the wormhole.
pub type PortFlows = Vec<Vec<(u32, Option<(u32, u32)>)>>;

/// Per-router flow-control snapshot: buffered flit count and, for each
/// output port, each VC's remaining credits and current wormhole holder.
#[derive(Debug, Clone)]
pub struct RouterDiag {
    /// Router id.
    pub id: usize,
    /// Flits buffered across all input VCs.
    pub buffered: usize,
    /// Per output port: see [`PortFlows`].
    pub ports: PortFlows,
}

/// The diagnostic dump carried by [`SimError::Deadlock`].
#[derive(Debug, Clone)]
pub struct DeadlockDump {
    /// Cycle at which the watchdog fired.
    pub cycle: u64,
    /// Last cycle with any forward progress.
    pub last_progress: u64,
    /// Packets still outstanding.
    pub live_packets: usize,
    /// Oldest stuck packets (capped for readability).
    pub stuck: Vec<StuckPacket>,
    /// Non-idle routers with their credit/VC occupancy (capped).
    pub routers: Vec<RouterDiag>,
    /// Nodes with a non-empty injection backlog: `(node, queued packets)`.
    pub ni_backlogs: Vec<(usize, usize)>,
}

impl fmt::Display for DeadlockDump {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "no forward progress since cycle {} (now {}), {} packets outstanding",
            self.last_progress, self.cycle, self.live_packets
        )?;
        for p in &self.stuck {
            writeln!(
                f,
                "  stuck packet {} {:?} {}->{} age={} flits={}/{}",
                p.id,
                p.kind,
                p.src.index(),
                p.dest.index(),
                p.age,
                p.ejected_flits,
                p.num_flits
            )?;
        }
        for r in &self.routers {
            write!(f, "  router {} buffered={} credits=", r.id, r.buffered)?;
            for (port, vcs) in r.ports.iter().enumerate() {
                if port > 0 {
                    write!(f, "|")?;
                }
                write!(f, "p{port}:")?;
                for (vc, (credits, holder)) in vcs.iter().enumerate() {
                    if vc > 0 {
                        write!(f, ",")?;
                    }
                    match holder {
                        Some((ip, iv)) => write!(f, "{credits}(held {ip}.{iv})")?,
                        None => write!(f, "{credits}")?,
                    }
                }
            }
            writeln!(f)?;
        }
        for (node, depth) in &self.ni_backlogs {
            writeln!(f, "  ni {node} backlog={depth}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_is_inactive() {
        assert!(!FaultPlan::none().is_active());
        assert!(!FaultPlan::default().is_active());
        assert!(FaultPlan::bit_flips(1, 100).is_active());
        assert!(FaultPlan {
            credit_drop_ppm: 1,
            ..FaultPlan::none()
        }
        .is_active());
    }

    #[test]
    fn key_fragment_distinguishes_plans() {
        let a = FaultPlan::bit_flips(7, 100);
        let b = FaultPlan::bit_flips(7, 200);
        let c = FaultPlan::bit_flips(8, 100);
        assert_ne!(a.key_fragment(), b.key_fragment());
        assert_ne!(a.key_fragment(), c.key_fragment());
        assert_eq!(
            a.key_fragment(),
            FaultPlan::bit_flips(7, 100).key_fragment()
        );
    }

    #[test]
    fn inert_loss_plan_is_inactive() {
        assert!(!LossPlan::none().is_active());
        assert!(!LossPlan::default().is_active());
        assert!(LossPlan::uniform(1, 100).is_active());
        assert!(LossPlan::scaled(1, 0, 10).is_active());
    }

    #[test]
    fn loss_rate_scales_with_approximation_level() {
        let p = LossPlan::scaled(3, 1_000, 500);
        assert_eq!(p.effective_ppm(0), 1_000);
        assert_eq!(p.effective_ppm(10), 6_000);
        assert_eq!(p.effective_ppm(20), 11_000);
        // Saturates at certainty, never overflows.
        let extreme = LossPlan::scaled(3, PPM, u32::MAX);
        assert_eq!(extreme.effective_ppm(100), PPM);
        let flat = LossPlan::uniform(3, 2_000);
        assert_eq!(flat.effective_ppm(20), 2_000);
    }

    #[test]
    fn loss_key_fragment_distinguishes_plans() {
        let a = LossPlan::uniform(7, 100);
        let b = LossPlan::uniform(7, 200);
        let c = LossPlan::uniform(8, 100);
        let d = LossPlan::scaled(7, 100, 5);
        assert_ne!(a.key_fragment(), b.key_fragment());
        assert_ne!(a.key_fragment(), c.key_fragment());
        assert_ne!(a.key_fragment(), d.key_fragment());
        assert_eq!(a.key_fragment(), LossPlan::uniform(7, 100).key_fragment());
    }

    #[test]
    fn errors_render_diagnostics() {
        let v = SimError::BoundViolation(BoundViolation {
            cycle: 42,
            packet: 3,
            src: NodeId(0),
            dest: NodeId(5),
            word_index: 2,
            precise: 1000,
            approx: 2000,
            relative_error: 1.0,
            threshold_percent: 10,
        });
        let s = v.to_string();
        assert!(s.contains("bound violation"), "{s}");
        assert!(s.contains("word 2"), "{s}");

        let d = SimError::Deadlock(DeadlockDump {
            cycle: 100,
            last_progress: 40,
            live_packets: 2,
            stuck: vec![StuckPacket {
                id: 9,
                src: NodeId(1),
                dest: NodeId(2),
                kind: PacketKind::Data,
                created: 10,
                age: 90,
                ejected_flits: 3,
                num_flits: 9,
            }],
            routers: vec![RouterDiag {
                id: 4,
                buffered: 6,
                ports: vec![vec![(0, Some((1, 0))), (4, None)]],
            }],
            ni_backlogs: vec![(1, 3)],
        });
        let s = d.to_string();
        assert!(s.contains("deadlock"), "{s}");
        assert!(s.contains("stuck packet 9"), "{s}");
        assert!(s.contains("router 4"), "{s}");
        assert!(s.contains("ni 1 backlog=3"), "{s}");
    }
}
