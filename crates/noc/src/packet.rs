//! Packets and flits.
//!
//! NoC traffic consists of single-flit control packets (coherence requests,
//! acknowledgements, dictionary notifications) and multi-flit data packets
//! carrying one (possibly compressed) cache block. The header flit is never
//! compressed — it carries the route and is what the VA-overlap optimization
//! arbitrates with (§4.3).

use anoc_core::codec::{EncodedBlock, Notification};
use anoc_core::data::{CacheBlock, NodeId};

/// Unique packet identifier within one simulation.
pub type PacketId = u64;

/// Packet class (Table 1 distinguishes control and data traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// Single-flit control packet.
    Control,
    /// Multi-flit data packet (header + compressed payload).
    Data,
}

/// One flit in flight. Flits reference their packet by its dense slot in the
/// simulator's slab packet store — not by the external [`PacketId`] — so the
/// per-flit hot paths (injection, ejection) are plain array indexing. The
/// payload itself travels in the packet table (the wire size is fully
/// accounted by the packet's flit count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Slab slot of the owning packet in the simulator's packet store.
    pub slot: u32,
    /// Sequence number within the packet (0 = head).
    pub seq: u32,
    /// Whether this is the last flit of the packet.
    pub is_tail: bool,
    /// Destination node (replicated from the header for routing).
    pub dest: NodeId,
    /// Cycle at which the flit finished buffer write and becomes eligible
    /// for allocation (models the BW/RC pipeline stage).
    pub ready_at: u64,
}

impl Flit {
    /// Whether this is the head flit.
    pub fn is_head(&self) -> bool {
        self.seq == 0
    }
}

/// Full simulator-side state of one packet.
#[derive(Debug, Clone)]
pub struct PacketState {
    /// Packet id.
    pub id: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dest: NodeId,
    /// Control or data.
    pub kind: PacketKind,
    /// Cycle the packet was handed to the source NI.
    pub created: u64,
    /// Cycle the packet becomes injectable (compression accounted).
    pub ready_at: u64,
    /// Compression cycles still to be paid when the packet reaches the head
    /// of the injection queue (non-zero only when the §4.3 latency-hiding
    /// optimizations are disabled: compression then serializes with
    /// injection instead of overlapping the queue wait).
    pub head_gate: u64,
    /// Cycle the head flit entered the router (None until injection).
    pub inject_start: Option<u64>,
    /// Total flits.
    pub num_flits: u32,
    /// Flits an uncompressed baseline would need for the same payload
    /// (0 for control packets); accounted at injection for Figure 11.
    pub baseline_flits: u32,
    /// Flits received at the destination NI so far.
    pub ejected_flits: u32,
    /// Encoded payload (data packets).
    pub payload: Option<EncodedBlock>,
    /// The precise, pre-approximation block (simulation metadata for the
    /// data-quality accounting of Figure 9).
    pub precise: Option<CacheBlock>,
    /// In-band dictionary notification (control packets in `notify_in_band`
    /// mode).
    pub notification: Option<Notification>,
    /// Link-fault corruption events recorded while the packet's flits were
    /// in flight: `(word index, bit index)` pairs applied to the decoded
    /// block at delivery. Empty (and allocation-free) without faults.
    pub corrupt: Vec<(u32, u32)>,
    /// The error-threshold percentage the payload was encoded under (0 for
    /// exact encodes and control packets) — the approximation level an
    /// active `LossPlan` scales its per-hop loss rate with.
    pub approx_level: u32,
    /// Payload word indices erased by lossy links while the packet's flits
    /// were in flight; zeroed in the decoded block at delivery. Empty (and
    /// allocation-free) without an active loss plan.
    pub lost: Vec<u32>,
    /// Whether this packet belongs to the measurement window.
    pub measured: bool,
}

/// One event in a packet's traced lifetime (see `NocSim::enable_tracing`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// Handed to the source NI.
    Created,
    /// Head flit entered the router's local input port.
    Injected,
    /// Head flit was written into a router's input buffer.
    RouterArrival {
        /// The router reached.
        router: usize,
    },
    /// Tail flit reached the destination NI.
    Ejected,
    /// Decode finished; packet complete.
    Completed,
}

/// A delivered packet, as reported to the simulation driver.
#[derive(Debug, Clone)]
pub struct Delivered {
    /// Packet id.
    pub id: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dest: NodeId,
    /// Control or data.
    pub kind: PacketKind,
    /// Cycle the packet completed (tail ejected + decode latency).
    pub done_at: u64,
    /// The decoded cache block (data packets).
    pub block: Option<CacheBlock>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_flit_detection() {
        let f = Flit {
            slot: 1,
            seq: 0,
            is_tail: false,
            dest: NodeId(3),
            ready_at: 0,
        };
        assert!(f.is_head());
        let t = Flit {
            seq: 5,
            is_tail: true,
            ..f
        };
        assert!(!t.is_head());
        assert!(t.is_tail);
    }
}
