//! Network-level statistics: the raw material of Figures 9–15.

use anoc_core::codec::{CodecActivity, EncodeStats};
use anoc_core::metrics::QualityAccumulator;

use crate::faults::FaultStats;
use crate::histogram::LatencyHistogram;
use crate::router::RouterActivity;

/// Statistics collected over the measurement window.
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    /// Cycles elapsed inside the measurement window.
    pub cycles: u64,
    /// Completed packets.
    pub packets: u64,
    /// Completed data packets.
    pub data_packets: u64,
    /// Completed control packets.
    pub control_packets: u64,
    /// Sum of NI queueing latency (creation → head flit injection),
    /// including any exposed compression latency.
    pub queue_lat_sum: u64,
    /// Sum of network latency (injection → tail ejection).
    pub net_lat_sum: u64,
    /// Sum of decompression latency.
    pub decode_lat_sum: u64,
    /// Flits injected (all kinds).
    pub flits_injected: u64,
    /// Data flits injected (header + payload of data packets).
    pub data_flits_injected: u64,
    /// Control flits injected.
    pub control_flits_injected: u64,
    /// Flits delivered to NIs.
    pub flits_delivered: u64,
    /// Data flits an uncompressed baseline would have injected for the same
    /// blocks (the normalization denominator of Figure 11).
    pub baseline_data_flits: u64,
    /// Word-encoding statistics aggregated across all encoders (Figure 10).
    pub encode: EncodeStats,
    /// Data value quality (Figure 9's right axis).
    pub quality: QualityAccumulator,
    /// Packets generated but dropped because the simulation ended before
    /// injection (reported, never silently ignored).
    pub unfinished: u64,
    /// Injected-fault and bound-checker counters (all zero without an
    /// active [`crate::faults::FaultPlan`] / bound checker).
    pub faults: FaultStats,
    /// Distribution of end-to-end packet latencies (tail analysis).
    pub latency_histogram: LatencyHistogram,
}

impl NetStats {
    /// Average end-to-end packet latency in cycles.
    pub fn avg_packet_latency(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            (self.queue_lat_sum + self.net_lat_sum + self.decode_lat_sum) as f64
                / self.packets as f64
        }
    }

    /// Average NI queueing latency per packet.
    pub fn avg_queue_latency(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.queue_lat_sum as f64 / self.packets as f64
        }
    }

    /// Average in-network latency per packet.
    pub fn avg_net_latency(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.net_lat_sum as f64 / self.packets as f64
        }
    }

    /// Average decode latency per packet (amortized over all packets, as the
    /// paper presents it).
    pub fn avg_decode_latency(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.decode_lat_sum as f64 / self.packets as f64
        }
    }

    /// Delivered throughput in flits per node per cycle.
    pub fn throughput(&self, nodes: usize) -> f64 {
        if self.cycles == 0 || nodes == 0 {
            0.0
        } else {
            self.flits_delivered as f64 / (self.cycles as f64 * nodes as f64)
        }
    }

    /// Data-flit volume normalized to the uncompressed baseline (Figure 11).
    pub fn normalized_data_flits(&self) -> f64 {
        if self.baseline_data_flits == 0 {
            1.0
        } else {
            self.data_flits_injected as f64 / self.baseline_data_flits as f64
        }
    }
}

/// All hardware activity of a run, for the dynamic power model (Figure 15).
#[derive(Debug, Clone, Copy, Default)]
pub struct ActivityReport {
    /// Aggregate router events.
    pub routers: RouterActivity,
    /// Aggregate encoder events.
    pub encoders: CodecActivity,
    /// Aggregate decoder events.
    pub decoders: CodecActivity,
    /// Cycles simulated (for leakage/static scaling if desired).
    pub cycles: u64,
}

impl ActivityReport {
    /// Average utilization of the router-to-router links in `[0, 1]`.
    pub fn link_utilization(&self, num_links: usize) -> f64 {
        if self.cycles == 0 || num_links == 0 {
            0.0
        } else {
            self.routers.link_traversals as f64 / (self.cycles as f64 * num_links as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_guard_division_by_zero() {
        let s = NetStats::default();
        assert_eq!(s.avg_packet_latency(), 0.0);
        assert_eq!(s.throughput(16), 0.0);
        assert_eq!(s.normalized_data_flits(), 1.0);
    }

    #[test]
    fn latency_decomposition_adds_up() {
        let s = NetStats {
            packets: 4,
            queue_lat_sum: 40,
            net_lat_sum: 80,
            decode_lat_sum: 8,
            ..Default::default()
        };
        assert_eq!(s.avg_queue_latency(), 10.0);
        assert_eq!(s.avg_net_latency(), 20.0);
        assert_eq!(s.avg_decode_latency(), 2.0);
        assert_eq!(s.avg_packet_latency(), 32.0);
    }

    #[test]
    fn link_utilization_bounds() {
        let mut a = ActivityReport {
            cycles: 100,
            ..Default::default()
        };
        a.routers.link_traversals = 240;
        assert!((a.link_utilization(48) - 0.05).abs() < 1e-12);
        assert_eq!(a.link_utilization(0), 0.0);
        assert_eq!(ActivityReport::default().link_utilization(48), 0.0);
    }

    #[test]
    fn throughput_and_normalization() {
        let s = NetStats {
            cycles: 100,
            flits_delivered: 3200,
            data_flits_injected: 60,
            baseline_data_flits: 100,
            ..Default::default()
        };
        assert_eq!(s.throughput(32), 1.0);
        assert_eq!(s.normalized_data_flits(), 0.6);
    }
}
