//! The cycle-accurate network simulation kernel.
//!
//! [`NocSim`] ties together the mesh, routers, NIs and codecs. Each call to
//! [`NocSim::step`] advances one router cycle:
//!
//! 1. link arrivals scheduled for this cycle are written into input buffers
//!    (BW stage) or handed to ejection NIs;
//! 2. every router runs VC + switch allocation and the granted flits start
//!    their switch/link traversal (arriving two cycles later);
//! 3. freed buffer slots are credited back to the upstream hop;
//! 4. every NI injects at most one flit of its head-of-queue packet.
//!
//! A flit written at cycle `a` is allocation-eligible at `a+1` and lands
//! downstream at `g+2` after a grant at `g` — the three-stage router of
//! Table 1.
//!
//! The kernel is allocation-free at steady state: packets live in a slab
//! indexed by the dense slot carried on every flit, the event ring and the
//! allocation scratch vectors are reused across cycles, and only routers
//! with buffered flits are visited (see DESIGN.md).
//!
//! The routers, NIs, event ring and packet slab are spatially partitioned
//! into [`Shard`]s ([`NocSim::set_shards`]); phase A (allocation) and phase
//! B2 (injection) of each cycle run shard-parallel on a persistent
//! [`WorkerSet`], with a serial cycle edge in between exchanging boundary
//! flits and credits. The phase ordering and the serial edge make results
//! bit-identical for any shard count — see `shard.rs` and DESIGN.md §10.

use std::collections::BTreeMap;

use anoc_core::avcl::Avcl;
use anoc_core::codec::Notification;
use anoc_core::control::{FlowControllerBank, QosSpec};
use anoc_core::data::{CacheBlock, NodeId};
use anoc_core::rng::Pcg32;
use anoc_core::threshold::ErrorThreshold;
use anoc_exec::WorkerSet;

use crate::config::NocConfig;
use crate::faults::{
    BoundViolation, DeadlockDump, FaultPlan, LossPlan, RouterDiag, SimError, StuckPacket, PPM,
};
use crate::ni::NodeCodec;
use crate::packet::{Delivered, Flit, PacketId, PacketKind, PacketState, TraceEvent};
use crate::router::{LinkDest, RouterActivity, Upstream};
use crate::shard::{
    build_shards, encode_slot, local_of_slot, shard_of_slot, Arrival, Phase, Shard, StepCtx,
    EVENT_HORIZON, MAX_SHARDS, SLOT_MASK,
};
use crate::snapshot::{
    load_flit, load_link_dest, load_opt_usize_below, load_packet, load_stats, save_flit,
    save_link_dest, save_opt_usize, save_packet, save_stats, SnapshotError, SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
};
use crate::stats::{ActivityReport, NetStats};
use crate::topology::Mesh;

use anoc_core::snap::{SnapReader, SnapWriter};

/// The cycle-accurate NoC simulator.
pub struct NocSim {
    config: NocConfig,
    mesh: Mesh,
    /// Spatial partitions of routers, NIs, ring and packet slab. Always at
    /// least one; with exactly one, the kernel runs fully serially.
    shards: Vec<Shard>,
    /// Owning shard index of every router (and, through a router's attached
    /// nodes, of every node).
    router_shard: Vec<u32>,
    /// Persistent pinned workers for shards `1..n` (shard 0 runs on the
    /// stepping thread); present only with more than one shard.
    workers: Option<WorkerSet<Shard>>,
    codecs: Vec<NodeCodec>,
    live_packets: usize,
    next_pid: PacketId,
    cycle: u64,
    delivered: Vec<Delivered>,
    stats: NetStats,
    measuring: bool,
    tracing: bool,
    /// Keyed by monotonic [`PacketId`], so iteration and dump order are
    /// deterministic (enforced by anoc-lint rule D002).
    traces: BTreeMap<PacketId, Vec<(u64, TraceEvent)>>,
    /// Active fault-injection plan (inert by default).
    faults: FaultPlan,
    /// Dedicated fault RNG stream, seeded from the plan — independent of
    /// every traffic RNG so enabling faults never perturbs offered load.
    fault_rng: Pcg32,
    /// Active lossy-link plan (inert by default).
    loss: LossPlan,
    /// Dedicated loss RNG stream, seeded from the loss plan — independent
    /// of the traffic and fault streams, so the three scenario families
    /// compose without perturbing each other.
    loss_rng: Pcg32,
    /// Per-flow QoS control plane (armed via [`NocSim::set_qos`]).
    qos: Option<FlowControllerBank>,
    /// The threshold percentage currently programmed into each node's
    /// encoder — what the per-flow lazy-install path compares against
    /// before rewriting TCAM mask planes, and the approximation level the
    /// loss model scales with. 0 until a threshold is installed.
    installed_percent: Vec<u32>,
    /// End-to-end bound checker: every delivered data word is compared to
    /// its golden copy against this threshold when set.
    bound_check: Option<ErrorThreshold>,
    /// Watchdog horizon: abort with [`SimError::Deadlock`] after this many
    /// cycles without forward progress while packets are outstanding.
    watchdog: Option<u64>,
    /// Last cycle on which any flit moved, injected, or ejected.
    last_progress: u64,
    /// A fatal condition detected mid-step, surfaced by [`NocSim::try_run`]
    /// and [`NocSim::try_drain`].
    fatal: Option<SimError>,
}

impl std::fmt::Debug for NocSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NocSim")
            .field("cycle", &self.cycle)
            .field("outstanding", &self.live_packets)
            .field("nodes", &self.mesh.num_nodes())
            .finish()
    }
}

/// Inverse of the shard partition: the owning shard index of every router.
fn router_shard_map(shards: &[Shard], num_routers: usize) -> Vec<u32> {
    let mut map = vec![0u32; num_routers];
    for s in shards {
        for owner in &mut map[s.router_lo..s.router_lo + s.routers.len()] {
            *owner = s.index as u32;
        }
    }
    map
}

impl NocSim {
    /// Builds a network. `codecs` must supply one encoder/decoder pair per
    /// node.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `codecs` has the wrong
    /// length.
    pub fn new(config: NocConfig, codecs: Vec<NodeCodec>) -> Self {
        // anoc-lint: allow(C001): documented constructor contract (# Panics)
        config.validate().expect("invalid NoC configuration");
        let mesh = Mesh::new(&config);
        assert_eq!(
            codecs.len(),
            mesh.num_nodes(),
            "one codec pair per node required"
        );
        let shards = build_shards(&config, 1);
        let router_shard = router_shard_map(&shards, mesh.num_routers());
        let num_nodes = mesh.num_nodes();
        NocSim {
            config,
            mesh,
            shards,
            router_shard,
            workers: None,
            codecs,
            live_packets: 0,
            next_pid: 0,
            cycle: 0,
            delivered: Vec::new(),
            stats: NetStats::default(),
            measuring: true,
            tracing: false,
            traces: BTreeMap::new(),
            faults: FaultPlan::none(),
            // anoc-lint: rng-site: inert placeholder; re-seeded by set_fault_plan before any draw
            fault_rng: Pcg32::seed_from_u64(0),
            loss: LossPlan::none(),
            // anoc-lint: rng-site: inert placeholder; re-seeded by set_loss_plan before any draw
            loss_rng: Pcg32::seed_from_u64(0),
            qos: None,
            installed_percent: vec![0; num_nodes],
            bound_check: None,
            watchdog: None,
            last_progress: 0,
            fatal: None,
        }
    }

    /// Repartitions the network into `shards` spatial shards, each stepped
    /// by its own worker thread (shard 0 runs on the calling thread). The
    /// count is clamped to the router count; `1` restores fully serial
    /// stepping. Results are bit-identical for any shard count.
    ///
    /// # Panics
    ///
    /// Panics if called on a simulation that has already stepped or holds
    /// packets — repartitioning moves slab and ring state it does not
    /// migrate.
    pub fn set_shards(&mut self, shards: usize) {
        assert!(
            self.cycle == 0 && self.live_packets == 0,
            "set_shards requires a fresh simulation (cycle 0, no packets in flight)"
        );
        let n = shards.clamp(1, self.mesh.num_routers().min(MAX_SHARDS));
        if n == self.shards.len() {
            return;
        }
        self.shards = build_shards(&self.config, n);
        self.router_shard = router_shard_map(&self.shards, self.mesh.num_routers());
        self.workers = (n > 1).then(|| WorkerSet::new(n - 1, "anoc-shard"));
    }

    /// Number of spatial shards the kernel is partitioned into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Installs a fault-injection plan and seeds the fault RNG from it. An
    /// inert plan ([`FaultPlan::none`]) draws no random numbers, so the run
    /// stays bit-identical to one without any plan.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        // anoc-lint: rng-site: dedicated fault stream, seeded from the plan (thread-count independent)
        self.fault_rng = Pcg32::seed_from_u64(plan.seed);
        self.faults = plan;
    }

    /// The active fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Installs a lossy-link plan and seeds the dedicated loss RNG from it.
    /// An inert plan ([`LossPlan::none`]) draws no random numbers, so the
    /// run stays bit-identical to one without any plan. The loss stream is
    /// independent of both the traffic and the fault streams, so the
    /// scenario families compose without perturbing each other.
    pub fn set_loss_plan(&mut self, plan: LossPlan) {
        // anoc-lint: rng-site: dedicated loss stream, seeded from the plan (thread-count independent)
        self.loss_rng = Pcg32::seed_from_u64(plan.seed);
        self.loss = plan;
    }

    /// The active lossy-link plan.
    pub fn loss_plan(&self) -> &LossPlan {
        &self.loss
    }

    /// Arms (or disarms) the per-flow QoS control plane. An active spec
    /// builds one AIMD controller per (source node, destination class) flow;
    /// each control epoch the realized delivered quality of that flow
    /// tightens or relaxes the flow's error threshold, lazily reprogrammed
    /// into the source encoder on the next enqueue. An inert spec
    /// ([`QosSpec::off`]) disarms the plane entirely.
    ///
    /// The controllers observe *every* delivered data packet (not only
    /// measured ones): the control plane is runtime machinery, not a
    /// statistics consumer, so warmup traffic trains it exactly as the
    /// measurement window does.
    pub fn set_qos(&mut self, spec: QosSpec) {
        self.qos = spec
            .is_active()
            .then(|| FlowControllerBank::new(self.mesh.num_nodes(), spec));
        for slot in &mut self.installed_percent {
            *slot = 0;
        }
    }

    /// The armed QoS spec, if any.
    pub fn qos_spec(&self) -> Option<QosSpec> {
        self.qos.as_ref().map(|bank| *bank.spec())
    }

    /// Current per-flow threshold percentages of the armed QoS plane
    /// (row-major: `node * classes + class`), or `None` when disarmed.
    pub fn qos_percents(&self) -> Option<Vec<u32>> {
        self.qos
            .as_ref()
            .map(|bank| bank.percents().map(|(_, p)| p).collect())
    }

    /// Enables the end-to-end bound checker: every delivered data word is
    /// compared against its golden (pre-approximation) copy. A word outside
    /// `threshold` counts in `NetStats::faults.bound_violations`; without an
    /// active fault plan it is also fatal ([`SimError::BoundViolation`]).
    pub fn set_bound_check(&mut self, threshold: ErrorThreshold) {
        self.bound_check = Some(threshold);
    }

    /// Arms the no-forward-progress watchdog: if `horizon` cycles pass with
    /// outstanding packets and no flit movement, the run aborts with a
    /// [`SimError::Deadlock`] carrying a diagnostic dump. `0` disarms it.
    pub fn set_watchdog(&mut self, horizon: u64) {
        self.watchdog = if horizon == 0 { None } else { Some(horizon) };
        self.last_progress = self.cycle;
    }

    /// Takes the fatal error detected by the bound checker or watchdog, if
    /// any. [`NocSim::try_run`] and [`NocSim::try_drain`] consume it
    /// automatically; this accessor serves callers driving [`NocSim::step`]
    /// directly.
    pub fn take_fatal_error(&mut self) -> Option<SimError> {
        self.fatal.take()
    }

    /// Enables per-packet lifetime tracing (Created / Injected /
    /// RouterArrival / Ejected / Completed events with their cycles).
    /// Intended for debugging and timing verification; off by default.
    pub fn enable_tracing(&mut self) {
        self.tracing = true;
    }

    /// The traced lifetime of a packet, if tracing was enabled before it was
    /// created.
    pub fn trace(&self, id: PacketId) -> Option<&[(u64, TraceEvent)]> {
        self.traces.get(&id).map(Vec::as_slice)
    }

    fn record_trace(&mut self, id: PacketId, at: u64, event: TraceEvent) {
        if self.tracing {
            self.traces.entry(id).or_default().push((at, event));
        }
    }

    /// The simulator configuration.
    pub fn config(&self) -> &NocConfig {
        &self.config
    }

    /// The mesh geometry.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.mesh.num_nodes()
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Statistics of the current measurement window.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Packets created but not yet fully delivered.
    pub fn outstanding_packets(&self) -> usize {
        self.live_packets
    }

    /// Measured packets still undelivered (reported as `unfinished` so a
    /// saturated run never silently drops them from the statistics).
    pub fn record_unfinished(&mut self) {
        self.stats.unfinished = self
            .shards
            .iter()
            .flat_map(|s| s.packets.iter().flatten())
            .filter(|p| p.measured)
            .count() as u64;
    }

    /// Number of packets waiting in `node`'s injection queue.
    pub fn injection_backlog(&self, node: NodeId) -> usize {
        let shard = &self.shards[self.node_shard(node.index())];
        shard.nis[node.index() - shard.node_lo].queue.len()
    }

    /// Starts (or restarts) the measurement window: statistics reset, in-
    /// flight warmup packets are excluded, and subsequently created packets
    /// are measured. Call after warmup.
    pub fn begin_measurement(&mut self) {
        self.stats = NetStats::default();
        self.measuring = true;
        for shard in &mut self.shards {
            for p in shard.packets.iter_mut().flatten() {
                p.measured = false;
            }
        }
    }

    /// The shard owning `node`'s router (nodes follow their router).
    fn node_shard(&self, node: usize) -> usize {
        self.router_shard[node / self.mesh.concentration()] as usize
    }

    /// Stops measuring newly created packets (drain phase).
    pub fn end_measurement(&mut self) {
        self.measuring = false;
    }

    /// Enqueues a single-flit control packet.
    pub fn enqueue_control(&mut self, src: NodeId, dest: NodeId) -> PacketId {
        self.enqueue_control_with(src, dest, None)
    }

    /// Enqueues a data packet carrying `block`. The block is encoded by the
    /// source NI's encoder immediately (the compression latency is accounted
    /// on the injection path per §4.3).
    pub fn enqueue_data(&mut self, src: NodeId, dest: NodeId, block: CacheBlock) -> PacketId {
        // Per-flow QoS: lazily reprogram the source encoder when this flow's
        // controller has moved away from what the encoder currently carries.
        // The compare-before-install keeps TCAM mask-plane rewrites off the
        // common path (thresholds move only at epoch boundaries).
        if let Some(bank) = &self.qos {
            let desired = bank.percent_for(src.index(), dest.index());
            if self.installed_percent[src.index()] != desired {
                self.codecs[src.index()]
                    .encoder
                    .set_error_threshold(bank.threshold_for(src.index(), dest.index()));
                self.installed_percent[src.index()] = desired;
            }
        }
        let approx_level = self.installed_percent[src.index()];
        let encoder = &mut self.codecs[src.index()].encoder;
        if self.faults.dict_corrupt_ppm > 0
            && self.fault_rng.below(PPM) < self.faults.dict_corrupt_ppm
        {
            let entropy =
                ((self.fault_rng.next_u32() as u64) << 32) | self.fault_rng.next_u32() as u64;
            if encoder.inject_table_fault(entropy) {
                self.stats.faults.dict_corruptions += 1;
            }
        }
        let encoded = encoder.encode(&block, dest);
        let comp_latency = encoder.compression_latency();
        let payload_bits = encoded.payload_bits();
        let num_flits = self.config.data_packet_flits(payload_bits);
        let baseline_flits = self.config.data_packet_flits(block.size_bits() as u32);
        if self.measuring {
            self.stats.encode.absorb_block(&encoded);
        }
        let va_credit = u64::from(self.config.va_overlap);
        let comp_exposed = comp_latency.saturating_sub(va_credit);
        // With latency hiding, compression starts at creation and overlaps
        // the queue wait — but the residual cycles past the VA-overlap
        // credit gate injectability regardless of queue depth: a short
        // queue cannot absorb latency that has not elapsed yet (§4.3).
        // Without hiding, the latency is paid at the queue head, serialized
        // with injection.
        let (exposed, head_gate) = if self.config.hide_compression {
            (comp_exposed, 0)
        } else {
            (0, comp_exposed)
        };
        self.push_packet(PacketState {
            id: 0, // assigned by push_packet
            src,
            dest,
            kind: PacketKind::Data,
            created: self.cycle,
            ready_at: self.cycle + exposed,
            head_gate,
            inject_start: None,
            num_flits,
            baseline_flits,
            ejected_flits: 0,
            payload: Some(encoded),
            precise: Some(block),
            notification: None,
            corrupt: Vec::new(),
            approx_level,
            lost: Vec::new(),
            measured: self.measuring,
        })
    }

    fn enqueue_control_with(
        &mut self,
        src: NodeId,
        dest: NodeId,
        notification: Option<Notification>,
    ) -> PacketId {
        self.push_packet(PacketState {
            id: 0,
            src,
            dest,
            kind: PacketKind::Control,
            created: self.cycle,
            ready_at: self.cycle,
            head_gate: 0,
            inject_start: None,
            num_flits: 1,
            baseline_flits: 0,
            ejected_flits: 0,
            payload: None,
            precise: None,
            notification,
            corrupt: Vec::new(),
            approx_level: 0,
            lost: Vec::new(),
            measured: self.measuring,
        })
    }

    fn push_packet(&mut self, mut p: PacketState) -> PacketId {
        let id = self.next_pid;
        self.next_pid += 1;
        p.id = id;
        let src = p.src;
        let created = p.created;
        // A packet lives in its source node's shard: only that shard's NI
        // queue references the slot, so injection stays shard-local.
        let si = self.node_shard(src.index());
        let shard = &mut self.shards[si];
        let slot = match shard.free_slots.pop() {
            Some(s) => {
                shard.packets[local_of_slot(s)] = Some(p);
                s
            }
            None => {
                shard.packets.push(Some(p));
                encode_slot(si, shard.packets.len() - 1)
            }
        };
        self.live_packets += 1;
        shard.nis[src.index() - shard.node_lo].queue.push_back(slot);
        shard.queued += 1;
        self.record_trace(id, created, TraceEvent::Created);
        id
    }

    /// Advances the simulation by one cycle.
    ///
    /// Phase A (shard-parallel) drains each shard's ring slot and runs
    /// allocation; the serial cycle edge applies ejections, link traversals
    /// and credits in shard-concatenation order (globally router-ascending,
    /// identical to the single-shard kernel); phase B2 (shard-parallel)
    /// injects from each shard's NIs; the epilogue merges order-independent
    /// tallies and runs the watchdog.
    pub fn step(&mut self) {
        let now = self.cycle;
        let ctx = StepCtx {
            now,
            faults: self.faults,
            tracing: self.tracing,
        };
        self.run_phase(&ctx, Phase::A);
        let mut progressed = self.cycle_edge(now);
        self.run_phase(&ctx, Phase::B2);
        // Merge phase B2 outputs (all integer sums or per-packet events, so
        // shard order cannot matter; iterated ascending regardless).
        for i in 0..self.shards.len() {
            progressed |= self.shards[i].progressed;
            self.shards[i].progressed = false;
            let t = std::mem::take(&mut self.shards[i].inject_tally);
            self.stats.flits_injected += t.flits;
            self.stats.data_flits_injected += t.data_flits;
            self.stats.control_flits_injected += t.control_flits;
            self.stats.baseline_data_flits += t.baseline_flits;
            if self.tracing {
                let injected = std::mem::take(&mut self.shards[i].injected_traces);
                for pid in injected {
                    self.record_trace(pid, now, TraceEvent::Injected);
                }
            }
        }
        self.cycle = now + 1;
        // QoS control epoch: runs in the serial epilogue, after the phase-B2
        // barrier, so every controller observes a consistent delivered-quality
        // snapshot regardless of shard or thread count. Flows are walked in
        // ascending index order — fully deterministic.
        if let Some(bank) = &mut self.qos {
            if bank.epoch_due(self.cycle) {
                bank.run_epoch();
            }
        }
        if self.measuring {
            self.stats.cycles += 1;
        }
        // Watchdog — forward progress is any arrival, grant or injection.
        // An idle network (no outstanding packets) is trivially live.
        if progressed || self.live_packets == 0 {
            self.last_progress = now;
        } else if let Some(horizon) = self.watchdog {
            if now.saturating_sub(self.last_progress) >= horizon && self.fatal.is_none() {
                self.fatal = Some(SimError::Deadlock(self.deadlock_dump(now)));
            }
        }
    }

    /// Runs one phase on every shard with work: serially with one shard,
    /// otherwise shards `1..n` on the pinned workers with shard 0 on the
    /// stepping thread. Shards are handed to workers by value and received
    /// back at the barrier, so no simulation state is ever shared.
    fn run_phase(&mut self, ctx: &StepCtx, phase: Phase) {
        let Some(workers) = &self.workers else {
            for shard in &mut self.shards {
                if shard.has_work(ctx.now, phase) {
                    shard.run(ctx, phase);
                }
            }
            return;
        };
        let mut outstanding = 0usize;
        for i in 1..self.shards.len() {
            if !self.shards[i].has_work(ctx.now, phase) {
                continue;
            }
            let shard = std::mem::take(&mut self.shards[i]);
            let ctx = *ctx;
            let sent = workers.submit(i - 1, i, shard, move |s| s.run(&ctx, phase));
            assert!(sent, "shard worker {i} terminated");
            outstanding += 1;
        }
        if self.shards[0].has_work(ctx.now, phase) {
            self.shards[0].run(ctx, phase);
        }
        for _ in 0..outstanding {
            let received = workers.recv();
            // A dead worker set cannot return checked-out shard state.
            assert!(received.is_some(), "shard worker set terminated mid-cycle");
            if let Some((tag, shard)) = received {
                self.shards[tag] = shard;
            }
        }
    }

    /// The serial cycle edge between phases A and B2: applies every shard's
    /// deferred phase-A outputs in shard index order. Returns whether
    /// anything progressed.
    fn cycle_edge(&mut self, now: u64) -> bool {
        let mut progressed = false;
        let n = self.shards.len();
        // Phase A bookkeeping: stall tallies, progress flags, and deferred
        // head-arrival traces (resolved here because the packet may live in
        // another shard's slab; done before ejections can free any slot).
        for i in 0..n {
            self.stats.faults.port_stalls += self.shards[i].stall_hits;
            self.shards[i].stall_hits = 0;
            progressed |= self.shards[i].progressed;
            self.shards[i].progressed = false;
            if self.tracing {
                let traces = std::mem::take(&mut self.shards[i].arrival_traces);
                for &(slot, router) in &traces {
                    let owner = shard_of_slot(slot);
                    if let Some(p) = self.shards[owner].packets[local_of_slot(slot)].as_ref() {
                        let id = p.id;
                        self.record_trace(id, now, TraceEvent::RouterArrival { router });
                    }
                }
            }
        }
        // Ejections. Eject arrivals land in the granting (local) router's
        // shard and each shard's list is in ring order, so concatenation
        // reproduces the single-shard kernel's global processing order.
        for i in 0..n {
            let mut ejects = std::mem::take(&mut self.shards[i].ejects);
            for &(node, flit) in &ejects {
                self.eject_flit(node, flit, now);
            }
            ejects.clear();
            self.shards[i].ejects = ejects;
        }
        // Link traversals, two global passes exactly like the single-shard
        // kernel: pass 1 draws link-fault flips and schedules every flit
        // into its target shard's ring, pass 2 returns credits (drawing
        // drop/duplicate faults) — so allocation never observes same-cycle
        // credits, and the sequential fault-RNG draw order is the global
        // router-ascending traversal order on any shard count.
        for i in 0..n {
            let outgoing = std::mem::take(&mut self.shards[i].outgoing);
            for t in &outgoing {
                progressed = true;
                if self.faults.link_bit_flip_ppm > 0
                    && self.fault_rng.below(PPM) < self.faults.link_bit_flip_ppm
                {
                    self.flip_payload_bit(t.flit.slot);
                }
                // Lossy links: one draw from the dedicated loss stream per
                // traversal whenever a plan is active, so the draw order is
                // the same global router-ascending traversal order as the
                // fault stream — and independent of it.
                if self.loss.is_active() {
                    let rate = self.loss.effective_ppm(self.approx_level_of(t.flit.slot));
                    if self.loss_rng.below(PPM) < rate {
                        self.erase_payload_word(t.flit.slot);
                    }
                }
                self.schedule(now + 2, t.dest, t.out_vc, t.flit);
            }
            self.shards[i].outgoing = outgoing;
        }
        for i in 0..n {
            let mut outgoing = std::mem::take(&mut self.shards[i].outgoing);
            for t in outgoing.drain(..) {
                if let Some((upstream, vc)) = t.credit_to {
                    let copies = self.credit_copies();
                    for _ in 0..copies {
                        match upstream {
                            Upstream::Router { router, port } => {
                                let s = self.router_shard[router] as usize;
                                let lr = router - self.shards[s].router_lo;
                                self.shards[s].routers[lr].return_credit(port, vc);
                            }
                            Upstream::Local { node } => {
                                let s = self.node_shard(node);
                                let ln = node - self.shards[s].node_lo;
                                self.shards[s].nis[ln].vc_credits[vc] += 1;
                            }
                        }
                    }
                }
            }
            self.shards[i].outgoing = outgoing;
        }
        progressed
    }

    /// Records one link-fault bit flip against the packet in `slot`: a
    /// random (word, bit) of its payload, applied to the decoded block at
    /// delivery so the golden copy stays intact for the bound checker.
    fn flip_payload_bit(&mut self, slot: u32) {
        let owner = shard_of_slot(slot);
        let Some(p) = self.shards[owner].packets[local_of_slot(slot)].as_mut() else {
            return;
        };
        let Some(block) = &p.precise else {
            return; // control packets carry no payload to corrupt
        };
        let words = block.len() as u32;
        if words == 0 {
            return;
        }
        let word = self.fault_rng.below(words);
        let bit = self.fault_rng.below(u32::BITS);
        p.corrupt.push((word, bit));
        self.stats.faults.bit_flips += 1;
    }

    /// The approximation level the packet in `slot` was encoded under (0
    /// for control packets and freed slots) — what an active [`LossPlan`]
    /// scales its per-hop loss rate with.
    fn approx_level_of(&self, slot: u32) -> u32 {
        let owner = shard_of_slot(slot);
        self.shards[owner].packets[local_of_slot(slot)]
            .as_ref()
            .map_or(0, |p| p.approx_level)
    }

    /// Records one lossy-link word erasure against the packet in `slot`: a
    /// random payload word, zeroed in the decoded block at delivery so the
    /// golden copy stays intact for the bound checker and quality audit.
    fn erase_payload_word(&mut self, slot: u32) {
        let owner = shard_of_slot(slot);
        let Some(p) = self.shards[owner].packets[local_of_slot(slot)].as_mut() else {
            return;
        };
        let Some(block) = &p.precise else {
            return; // control packets carry no payload to lose
        };
        let words = block.len() as u32;
        if words == 0 {
            return;
        }
        let word = self.loss_rng.below(words);
        p.lost.push(word);
        self.stats.faults.words_lost += 1;
    }

    /// How many times to return one freed credit under the active plan:
    /// 1 normally, 0 when dropped, 2 when duplicated.
    fn credit_copies(&mut self) -> u32 {
        if self.faults.credit_drop_ppm > 0
            && self.fault_rng.below(PPM) < self.faults.credit_drop_ppm
        {
            self.stats.faults.credits_dropped += 1;
            return 0;
        }
        if self.faults.credit_dup_ppm > 0 && self.fault_rng.below(PPM) < self.faults.credit_dup_ppm
        {
            self.stats.faults.credits_duplicated += 1;
            return 2;
        }
        1
    }

    /// Builds the diagnostic dump for a watchdog abort: the oldest stuck
    /// packets, each non-idle router's credit/VC occupancy, and NI backlogs.
    fn deadlock_dump(&self, now: u64) -> DeadlockDump {
        const MAX_ITEMS: usize = 8;
        let mut stuck: Vec<StuckPacket> = self
            .shards
            .iter()
            .flat_map(|s| s.packets.iter().flatten())
            .map(|p| StuckPacket {
                id: p.id,
                src: p.src,
                dest: p.dest,
                kind: p.kind,
                created: p.created,
                age: now.saturating_sub(p.created),
                ejected_flits: p.ejected_flits,
                num_flits: p.num_flits,
            })
            .collect();
        stuck.sort_by_key(|s| (s.created, s.id));
        stuck.truncate(MAX_ITEMS);
        // Shards own contiguous ascending router/node ranges, so shard
        // concatenation preserves the global ascending diagnostic order.
        let routers = self
            .shards
            .iter()
            .flat_map(|s| s.routers.iter())
            .filter(|r| r.occupancy() > 0)
            .take(MAX_ITEMS)
            .map(|r| RouterDiag {
                id: r.id(),
                buffered: r.occupancy(),
                ports: r.flow_snapshot(),
            })
            .collect();
        let ni_backlogs = self
            .shards
            .iter()
            .flat_map(|s| {
                s.nis
                    .iter()
                    .enumerate()
                    .map(move |(ln, ni)| (s.node_lo + ln, ni))
            })
            .filter(|(_, ni)| !ni.queue.is_empty())
            .take(MAX_ITEMS)
            .map(|(node, ni)| (node, ni.queue.len()))
            .collect();
        DeadlockDump {
            cycle: now,
            last_progress: self.last_progress,
            live_packets: self.live_packets,
            stuck,
            routers,
            ni_backlogs,
        }
    }

    /// Runs `cycles` steps.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Runs `cycles` steps, stopping early with the error if the watchdog
    /// trips or the bound checker records a fatal violation.
    pub fn try_run(&mut self, cycles: u64) -> Result<(), SimError> {
        for _ in 0..cycles {
            self.step();
            if let Some(e) = self.fatal.take() {
                return Err(e);
            }
        }
        Ok(())
    }

    /// Runs until every outstanding packet is delivered, or `max_cycles`
    /// elapse. Returns `true` if the network drained.
    pub fn drain(&mut self, max_cycles: u64) -> bool {
        let deadline = self.cycle + max_cycles;
        while self.cycle < deadline {
            if self.live_packets == 0 {
                return true;
            }
            self.step();
        }
        self.live_packets == 0
    }

    /// Fallible [`NocSim::drain`]: stops early with the error if the
    /// watchdog trips or the bound checker records a fatal violation.
    pub fn try_drain(&mut self, max_cycles: u64) -> Result<bool, SimError> {
        let deadline = self.cycle + max_cycles;
        while self.cycle < deadline {
            if self.live_packets == 0 {
                return Ok(true);
            }
            self.step();
            if let Some(e) = self.fatal.take() {
                return Err(e);
            }
        }
        Ok(self.live_packets == 0)
    }

    /// Takes the packets delivered since the last call.
    pub fn drain_delivered(&mut self) -> Vec<Delivered> {
        std::mem::take(&mut self.delivered)
    }

    /// Discards the delivered-packet log accumulated since the last drain,
    /// keeping its capacity. Hot loops that never inspect deliveries call
    /// this instead of [`NocSim::drain_delivered`] so the log does not
    /// reallocate every cycle.
    pub fn discard_delivered(&mut self) {
        self.delivered.clear();
    }

    /// Aggregate hardware activity (routers + codecs) for the power model.
    pub fn activity_report(&self) -> ActivityReport {
        let mut routers = RouterActivity::default();
        for r in self.shards.iter().flat_map(|s| s.routers.iter()) {
            routers.merge(&r.activity());
        }
        let mut encoders = anoc_core::codec::CodecActivity::default();
        let mut decoders = anoc_core::codec::CodecActivity::default();
        for c in &self.codecs {
            encoders.merge(&c.encoder.activity());
            decoders.merge(&c.decoder.activity());
        }
        ActivityReport {
            routers,
            encoders,
            decoders,
            cycles: self.cycle,
        }
    }

    /// Immutable access to a node's codec pair.
    pub fn codec(&self, node: NodeId) -> &NodeCodec {
        &self.codecs[node.index()]
    }

    /// Retargets every node encoder's approximation threshold (VAXX control
    /// logic reconfiguration). Encoders whose mechanism carries no threshold
    /// ignore the call. Dictionary (TCAM) mask planes are reprogrammed:
    /// every stored key's don't-care mask is recomputed from its
    /// install-time pattern under the new threshold, as a ternary CAM whose
    /// masks derive from a global threshold register behaves when that
    /// register is rewritten — so a staged run measures with the same
    /// tolerance over warmup-learned and window-learned entries alike.
    pub fn set_error_threshold(&mut self, threshold: ErrorThreshold) {
        for c in &mut self.codecs {
            c.encoder.set_error_threshold(threshold);
        }
        for slot in &mut self.installed_percent {
            *slot = threshold.percent();
        }
    }

    /// Serializes the complete simulator state into a versioned, endian-
    /// stable blob (DESIGN.md §11): routers, NIs, the packet slab, the event
    /// ring, the fault- and loss-RNG cursors, the QoS control plane,
    /// progress bookkeeping, statistics and the codec tables. `fingerprint` should digest every configuration input
    /// that shapes the simulation; [`NocSim::restore_snapshot`] refuses a
    /// blob saved under a different fingerprint.
    ///
    /// Saving refuses (with [`SnapshotError::Unclean`]) if a fatal error is
    /// pending, the delivered-packet log has not been drained, or tracing is
    /// active — those are driver-facing states a restored simulation could
    /// not reproduce faithfully.
    pub fn save_snapshot(&self, fingerprint: u64) -> Result<Vec<u8>, SnapshotError> {
        if self.fatal.is_some() {
            return Err(SnapshotError::Unclean("a fatal error is pending"));
        }
        if !self.delivered.is_empty() {
            return Err(SnapshotError::Unclean("undrained delivered packets"));
        }
        if self.tracing || !self.traces.is_empty() {
            return Err(SnapshotError::Unclean("per-packet tracing is active"));
        }
        let mut w = SnapWriter::new();
        w.bytes(&SNAPSHOT_MAGIC);
        w.u32(SNAPSHOT_VERSION);
        w.u64(fingerprint);
        // Structural echo: cheap self-description so a geometry mismatch is
        // caught even under a colliding or sloppy fingerprint.
        w.u64(self.mesh.num_routers() as u64);
        w.u64(self.mesh.num_nodes() as u64);
        w.u64(self.config.vcs as u64);
        w.u64(self.config.vc_buffer as u64);
        w.u32(self.config.flit_bits);
        w.u64(self.cycle);
        w.u64(self.next_pid);
        w.bool(self.measuring);
        w.u64(self.last_progress);
        let (state, inc) = self.fault_rng.state_parts();
        w.u64(state);
        w.u64(inc);
        let (loss_state, loss_inc) = self.loss_rng.state_parts();
        w.u64(loss_state);
        w.u64(loss_inc);
        // Packet slab, in canonical order (shard-ascending, slab-index-
        // ascending). Slots are position-dependent — free-list history and
        // shard count shape them — so flits serialize the packet's *rank* in
        // this sequence instead, making the blob restorable at any shard
        // count.
        let canon_of: Vec<Vec<Option<u32>>> = {
            let mut next = 0u32;
            self.shards
                .iter()
                .map(|s| {
                    s.packets
                        .iter()
                        .map(|p| {
                            p.as_ref().map(|_| {
                                let c = next;
                                next += 1;
                                c
                            })
                        })
                        .collect()
                })
                .collect()
        };
        let count: usize = canon_of.iter().flatten().flatten().count();
        if count != self.live_packets {
            return Err(SnapshotError::Unclean("live packet count out of sync"));
        }
        w.usize(count);
        for shard in &self.shards {
            for p in shard.packets.iter().flatten() {
                save_packet(&mut w, p);
            }
        }
        let remap = |slot: u32| -> Option<u32> {
            canon_of
                .get(shard_of_slot(slot))?
                .get(local_of_slot(slot))
                .copied()
                .flatten()
        };
        // NI states, in global node order.
        for shard in &self.shards {
            for ni in &shard.nis {
                w.usize(ni.queue.len());
                for &slot in &ni.queue {
                    match remap(slot) {
                        Some(c) => w.u32(c),
                        None => {
                            return Err(SnapshotError::Structure("queued slot holds no packet"))
                        }
                    }
                }
                for &c in &ni.vc_credits {
                    w.u32(c);
                }
                save_opt_usize(&mut w, ni.cur_vc);
                w.u32(ni.next_seq);
                w.usize(ni.vc_rr);
            }
        }
        // Routers, in global router order.
        for shard in &self.shards {
            for r in &shard.routers {
                r.save_state(&mut w, &remap)?;
            }
        }
        // Event ring, per ring slot, shard-concatenated. Within a slot,
        // router-target arrivals commute (at most one flit lands per input
        // port per cycle and the port-stall draw is stateless), and eject
        // arrivals appear in globally router-ascending order — the exact
        // order the serial cycle edge processes them — because each shard's
        // list is in local ring order and shards own ascending ranges. A
        // restore at any shard count filters this sequence per target shard,
        // which preserves that order.
        for idx in 0..EVENT_HORIZON {
            let total: usize = self.shards.iter().map(|s| s.events[idx].len()).sum();
            w.usize(total);
            for shard in &self.shards {
                for a in &shard.events[idx] {
                    save_link_dest(&mut w, a.target);
                    w.usize(a.vc);
                    save_flit(&mut w, &a.flit, &remap)?;
                }
            }
        }
        // Router activity flags, in global router order.
        for shard in &self.shards {
            for &a in &shard.active {
                w.bool(a);
            }
        }
        save_stats(&mut w, &self.stats);
        for c in &self.codecs {
            c.encoder.save_state(&mut w);
            c.decoder.save_state(&mut w);
        }
        // Installed-threshold tracking, in global node order: what the
        // per-flow lazy-install path compares against. Serialized so a
        // restored run reprograms encoders at exactly the same enqueues an
        // uninterrupted run would.
        for &pct in &self.installed_percent {
            w.u32(pct);
        }
        // QoS control plane: the restoring simulator must have armed the
        // same spec (restore refuses an armament mismatch), and the
        // serialized controller/accumulator state then overwrites arming.
        w.bool(self.qos.is_some());
        if let Some(bank) = &self.qos {
            bank.save_state(&mut w);
        }
        Ok(w.into_bytes())
    }

    /// Restores state saved by [`NocSim::save_snapshot`] into a simulator
    /// built from the same configuration, at any shard count. The caller
    /// must re-arm everything the snapshot deliberately excludes — fault
    /// plan, loss plan, QoS spec, watchdog, bound checker — *before*
    /// restoring: the restored fault- and loss-RNG cursors, controller
    /// state and progress clock then overwrite what arming reset, resuming
    /// the degraded run mid-stream instead of reseeding it. Restoring a
    /// blob saved with an armed QoS plane into a simulator without one (or
    /// vice versa) is refused as a [`SnapshotError::Structure`] mismatch.
    ///
    /// A stale, foreign or corrupt blob is rejected with a typed
    /// [`SnapshotError`]. Header checks (magic, version, fingerprint,
    /// geometry) fail before any state is touched; a body error detected
    /// after that leaves the simulator in a memory-safe but unspecified
    /// state — discard it and rebuild.
    pub fn restore_snapshot(&mut self, blob: &[u8], fingerprint: u64) -> Result<(), SnapshotError> {
        let mut r = SnapReader::new(blob);
        let magic = r.bytes(SNAPSHOT_MAGIC.len())?;
        if magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        if r.u64()? != fingerprint {
            return Err(SnapshotError::FingerprintMismatch);
        }
        if r.u64()? != self.mesh.num_routers() as u64
            || r.u64()? != self.mesh.num_nodes() as u64
            || r.u64()? != self.config.vcs as u64
            || r.u64()? != self.config.vc_buffer as u64
            || r.u32()? != self.config.flit_bits
        {
            return Err(SnapshotError::Structure("network geometry"));
        }
        let cycle = r.u64()?;
        let next_pid = r.u64()?;
        let measuring = r.bool()?;
        let last_progress = r.u64()?;
        let rng_state = r.u64()?;
        let rng_inc = r.u64()?;
        let loss_rng_state = r.u64()?;
        let loss_rng_inc = r.u64()?;
        let count = r.usize()?;
        if count > SLOT_MASK as usize {
            return Err(SnapshotError::Structure("packet count"));
        }
        // Distribute packets into the *current* partition's slabs (a packet
        // lives in its source node's shard), compacted — the free lists
        // restart empty. `slot_of[rank]` translates serialized flit
        // references back to live slots.
        for shard in &mut self.shards {
            shard.packets.clear();
            shard.free_slots.clear();
        }
        let num_nodes = self.mesh.num_nodes();
        let mut slot_of: Vec<u32> = Vec::with_capacity(count);
        for _ in 0..count {
            let p = load_packet(&mut r)?;
            let si = self.node_shard(p.src.index());
            let shard = &mut self.shards[si];
            if shard.packets.len() > SLOT_MASK as usize {
                return Err(SnapshotError::Structure("shard slab overflow"));
            }
            shard.packets.push(Some(p));
            slot_of.push(encode_slot(si, shard.packets.len() - 1));
        }
        let remap = |canon: u32| -> Option<u32> { slot_of.get(canon as usize).copied() };
        let vcs = self.config.vcs;
        for shard in &mut self.shards {
            let mut queued = 0usize;
            for ni in &mut shard.nis {
                let qn = r.usize()?;
                if qn > count {
                    return Err(SnapshotError::Structure("NI queue length"));
                }
                ni.queue.clear();
                for _ in 0..qn {
                    let canon = r.u32()?;
                    let slot =
                        remap(canon).ok_or(SnapshotError::Structure("queued packet reference"))?;
                    ni.queue.push_back(slot);
                }
                queued += qn;
                for c in ni.vc_credits.iter_mut() {
                    *c = r.u32()?;
                }
                ni.cur_vc = load_opt_usize_below(&mut r, vcs, "NI current vc")?;
                ni.next_seq = r.u32()?;
                let vc_rr = r.usize()?;
                if vc_rr >= vcs {
                    return Err(SnapshotError::Structure("NI vc round-robin"));
                }
                ni.vc_rr = vc_rr;
            }
            shard.queued = queued;
        }
        for shard in &mut self.shards {
            for router in &mut shard.routers {
                router.load_state(&mut r, &remap)?;
            }
        }
        let num_routers = self.mesh.num_routers();
        let ports = self.mesh.ports_per_router();
        for idx in 0..EVENT_HORIZON {
            for shard in &mut self.shards {
                shard.events[idx].clear();
            }
            let total = r.usize()?;
            if total > 1 << 28 {
                return Err(SnapshotError::Structure("arrival count"));
            }
            for _ in 0..total {
                let target = load_link_dest(&mut r, num_routers, num_nodes)?;
                if let LinkDest::Router { port, .. } = target {
                    if port >= ports {
                        return Err(SnapshotError::Structure("arrival port"));
                    }
                }
                let vc = r.usize()?;
                if vc >= vcs {
                    return Err(SnapshotError::Structure("arrival vc"));
                }
                let flit = load_flit(&mut r, &remap)?;
                let s = match target {
                    LinkDest::Router { router, .. } => self.router_shard[router] as usize,
                    LinkDest::Eject { node } => self.node_shard(node),
                };
                self.shards[s].events[idx].push(Arrival { target, vc, flit });
            }
        }
        let mut active = Vec::with_capacity(num_routers);
        for _ in 0..num_routers {
            active.push(r.bool()?);
        }
        for shard in &mut self.shards {
            let lo = shard.router_lo;
            for (lr, a) in shard.active.iter_mut().enumerate() {
                *a = active[lo + lr];
            }
        }
        let stats = load_stats(&mut r)?;
        for c in &mut self.codecs {
            c.encoder.load_state(&mut r)?;
            c.decoder.load_state(&mut r)?;
        }
        let mut installed = Vec::with_capacity(num_nodes);
        for _ in 0..num_nodes {
            installed.push(r.u32()?);
        }
        let qos_armed = r.bool()?;
        if qos_armed != self.qos.is_some() {
            return Err(SnapshotError::Structure("QoS armament mismatch"));
        }
        if let Some(bank) = &mut self.qos {
            bank.load_state(&mut r)?;
        }
        if !r.is_exhausted() {
            return Err(SnapshotError::Structure("trailing bytes"));
        }
        self.cycle = cycle;
        self.next_pid = next_pid;
        self.measuring = measuring;
        self.last_progress = last_progress;
        self.live_packets = count;
        // anoc-lint: rng-site: resuming a serialized cursor, not reseeding
        self.fault_rng = Pcg32::from_state_parts(rng_state, rng_inc);
        // anoc-lint: rng-site: resuming a serialized cursor, not reseeding
        self.loss_rng = Pcg32::from_state_parts(loss_rng_state, loss_rng_inc);
        self.installed_percent = installed;
        // The snapshot format deliberately excludes encoder threshold
        // machinery: statically-thresholded runs re-arm it globally after
        // restore. Under QoS the controllers own the thresholds and the lazy
        // per-enqueue install compares against `installed_percent`, so the
        // restored record must be made true of the encoders again — without
        // this, an encoder keeps whatever threshold the fresh sim was built
        // with for as long as its flow's percent does not change.
        if self.qos.is_some() {
            for node in 0..num_nodes {
                let pct = self.installed_percent[node];
                if pct > 0 {
                    let threshold = ErrorThreshold::from_percent(pct)
                        .map_err(|_| SnapshotError::Structure("installed threshold percent"))?;
                    self.codecs[node].encoder.set_error_threshold(threshold);
                }
            }
        }
        self.stats = stats;
        self.delivered.clear();
        self.traces.clear();
        self.tracing = false;
        self.fatal = None;
        Ok(())
    }

    /// Schedules an arrival into the ring of the shard owning the target
    /// router (ejection paths belong to the node's local router).
    fn schedule(&mut self, at: u64, target: LinkDest, vc: usize, flit: Flit) {
        let s = match target {
            LinkDest::Router { router, .. } => self.router_shard[router] as usize,
            LinkDest::Eject { node } => self.node_shard(node),
        };
        let now = self.cycle;
        self.shards[s].schedule(at, target, vc, flit, now);
    }

    fn eject_flit(&mut self, node: usize, flit: Flit, now: u64) {
        let owner = shard_of_slot(flit.slot);
        let slot = local_of_slot(flit.slot);
        // A slab slot is live until its tail ejects; ignore an orphan flit
        // rather than crash if that invariant ever breaks.
        let Some(p) = self.shards[owner].packets[slot].as_mut() else {
            debug_assert!(false, "ejected flit references dead slot {slot}");
            return;
        };
        p.ejected_flits += 1;
        // A packet created inside the measurement window keeps counting
        // after `end_measurement()`: the drain phase delivers the window's
        // tail, and gating on the window still being open would undercount
        // exactly those flits.
        if p.measured {
            self.stats.flits_delivered += 1;
        }
        if !flit.is_tail {
            return;
        }
        assert_eq!(
            p.ejected_flits, p.num_flits,
            "tail arrived before all body flits (per-VC FIFO violated)"
        );
        let Some(p) = self.shards[owner].packets[slot].take() else {
            debug_assert!(false, "slot {slot} vanished between borrow and take");
            return;
        };
        self.shards[owner].free_slots.push(flit.slot);
        self.live_packets -= 1;
        self.record_trace(p.id, now, TraceEvent::Ejected);
        self.complete_packet(p, node, now);
    }

    fn complete_packet(&mut self, p: PacketState, node: usize, now: u64) {
        debug_assert_eq!(p.dest.index(), node, "packet ejected at wrong node");
        let mut decode_latency = 0;
        let mut block = None;
        let mut notes: Vec<(NodeId, Notification)> = Vec::new();
        if let Some(encoded) = &p.payload {
            let decoder = &mut self.codecs[node].decoder;
            decode_latency = decoder.decompression_latency();
            let result = decoder.decode(encoded, p.src);
            notes = result.notifications;
            block = Some(result.block);
        }
        // Link-fault corruption lands on the *decoded* data — what the
        // consumer would read — while `p.precise` keeps the golden copy for
        // the bound checker and quality accounting.
        if !p.corrupt.is_empty() {
            if let Some(b) = &mut block {
                let words = b.words_mut();
                for &(w, bit) in &p.corrupt {
                    if let Some(word) = words.get_mut(w as usize) {
                        *word ^= 1 << bit;
                    }
                }
            }
        }
        // Lossy-link erasures likewise land on the decoded data: the erased
        // words arrive zeroed, as a link-level CRC-and-drop would deliver.
        if !p.lost.is_empty() {
            if let Some(b) = &mut block {
                let words = b.words_mut();
                for &w in &p.lost {
                    if let Some(word) = words.get_mut(w as usize) {
                        *word = 0;
                    }
                }
            }
        }
        // QoS audit tap: every delivered data packet (measured or not) feeds
        // its flow's accumulator with the realized application-level quality
        // of what the consumer actually reads — corruption and loss included.
        if let Some(bank) = &mut self.qos {
            if let (Some(precise), Some(decoded)) = (&p.precise, &block) {
                bank.observe_block(p.src.index(), p.dest.index(), precise, decoded);
            }
        }
        self.check_bound(&p, block.as_ref(), now);
        if let Some(note) = p.notification {
            // An in-band dictionary notification reaching its encoder.
            self.codecs[node].encoder.apply_notification(p.src, note);
        }
        let done_at = now + decode_latency;
        if p.measured {
            // Delivery implies the head flit was injected; fall back to the
            // creation cycle (zero queueing) if that invariant ever breaks.
            debug_assert!(p.inject_start.is_some(), "delivered but never injected");
            let inject = p.inject_start.unwrap_or(p.created);
            self.stats.packets += 1;
            match p.kind {
                PacketKind::Data => self.stats.data_packets += 1,
                PacketKind::Control => self.stats.control_packets += 1,
            }
            self.stats.queue_lat_sum += inject - p.created;
            self.stats.net_lat_sum += now - inject;
            self.stats.decode_lat_sum += decode_latency;
            self.stats.latency_histogram.record(done_at - p.created);
            if let (Some(precise), Some(decoded)) = (&p.precise, &block) {
                self.stats.quality.record_block(precise, decoded);
            }
        }
        // Dictionary notifications: instantaneous side channel by default,
        // or real control packets with `notify_in_band`.
        for (to, note) in notes {
            if self.config.notify_in_band {
                self.enqueue_control_with(p.dest, to, Some(note));
            } else {
                self.codecs[to.index()]
                    .encoder
                    .apply_notification(p.dest, note);
            }
        }
        self.record_trace(p.id, done_at, TraceEvent::Completed);
        self.delivered.push(Delivered {
            id: p.id,
            src: p.src,
            dest: p.dest,
            kind: p.kind,
            done_at,
            block,
        });
    }

    /// End-to-end bound check: every delivered word must be within the
    /// active threshold of its golden counterpart. Violations are always
    /// counted; they are fatal only when neither faults nor link loss are
    /// being injected, because then they can only mean a codec bug.
    fn check_bound(&mut self, p: &PacketState, block: Option<&CacheBlock>, now: u64) {
        let Some(threshold) = self.bound_check else {
            return;
        };
        let (Some(precise), Some(decoded)) = (&p.precise, block) else {
            return;
        };
        let limit = threshold.percent() as f64 / 100.0 + 1e-9;
        let dtype = precise.dtype();
        for (i, (&pw, &aw)) in precise.words().iter().zip(decoded.words()).enumerate() {
            self.stats.faults.bound_checked_words += 1;
            let err = Avcl::relative_error(pw, aw, dtype);
            let violated = match err {
                Some(e) => e > limit,
                // Non-finite floats have no meaningful relative error; the
                // codecs must deliver them bit-exactly.
                None => pw != aw,
            };
            if violated {
                self.stats.faults.bound_violations += 1;
                if self.fatal.is_none() && !self.faults.is_active() && !self.loss.is_active() {
                    self.fatal = Some(SimError::BoundViolation(BoundViolation {
                        cycle: now,
                        packet: p.id,
                        src: p.src,
                        dest: p.dest,
                        word_index: i,
                        precise: pw,
                        approx: aw,
                        relative_error: err.unwrap_or(f64::INFINITY),
                        threshold_percent: threshold.percent(),
                    }));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline_sim(config: NocConfig) -> NocSim {
        let n = config.num_nodes();
        NocSim::new(config, (0..n).map(|_| NodeCodec::baseline()).collect())
    }

    #[test]
    fn control_packet_crosses_the_mesh() {
        let mut sim = baseline_sim(NocConfig::mesh_3x3());
        sim.enqueue_control(NodeId(0), NodeId(8));
        assert!(sim.drain(200));
        let d = sim.drain_delivered();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].dest, NodeId(8));
        // 4 hops: inject(+1) + 4 routers × 3 cycles + BW... sanity bound.
        assert!(d[0].done_at >= 12 && d[0].done_at <= 40, "{}", d[0].done_at);
        let s = sim.stats();
        assert_eq!(s.packets, 1);
        assert_eq!(s.control_packets, 1);
        assert_eq!(s.flits_injected, 1);
        assert_eq!(s.flits_delivered, 1);
    }

    #[test]
    fn data_packet_delivers_block_bit_exactly() {
        let mut sim = baseline_sim(NocConfig::paper_4x4_cmesh());
        let block =
            CacheBlock::from_i32(&[1, -2, 3, -4, 5, -6, 7, -8, 9, 10, 11, 12, 13, 14, 15, 16]);
        sim.enqueue_data(NodeId(0), NodeId(31), block.clone());
        assert!(sim.drain(500));
        let d = sim.drain_delivered();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].block.as_ref().unwrap(), &block);
        let s = sim.stats();
        assert_eq!(s.data_packets, 1);
        // Uncompressed 64 B block on 64-bit flits: 9 flits.
        assert_eq!(s.data_flits_injected, 9);
        assert_eq!(s.baseline_data_flits, 9);
        assert_eq!(s.quality.quality(), 1.0);
    }

    #[test]
    fn every_pair_delivers() {
        let mut sim = baseline_sim(NocConfig::mesh_3x3());
        let n = sim.num_nodes();
        let mut expected = 0;
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    sim.enqueue_control(NodeId::from(s), NodeId::from(d));
                    expected += 1;
                }
            }
        }
        assert!(sim.drain(5_000));
        let delivered = sim.drain_delivered();
        assert_eq!(delivered.len(), expected);
        for p in &delivered {
            assert_ne!(p.src, p.dest);
        }
    }

    #[test]
    fn serialization_latency_scales_with_flits() {
        // A long packet's tail trails its head by (flits - 1) cycles min.
        let mut sim = baseline_sim(NocConfig::paper_4x4_cmesh());
        let block = CacheBlock::from_i32(&[0x12345678; 16]); // 9 flits uncompressed
        sim.enqueue_data(NodeId(0), NodeId(2), block);
        assert!(sim.drain(300));
        let s = sim.stats();
        // Head: ~1 + 2 routers * 3 + eject; +8 serialization.
        assert!(s.avg_net_latency() >= 14.0, "{}", s.avg_net_latency());
    }

    #[test]
    fn queueing_latency_appears_under_burst() {
        let mut sim = baseline_sim(NocConfig::paper_4x4_cmesh());
        for _ in 0..10 {
            let block = CacheBlock::from_i32(&[7; 16]);
            sim.enqueue_data(NodeId(0), NodeId(31), block);
        }
        assert!(sim.drain(2_000));
        let s = sim.stats();
        assert_eq!(s.data_packets, 10);
        // 10 packets × 9 flits serialised out of one NI: queueing dominates.
        assert!(s.avg_queue_latency() > 20.0, "{}", s.avg_queue_latency());
    }

    #[test]
    fn measurement_window_excludes_warmup() {
        let mut sim = baseline_sim(NocConfig::mesh_3x3());
        sim.enqueue_control(NodeId(0), NodeId(4));
        sim.run(5);
        sim.begin_measurement(); // warmup packet still in flight
        sim.enqueue_control(NodeId(1), NodeId(5));
        assert!(sim.drain(300));
        let s = sim.stats();
        assert_eq!(s.packets, 1, "only the measured packet counts");
    }

    #[test]
    fn hop_count_affects_latency() {
        let mut near = baseline_sim(NocConfig::mesh_3x3());
        near.enqueue_control(NodeId(0), NodeId(1));
        assert!(near.drain(200));
        let near_lat = near.stats().avg_packet_latency();

        let mut far = baseline_sim(NocConfig::mesh_3x3());
        far.enqueue_control(NodeId(0), NodeId(8));
        assert!(far.drain(200));
        let far_lat = far.stats().avg_packet_latency();
        assert!(
            far_lat >= near_lat + 6.0,
            "4 hops ({far_lat}) vs 1 hop ({near_lat})"
        );
    }

    #[test]
    fn backlog_and_outstanding_reporting() {
        let mut sim = baseline_sim(NocConfig::mesh_3x3());
        for _ in 0..3 {
            sim.enqueue_data(NodeId(0), NodeId(8), CacheBlock::from_i32(&[1; 16]));
        }
        assert_eq!(sim.injection_backlog(NodeId(0)), 3);
        assert_eq!(sim.outstanding_packets(), 3);
        assert!(sim.drain(2_000));
        assert_eq!(sim.injection_backlog(NodeId(0)), 0);
        assert_eq!(sim.outstanding_packets(), 0);
    }

    #[test]
    fn activity_report_counts_events() {
        let mut sim = baseline_sim(NocConfig::mesh_3x3());
        sim.enqueue_control(NodeId(0), NodeId(8));
        sim.drain(200);
        let a = sim.activity_report();
        assert!(a.routers.buffer_writes >= 5, "{a:?}");
        assert!(a.routers.crossbar_traversals >= 5);
        assert!(a.cycles > 0);
    }
}
