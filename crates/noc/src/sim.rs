//! The cycle-accurate network simulation kernel.
//!
//! [`NocSim`] ties together the mesh, routers, NIs and codecs. Each call to
//! [`NocSim::step`] advances one router cycle:
//!
//! 1. link arrivals scheduled for this cycle are written into input buffers
//!    (BW stage) or handed to ejection NIs;
//! 2. every router runs VC + switch allocation and the granted flits start
//!    their switch/link traversal (arriving two cycles later);
//! 3. freed buffer slots are credited back to the upstream hop;
//! 4. every NI injects at most one flit of its head-of-queue packet.
//!
//! A flit written at cycle `a` is allocation-eligible at `a+1` and lands
//! downstream at `g+2` after a grant at `g` — the three-stage router of
//! Table 1.
//!
//! The kernel is allocation-free at steady state: packets live in a slab
//! indexed by the dense slot carried on every flit, the event ring and the
//! allocation scratch vectors are reused across cycles, and only routers
//! with buffered flits are visited (see DESIGN.md).

use std::collections::BTreeMap;

use anoc_core::avcl::Avcl;
use anoc_core::codec::Notification;
use anoc_core::data::{CacheBlock, NodeId};
use anoc_core::rng::Pcg32;
use anoc_core::threshold::ErrorThreshold;

use crate::config::NocConfig;
use crate::faults::{
    BoundViolation, DeadlockDump, FaultPlan, RouterDiag, SimError, StuckPacket, PPM,
};
use crate::ni::{NiState, NodeCodec};
use crate::packet::{Delivered, Flit, PacketId, PacketKind, PacketState, TraceEvent};
use crate::router::{LinkDest, Router, RouterActivity, Traversal, Upstream};
use crate::stats::{ActivityReport, NetStats};
use crate::topology::{Direction, Mesh};

/// A flit in flight on a link, due at a scheduled cycle.
#[derive(Debug, Clone, Copy)]
struct Arrival {
    target: LinkDest,
    vc: usize,
    flit: Flit,
}

/// Ring-buffer horizon for scheduled arrivals (link events land at +1/+2).
const EVENT_HORIZON: usize = 4;

/// The cycle-accurate NoC simulator.
pub struct NocSim {
    config: NocConfig,
    mesh: Mesh,
    routers: Vec<Router>,
    nis: Vec<NiState>,
    codecs: Vec<NodeCodec>,
    /// Slab packet store: flits carry their packet's slot, so the per-flit
    /// hot paths are plain indexing. Freed slots are recycled via
    /// `free_slots`; external [`PacketId`]s stay monotonic regardless.
    packets: Vec<Option<PacketState>>,
    free_slots: Vec<u32>,
    live_packets: usize,
    next_pid: PacketId,
    cycle: u64,
    events: Vec<Vec<Arrival>>,
    /// Persistent scratch for the per-cycle allocation grants.
    outgoing: Vec<Traversal>,
    /// Routers that may hold buffered flits; idle routers are skipped.
    active: Vec<bool>,
    delivered: Vec<Delivered>,
    stats: NetStats,
    measuring: bool,
    tracing: bool,
    /// Keyed by monotonic [`PacketId`], so iteration and dump order are
    /// deterministic (enforced by anoc-lint rule D002).
    traces: BTreeMap<PacketId, Vec<(u64, TraceEvent)>>,
    /// Active fault-injection plan (inert by default).
    faults: FaultPlan,
    /// Dedicated fault RNG stream, seeded from the plan — independent of
    /// every traffic RNG so enabling faults never perturbs offered load.
    fault_rng: Pcg32,
    /// End-to-end bound checker: every delivered data word is compared to
    /// its golden copy against this threshold when set.
    bound_check: Option<ErrorThreshold>,
    /// Watchdog horizon: abort with [`SimError::Deadlock`] after this many
    /// cycles without forward progress while packets are outstanding.
    watchdog: Option<u64>,
    /// Last cycle on which any flit moved, injected, or ejected.
    last_progress: u64,
    /// A fatal condition detected mid-step, surfaced by [`NocSim::try_run`]
    /// and [`NocSim::try_drain`].
    fatal: Option<SimError>,
}

impl std::fmt::Debug for NocSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NocSim")
            .field("cycle", &self.cycle)
            .field("outstanding", &self.live_packets)
            .field("nodes", &self.mesh.num_nodes())
            .finish()
    }
}

impl NocSim {
    /// Builds a network. `codecs` must supply one encoder/decoder pair per
    /// node.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `codecs` has the wrong
    /// length.
    pub fn new(config: NocConfig, codecs: Vec<NodeCodec>) -> Self {
        // anoc-lint: allow(C001): documented constructor contract (# Panics)
        config.validate().expect("invalid NoC configuration");
        let mesh = Mesh::new(&config);
        assert_eq!(
            codecs.len(),
            mesh.num_nodes(),
            "one codec pair per node required"
        );
        let ports = mesh.ports_per_router();
        let mut routers: Vec<Router> = (0..mesh.num_routers())
            .map(|id| Router::new(id, ports, config.vcs, config.vc_buffer))
            .collect();
        // Wire mesh links and local ports.
        for r in 0..mesh.num_routers() {
            for dir in Direction::ALL {
                if let Some(n) = mesh.neighbor(r, dir) {
                    let in_port = dir.opposite() as usize;
                    routers[r].wire_output(
                        dir as usize,
                        LinkDest::Router {
                            router: n,
                            port: in_port,
                        },
                    );
                    routers[n].wire_input(
                        in_port,
                        Upstream::Router {
                            router: r,
                            port: dir as usize,
                        },
                    );
                }
            }
            for slot in 0..mesh.concentration() {
                let port = 4 + slot;
                let node = mesh.node_at(r, port);
                routers[r].wire_output(port, LinkDest::Eject { node: node.index() });
                routers[r].wire_input(port, Upstream::Local { node: node.index() });
            }
        }
        let nis = (0..mesh.num_nodes())
            .map(|_| NiState::new(config.vcs, config.vc_buffer))
            .collect();
        let num_routers = routers.len();
        NocSim {
            config,
            mesh,
            routers,
            nis,
            codecs,
            packets: Vec::new(),
            free_slots: Vec::new(),
            live_packets: 0,
            next_pid: 0,
            cycle: 0,
            events: (0..EVENT_HORIZON).map(|_| Vec::new()).collect(),
            outgoing: Vec::new(),
            active: vec![false; num_routers],
            delivered: Vec::new(),
            stats: NetStats::default(),
            measuring: true,
            tracing: false,
            traces: BTreeMap::new(),
            faults: FaultPlan::none(),
            fault_rng: Pcg32::seed_from_u64(0),
            bound_check: None,
            watchdog: None,
            last_progress: 0,
            fatal: None,
        }
    }

    /// Installs a fault-injection plan and seeds the fault RNG from it. An
    /// inert plan ([`FaultPlan::none`]) draws no random numbers, so the run
    /// stays bit-identical to one without any plan.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_rng = Pcg32::seed_from_u64(plan.seed);
        self.faults = plan;
    }

    /// The active fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Enables the end-to-end bound checker: every delivered data word is
    /// compared against its golden (pre-approximation) copy. A word outside
    /// `threshold` counts in `NetStats::faults.bound_violations`; without an
    /// active fault plan it is also fatal ([`SimError::BoundViolation`]).
    pub fn set_bound_check(&mut self, threshold: ErrorThreshold) {
        self.bound_check = Some(threshold);
    }

    /// Arms the no-forward-progress watchdog: if `horizon` cycles pass with
    /// outstanding packets and no flit movement, the run aborts with a
    /// [`SimError::Deadlock`] carrying a diagnostic dump. `0` disarms it.
    pub fn set_watchdog(&mut self, horizon: u64) {
        self.watchdog = if horizon == 0 { None } else { Some(horizon) };
        self.last_progress = self.cycle;
    }

    /// Takes the fatal error detected by the bound checker or watchdog, if
    /// any. [`NocSim::try_run`] and [`NocSim::try_drain`] consume it
    /// automatically; this accessor serves callers driving [`NocSim::step`]
    /// directly.
    pub fn take_fatal_error(&mut self) -> Option<SimError> {
        self.fatal.take()
    }

    /// Enables per-packet lifetime tracing (Created / Injected /
    /// RouterArrival / Ejected / Completed events with their cycles).
    /// Intended for debugging and timing verification; off by default.
    pub fn enable_tracing(&mut self) {
        self.tracing = true;
    }

    /// The traced lifetime of a packet, if tracing was enabled before it was
    /// created.
    pub fn trace(&self, id: PacketId) -> Option<&[(u64, TraceEvent)]> {
        self.traces.get(&id).map(Vec::as_slice)
    }

    fn record_trace(&mut self, id: PacketId, at: u64, event: TraceEvent) {
        if self.tracing {
            self.traces.entry(id).or_default().push((at, event));
        }
    }

    /// The simulator configuration.
    pub fn config(&self) -> &NocConfig {
        &self.config
    }

    /// The mesh geometry.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.mesh.num_nodes()
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Statistics of the current measurement window.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Packets created but not yet fully delivered.
    pub fn outstanding_packets(&self) -> usize {
        self.live_packets
    }

    /// Measured packets still undelivered (reported as `unfinished` so a
    /// saturated run never silently drops them from the statistics).
    pub fn record_unfinished(&mut self) {
        self.stats.unfinished = self.packets.iter().flatten().filter(|p| p.measured).count() as u64;
    }

    /// Number of packets waiting in `node`'s injection queue.
    pub fn injection_backlog(&self, node: NodeId) -> usize {
        self.nis[node.index()].queue.len()
    }

    /// Starts (or restarts) the measurement window: statistics reset, in-
    /// flight warmup packets are excluded, and subsequently created packets
    /// are measured. Call after warmup.
    pub fn begin_measurement(&mut self) {
        self.stats = NetStats::default();
        self.measuring = true;
        for p in self.packets.iter_mut().flatten() {
            p.measured = false;
        }
    }

    /// Stops measuring newly created packets (drain phase).
    pub fn end_measurement(&mut self) {
        self.measuring = false;
    }

    /// Enqueues a single-flit control packet.
    pub fn enqueue_control(&mut self, src: NodeId, dest: NodeId) -> PacketId {
        self.enqueue_control_with(src, dest, None)
    }

    /// Enqueues a data packet carrying `block`. The block is encoded by the
    /// source NI's encoder immediately (the compression latency is accounted
    /// on the injection path per §4.3).
    pub fn enqueue_data(&mut self, src: NodeId, dest: NodeId, block: CacheBlock) -> PacketId {
        let encoder = &mut self.codecs[src.index()].encoder;
        if self.faults.dict_corrupt_ppm > 0
            && self.fault_rng.below(PPM) < self.faults.dict_corrupt_ppm
        {
            let entropy =
                ((self.fault_rng.next_u32() as u64) << 32) | self.fault_rng.next_u32() as u64;
            if encoder.inject_table_fault(entropy) {
                self.stats.faults.dict_corruptions += 1;
            }
        }
        let encoded = encoder.encode(&block, dest);
        let comp_latency = encoder.compression_latency();
        let payload_bits = encoded.payload_bits();
        let num_flits = self.config.data_packet_flits(payload_bits);
        let baseline_flits = self.config.data_packet_flits(block.size_bits() as u32);
        if self.measuring {
            self.stats.encode.absorb_block(&encoded);
        }
        let va_credit = u64::from(self.config.va_overlap);
        let comp_exposed = comp_latency.saturating_sub(va_credit);
        // With latency hiding, compression starts at creation and overlaps
        // the queue wait — but the residual cycles past the VA-overlap
        // credit gate injectability regardless of queue depth: a short
        // queue cannot absorb latency that has not elapsed yet (§4.3).
        // Without hiding, the latency is paid at the queue head, serialized
        // with injection.
        let (exposed, head_gate) = if self.config.hide_compression {
            (comp_exposed, 0)
        } else {
            (0, comp_exposed)
        };
        self.push_packet(PacketState {
            id: 0, // assigned by push_packet
            src,
            dest,
            kind: PacketKind::Data,
            created: self.cycle,
            ready_at: self.cycle + exposed,
            head_gate,
            inject_start: None,
            num_flits,
            baseline_flits,
            ejected_flits: 0,
            payload: Some(encoded),
            precise: Some(block),
            notification: None,
            corrupt: Vec::new(),
            measured: self.measuring,
        })
    }

    fn enqueue_control_with(
        &mut self,
        src: NodeId,
        dest: NodeId,
        notification: Option<Notification>,
    ) -> PacketId {
        self.push_packet(PacketState {
            id: 0,
            src,
            dest,
            kind: PacketKind::Control,
            created: self.cycle,
            ready_at: self.cycle,
            head_gate: 0,
            inject_start: None,
            num_flits: 1,
            baseline_flits: 0,
            ejected_flits: 0,
            payload: None,
            precise: None,
            notification,
            corrupt: Vec::new(),
            measured: self.measuring,
        })
    }

    fn push_packet(&mut self, mut p: PacketState) -> PacketId {
        let id = self.next_pid;
        self.next_pid += 1;
        p.id = id;
        let src = p.src;
        let created = p.created;
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.packets[s as usize] = Some(p);
                s
            }
            None => {
                self.packets.push(Some(p));
                (self.packets.len() - 1) as u32
            }
        };
        self.live_packets += 1;
        self.nis[src.index()].queue.push_back(slot);
        self.record_trace(id, created, TraceEvent::Created);
        id
    }

    /// Advances the simulation by one cycle.
    pub fn step(&mut self) {
        let now = self.cycle;
        let mut progressed = false;
        // Phase 1 — link arrivals (BW, or ejection). The due ring slot is
        // swapped out and restored after draining so its capacity is
        // reused; this is safe because `schedule` only ever targets future
        // slots (`now+1..now+EVENT_HORIZON`), never the current one.
        let ring = (now % EVENT_HORIZON as u64) as usize;
        let mut due = std::mem::take(&mut self.events[ring]);
        for arrival in due.drain(..) {
            progressed = true;
            match arrival.target {
                LinkDest::Router { router, port } => {
                    let mut flit = arrival.flit;
                    flit.ready_at = now + 1;
                    if self.faults.port_stall_ppm > 0
                        && self.fault_rng.below(PPM) < self.faults.port_stall_ppm
                    {
                        flit.ready_at += self.faults.stall_cycles as u64;
                        self.stats.faults.port_stalls += 1;
                    }
                    if self.tracing && flit.is_head() {
                        if let Some(p) = self.packets[flit.slot as usize].as_ref() {
                            let id = p.id;
                            self.record_trace(id, now, TraceEvent::RouterArrival { router });
                        }
                    }
                    self.routers[router].accept_flit(port, arrival.vc, flit);
                    self.active[router] = true;
                }
                LinkDest::Eject { node } => self.eject_flit(node, arrival.flit, now),
            }
        }
        self.events[ring] = due;
        // Phase 2 — router allocation, idle routers skipped. Grants land in
        // a persistent scratch vector; credits are returned only after
        // every router has allocated, so allocation order cannot observe
        // same-cycle credits.
        let mut outgoing = std::mem::take(&mut self.outgoing);
        for r in 0..self.routers.len() {
            if !self.active[r] {
                continue;
            }
            let mesh = &self.mesh;
            let rid = self.routers[r].id();
            self.routers[r].allocate(now, |flit| mesh.route_xy(rid, flit.dest), &mut outgoing);
            if self.routers[r].is_idle() {
                self.active[r] = false;
            }
        }
        for t in &outgoing {
            progressed = true;
            if self.faults.link_bit_flip_ppm > 0
                && self.fault_rng.below(PPM) < self.faults.link_bit_flip_ppm
            {
                self.flip_payload_bit(t.flit.slot);
            }
            self.schedule(now + 2, t.dest, t.out_vc, t.flit);
        }
        for t in outgoing.drain(..) {
            if let Some((upstream, vc)) = t.credit_to {
                let copies = self.credit_copies();
                for _ in 0..copies {
                    match upstream {
                        Upstream::Router { router, port } => {
                            self.routers[router].return_credit(port, vc);
                        }
                        Upstream::Local { node } => {
                            self.nis[node].vc_credits[vc] += 1;
                        }
                    }
                }
            }
        }
        self.outgoing = outgoing;
        // Phase 3 — NI injection.
        for node in 0..self.nis.len() {
            progressed |= self.inject_from(node, now);
        }
        self.cycle = now + 1;
        if self.measuring {
            self.stats.cycles += 1;
        }
        // Watchdog — forward progress is any arrival, grant or injection.
        // An idle network (no outstanding packets) is trivially live.
        if progressed || self.live_packets == 0 {
            self.last_progress = now;
        } else if let Some(horizon) = self.watchdog {
            if now.saturating_sub(self.last_progress) >= horizon && self.fatal.is_none() {
                self.fatal = Some(SimError::Deadlock(self.deadlock_dump(now)));
            }
        }
    }

    /// Records one link-fault bit flip against the packet in `slot`: a
    /// random (word, bit) of its payload, applied to the decoded block at
    /// delivery so the golden copy stays intact for the bound checker.
    fn flip_payload_bit(&mut self, slot: u32) {
        let Some(p) = self.packets[slot as usize].as_mut() else {
            return;
        };
        let Some(block) = &p.precise else {
            return; // control packets carry no payload to corrupt
        };
        let words = block.len() as u32;
        if words == 0 {
            return;
        }
        let word = self.fault_rng.below(words);
        let bit = self.fault_rng.below(u32::BITS);
        p.corrupt.push((word, bit));
        self.stats.faults.bit_flips += 1;
    }

    /// How many times to return one freed credit under the active plan:
    /// 1 normally, 0 when dropped, 2 when duplicated.
    fn credit_copies(&mut self) -> u32 {
        if self.faults.credit_drop_ppm > 0
            && self.fault_rng.below(PPM) < self.faults.credit_drop_ppm
        {
            self.stats.faults.credits_dropped += 1;
            return 0;
        }
        if self.faults.credit_dup_ppm > 0 && self.fault_rng.below(PPM) < self.faults.credit_dup_ppm
        {
            self.stats.faults.credits_duplicated += 1;
            return 2;
        }
        1
    }

    /// Builds the diagnostic dump for a watchdog abort: the oldest stuck
    /// packets, each non-idle router's credit/VC occupancy, and NI backlogs.
    fn deadlock_dump(&self, now: u64) -> DeadlockDump {
        const MAX_ITEMS: usize = 8;
        let mut stuck: Vec<StuckPacket> = self
            .packets
            .iter()
            .flatten()
            .map(|p| StuckPacket {
                id: p.id,
                src: p.src,
                dest: p.dest,
                kind: p.kind,
                created: p.created,
                age: now.saturating_sub(p.created),
                ejected_flits: p.ejected_flits,
                num_flits: p.num_flits,
            })
            .collect();
        stuck.sort_by_key(|s| (s.created, s.id));
        stuck.truncate(MAX_ITEMS);
        let routers = self
            .routers
            .iter()
            .filter(|r| r.occupancy() > 0)
            .take(MAX_ITEMS)
            .map(|r| RouterDiag {
                id: r.id(),
                buffered: r.occupancy(),
                ports: r.flow_snapshot(),
            })
            .collect();
        let ni_backlogs = self
            .nis
            .iter()
            .enumerate()
            .filter(|(_, ni)| !ni.queue.is_empty())
            .take(MAX_ITEMS)
            .map(|(node, ni)| (node, ni.queue.len()))
            .collect();
        DeadlockDump {
            cycle: now,
            last_progress: self.last_progress,
            live_packets: self.live_packets,
            stuck,
            routers,
            ni_backlogs,
        }
    }

    /// Runs `cycles` steps.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Runs `cycles` steps, stopping early with the error if the watchdog
    /// trips or the bound checker records a fatal violation.
    pub fn try_run(&mut self, cycles: u64) -> Result<(), SimError> {
        for _ in 0..cycles {
            self.step();
            if let Some(e) = self.fatal.take() {
                return Err(e);
            }
        }
        Ok(())
    }

    /// Runs until every outstanding packet is delivered, or `max_cycles`
    /// elapse. Returns `true` if the network drained.
    pub fn drain(&mut self, max_cycles: u64) -> bool {
        let deadline = self.cycle + max_cycles;
        while self.cycle < deadline {
            if self.live_packets == 0 {
                return true;
            }
            self.step();
        }
        self.live_packets == 0
    }

    /// Fallible [`NocSim::drain`]: stops early with the error if the
    /// watchdog trips or the bound checker records a fatal violation.
    pub fn try_drain(&mut self, max_cycles: u64) -> Result<bool, SimError> {
        let deadline = self.cycle + max_cycles;
        while self.cycle < deadline {
            if self.live_packets == 0 {
                return Ok(true);
            }
            self.step();
            if let Some(e) = self.fatal.take() {
                return Err(e);
            }
        }
        Ok(self.live_packets == 0)
    }

    /// Takes the packets delivered since the last call.
    pub fn drain_delivered(&mut self) -> Vec<Delivered> {
        std::mem::take(&mut self.delivered)
    }

    /// Discards the delivered-packet log accumulated since the last drain,
    /// keeping its capacity. Hot loops that never inspect deliveries call
    /// this instead of [`NocSim::drain_delivered`] so the log does not
    /// reallocate every cycle.
    pub fn discard_delivered(&mut self) {
        self.delivered.clear();
    }

    /// Aggregate hardware activity (routers + codecs) for the power model.
    pub fn activity_report(&self) -> ActivityReport {
        let mut routers = RouterActivity::default();
        for r in &self.routers {
            routers.merge(&r.activity());
        }
        let mut encoders = anoc_core::codec::CodecActivity::default();
        let mut decoders = anoc_core::codec::CodecActivity::default();
        for c in &self.codecs {
            encoders.merge(&c.encoder.activity());
            decoders.merge(&c.decoder.activity());
        }
        ActivityReport {
            routers,
            encoders,
            decoders,
            cycles: self.cycle,
        }
    }

    /// Immutable access to a node's codec pair.
    pub fn codec(&self, node: NodeId) -> &NodeCodec {
        &self.codecs[node.index()]
    }

    fn schedule(&mut self, at: u64, target: LinkDest, vc: usize, flit: Flit) {
        debug_assert!(at > self.cycle && at < self.cycle + EVENT_HORIZON as u64);
        self.events[(at % EVENT_HORIZON as u64) as usize].push(Arrival { target, vc, flit });
    }

    /// Attempts one flit injection from `node`; returns whether a flit
    /// entered the network (forward progress for the watchdog).
    fn inject_from(&mut self, node: usize, now: u64) -> bool {
        // One NI borrow and one slab lookup for the whole attempt — this
        // runs for every node every cycle, so repeated indexed re-lookups
        // showed up in the steady-state profile.
        let ni = &mut self.nis[node];
        let Some(&slot) = ni.queue.front() else {
            return false;
        };
        let slot = slot as usize;
        // The NI queue only holds live slab slots; drop a stale one rather
        // than crash if that invariant ever breaks.
        let Some(p) = self.packets[slot].as_mut() else {
            debug_assert!(false, "queued slot {slot} holds no packet");
            ni.queue.pop_front();
            return false;
        };
        // Unhidden compression: pay the remaining latency now that the
        // packet has reached the queue head.
        if ni.next_seq == 0 && p.head_gate > 0 {
            p.ready_at = p.ready_at.max(now + p.head_gate);
            p.head_gate = 0;
            return false;
        }
        if p.ready_at > now {
            return false;
        }
        // Head flit needs a VC with a credit; body flits continue on the
        // packet's VC and just need a credit.
        let vc = match ni.cur_vc {
            Some(v) => {
                if ni.vc_credits[v] == 0 {
                    return false;
                }
                v
            }
            None => match ni.pick_vc() {
                Some(v) => v,
                None => return false,
            },
        };
        let seq = ni.next_seq;
        if seq == 0 {
            p.inject_start = Some(now);
        }
        let is_tail = seq + 1 == p.num_flits;
        let flit = Flit {
            slot: slot as u32,
            seq,
            is_tail,
            dest: p.dest,
            ready_at: 0, // set at arrival
        };
        let pid = p.id;
        let measured = p.measured;
        let kind = p.kind;
        let num_flits = p.num_flits;
        let baseline_flits = p.baseline_flits;
        ni.vc_credits[vc] -= 1;
        ni.cur_vc = Some(vc);
        ni.next_seq += 1;
        if is_tail {
            ni.queue.pop_front();
            ni.cur_vc = None;
            ni.next_seq = 0;
        }
        if flit.is_head() {
            self.record_trace(pid, now, TraceEvent::Injected);
        }
        let router = self.mesh.router_of(NodeId::from(node));
        let port = self.mesh.local_port_of(NodeId::from(node));
        self.schedule(now + 1, LinkDest::Router { router, port }, vc, flit);
        // Injection statistics. Per-packet counters (data flits and their
        // baseline equivalent) are committed at tail injection so a drain
        // cutoff can never split a packet across the two sides of the
        // Figure 11 normalization.
        if measured {
            self.stats.flits_injected += 1;
            if is_tail {
                match kind {
                    PacketKind::Data => {
                        self.stats.data_flits_injected += num_flits as u64;
                        self.stats.baseline_data_flits += baseline_flits as u64;
                    }
                    PacketKind::Control => self.stats.control_flits_injected += 1,
                }
            }
        }
        true
    }

    fn eject_flit(&mut self, node: usize, flit: Flit, now: u64) {
        let slot = flit.slot as usize;
        // A slab slot is live until its tail ejects; ignore an orphan flit
        // rather than crash if that invariant ever breaks.
        let Some(p) = self.packets[slot].as_mut() else {
            debug_assert!(false, "ejected flit references dead slot {slot}");
            return;
        };
        p.ejected_flits += 1;
        // A packet created inside the measurement window keeps counting
        // after `end_measurement()`: the drain phase delivers the window's
        // tail, and gating on the window still being open would undercount
        // exactly those flits.
        if p.measured {
            self.stats.flits_delivered += 1;
        }
        if !flit.is_tail {
            return;
        }
        assert_eq!(
            p.ejected_flits, p.num_flits,
            "tail arrived before all body flits (per-VC FIFO violated)"
        );
        let Some(p) = self.packets[slot].take() else {
            debug_assert!(false, "slot {slot} vanished between borrow and take");
            return;
        };
        self.free_slots.push(flit.slot);
        self.live_packets -= 1;
        self.record_trace(p.id, now, TraceEvent::Ejected);
        self.complete_packet(p, node, now);
    }

    fn complete_packet(&mut self, p: PacketState, node: usize, now: u64) {
        debug_assert_eq!(p.dest.index(), node, "packet ejected at wrong node");
        let mut decode_latency = 0;
        let mut block = None;
        let mut notes: Vec<(NodeId, Notification)> = Vec::new();
        if let Some(encoded) = &p.payload {
            let decoder = &mut self.codecs[node].decoder;
            decode_latency = decoder.decompression_latency();
            let result = decoder.decode(encoded, p.src);
            notes = result.notifications;
            block = Some(result.block);
        }
        // Link-fault corruption lands on the *decoded* data — what the
        // consumer would read — while `p.precise` keeps the golden copy for
        // the bound checker and quality accounting.
        if !p.corrupt.is_empty() {
            if let Some(b) = &mut block {
                let words = b.words_mut();
                for &(w, bit) in &p.corrupt {
                    if let Some(word) = words.get_mut(w as usize) {
                        *word ^= 1 << bit;
                    }
                }
            }
        }
        self.check_bound(&p, block.as_ref(), now);
        if let Some(note) = p.notification {
            // An in-band dictionary notification reaching its encoder.
            self.codecs[node].encoder.apply_notification(p.src, note);
        }
        let done_at = now + decode_latency;
        if p.measured {
            // Delivery implies the head flit was injected; fall back to the
            // creation cycle (zero queueing) if that invariant ever breaks.
            debug_assert!(p.inject_start.is_some(), "delivered but never injected");
            let inject = p.inject_start.unwrap_or(p.created);
            self.stats.packets += 1;
            match p.kind {
                PacketKind::Data => self.stats.data_packets += 1,
                PacketKind::Control => self.stats.control_packets += 1,
            }
            self.stats.queue_lat_sum += inject - p.created;
            self.stats.net_lat_sum += now - inject;
            self.stats.decode_lat_sum += decode_latency;
            self.stats.latency_histogram.record(done_at - p.created);
            if let (Some(precise), Some(decoded)) = (&p.precise, &block) {
                self.stats.quality.record_block(precise, decoded);
            }
        }
        // Dictionary notifications: instantaneous side channel by default,
        // or real control packets with `notify_in_band`.
        for (to, note) in notes {
            if self.config.notify_in_band {
                self.enqueue_control_with(p.dest, to, Some(note));
            } else {
                self.codecs[to.index()]
                    .encoder
                    .apply_notification(p.dest, note);
            }
        }
        self.record_trace(p.id, done_at, TraceEvent::Completed);
        self.delivered.push(Delivered {
            id: p.id,
            src: p.src,
            dest: p.dest,
            kind: p.kind,
            done_at,
            block,
        });
    }

    /// End-to-end bound check: every delivered word must be within the
    /// active threshold of its golden counterpart. Violations are always
    /// counted; they are fatal only when no faults are being injected,
    /// because then they can only mean a codec bug.
    fn check_bound(&mut self, p: &PacketState, block: Option<&CacheBlock>, now: u64) {
        let Some(threshold) = self.bound_check else {
            return;
        };
        let (Some(precise), Some(decoded)) = (&p.precise, block) else {
            return;
        };
        let limit = threshold.percent() as f64 / 100.0 + 1e-9;
        let dtype = precise.dtype();
        for (i, (&pw, &aw)) in precise.words().iter().zip(decoded.words()).enumerate() {
            self.stats.faults.bound_checked_words += 1;
            let err = Avcl::relative_error(pw, aw, dtype);
            let violated = match err {
                Some(e) => e > limit,
                // Non-finite floats have no meaningful relative error; the
                // codecs must deliver them bit-exactly.
                None => pw != aw,
            };
            if violated {
                self.stats.faults.bound_violations += 1;
                if self.fatal.is_none() && !self.faults.is_active() {
                    self.fatal = Some(SimError::BoundViolation(BoundViolation {
                        cycle: now,
                        packet: p.id,
                        src: p.src,
                        dest: p.dest,
                        word_index: i,
                        precise: pw,
                        approx: aw,
                        relative_error: err.unwrap_or(f64::INFINITY),
                        threshold_percent: threshold.percent(),
                    }));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline_sim(config: NocConfig) -> NocSim {
        let n = config.num_nodes();
        NocSim::new(config, (0..n).map(|_| NodeCodec::baseline()).collect())
    }

    #[test]
    fn control_packet_crosses_the_mesh() {
        let mut sim = baseline_sim(NocConfig::mesh_3x3());
        sim.enqueue_control(NodeId(0), NodeId(8));
        assert!(sim.drain(200));
        let d = sim.drain_delivered();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].dest, NodeId(8));
        // 4 hops: inject(+1) + 4 routers × 3 cycles + BW... sanity bound.
        assert!(d[0].done_at >= 12 && d[0].done_at <= 40, "{}", d[0].done_at);
        let s = sim.stats();
        assert_eq!(s.packets, 1);
        assert_eq!(s.control_packets, 1);
        assert_eq!(s.flits_injected, 1);
        assert_eq!(s.flits_delivered, 1);
    }

    #[test]
    fn data_packet_delivers_block_bit_exactly() {
        let mut sim = baseline_sim(NocConfig::paper_4x4_cmesh());
        let block =
            CacheBlock::from_i32(&[1, -2, 3, -4, 5, -6, 7, -8, 9, 10, 11, 12, 13, 14, 15, 16]);
        sim.enqueue_data(NodeId(0), NodeId(31), block.clone());
        assert!(sim.drain(500));
        let d = sim.drain_delivered();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].block.as_ref().unwrap(), &block);
        let s = sim.stats();
        assert_eq!(s.data_packets, 1);
        // Uncompressed 64 B block on 64-bit flits: 9 flits.
        assert_eq!(s.data_flits_injected, 9);
        assert_eq!(s.baseline_data_flits, 9);
        assert_eq!(s.quality.quality(), 1.0);
    }

    #[test]
    fn every_pair_delivers() {
        let mut sim = baseline_sim(NocConfig::mesh_3x3());
        let n = sim.num_nodes();
        let mut expected = 0;
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    sim.enqueue_control(NodeId::from(s), NodeId::from(d));
                    expected += 1;
                }
            }
        }
        assert!(sim.drain(5_000));
        let delivered = sim.drain_delivered();
        assert_eq!(delivered.len(), expected);
        for p in &delivered {
            assert_ne!(p.src, p.dest);
        }
    }

    #[test]
    fn serialization_latency_scales_with_flits() {
        // A long packet's tail trails its head by (flits - 1) cycles min.
        let mut sim = baseline_sim(NocConfig::paper_4x4_cmesh());
        let block = CacheBlock::from_i32(&[0x12345678; 16]); // 9 flits uncompressed
        sim.enqueue_data(NodeId(0), NodeId(2), block);
        assert!(sim.drain(300));
        let s = sim.stats();
        // Head: ~1 + 2 routers * 3 + eject; +8 serialization.
        assert!(s.avg_net_latency() >= 14.0, "{}", s.avg_net_latency());
    }

    #[test]
    fn queueing_latency_appears_under_burst() {
        let mut sim = baseline_sim(NocConfig::paper_4x4_cmesh());
        for _ in 0..10 {
            let block = CacheBlock::from_i32(&[7; 16]);
            sim.enqueue_data(NodeId(0), NodeId(31), block);
        }
        assert!(sim.drain(2_000));
        let s = sim.stats();
        assert_eq!(s.data_packets, 10);
        // 10 packets × 9 flits serialised out of one NI: queueing dominates.
        assert!(s.avg_queue_latency() > 20.0, "{}", s.avg_queue_latency());
    }

    #[test]
    fn measurement_window_excludes_warmup() {
        let mut sim = baseline_sim(NocConfig::mesh_3x3());
        sim.enqueue_control(NodeId(0), NodeId(4));
        sim.run(5);
        sim.begin_measurement(); // warmup packet still in flight
        sim.enqueue_control(NodeId(1), NodeId(5));
        assert!(sim.drain(300));
        let s = sim.stats();
        assert_eq!(s.packets, 1, "only the measured packet counts");
    }

    #[test]
    fn hop_count_affects_latency() {
        let mut near = baseline_sim(NocConfig::mesh_3x3());
        near.enqueue_control(NodeId(0), NodeId(1));
        assert!(near.drain(200));
        let near_lat = near.stats().avg_packet_latency();

        let mut far = baseline_sim(NocConfig::mesh_3x3());
        far.enqueue_control(NodeId(0), NodeId(8));
        assert!(far.drain(200));
        let far_lat = far.stats().avg_packet_latency();
        assert!(
            far_lat >= near_lat + 6.0,
            "4 hops ({far_lat}) vs 1 hop ({near_lat})"
        );
    }

    #[test]
    fn backlog_and_outstanding_reporting() {
        let mut sim = baseline_sim(NocConfig::mesh_3x3());
        for _ in 0..3 {
            sim.enqueue_data(NodeId(0), NodeId(8), CacheBlock::from_i32(&[1; 16]));
        }
        assert_eq!(sim.injection_backlog(NodeId(0)), 3);
        assert_eq!(sim.outstanding_packets(), 3);
        assert!(sim.drain(2_000));
        assert_eq!(sim.injection_backlog(NodeId(0)), 0);
        assert_eq!(sim.outstanding_packets(), 0);
    }

    #[test]
    fn activity_report_counts_events() {
        let mut sim = baseline_sim(NocConfig::mesh_3x3());
        sim.enqueue_control(NodeId(0), NodeId(8));
        sim.drain(200);
        let a = sim.activity_report();
        assert!(a.routers.buffer_writes >= 5, "{a:?}");
        assert!(a.routers.crossbar_traversals >= 5);
        assert!(a.cycles > 0);
    }
}
