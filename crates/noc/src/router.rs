//! The three-stage virtual-channel wormhole router.
//!
//! Pipeline model (Table 1: "2 GHz three stage router"): a flit written into
//! an input VC buffer at cycle `a` (BW + RC) becomes eligible for allocation
//! at `a+1` (VA + SA) and, once granted, traverses the switch and link to be
//! written downstream at `g+2` (ST + LT) — three cycles per hop when
//! uncontended. Credit-based flow control backpressures the VC buffers;
//! virtual-channel allocation holds an output VC from a packet's head grant
//! to its tail traversal (wormhole).

use std::collections::VecDeque;

use anoc_core::snap::{SnapError, SnapReader, SnapWriter};

use crate::packet::Flit;
use crate::snapshot::{load_flit, load_opt_usize_below, save_flit, save_opt_usize};

/// `x mod m` for `x < 2m`: one compare instead of a hardware divide, which
/// dominated the allocation loop's round-robin index arithmetic.
#[inline(always)]
fn wrap(x: usize, m: usize) -> usize {
    if x >= m {
        x - m
    } else {
        x
    }
}

/// Where an output port's link lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDest {
    /// Another router's input port.
    Router {
        /// Downstream router id.
        router: usize,
        /// Input port index at the downstream router.
        port: usize,
    },
    /// A local NI's ejection path.
    Eject {
        /// The node ejected to.
        node: usize,
    },
}

/// Who feeds an input port (for credit return).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Upstream {
    /// An upstream router's output port.
    Router {
        /// Upstream router id.
        router: usize,
        /// Output port index at the upstream router.
        port: usize,
    },
    /// A local NI's injection path.
    Local {
        /// The injecting node.
        node: usize,
    },
}

/// One virtual channel of an input port.
#[derive(Debug, Clone)]
struct VcState {
    buf: VecDeque<Flit>,
    out_port: Option<usize>,
    out_vc: Option<usize>,
}

impl VcState {
    fn new() -> Self {
        VcState {
            buf: VecDeque::new(),
            out_port: None,
            out_vc: None,
        }
    }
}

/// An input port: a set of VC buffers plus the upstream to credit.
#[derive(Debug, Clone)]
struct InPort {
    vcs: Vec<VcState>,
    /// Bitmask of VCs holding at least one flit, so allocation skips empty
    /// ports in one branch and walks only occupied VCs.
    occupied: u32,
    rr: usize,
    upstream: Option<Upstream>,
}

/// One downstream VC's flow-control state: remaining credits and, while a
/// wormhole holds the VC, the (input port, input VC) holding it. Credits and
/// holders live side by side so the allocator's probe touches one cache
/// line, not two heap blocks.
#[derive(Debug, Clone, Copy)]
struct OutVc {
    credits: u32,
    holder: Option<(u32, u32)>,
}

/// An output port: downstream link and per-VC flow-control state.
#[derive(Debug, Clone)]
struct OutPort {
    dest: LinkDest,
    vcs: Vec<OutVc>,
    vc_rr: usize,
    rr: usize,
}

/// A switch traversal granted this cycle, to be applied by the network.
#[derive(Debug, Clone, Copy)]
pub struct Traversal {
    /// The moving flit.
    pub flit: Flit,
    /// Where it goes.
    pub dest: LinkDest,
    /// Downstream VC it occupies.
    pub out_vc: usize,
    /// Who to credit for the freed buffer slot.
    pub credit_to: Option<(Upstream, usize)>,
}

/// Microarchitectural event counters of one router (drive the power model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterActivity {
    /// Flits written into input buffers.
    pub buffer_writes: u64,
    /// Flits read out of input buffers (switch traversals).
    pub buffer_reads: u64,
    /// Output VC allocations performed.
    pub vc_allocs: u64,
    /// Switch allocation grants (crossbar traversals).
    pub crossbar_traversals: u64,
    /// Router-to-router link traversals.
    pub link_traversals: u64,
}

impl RouterActivity {
    /// Merges another activity record into this one.
    pub fn merge(&mut self, other: &RouterActivity) {
        self.buffer_writes += other.buffer_writes;
        self.buffer_reads += other.buffer_reads;
        self.vc_allocs += other.vc_allocs;
        self.crossbar_traversals += other.crossbar_traversals;
        self.link_traversals += other.link_traversals;
    }
}

/// One mesh router.
#[derive(Debug, Clone)]
pub struct Router {
    id: usize,
    in_ports: Vec<InPort>,
    out_ports: Vec<OutPort>,
    /// Flits currently held across all input VC buffers. Maintained so the
    /// network can skip allocation for idle routers in O(1).
    buffered: usize,
    /// Per-call request scratch of [`Router::allocate`] (`in_port ->
    /// (vc, out_port)`), hoisted here so the steady-state allocation loop
    /// never touches the heap.
    requests: Vec<Option<(usize, usize)>>,
    /// Per-call scratch of [`Router::allocate`]: for each output port, a
    /// bitmask of the input ports requesting it, so the grant phase costs
    /// one rotate + trailing-zeros per output port instead of a scan over
    /// every input port.
    out_requests: Vec<u64>,
    activity: RouterActivity,
}

impl Router {
    /// Builds a router with `ports` ports, `vcs` VCs of `vc_buffer` flits.
    /// Links and upstreams are wired afterwards by the network.
    pub fn new(id: usize, ports: usize, vcs: usize, vc_buffer: usize) -> Self {
        assert!(ports <= 64, "request bitmasks hold at most 64 input ports");
        assert!(vcs <= 32, "occupancy bitmasks hold at most 32 VCs");
        Router {
            id,
            in_ports: (0..ports)
                .map(|_| InPort {
                    vcs: (0..vcs).map(|_| VcState::new()).collect(),
                    occupied: 0,
                    rr: 0,
                    upstream: None,
                })
                .collect(),
            out_ports: (0..ports)
                .map(|_| OutPort {
                    dest: LinkDest::Eject { node: usize::MAX },
                    vcs: vec![
                        OutVc {
                            credits: vc_buffer as u32,
                            holder: None,
                        };
                        vcs
                    ],
                    vc_rr: 0,
                    rr: 0,
                })
                .collect(),
            buffered: 0,
            requests: vec![None; ports],
            out_requests: vec![0; ports],
            activity: RouterActivity::default(),
        }
    }

    /// Router id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Wires output port `port` to `dest`. Ejection ports are not credit
    /// flow-controlled at all (the NI sinks one flit per cycle regardless):
    /// [`Router::allocate`] skips the credit check and decrement for them, so
    /// no finite counter can drain over a long-lived simulation.
    pub fn wire_output(&mut self, port: usize, dest: LinkDest) {
        self.out_ports[port].dest = dest;
    }

    /// Declares who feeds input port `port`.
    pub fn wire_input(&mut self, port: usize, upstream: Upstream) {
        self.in_ports[port].upstream = Some(upstream);
    }

    /// Accepts a flit into an input VC buffer (BW stage).
    ///
    /// # Panics
    ///
    /// Panics if the buffer would exceed the credited capacity — that would
    /// be a flow-control bug, not a runtime condition.
    pub fn accept_flit(&mut self, port: usize, vc: usize, flit: Flit) {
        self.activity.buffer_writes += 1;
        self.buffered += 1;
        let p = &mut self.in_ports[port];
        p.occupied |= 1 << vc;
        p.vcs[vc].buf.push_back(flit);
    }

    /// Whether every input VC buffer is empty — an idle router's allocation
    /// cycle is a guaranteed no-op, so the network skips it entirely.
    pub fn is_idle(&self) -> bool {
        self.buffered == 0
    }

    /// Returns one credit for output port `port`, VC `vc`.
    pub fn return_credit(&mut self, port: usize, vc: usize) {
        let out = &mut self.out_ports[port];
        if !matches!(out.dest, LinkDest::Eject { .. }) {
            out.vcs[vc].credits += 1;
        }
    }

    /// Buffered flit count across all input VCs (for drain detection).
    pub fn occupancy(&self) -> usize {
        debug_assert_eq!(
            self.buffered,
            self.in_ports
                .iter()
                .flat_map(|p| p.vcs.iter())
                .map(|v| v.buf.len())
                .sum::<usize>(),
            "buffered counter out of sync with the VC buffers"
        );
        self.buffered
    }

    /// Accumulated event counters.
    pub fn activity(&self) -> RouterActivity {
        self.activity
    }

    /// Flow-control snapshot for deadlock diagnostics: per output port, each
    /// VC's `(remaining credits, wormhole holder)` where the holder is the
    /// `(input port, input VC)` currently owning the VC.
    pub fn flow_snapshot(&self) -> crate::faults::PortFlows {
        self.out_ports
            .iter()
            .map(|p| p.vcs.iter().map(|v| (v.credits, v.holder)).collect())
            .collect()
    }

    /// Serializes the router's mutable state for a snapshot: per input VC the
    /// buffered flits (slots translated to canonical packet indices by
    /// `remap`) and held route/VC, per output VC the credits and wormhole
    /// holder, the round-robin pointers and the activity counters. Wiring
    /// (`dest`/`upstream`) is configuration, not state, and is skipped; the
    /// `occupied` bitmask and `buffered` count are derived and recomputed on
    /// load.
    pub(crate) fn save_state(
        &self,
        w: &mut SnapWriter,
        remap: &impl Fn(u32) -> Option<u32>,
    ) -> Result<(), SnapError> {
        for port in &self.in_ports {
            w.usize(port.rr);
            for vc in &port.vcs {
                w.usize(vc.buf.len());
                for f in &vc.buf {
                    save_flit(w, f, remap)?;
                }
                save_opt_usize(w, vc.out_port);
                save_opt_usize(w, vc.out_vc);
            }
        }
        for port in &self.out_ports {
            w.usize(port.vc_rr);
            w.usize(port.rr);
            for vc in &port.vcs {
                w.u32(vc.credits);
                match vc.holder {
                    Some((ip, v)) => {
                        w.bool(true);
                        w.u32(ip);
                        w.u32(v);
                    }
                    None => w.bool(false),
                }
            }
        }
        w.u64(self.activity.buffer_writes);
        w.u64(self.activity.buffer_reads);
        w.u64(self.activity.vc_allocs);
        w.u64(self.activity.crossbar_traversals);
        w.u64(self.activity.link_traversals);
        Ok(())
    }

    /// Restores state written by [`Router::save_state`] into a router built
    /// with the same geometry. Every index that later feeds the allocator's
    /// rotate arithmetic is range-checked here so a corrupt blob fails as a
    /// typed error, never as a shift overflow mid-campaign.
    pub(crate) fn load_state(
        &mut self,
        r: &mut SnapReader<'_>,
        remap: &impl Fn(u32) -> Option<u32>,
    ) -> Result<(), SnapError> {
        let num_in = self.in_ports.len();
        let num_vcs = self
            .in_ports
            .first()
            .map(|p| p.vcs.len())
            .unwrap_or_default();
        let mut buffered = 0usize;
        for port in &mut self.in_ports {
            let rr = r.usize()?;
            if rr >= num_vcs {
                return Err(SnapError::Invalid("input round-robin index"));
            }
            port.rr = rr;
            port.occupied = 0;
            for (v, vc) in port.vcs.iter_mut().enumerate() {
                let n = r.usize()?;
                if n > 1 << 20 {
                    return Err(SnapError::Invalid("vc buffer length"));
                }
                vc.buf.clear();
                for _ in 0..n {
                    vc.buf.push_back(load_flit(r, remap)?);
                }
                if !vc.buf.is_empty() {
                    port.occupied |= 1 << v;
                    buffered += vc.buf.len();
                }
                vc.out_port = load_opt_usize_below(r, num_in, "allocated output port")?;
                vc.out_vc = load_opt_usize_below(r, num_vcs, "allocated output vc")?;
            }
        }
        for port in &mut self.out_ports {
            let vc_rr = r.usize()?;
            let rr = r.usize()?;
            if vc_rr >= num_vcs || rr >= num_in {
                return Err(SnapError::Invalid("output round-robin index"));
            }
            port.vc_rr = vc_rr;
            port.rr = rr;
            for vc in &mut port.vcs {
                vc.credits = r.u32()?;
                vc.holder = if r.bool()? {
                    let ip = r.u32()?;
                    let v = r.u32()?;
                    if ip as usize >= num_in || v as usize >= num_vcs {
                        return Err(SnapError::Invalid("wormhole holder"));
                    }
                    Some((ip, v))
                } else {
                    None
                };
            }
        }
        self.buffered = buffered;
        self.activity = RouterActivity {
            buffer_writes: r.u64()?,
            buffer_reads: r.u64()?,
            vc_allocs: r.u64()?,
            crossbar_traversals: r.u64()?,
            link_traversals: r.u64()?,
        };
        Ok(())
    }

    /// One allocation cycle: VA + SA over all ports, appending the granted
    /// switch traversals to `grants` (a caller-owned scratch buffer, so the
    /// steady-state loop never allocates). `route_of` maps a head flit's
    /// destination to an output port (RC). At most one grant per input port
    /// and per output port (a single-crossbar, separable allocator with
    /// round-robin priorities).
    pub fn allocate(
        &mut self,
        now: u64,
        route_of: impl Fn(&Flit) -> usize,
        grants: &mut Vec<Traversal>,
    ) {
        if self.buffered == 0 {
            return;
        }
        // Destructure for split borrows: the nomination loop walks input
        // ports while probing output-port credits and holders, and indexed
        // re-lookups of `self` on every probe dominated the profile.
        let Router {
            in_ports,
            out_ports,
            requests,
            out_requests,
            activity,
            buffered,
            ..
        } = self;
        let num_in = in_ports.len();
        let num_vcs = in_ports.first().map(|p| p.vcs.len()).unwrap_or_default();
        // Phase 1 — each input port nominates one (vc, out_port) request.
        requests.iter_mut().for_each(|r| *r = None);
        out_requests.iter_mut().for_each(|m| *m = 0);
        let mut any_request = false;
        let vc_mask = u32::MAX >> (32 - num_vcs as u32);
        for (ip, port) in in_ports.iter_mut().enumerate() {
            if port.occupied == 0 {
                continue;
            }
            let start = port.rr;
            // Walk only the occupied VCs, in round-robin order from `rr`:
            // rotate the occupancy mask so bit position encodes priority,
            // then peel set bits lowest-first. Empty VCs were skipped by the
            // previous linear scan too, so the probe order is unchanged.
            let mut rot = if start == 0 {
                port.occupied
            } else {
                ((port.occupied >> start) | (port.occupied << (num_vcs - start))) & vc_mask
            };
            while rot != 0 {
                let v = wrap(start + rot.trailing_zeros() as usize, num_vcs);
                rot &= rot - 1;
                // Inspect the head-of-line flit of this VC. The occupancy
                // bitmask mirrors the buffer contents, so an empty buffer
                // here would be a bookkeeping bug — skip it rather than
                // crash a long campaign.
                let vc = &mut port.vcs[v];
                let Some(&flit) = vc.buf.front() else {
                    debug_assert!(false, "occupied VC {v} of port {ip} has no flit");
                    continue;
                };
                if flit.ready_at > now {
                    continue;
                }
                // RC: resolve output port for a new packet.
                let op = match vc.out_port {
                    Some(op) => op,
                    None => {
                        debug_assert!(flit.is_head(), "body flit without an allocated route");
                        let op = route_of(&flit);
                        vc.out_port = Some(op);
                        op
                    }
                };
                let out = &mut out_ports[op];
                let eject = matches!(out.dest, LinkDest::Eject { .. });
                // VA: obtain an output VC if the packet does not hold one.
                // Ejection ports never serialise packets onto a single VC —
                // the NI reassembles per packet — so they grant the input's
                // own VC unconditionally.
                let ovc = match vc.out_vc {
                    Some(ovc) => ovc,
                    None => {
                        let granted = if eject {
                            Some(v)
                        } else {
                            let n = out.vcs.len();
                            let vstart = out.vc_rr;
                            (0..n).map(|j| wrap(vstart + j, n)).find(|&ov| {
                                if out.vcs[ov].holder.is_none() {
                                    out.vcs[ov].holder = Some((ip as u32, v as u32));
                                    out.vc_rr = wrap(ov + 1, n);
                                    true
                                } else {
                                    false
                                }
                            })
                        };
                        let Some(granted) = granted else {
                            continue; // no free downstream VC; try another input VC
                        };
                        vc.out_vc = Some(granted);
                        activity.vc_allocs += 1;
                        granted
                    }
                };
                // Credit check (ST needs a downstream buffer slot). Ejection
                // is not credit flow-controlled: the NI sinks a flit per
                // cycle, so eject grants neither check nor spend credits.
                if !eject && out.vcs[ovc].credits == 0 {
                    continue;
                }
                requests[ip] = Some((v, op));
                out_requests[op] |= 1u64 << ip;
                any_request = true;
                break;
            }
        }
        if !any_request {
            return;
        }
        // Phase 2 — each output port grants one requesting input port: the
        // round-robin winner is the first set bit of the request mask
        // rotated to start at the port's priority pointer.
        for (op, out_port) in out_ports.iter_mut().enumerate() {
            let mask = out_requests[op];
            if mask == 0 {
                continue;
            }
            let start = out_port.rr;
            let rot = if start == 0 {
                mask
            } else {
                (mask >> start) | (mask << (num_in - start))
            };
            let ip = wrap(start + rot.trailing_zeros() as usize, num_in);
            // Each of these states was established by phase 1 (the request
            // mask bit, the nominated flit, the granted output VC); a
            // mismatch is a bookkeeping bug, degraded to a skipped grant.
            let Some((v, _)) = requests[ip].take() else {
                debug_assert!(false, "masked input {ip} had no request");
                continue;
            };
            let in_port = &mut in_ports[ip];
            let vc_state = &mut in_port.vcs[v];
            let Some(flit) = vc_state.buf.pop_front() else {
                debug_assert!(false, "nominated VC {v} of input {ip} has no flit");
                continue;
            };
            *buffered -= 1;
            let Some(ovc) = vc_state.out_vc else {
                debug_assert!(false, "granted packet holds no output VC");
                continue;
            };
            if flit.is_tail {
                // Release the wormhole: route and output VC free up.
                vc_state.out_port = None;
                vc_state.out_vc = None;
                out_port.vcs[ovc].holder = None;
            }
            if vc_state.buf.is_empty() {
                in_port.occupied &= !(1 << v);
            }
            if matches!(out_port.dest, LinkDest::Router { .. }) {
                out_port.vcs[ovc].credits -= 1;
                activity.link_traversals += 1;
            }
            activity.buffer_reads += 1;
            activity.crossbar_traversals += 1;
            in_port.rr = wrap(v + 1, num_vcs);
            out_port.rr = wrap(ip + 1, num_in);
            grants.push(Traversal {
                flit,
                dest: out_port.dest,
                out_vc: ovc,
                credit_to: in_port.upstream.map(|u| (u, v)),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anoc_core::data::NodeId;

    fn flit(pid: u32, seq: u32, tail: bool, ready: u64) -> Flit {
        Flit {
            slot: pid,
            seq,
            is_tail: tail,
            dest: NodeId(0),
            ready_at: ready,
        }
    }

    fn test_router() -> Router {
        let mut r = Router::new(0, 3, 2, 4);
        r.wire_output(1, LinkDest::Router { router: 1, port: 3 });
        r.wire_output(2, LinkDest::Eject { node: 0 });
        r.wire_input(0, Upstream::Local { node: 0 });
        r
    }

    /// Collects one allocation cycle's grants into a fresh vector.
    fn allocate(r: &mut Router, now: u64, route_of: impl Fn(&Flit) -> usize) -> Vec<Traversal> {
        let mut grants = Vec::new();
        r.allocate(now, route_of, &mut grants);
        grants
    }

    #[test]
    fn single_flit_traverses_after_pipeline_delay() {
        let mut r = test_router();
        r.accept_flit(0, 0, flit(1, 0, true, 1));
        // Not ready at cycle 0.
        assert!(allocate(&mut r, 0, |_| 1).is_empty());
        let grants = allocate(&mut r, 1, |_| 1);
        assert_eq!(grants.len(), 1);
        let t = grants[0];
        assert_eq!(t.flit.slot, 1);
        assert!(matches!(t.dest, LinkDest::Router { router: 1, port: 3 }));
        assert!(matches!(
            t.credit_to,
            Some((Upstream::Local { node: 0 }, 0))
        ));
        assert_eq!(r.occupancy(), 0);
    }

    #[test]
    fn credits_backpressure() {
        let mut r = test_router();
        // Exhaust the 4 credits of out port 1, vc 0 — a 5-flit packet stalls
        // on the fifth flit until credits return.
        for seq in 0..5 {
            r.accept_flit(0, 0, flit(1, seq, seq == 4, 0));
        }
        let mut sent = 0;
        for now in 1..=4 {
            sent += allocate(&mut r, now, |_| 1).len();
        }
        assert_eq!(sent, 4);
        assert!(allocate(&mut r, 5, |_| 1).is_empty(), "no credit left");
        r.return_credit(1, 0);
        assert_eq!(allocate(&mut r, 6, |_| 1).len(), 1);
    }

    #[test]
    fn wormhole_holds_output_vc_until_tail() {
        let mut r = test_router();
        // Packet A (head, not tail) on vc 0 grabs an output VC and keeps it.
        r.accept_flit(0, 0, flit(1, 0, false, 0));
        r.accept_flit(0, 1, flit(2, 0, true, 0));
        let g1 = allocate(&mut r, 1, |_| 1);
        assert_eq!(g1.len(), 1);
        assert_eq!(g1[0].flit.slot, 1);
        let vc_a = g1[0].out_vc;
        // Packet B must get a *different* output VC.
        let g2 = allocate(&mut r, 2, |_| 1);
        assert_eq!(g2.len(), 1);
        assert_eq!(g2[0].flit.slot, 2);
        assert_ne!(g2[0].out_vc, vc_a);
        // A's tail arrives and releases the VC.
        r.accept_flit(0, 0, flit(1, 1, true, 2));
        let g3 = allocate(&mut r, 3, |_| 1);
        assert_eq!(g3.len(), 1);
        assert_eq!(g3[0].out_vc, vc_a);
        // Now both output VCs are free again.
        r.accept_flit(0, 0, flit(3, 0, true, 3));
        let g4 = allocate(&mut r, 4, |_| 1);
        assert_eq!(g4.len(), 1);
    }

    #[test]
    fn output_port_grants_one_flit_per_cycle() {
        let mut r = test_router();
        // Two inputs contending for out port 1.
        r.accept_flit(0, 0, flit(1, 0, true, 0));
        r.accept_flit(1, 0, flit(2, 0, true, 0));
        let g1 = allocate(&mut r, 1, |_| 1);
        assert_eq!(g1.len(), 1);
        let g2 = allocate(&mut r, 2, |_| 1);
        assert_eq!(g2.len(), 1);
        assert_ne!(g1[0].flit.slot, g2[0].flit.slot, "round-robin rotates");
    }

    #[test]
    fn ejection_needs_no_credits() {
        // Ejection ports have no downstream buffer to run out of — the NI
        // consumes flits as they arrive — so far more flits than any VC
        // buffer must flow out without a single credit ever returning.
        let mut r = test_router();
        for seq in 0..20 {
            r.accept_flit(0, 0, flit(1, seq, seq == 19, seq as u64));
        }
        let mut sent = 0;
        for now in 1..=30 {
            sent += allocate(&mut r, now, |_| 2).len();
        }
        assert_eq!(sent, 20);
        assert_eq!(r.occupancy(), 0);
        assert_eq!(r.activity().crossbar_traversals, 20);
        assert_eq!(r.activity().link_traversals, 0, "ejection is not a link");
    }

    #[test]
    fn vc_exhaustion_blocks_new_packets() {
        let mut r = test_router();
        // Two in-progress packets hold both output VCs of port 1.
        r.accept_flit(0, 0, flit(1, 0, false, 0));
        r.accept_flit(0, 1, flit(2, 0, false, 0));
        assert_eq!(allocate(&mut r, 1, |_| 1).len(), 1);
        assert_eq!(allocate(&mut r, 2, |_| 1).len(), 1);
        // A third packet from another input port finds no free VC.
        r.accept_flit(1, 0, flit(3, 0, false, 0));
        assert!(allocate(&mut r, 3, |_| 1).is_empty());
        assert_eq!(r.activity().vc_allocs, 2);
    }

    #[test]
    fn ejection_bypasses_vc_limits() {
        let mut r = test_router();
        r.accept_flit(0, 0, flit(1, 0, false, 0));
        r.accept_flit(0, 1, flit(2, 0, false, 0));
        r.accept_flit(1, 0, flit(3, 0, false, 0));
        let mut got = 0;
        for now in 1..=4 {
            got += allocate(&mut r, now, |_| 2).len();
        }
        assert_eq!(got, 3, "eject port never runs out of VCs or credits");
    }

    #[test]
    fn activity_counters() {
        let mut r = test_router();
        r.accept_flit(0, 0, flit(1, 0, true, 0));
        allocate(&mut r, 1, |_| 1);
        let a = r.activity();
        assert_eq!(a.buffer_writes, 1);
        assert_eq!(a.buffer_reads, 1);
        assert_eq!(a.crossbar_traversals, 1);
        assert_eq!(a.link_traversals, 1);
        let mut b = RouterActivity::default();
        b.merge(&a);
        assert_eq!(b, a);
    }
}
