//! The three-stage virtual-channel wormhole router.
//!
//! Pipeline model (Table 1: "2 GHz three stage router"): a flit written into
//! an input VC buffer at cycle `a` (BW + RC) becomes eligible for allocation
//! at `a+1` (VA + SA) and, once granted, traverses the switch and link to be
//! written downstream at `g+2` (ST + LT) — three cycles per hop when
//! uncontended. Credit-based flow control backpressures the VC buffers;
//! virtual-channel allocation holds an output VC from a packet's head grant
//! to its tail traversal (wormhole).

use std::collections::VecDeque;

use crate::packet::Flit;

/// Where an output port's link lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDest {
    /// Another router's input port.
    Router {
        /// Downstream router id.
        router: usize,
        /// Input port index at the downstream router.
        port: usize,
    },
    /// A local NI's ejection path.
    Eject {
        /// The node ejected to.
        node: usize,
    },
}

/// Who feeds an input port (for credit return).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Upstream {
    /// An upstream router's output port.
    Router {
        /// Upstream router id.
        router: usize,
        /// Output port index at the upstream router.
        port: usize,
    },
    /// A local NI's injection path.
    Local {
        /// The injecting node.
        node: usize,
    },
}

/// One virtual channel of an input port.
#[derive(Debug, Clone)]
struct VcState {
    buf: VecDeque<Flit>,
    out_port: Option<usize>,
    out_vc: Option<usize>,
}

impl VcState {
    fn new() -> Self {
        VcState {
            buf: VecDeque::new(),
            out_port: None,
            out_vc: None,
        }
    }
}

/// An input port: a set of VC buffers plus the upstream to credit.
#[derive(Debug, Clone)]
struct InPort {
    vcs: Vec<VcState>,
    rr: usize,
    upstream: Option<Upstream>,
}

/// An output port: downstream link, per-VC credits and VC holders.
#[derive(Debug, Clone)]
struct OutPort {
    dest: LinkDest,
    credits: Vec<u32>,
    holder: Vec<Option<(usize, usize)>>,
    vc_rr: usize,
    rr: usize,
}

/// A switch traversal granted this cycle, to be applied by the network.
#[derive(Debug, Clone, Copy)]
pub struct Traversal {
    /// The moving flit.
    pub flit: Flit,
    /// Where it goes.
    pub dest: LinkDest,
    /// Downstream VC it occupies.
    pub out_vc: usize,
    /// Who to credit for the freed buffer slot.
    pub credit_to: Option<(Upstream, usize)>,
}

/// Microarchitectural event counters of one router (drive the power model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterActivity {
    /// Flits written into input buffers.
    pub buffer_writes: u64,
    /// Flits read out of input buffers (switch traversals).
    pub buffer_reads: u64,
    /// Output VC allocations performed.
    pub vc_allocs: u64,
    /// Switch allocation grants (crossbar traversals).
    pub crossbar_traversals: u64,
    /// Router-to-router link traversals.
    pub link_traversals: u64,
}

impl RouterActivity {
    /// Merges another activity record into this one.
    pub fn merge(&mut self, other: &RouterActivity) {
        self.buffer_writes += other.buffer_writes;
        self.buffer_reads += other.buffer_reads;
        self.vc_allocs += other.vc_allocs;
        self.crossbar_traversals += other.crossbar_traversals;
        self.link_traversals += other.link_traversals;
    }
}

/// One mesh router.
#[derive(Debug, Clone)]
pub struct Router {
    id: usize,
    in_ports: Vec<InPort>,
    out_ports: Vec<OutPort>,
    activity: RouterActivity,
}

impl Router {
    /// Builds a router with `ports` ports, `vcs` VCs of `vc_buffer` flits.
    /// Links and upstreams are wired afterwards by the network.
    pub fn new(id: usize, ports: usize, vcs: usize, vc_buffer: usize) -> Self {
        Router {
            id,
            in_ports: (0..ports)
                .map(|_| InPort {
                    vcs: (0..vcs).map(|_| VcState::new()).collect(),
                    rr: 0,
                    upstream: None,
                })
                .collect(),
            out_ports: (0..ports)
                .map(|_| OutPort {
                    dest: LinkDest::Eject { node: usize::MAX },
                    credits: vec![vc_buffer as u32; vcs],
                    holder: vec![None; vcs],
                    vc_rr: 0,
                    rr: 0,
                })
                .collect(),
            activity: RouterActivity::default(),
        }
    }

    /// Router id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Wires output port `port` to `dest`. Ejection ports get effectively
    /// unbounded credits (the NI sinks one flit per cycle regardless).
    pub fn wire_output(&mut self, port: usize, dest: LinkDest) {
        self.out_ports[port].dest = dest;
        if matches!(dest, LinkDest::Eject { .. }) {
            for c in &mut self.out_ports[port].credits {
                *c = u32::MAX / 2;
            }
        }
    }

    /// Declares who feeds input port `port`.
    pub fn wire_input(&mut self, port: usize, upstream: Upstream) {
        self.in_ports[port].upstream = Some(upstream);
    }

    /// Accepts a flit into an input VC buffer (BW stage).
    ///
    /// # Panics
    ///
    /// Panics if the buffer would exceed the credited capacity — that would
    /// be a flow-control bug, not a runtime condition.
    pub fn accept_flit(&mut self, port: usize, vc: usize, flit: Flit) {
        self.activity.buffer_writes += 1;
        self.in_ports[port].vcs[vc].buf.push_back(flit);
    }

    /// Returns one credit for output port `port`, VC `vc`.
    pub fn return_credit(&mut self, port: usize, vc: usize) {
        let out = &mut self.out_ports[port];
        if !matches!(out.dest, LinkDest::Eject { .. }) {
            out.credits[vc] += 1;
        }
    }

    /// Buffered flit count across all input VCs (for drain detection).
    pub fn occupancy(&self) -> usize {
        self.in_ports
            .iter()
            .flat_map(|p| p.vcs.iter())
            .map(|v| v.buf.len())
            .sum()
    }

    /// Accumulated event counters.
    pub fn activity(&self) -> RouterActivity {
        self.activity
    }

    /// One allocation cycle: VA + SA over all ports, returning the granted
    /// switch traversals. `route_of` maps a head flit's destination to an
    /// output port (RC). At most one grant per input port and per output
    /// port (a single-crossbar, separable allocator with round-robin
    /// priorities).
    pub fn allocate(&mut self, now: u64, route_of: impl Fn(&Flit) -> usize) -> Vec<Traversal> {
        let num_in = self.in_ports.len();
        let num_vcs = self
            .in_ports
            .first()
            .map(|p| p.vcs.len())
            .unwrap_or_default();
        // Phase 1 — each input port nominates one (vc, out_port) request.
        let mut requests: Vec<Option<(usize, usize)>> = vec![None; num_in]; // in_port -> (vc, out_port)
        #[allow(clippy::needless_range_loop)] // ip indexes two parallel port arrays
        for ip in 0..num_in {
            let start = self.in_ports[ip].rr;
            for k in 0..num_vcs {
                let v = (start + k) % num_vcs;
                // Inspect the head-of-line flit of this VC.
                let Some(&flit) = self.in_ports[ip].vcs[v].buf.front() else {
                    continue;
                };
                if flit.ready_at > now {
                    continue;
                }
                // RC: resolve output port for a new packet.
                if self.in_ports[ip].vcs[v].out_port.is_none() {
                    debug_assert!(flit.is_head(), "body flit without an allocated route");
                    let op = route_of(&flit);
                    self.in_ports[ip].vcs[v].out_port = Some(op);
                }
                let op = self.in_ports[ip].vcs[v].out_port.expect("just set");
                // VA: obtain an output VC if the packet does not hold one.
                if self.in_ports[ip].vcs[v].out_vc.is_none() {
                    let granted = self.try_vc_alloc(op, ip, v);
                    if granted.is_none() {
                        continue; // no free downstream VC; try another input VC
                    }
                    self.in_ports[ip].vcs[v].out_vc = granted;
                    self.activity.vc_allocs += 1;
                }
                let ovc = self.in_ports[ip].vcs[v].out_vc.expect("allocated above");
                // Credit check (ST needs a downstream buffer slot).
                if self.out_ports[op].credits[ovc] == 0 {
                    continue;
                }
                requests[ip] = Some((v, op));
                break;
            }
        }
        // Phase 2 — each output port grants one requesting input port.
        let mut grants: Vec<Traversal> = Vec::new();
        for op in 0..self.out_ports.len() {
            let start = self.out_ports[op].rr;
            let winner = (0..num_in)
                .map(|k| (start + k) % num_in)
                .find(|&ip| matches!(requests[ip], Some((_, p)) if p == op));
            let Some(ip) = winner else { continue };
            let (v, _) = requests[ip].take().expect("winner had a request");
            let vc_state = &mut self.in_ports[ip].vcs[v];
            let flit = vc_state.buf.pop_front().expect("nominated VC has a flit");
            let ovc = vc_state.out_vc.expect("granted packets hold an output VC");
            if flit.is_tail {
                // Release the wormhole: route and output VC free up.
                vc_state.out_port = None;
                vc_state.out_vc = None;
                self.out_ports[op].holder[ovc] = None;
            }
            self.out_ports[op].credits[ovc] -= 1;
            self.activity.buffer_reads += 1;
            self.activity.crossbar_traversals += 1;
            if matches!(self.out_ports[op].dest, LinkDest::Router { .. }) {
                self.activity.link_traversals += 1;
            }
            self.in_ports[ip].rr = (v + 1) % num_vcs;
            self.out_ports[op].rr = (ip + 1) % num_in;
            grants.push(Traversal {
                flit,
                dest: self.out_ports[op].dest,
                out_vc: ovc,
                credit_to: self.in_ports[ip].upstream.map(|u| (u, v)),
            });
        }
        grants
    }

    /// Tries to allocate a free output VC at `op` for input `(ip, iv)`.
    /// Ejection ports never serialise packets onto a single VC — the NI
    /// reassembles per packet id — so they always grant the input's own VC.
    fn try_vc_alloc(&mut self, op: usize, ip: usize, iv: usize) -> Option<usize> {
        let out = &mut self.out_ports[op];
        if matches!(out.dest, LinkDest::Eject { .. }) {
            return Some(iv);
        }
        let n = out.holder.len();
        let start = out.vc_rr;
        for k in 0..n {
            let v = (start + k) % n;
            if out.holder[v].is_none() {
                out.holder[v] = Some((ip, iv));
                out.vc_rr = (v + 1) % n;
                return Some(v);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anoc_core::data::NodeId;

    fn flit(pid: u64, seq: u32, tail: bool, ready: u64) -> Flit {
        Flit {
            packet: pid,
            seq,
            is_tail: tail,
            dest: NodeId(0),
            ready_at: ready,
        }
    }

    fn test_router() -> Router {
        let mut r = Router::new(0, 3, 2, 4);
        r.wire_output(1, LinkDest::Router { router: 1, port: 3 });
        r.wire_output(2, LinkDest::Eject { node: 0 });
        r.wire_input(0, Upstream::Local { node: 0 });
        r
    }

    #[test]
    fn single_flit_traverses_after_pipeline_delay() {
        let mut r = test_router();
        r.accept_flit(0, 0, flit(1, 0, true, 1));
        // Not ready at cycle 0.
        assert!(r.allocate(0, |_| 1).is_empty());
        let grants = r.allocate(1, |_| 1);
        assert_eq!(grants.len(), 1);
        let t = grants[0];
        assert_eq!(t.flit.packet, 1);
        assert!(matches!(t.dest, LinkDest::Router { router: 1, port: 3 }));
        assert!(matches!(
            t.credit_to,
            Some((Upstream::Local { node: 0 }, 0))
        ));
        assert_eq!(r.occupancy(), 0);
    }

    #[test]
    fn credits_backpressure() {
        let mut r = test_router();
        // Exhaust the 4 credits of out port 1, vc 0 — a 5-flit packet stalls
        // on the fifth flit until credits return.
        for seq in 0..5 {
            r.accept_flit(0, 0, flit(1, seq, seq == 4, 0));
        }
        let mut sent = 0;
        for now in 1..=4 {
            sent += r.allocate(now, |_| 1).len();
        }
        assert_eq!(sent, 4);
        assert!(r.allocate(5, |_| 1).is_empty(), "no credit left");
        r.return_credit(1, 0);
        assert_eq!(r.allocate(6, |_| 1).len(), 1);
    }

    #[test]
    fn wormhole_holds_output_vc_until_tail() {
        let mut r = test_router();
        // Packet A (head, not tail) on vc 0 grabs an output VC and keeps it.
        r.accept_flit(0, 0, flit(1, 0, false, 0));
        r.accept_flit(0, 1, flit(2, 0, true, 0));
        let g1 = r.allocate(1, |_| 1);
        assert_eq!(g1.len(), 1);
        assert_eq!(g1[0].flit.packet, 1);
        let vc_a = g1[0].out_vc;
        // Packet B must get a *different* output VC.
        let g2 = r.allocate(2, |_| 1);
        assert_eq!(g2.len(), 1);
        assert_eq!(g2[0].flit.packet, 2);
        assert_ne!(g2[0].out_vc, vc_a);
        // A's tail arrives and releases the VC.
        r.accept_flit(0, 0, flit(1, 1, true, 2));
        let g3 = r.allocate(3, |_| 1);
        assert_eq!(g3.len(), 1);
        assert_eq!(g3[0].out_vc, vc_a);
        // Now both output VCs are free again.
        r.accept_flit(0, 0, flit(3, 0, true, 3));
        let g4 = r.allocate(4, |_| 1);
        assert_eq!(g4.len(), 1);
    }

    #[test]
    fn output_port_grants_one_flit_per_cycle() {
        let mut r = test_router();
        // Two inputs contending for out port 1.
        r.accept_flit(0, 0, flit(1, 0, true, 0));
        r.accept_flit(1, 0, flit(2, 0, true, 0));
        let g1 = r.allocate(1, |_| 1);
        assert_eq!(g1.len(), 1);
        let g2 = r.allocate(2, |_| 1);
        assert_eq!(g2.len(), 1);
        assert_ne!(g1[0].flit.packet, g2[0].flit.packet, "round-robin rotates");
    }

    #[test]
    fn vc_exhaustion_blocks_new_packets() {
        let mut r = test_router();
        // Two in-progress packets hold both output VCs of port 1.
        r.accept_flit(0, 0, flit(1, 0, false, 0));
        r.accept_flit(0, 1, flit(2, 0, false, 0));
        assert_eq!(r.allocate(1, |_| 1).len(), 1);
        assert_eq!(r.allocate(2, |_| 1).len(), 1);
        // A third packet from another input port finds no free VC.
        r.accept_flit(1, 0, flit(3, 0, false, 0));
        assert!(r.allocate(3, |_| 1).is_empty());
        assert_eq!(r.activity().vc_allocs, 2);
    }

    #[test]
    fn ejection_bypasses_vc_limits() {
        let mut r = test_router();
        r.accept_flit(0, 0, flit(1, 0, false, 0));
        r.accept_flit(0, 1, flit(2, 0, false, 0));
        r.accept_flit(1, 0, flit(3, 0, false, 0));
        let mut got = 0;
        for now in 1..=4 {
            got += r.allocate(now, |_| 2).len();
        }
        assert_eq!(got, 3, "eject port never runs out of VCs or credits");
    }

    #[test]
    fn activity_counters() {
        let mut r = test_router();
        r.accept_flit(0, 0, flit(1, 0, true, 0));
        r.allocate(1, |_| 1);
        let a = r.activity();
        assert_eq!(a.buffer_writes, 1);
        assert_eq!(a.buffer_reads, 1);
        assert_eq!(a.crossbar_traversals, 1);
        assert_eq!(a.link_traversals, 1);
        let mut b = RouterActivity::default();
        b.merge(&a);
        assert_eq!(b, a);
    }
}
