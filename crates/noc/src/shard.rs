//! Spatial sharding of the cycle kernel (DESIGN.md §10).
//!
//! A [`Shard`] owns a contiguous range of routers and the NIs attached to
//! them: their input buffers, its own slice of the event ring, and the slab
//! of packets *sourced* by its nodes. [`NocSim::step`](crate::NocSim::step)
//! drives shards through a deterministic two-phase barrier:
//!
//! * **Phase A** (parallel): each shard drains its own ring slot into local
//!   router buffers and runs VC + switch allocation over its routers,
//!   reading only last-cycle-edge state and writing only shard-local state.
//!   Ejections and trace lookups that would touch another shard's slab are
//!   deferred into per-shard output queues.
//! * **Cycle edge** (serial): the simulator walks shards in index order,
//!   processing deferred ejections and applying link traversals — flit
//!   scheduling into the *target* shard's ring and credit returns to the
//!   *upstream* shard's routers/NIs. Because shards own contiguous
//!   ascending router ranges and phase A emits grants in local
//!   router-ascending order, the shard-concatenated traversal sequence is
//!   globally router-ascending: exactly the order the single-shard kernel
//!   produces, so sequential fault-RNG draws are shard-count-independent.
//! * **Phase B2** (parallel): each shard injects at most one flit per local
//!   NI into its *own* ring (a node's router is always in its own shard),
//!   tallying injection statistics into order-independent integer counters
//!   merged serially afterwards.
//!
//! The only per-site randomness inside phase A is the port-stall fault
//! draw; it uses a stateless oracle keyed on `(plan seed, cycle, router,
//! port)` instead of the shared sequential fault RNG, so its outcomes do not
//! depend on arrival processing order (the same thread-count-independence
//! discipline `FaultPlan` follows elsewhere).

use anoc_core::data::NodeId;
use anoc_core::rng::Pcg32;

use crate::config::NocConfig;
use crate::faults::{FaultPlan, PPM};
use crate::ni::NiState;
use crate::packet::{Flit, PacketId, PacketKind, PacketState};
use crate::router::{LinkDest, Router, Upstream};
use crate::topology::{Direction, Mesh};

/// Ring-buffer horizon for scheduled arrivals (link events land at +1/+2).
pub(crate) const EVENT_HORIZON: usize = 4;

/// Low bits of a flit slot addressing the packet within its owning shard's
/// slab; the remaining high bits carry the shard index.
pub(crate) const SLOT_BITS: u32 = 24;
pub(crate) const SLOT_MASK: u32 = (1 << SLOT_BITS) - 1;
/// Maximum shard count representable in the slot encoding.
pub(crate) const MAX_SHARDS: usize = 1 << (32 - SLOT_BITS);

/// The shard owning a slot.
pub(crate) fn shard_of_slot(slot: u32) -> usize {
    (slot >> SLOT_BITS) as usize
}

/// The slab index of a slot within its owning shard.
pub(crate) fn local_of_slot(slot: u32) -> usize {
    (slot & SLOT_MASK) as usize
}

/// Encodes a shard index and local slab index into a flit slot.
pub(crate) fn encode_slot(shard: usize, local: usize) -> u32 {
    debug_assert!(shard < MAX_SHARDS && local <= SLOT_MASK as usize);
    ((shard as u32) << SLOT_BITS) | local as u32
}

/// A flit in flight on a link, due at a scheduled cycle.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Arrival {
    pub target: LinkDest,
    pub vc: usize,
    pub flit: Flit,
}

/// The phase a worker runs on a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Ring drain + VC/switch allocation.
    A,
    /// NI injection.
    B2,
}

/// Per-cycle context broadcast to every shard; immutable during a phase.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StepCtx {
    pub now: u64,
    pub faults: FaultPlan,
    pub tracing: bool,
}

/// Injection statistics tallied shard-locally during phase B2. All plain
/// integer sums, so the serial merge order cannot affect the totals.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct InjectTally {
    pub flits: u64,
    pub data_flits: u64,
    pub control_flits: u64,
    pub baseline_flits: u64,
}

/// One spatial partition of the network: a contiguous router range, the NIs
/// attached to it, and the packets its nodes source.
#[derive(Debug)]
pub(crate) struct Shard {
    /// This shard's index (the high bits of every slot it owns).
    pub index: usize,
    /// First global router id owned by this shard.
    pub router_lo: usize,
    /// First global node id owned by this shard.
    pub node_lo: usize,
    /// Private copy of the (tiny, immutable) mesh geometry, so phase A
    /// shares nothing across threads.
    pub mesh: Mesh,
    pub routers: Vec<Router>,
    pub nis: Vec<NiState>,
    /// Local routers that may hold buffered flits; idle routers are skipped.
    pub active: Vec<bool>,
    /// This shard's slice of the event ring: arrivals targeting its routers
    /// and ejection paths.
    pub events: Vec<Vec<Arrival>>,
    /// Slab store for packets sourced by this shard's nodes; flits carry
    /// `encode_slot(index, slab_index)`.
    pub packets: Vec<Option<PacketState>>,
    pub free_slots: Vec<u32>,
    /// Packets waiting in this shard's NI queues (fast idle check for B2).
    pub queued: usize,
    /// Phase A output: granted traversals in local router-ascending order.
    pub outgoing: Vec<crate::router::Traversal>,
    /// Phase A output: ejection arrivals deferred to the serial cycle edge,
    /// in ring order (which is traversal push order, i.e. router-ascending).
    pub ejects: Vec<(usize, Flit)>,
    /// Phase A output: deferred head-flit `RouterArrival` traces, resolved
    /// serially because the packet may live in another shard's slab.
    pub arrival_traces: Vec<(u32, usize)>,
    /// Phase B2 output: packets whose head flit injected this cycle.
    pub injected_traces: Vec<PacketId>,
    /// Phase B2 output: injection statistics.
    pub inject_tally: InjectTally,
    /// Phase A output: injected port stalls this cycle.
    pub stall_hits: u64,
    /// Whether any arrival or injection happened this cycle (watchdog).
    pub progressed: bool,
}

impl Default for Shard {
    /// A placeholder used only while a shard is checked out to a worker
    /// (`std::mem::take`); never stepped.
    fn default() -> Self {
        Shard {
            index: 0,
            router_lo: 0,
            node_lo: 0,
            mesh: Mesh::new(&NocConfig::cmesh(1, 1, 1)),
            routers: Vec::new(),
            nis: Vec::new(),
            active: Vec::new(),
            events: Vec::new(),
            packets: Vec::new(),
            free_slots: Vec::new(),
            queued: 0,
            outgoing: Vec::new(),
            ejects: Vec::new(),
            arrival_traces: Vec::new(),
            injected_traces: Vec::new(),
            inject_tally: InjectTally::default(),
            stall_hits: 0,
            progressed: false,
        }
    }
}

/// Stateless per-site port-stall draw, keyed on the plan seed and the
/// arrival's unique `(cycle, router, port)` site — at most one flit arrives
/// per input port per cycle, so each site is drawn exactly once, in any
/// order, on any shard count.
pub(crate) fn port_stall(plan: &FaultPlan, now: u64, router: usize, port: usize) -> bool {
    if plan.port_stall_ppm == 0 {
        return false;
    }
    let site = mix64(plan.seed ^ now ^ ((router as u64) << 40) ^ ((port as u64) << 56));
    // anoc-lint: rng-site: stateless per-(cycle,router,port) draw; same result on any shard count
    Pcg32::seed_from_u64(site).below(PPM) < plan.port_stall_ppm
}

/// SplitMix64 finalizer: decorrelates nearby `(cycle, router, port)` sites.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Splits `num_routers` into `shards` contiguous ascending ranges and
/// builds each shard's routers, NIs and ring. Shard `i` owns routers
/// `[i*R/n, (i+1)*R/n)`.
pub(crate) fn build_shards(config: &NocConfig, shards: usize) -> Vec<Shard> {
    let mesh = Mesh::new(config);
    let num_routers = mesh.num_routers();
    let n = shards.clamp(1, num_routers.min(MAX_SHARDS));
    (0..n)
        .map(|i| {
            let lo = i * num_routers / n;
            let hi = (i + 1) * num_routers / n;
            Shard::build(config, &mesh, i, lo, hi)
        })
        .collect()
}

impl Shard {
    /// Builds the shard owning routers `[router_lo, router_hi)` with mesh
    /// wiring identical to the single-shard kernel (links reference global
    /// router/node ids; cross-shard hops are resolved at the cycle edge).
    fn build(
        config: &NocConfig,
        mesh: &Mesh,
        index: usize,
        router_lo: usize,
        router_hi: usize,
    ) -> Shard {
        let ports = mesh.ports_per_router();
        let mut routers: Vec<Router> = (router_lo..router_hi)
            .map(|id| Router::new(id, ports, config.vcs, config.vc_buffer))
            .collect();
        for (lr, r) in (router_lo..router_hi).enumerate() {
            for dir in Direction::ALL {
                if let Some(n) = mesh.neighbor(r, dir) {
                    // The link r→n lands on n's opposite port, and r's own
                    // `dir` input port is fed by n's opposite output port.
                    routers[lr].wire_output(
                        dir as usize,
                        LinkDest::Router {
                            router: n,
                            port: dir.opposite() as usize,
                        },
                    );
                    routers[lr].wire_input(
                        dir as usize,
                        Upstream::Router {
                            router: n,
                            port: dir.opposite() as usize,
                        },
                    );
                }
            }
            for slot in 0..mesh.concentration() {
                let port = 4 + slot;
                let node = mesh.node_at(r, port);
                routers[lr].wire_output(port, LinkDest::Eject { node: node.index() });
                routers[lr].wire_input(port, Upstream::Local { node: node.index() });
            }
        }
        let node_lo = router_lo * mesh.concentration();
        let node_hi = router_hi * mesh.concentration();
        let num_routers = routers.len();
        Shard {
            index,
            router_lo,
            node_lo,
            mesh: mesh.clone(),
            routers,
            nis: (node_lo..node_hi)
                .map(|_| NiState::new(config.vcs, config.vc_buffer))
                .collect(),
            active: vec![false; num_routers],
            events: (0..EVENT_HORIZON).map(|_| Vec::new()).collect(),
            packets: Vec::new(),
            free_slots: Vec::new(),
            queued: 0,
            outgoing: Vec::new(),
            ejects: Vec::new(),
            arrival_traces: Vec::new(),
            injected_traces: Vec::new(),
            inject_tally: InjectTally::default(),
            stall_hits: 0,
            progressed: false,
        }
    }

    fn ring_index(now: u64) -> usize {
        (now % EVENT_HORIZON as u64) as usize
    }

    /// Whether running `phase` on this shard this cycle could do anything.
    /// Skipping a workless shard is exact: its phase would produce no
    /// outputs and leave every field as the cycle edge reset it.
    pub fn has_work(&self, now: u64, phase: Phase) -> bool {
        match phase {
            Phase::A => {
                !self.events[Self::ring_index(now)].is_empty() || self.active.iter().any(|&a| a)
            }
            Phase::B2 => self.queued > 0,
        }
    }

    /// Runs one phase.
    pub fn run(&mut self, ctx: &StepCtx, phase: Phase) {
        match phase {
            Phase::A => self.phase_a(ctx),
            Phase::B2 => self.phase_b2(ctx),
        }
    }

    /// Phase A: drain this cycle's ring slot into local input buffers
    /// (deferring ejections and cross-slab trace lookups), then run VC +
    /// switch allocation over the shard's active routers. Reads only
    /// last-cycle-edge state; writes only shard-local state.
    // anoc-lint: phase(A)
    fn phase_a(&mut self, ctx: &StepCtx) {
        let ring = Self::ring_index(ctx.now);
        // The due slot is swapped out and restored so its capacity is
        // reused; safe because schedules only ever target future slots.
        let mut due = std::mem::take(&mut self.events[ring]);
        for arrival in due.drain(..) {
            self.progressed = true;
            match arrival.target {
                LinkDest::Router { router, port } => {
                    let mut flit = arrival.flit;
                    flit.ready_at = ctx.now + 1;
                    if port_stall(&ctx.faults, ctx.now, router, port) {
                        flit.ready_at += ctx.faults.stall_cycles as u64;
                        self.stall_hits += 1;
                    }
                    if ctx.tracing && flit.is_head() {
                        self.arrival_traces.push((flit.slot, router));
                    }
                    let lr = router - self.router_lo;
                    self.routers[lr].accept_flit(port, arrival.vc, flit);
                    self.active[lr] = true;
                }
                LinkDest::Eject { node } => self.ejects.push((node, arrival.flit)),
            }
        }
        self.events[ring] = due;
        for lr in 0..self.routers.len() {
            if !self.active[lr] {
                continue;
            }
            let mesh = &self.mesh;
            let rid = self.routers[lr].id();
            self.routers[lr].allocate(
                ctx.now,
                |flit| mesh.route_xy(rid, flit.dest),
                &mut self.outgoing,
            );
            if self.routers[lr].is_idle() {
                self.active[lr] = false;
            }
        }
    }

    /// Phase B2: at most one flit injection per local NI, into this shard's
    /// own ring (a node's router lives in the node's shard by construction).
    fn phase_b2(&mut self, ctx: &StepCtx) {
        if self.queued == 0 {
            return;
        }
        for node in 0..self.nis.len() {
            if self.inject_from(node, ctx) {
                self.progressed = true;
            }
        }
    }

    /// Attempts one flit injection from local node index `local_node`;
    /// returns whether a flit entered the network.
    fn inject_from(&mut self, local_node: usize, ctx: &StepCtx) -> bool {
        let now = ctx.now;
        let ni = &mut self.nis[local_node];
        let Some(&slot) = ni.queue.front() else {
            return false;
        };
        // The NI queue only holds live local slab slots; drop a stale one
        // rather than crash if that invariant ever breaks.
        let Some(p) = self.packets[local_of_slot(slot)].as_mut() else {
            debug_assert!(false, "queued slot {slot} holds no packet");
            ni.queue.pop_front();
            self.queued -= 1;
            return false;
        };
        // Unhidden compression: pay the remaining latency now that the
        // packet has reached the queue head.
        if ni.next_seq == 0 && p.head_gate > 0 {
            p.ready_at = p.ready_at.max(now + p.head_gate);
            p.head_gate = 0;
            return false;
        }
        if p.ready_at > now {
            return false;
        }
        // Head flit needs a VC with a credit; body flits continue on the
        // packet's VC and just need a credit.
        let vc = match ni.cur_vc {
            Some(v) => {
                if ni.vc_credits[v] == 0 {
                    return false;
                }
                v
            }
            None => match ni.pick_vc() {
                Some(v) => v,
                None => return false,
            },
        };
        let seq = ni.next_seq;
        if seq == 0 {
            p.inject_start = Some(now);
        }
        let is_tail = seq + 1 == p.num_flits;
        let flit = Flit {
            slot,
            seq,
            is_tail,
            dest: p.dest,
            ready_at: 0, // set at arrival
        };
        let pid = p.id;
        let measured = p.measured;
        let kind = p.kind;
        let num_flits = p.num_flits;
        let baseline_flits = p.baseline_flits;
        ni.vc_credits[vc] -= 1;
        ni.cur_vc = Some(vc);
        ni.next_seq += 1;
        if is_tail {
            ni.queue.pop_front();
            ni.cur_vc = None;
            ni.next_seq = 0;
            self.queued -= 1;
        }
        if ctx.tracing && flit.is_head() {
            self.injected_traces.push(pid);
        }
        let node = NodeId::from(self.node_lo + local_node);
        let router = self.mesh.router_of(node);
        let port = self.mesh.local_port_of(node);
        self.schedule(now + 1, LinkDest::Router { router, port }, vc, flit, now);
        // Injection statistics. Per-packet counters are committed at tail
        // injection so a drain cutoff can never split a packet across the
        // two sides of the Figure 11 normalization.
        if measured {
            self.inject_tally.flits += 1;
            if is_tail {
                match kind {
                    PacketKind::Data => {
                        self.inject_tally.data_flits += num_flits as u64;
                        self.inject_tally.baseline_flits += baseline_flits as u64;
                    }
                    PacketKind::Control => self.inject_tally.control_flits += 1,
                }
            }
        }
        true
    }

    /// Schedules an arrival into this shard's own ring.
    pub fn schedule(&mut self, at: u64, target: LinkDest, vc: usize, flit: Flit, now: u64) {
        debug_assert!(at > now && at < now + EVENT_HORIZON as u64);
        self.events[(at % EVENT_HORIZON as u64) as usize].push(Arrival { target, vc, flit });
    }
}
