//! The network interface: packetization, injection queue, codec hosting.
//!
//! The NI packetizes cache blocks, runs them through the node's encoder
//! (APPROX-NoC places the VAXX engine and the compression encoder/decoder
//! pair here — Figure 1), fragments the network representation into flits and
//! feeds the router's local input port under credit flow control. On the
//! ejection side it reassembles flits, decodes, and completes packets after
//! the decompression latency.

use std::collections::VecDeque;

use anoc_core::codec::{BlockDecoder, BlockEncoder};

/// The encoder/decoder pair hosted by one NI.
pub struct NodeCodec {
    /// The block encoder used for every data packet this node sends.
    pub encoder: Box<dyn BlockEncoder>,
    /// The block decoder used for every data packet this node receives.
    pub decoder: Box<dyn BlockDecoder>,
}

impl NodeCodec {
    /// Creates a codec pair.
    pub fn new(encoder: Box<dyn BlockEncoder>, decoder: Box<dyn BlockDecoder>) -> Self {
        NodeCodec { encoder, decoder }
    }

    /// A baseline (uncompressed) codec pair.
    pub fn baseline() -> Self {
        use anoc_core::codec::NullCodec;
        NodeCodec {
            encoder: Box::new(NullCodec::new()),
            decoder: Box::new(NullCodec::new()),
        }
    }
}

impl std::fmt::Debug for NodeCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeCodec")
            .field("encoder", &self.encoder.name())
            .field("decoder", &self.decoder.name())
            .finish()
    }
}

/// Injection-side state of one NI.
#[derive(Debug)]
pub(crate) struct NiState {
    /// FIFO of packets awaiting injection, by slab slot in the simulator's
    /// packet store.
    pub queue: VecDeque<u32>,
    /// Credits for each VC of the router's local input port.
    pub vc_credits: Vec<u32>,
    /// VC carrying the packet currently being injected.
    pub cur_vc: Option<usize>,
    /// Next flit sequence number of the packet in progress.
    pub next_seq: u32,
    /// Round-robin start for VC choice.
    pub vc_rr: usize,
}

impl NiState {
    pub(crate) fn new(vcs: usize, vc_buffer: usize) -> Self {
        NiState {
            queue: VecDeque::new(),
            vc_credits: vec![vc_buffer as u32; vcs],
            cur_vc: None,
            next_seq: 0,
            vc_rr: 0,
        }
    }

    /// Picks an injection VC with at least one credit.
    pub(crate) fn pick_vc(&mut self) -> Option<usize> {
        let n = self.vc_credits.len();
        for k in 0..n {
            let v = (self.vc_rr + k) % n;
            if self.vc_credits[v] > 0 {
                self.vc_rr = (v + 1) % n;
                return Some(v);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_codec_names() {
        let c = NodeCodec::baseline();
        assert_eq!(c.encoder.name(), "Baseline");
        assert_eq!(c.decoder.name(), "Baseline");
        assert!(format!("{c:?}").contains("Baseline"));
    }

    #[test]
    fn vc_choice_round_robins_and_respects_credits() {
        let mut ni = NiState::new(2, 1);
        assert_eq!(ni.pick_vc(), Some(0));
        assert_eq!(ni.pick_vc(), Some(1));
        ni.vc_credits = vec![0, 0];
        assert_eq!(ni.pick_vc(), None);
        ni.vc_credits[1] = 1;
        assert_eq!(ni.pick_vc(), Some(1));
    }
}
