//! Mesh topology, port geometry and dimension-ordered (XY) routing.

use anoc_core::data::NodeId;

use crate::config::NocConfig;

/// A cardinal direction port of a mesh router. Local (NI) ports follow the
/// four direction ports in the port numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Direction {
    /// Towards smaller y.
    North = 0,
    /// Towards larger x.
    East = 1,
    /// Towards larger y.
    South = 2,
    /// Towards smaller x.
    West = 3,
}

impl Direction {
    /// All four directions in port order.
    pub const ALL: [Direction; 4] = [
        Direction::North,
        Direction::East,
        Direction::South,
        Direction::West,
    ];

    /// The opposite direction (the input port a link lands on).
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::East => Direction::West,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
        }
    }
}

/// Static description of a (concentrated) 2D mesh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mesh {
    width: usize,
    height: usize,
    concentration: usize,
}

impl Mesh {
    /// Builds the mesh described by `config`.
    pub fn new(config: &NocConfig) -> Self {
        Mesh {
            width: config.width,
            height: config.height,
            concentration: config.concentration,
        }
    }

    /// Mesh width in routers.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mesh height in routers.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Nodes per router.
    pub fn concentration(&self) -> usize {
        self.concentration
    }

    /// Number of routers.
    pub fn num_routers(&self) -> usize {
        self.width * self.height
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_routers() * self.concentration
    }

    /// Number of unidirectional router-to-router links.
    pub fn num_links(&self) -> usize {
        // Each adjacent pair has two unidirectional links.
        2 * ((self.width - 1) * self.height + (self.height - 1) * self.width)
    }

    /// Ports per router: four directions plus one local port per attached
    /// node.
    pub fn ports_per_router(&self) -> usize {
        4 + self.concentration
    }

    /// The router a node is attached to.
    pub fn router_of(&self, node: NodeId) -> usize {
        node.index() / self.concentration
    }

    /// The local port index (within the router) serving `node`.
    pub fn local_port_of(&self, node: NodeId) -> usize {
        4 + node.index() % self.concentration
    }

    /// The node attached to `router` at local port `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port` is not a local port.
    pub fn node_at(&self, router: usize, port: usize) -> NodeId {
        assert!(port >= 4, "port {port} is a direction, not a local port");
        NodeId::from(router * self.concentration + (port - 4))
    }

    /// `(x, y)` coordinates of a router.
    pub fn coords(&self, router: usize) -> (usize, usize) {
        (router % self.width, router / self.width)
    }

    /// Router id from coordinates.
    pub fn router_at(&self, x: usize, y: usize) -> usize {
        y * self.width + x
    }

    /// The neighbouring router in `dir`, if any.
    pub fn neighbor(&self, router: usize, dir: Direction) -> Option<usize> {
        let (x, y) = self.coords(router);
        match dir {
            Direction::North if y > 0 => Some(self.router_at(x, y - 1)),
            Direction::South if y + 1 < self.height => Some(self.router_at(x, y + 1)),
            Direction::East if x + 1 < self.width => Some(self.router_at(x + 1, y)),
            Direction::West if x > 0 => Some(self.router_at(x - 1, y)),
            _ => None,
        }
    }

    /// XY (dimension-ordered) routing: the output port at `router` towards
    /// `dest`. X is fully resolved before Y; at the destination router the
    /// packet exits through the node's local port. Deadlock-free on a mesh.
    pub fn route_xy(&self, router: usize, dest: NodeId) -> usize {
        let dest_router = self.router_of(dest);
        if router == dest_router {
            return self.local_port_of(dest);
        }
        let (x, y) = self.coords(router);
        let (dx, dy) = self.coords(dest_router);
        if x < dx {
            Direction::East as usize
        } else if x > dx {
            Direction::West as usize
        } else if y < dy {
            Direction::South as usize
        } else {
            Direction::North as usize
        }
    }

    /// Hop count of the XY route between two nodes (router-to-router links).
    pub fn hops(&self, src: NodeId, dest: NodeId) -> usize {
        let (sx, sy) = self.coords(self.router_of(src));
        let (dx, dy) = self.coords(self.router_of(dest));
        sx.abs_diff(dx) + sy.abs_diff(dy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(&NocConfig::paper_4x4_cmesh())
    }

    #[test]
    fn geometry() {
        let m = mesh();
        assert_eq!(m.num_routers(), 16);
        assert_eq!(m.num_nodes(), 32);
        assert_eq!(m.ports_per_router(), 6);
        assert_eq!(m.num_links(), 48); // 2 * (3*4 + 3*4)
        assert_eq!(m.router_of(NodeId(0)), 0);
        assert_eq!(m.router_of(NodeId(1)), 0);
        assert_eq!(m.router_of(NodeId(2)), 1);
        assert_eq!(m.local_port_of(NodeId(3)), 5);
        assert_eq!(m.node_at(1, 5), NodeId(3));
    }

    #[test]
    fn coords_roundtrip() {
        let m = mesh();
        for r in 0..m.num_routers() {
            let (x, y) = m.coords(r);
            assert_eq!(m.router_at(x, y), r);
        }
    }

    #[test]
    fn neighbors_respect_edges() {
        let m = mesh();
        // Corner router 0.
        assert_eq!(m.neighbor(0, Direction::North), None);
        assert_eq!(m.neighbor(0, Direction::West), None);
        assert_eq!(m.neighbor(0, Direction::East), Some(1));
        assert_eq!(m.neighbor(0, Direction::South), Some(4));
        // Centre router 5 has all four.
        for d in Direction::ALL {
            assert!(m.neighbor(5, d).is_some());
        }
    }

    #[test]
    fn opposite_directions() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
        }
    }

    #[test]
    fn xy_routes_x_first() {
        let m = mesh();
        // Node 0 (router 0) to node 31 (router 15 = (3,3)).
        let dest = NodeId(31);
        assert_eq!(m.route_xy(0, dest), Direction::East as usize);
        assert_eq!(m.route_xy(1, dest), Direction::East as usize);
        assert_eq!(m.route_xy(3, dest), Direction::South as usize);
        assert_eq!(m.route_xy(7, dest), Direction::South as usize);
        assert_eq!(m.route_xy(15, dest), 5); // local port of node 31
    }

    #[test]
    fn xy_route_terminates_everywhere() {
        let m = mesh();
        for src in 0..m.num_nodes() {
            for dst in 0..m.num_nodes() {
                let dest = NodeId::from(dst);
                let mut router = m.router_of(NodeId::from(src));
                let mut hops = 0;
                loop {
                    let port = m.route_xy(router, dest);
                    if port >= 4 {
                        assert_eq!(m.node_at(router, port), dest);
                        break;
                    }
                    let dir = Direction::ALL[port];
                    router = m.neighbor(router, dir).expect("route fell off the mesh");
                    hops += 1;
                    assert!(hops <= m.width() + m.height(), "routing loop");
                }
                assert_eq!(hops, m.hops(NodeId::from(src), dest));
            }
        }
    }
}
