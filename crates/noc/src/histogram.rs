//! A streaming latency histogram with logarithmic buckets.
//!
//! The paper reports average latencies; a production simulator also needs
//! tail behaviour (p95/p99 blow up long before the mean at the saturation
//! knee of Figure 12). Buckets grow geometrically (powers of two split into
//! four sub-buckets), giving ≤ 12.5% relative quantile error at constant
//! memory.

/// Sub-buckets per power of two (4 → ≤ 1/8 relative error).
const SUBBUCKETS: u64 = 4;

/// Number of buckets: covers latencies up to 2^40 cycles, far beyond any
/// simulation length.
const BUCKETS: usize = (40 * SUBBUCKETS) as usize + SUBBUCKETS as usize;

/// A fixed-memory log-bucketed histogram of cycle counts.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    max: u64,
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("samples", &self.total)
            .field("p50", &self.percentile(50.0))
            .field("p99", &self.percentile(99.0))
            .field("max", &self.max)
            .finish()
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: Box::new([0; BUCKETS]),
            total: 0,
            max: 0,
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(value: u64) -> usize {
        if value < SUBBUCKETS {
            return value as usize;
        }
        let exp = 63 - value.leading_zeros() as u64; // floor(log2)
        let sub = (value >> (exp - 2)) & (SUBBUCKETS - 1); // top-2 fraction bits
        ((exp - 2) * SUBBUCKETS + sub) as usize + SUBBUCKETS as usize
    }

    /// The representative (upper-edge) value of a bucket.
    fn bucket_value(bucket: usize) -> u64 {
        if bucket < SUBBUCKETS as usize {
            return bucket as u64;
        }
        let b = bucket as u64 - SUBBUCKETS;
        let exp = b / SUBBUCKETS + 2;
        let sub = b % SUBBUCKETS;
        (1 << exp) + (sub + 1) * (1 << (exp - 2)) - 1
    }

    /// Records one latency sample.
    pub fn record(&mut self, cycles: u64) {
        let b = Self::bucket_of(cycles).min(BUCKETS - 1);
        self.counts[b] += 1;
        self.total += 1;
        self.max = self.max.max(cycles);
    }

    /// Number of samples recorded.
    pub fn samples(&self) -> u64 {
        self.total
    }

    /// The largest sample seen exactly.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The latency at the given percentile (0 < p <= 100), within the bucket
    /// resolution (≤ 12.5% relative). Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        // `total > 0` implies an occupied bucket; fall back to the exact max
        // if the counts ever disagreed rather than crash.
        let Some(last_occupied) = self.counts.iter().rposition(|c| *c > 0) else {
            debug_assert!(false, "total > 0 but no occupied bucket");
            return self.max;
        };
        let mut seen = 0;
        for (b, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // The top occupied bucket is bounded by the exact max.
                if b == last_occupied {
                    return self.max;
                }
                return Self::bucket_value(b).min(self.max);
            }
        }
        self.max
    }

    /// The occupied buckets as `(bucket index, count)` pairs, sparse — the
    /// exact state needed to reconstruct the histogram with
    /// [`from_buckets`](Self::from_buckets).
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(b, c)| (b, *c))
    }

    /// Rebuilds a histogram from sparse `(bucket index, count)` pairs and the
    /// exact maximum sample. Out-of-range bucket indices return `None`.
    pub fn from_buckets(buckets: impl IntoIterator<Item = (usize, u64)>, max: u64) -> Option<Self> {
        let mut h = LatencyHistogram::new();
        for (b, c) in buckets {
            if b >= BUCKETS {
                return None;
            }
            h.counts[b] += c;
            h.total += c;
        }
        h.max = max;
        Some(h)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_for_small_values() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 1, 2, 3, 3, 3] {
            h.record(v);
        }
        assert_eq!(h.samples(), 6);
        assert_eq!(h.percentile(100.0), 3);
        assert_eq!(h.percentile(1.0), 0);
        assert_eq!(h.max(), 3);
    }

    #[test]
    fn quantile_error_is_bounded() {
        let mut h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for p in [10.0, 50.0, 90.0, 99.0] {
            let exact = (p / 100.0 * 10_000.0) as u64;
            let est = h.percentile(p);
            let rel = (est as f64 - exact as f64).abs() / exact as f64;
            assert!(rel <= 0.13, "p{p}: est {est} vs exact {exact} ({rel})");
        }
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.samples(), 0);
        let dbg = format!("{h:?}");
        assert!(dbg.contains("samples"));
    }

    #[test]
    fn merge_combines_distributions() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for _ in 0..100 {
            a.record(10);
            b.record(1000);
        }
        a.merge(&b);
        assert_eq!(a.samples(), 200);
        assert!(a.percentile(25.0) <= 12);
        assert!(a.percentile(75.0) >= 900);
        assert_eq!(a.max(), 1000);
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        let mut x = 123456789u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(x % 100_000);
        }
        let mut last = 0;
        for p in 1..=100 {
            let v = h.percentile(p as f64);
            assert!(v >= last, "p{p}: {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn huge_values_clamp_into_last_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        assert_eq!(h.percentile(100.0), u64::MAX);
        assert_eq!(h.samples(), 1);
    }
}
