//! A vendored, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships this minimal implementation of the criterion API subset
//! its benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`Bencher::iter`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Timing model: each benchmark is warmed up briefly, then timed over
//! `sample_size` samples of auto-scaled iteration batches; the median,
//! minimum and maximum per-iteration times are printed to stdout. There are
//! no plots, no statistics beyond the above, and no baseline comparisons —
//! enough to track hot-path regressions by eye or by diffing output.
//!
//! `cargo bench -- --test` mirrors real criterion's test mode: every
//! benchmark routine runs exactly once with no warmup or sampling, so CI can
//! smoke-check that benches still compile and execute without paying for a
//! measurement.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 40;

/// Target wall time for the whole sampling phase of one benchmark.
const TARGET_SAMPLING: Duration = Duration::from_millis(600);

/// Warmup budget before sampling starts.
const WARMUP: Duration = Duration::from_millis(150);

/// The benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as a free argument;
        // `-- --test` selects test mode; ignore other harness flags we do
        // not implement.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        let test_mode = std::env::args().skip(1).any(|a| a == "--test");
        Criterion { filter, test_mode }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run(name, DEFAULT_SAMPLE_SIZE, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, name: &str, sample_size: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size,
            test_mode: self.test_mode,
            samples: Vec::new(),
        };
        f(&mut bencher);
        if self.test_mode {
            println!("{name:<44} ok (test mode)");
        } else {
            bencher.report(name);
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        let sample_size = self.sample_size;
        self.criterion.run(&full, sample_size, f);
        self
    }

    /// Finishes the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    test_mode: bool,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measures `routine`, auto-scaling iterations per sample so short
    /// routines are timed above clock resolution.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.test_mode {
            // Smoke-run the routine once; no warmup, no sampling.
            black_box(routine());
            return;
        }
        // Warm up and estimate a single-iteration cost.
        let warm_start = Instant::now();
        let mut iters_done: u32 = 0;
        while warm_start.elapsed() < WARMUP || iters_done == 0 {
            black_box(routine());
            iters_done += 1;
            if iters_done >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed() / iters_done.max(1);
        let per_sample = TARGET_SAMPLING / self.sample_size.max(1) as u32;
        let iters = if per_iter.is_zero() {
            1_000
        } else {
            (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u32
        };
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<44} (no measurement)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        println!(
            "{name:<44} median {}  (min {}, max {}, {} samples)",
            fmt_duration(median),
            fmt_duration(min),
            fmt_duration(max),
            sorted.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_and_reports() {
        let mut c = Criterion {
            filter: None,
            test_mode: false,
        };
        let mut ran = false;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| black_box(3u64).wrapping_mul(7));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn groups_respect_sample_size_and_filter() {
        let mut c = Criterion {
            filter: Some("matches".into()),
            test_mode: false,
        };
        let mut matched = false;
        let mut skipped = false;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(5);
            g.bench_function("matches", |b| {
                b.iter(|| 1 + 1);
                matched = true;
            });
            g.bench_function("other", |_b| {
                skipped = true;
            });
            g.finish();
        }
        assert!(matched && !skipped);
    }

    #[test]
    fn test_mode_runs_each_routine_exactly_once() {
        let mut c = Criterion {
            filter: None,
            test_mode: true,
        };
        let mut calls = 0u32;
        c.bench_function("shim/test_mode", |b| {
            b.iter(|| calls += 1);
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_duration(Duration::from_micros(5)).ends_with("us"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).ends_with("s"));
    }
}
