//! Figure 10: encoded-word fraction (exact vs approximated) and compression
//! ratio per mechanism.

use anoc_bench::{print_config, timed_config};
use anoc_harness::experiments::{fig10, render_fig10, BenchmarkMatrix};
use anoc_harness::runner::run_benchmark;
use anoc_harness::Mechanism;
use anoc_traffic::Benchmark;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let matrix = BenchmarkMatrix::run(&print_config(), 42);
    println!("\n{}", render_fig10(&fig10(&matrix)));
    let cfg = timed_config();
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.bench_function("blackscholes/fp-vaxx/encoded-fraction", |b| {
        b.iter(|| {
            run_benchmark(Benchmark::Blackscholes, Mechanism::FpVaxx, &cfg, 42)
                .stats
                .encode
                .encoded_fraction()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
