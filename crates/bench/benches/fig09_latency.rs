//! Figure 9: average packet latency breakdown + data quality across the
//! 8 benchmarks × 5 mechanisms matrix.

use anoc_bench::{print_config, timed_config};
use anoc_harness::experiments::{fig9, render_fig9, BenchmarkMatrix};
use anoc_harness::runner::run_benchmark;
use anoc_harness::Mechanism;
use anoc_traffic::Benchmark;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let matrix = BenchmarkMatrix::run(&print_config(), 42);
    println!("\n{}", render_fig9(&fig9(&matrix)));
    let cfg = timed_config();
    let mut group = c.benchmark_group("fig09");
    group.sample_size(10);
    for m in [Mechanism::Baseline, Mechanism::DiVaxx, Mechanism::FpVaxx] {
        group.bench_function(format!("ssca2/{m}"), |b| {
            b.iter(|| run_benchmark(Benchmark::Ssca2, m, &cfg, 42).avg_packet_latency())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
