//! Microbenchmarks of the hot paths: the AVCL, frequent-pattern matching,
//! dictionary encode, and the NoC simulation kernel itself.

use anoc_compression::di::{DiConfig, DiEncoder};
use anoc_compression::fp::FpEncoder;
use anoc_compression::fpc;
use anoc_compression::lz::{LzConfig, LzDecoder, LzEncoder};
use anoc_core::avcl::Avcl;
use anoc_core::codec::{BlockDecoder, BlockEncoder};
use anoc_core::data::{CacheBlock, DataType, NodeId};
use anoc_core::rng::Pcg32;
use anoc_core::threshold::ErrorThreshold;
use anoc_noc::{NocConfig, NocSim, NodeCodec};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let t = ErrorThreshold::from_percent(10).expect("valid");
    let avcl = Avcl::new(t);
    let mut rng = Pcg32::seed_from_u64(1);
    let words: Vec<u32> = (0..1024).map(|_| rng.next_u32()).collect();

    c.bench_function("micro/avcl/approx_pattern_int", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &w in &words {
                acc ^= avcl.approx_pattern(w, DataType::Int).mask();
            }
            acc
        })
    });

    c.bench_function("micro/fpc/best_match_exact", |b| {
        b.iter(|| {
            words
                .iter()
                .filter(|w| fpc::best_match(**w, 0).is_some())
                .count()
        })
    });

    let blocks: Vec<CacheBlock> = (0..64)
        .map(|i| CacheBlock::from_i32(&[i * 37; 16]))
        .collect();
    c.bench_function("micro/fp_vaxx/encode_block", |b| {
        let mut enc = FpEncoder::fp_vaxx(avcl);
        b.iter(|| {
            let mut bits = 0u32;
            for block in &blocks {
                bits += enc.encode(block, NodeId(1)).payload_bits();
            }
            bits
        })
    });

    c.bench_function("micro/di_vaxx/encode_block", |b| {
        let mut enc = DiEncoder::di_vaxx(DiConfig::for_nodes(4), Avcl::new(t));
        b.iter(|| {
            let mut bits = 0u32;
            for block in &blocks {
                bits += enc.encode(block, NodeId(1)).payload_bits();
            }
            bits
        })
    });

    // LZ-VAXX: a mixed workload (runs, cross-word repeats, noise) so the
    // match finder exercises both its hit and miss paths.
    let lz_blocks: Vec<CacheBlock> = (0..64)
        .map(|i| {
            let base = i * 37 + 1;
            let words: Vec<i32> = (0..16)
                .map(|k| match k % 4 {
                    0 | 1 => base,
                    2 => 0,
                    _ => base ^ (k << 13),
                })
                .collect();
            CacheBlock::from_i32(&words)
        })
        .collect();
    c.bench_function("micro/lz_vaxx/encode_block", |b| {
        let mut enc = LzEncoder::lz_vaxx(LzConfig::default(), avcl);
        b.iter(|| {
            let mut bits = 0u32;
            for block in &lz_blocks {
                bits += enc.encode(block, NodeId(1)).payload_bits();
            }
            bits
        })
    });
    c.bench_function("micro/lz_vaxx/decode_block", |b| {
        let mut enc = LzEncoder::lz_vaxx(LzConfig::default(), avcl);
        let encoded: Vec<_> = lz_blocks
            .iter()
            .map(|bl| enc.encode(bl, NodeId(1)))
            .collect();
        let mut dec = LzDecoder::new();
        b.iter(|| {
            let mut words = 0usize;
            for e in &encoded {
                words += dec.decode(e, NodeId(0)).block.len();
            }
            words
        })
    });

    let mut group = c.benchmark_group("micro/noc");
    group.sample_size(20);
    group.bench_function("step_4x4_cmesh_idle", |b| {
        let cfg = NocConfig::paper_4x4_cmesh();
        let n = cfg.num_nodes();
        let mut sim = NocSim::new(cfg, (0..n).map(|_| NodeCodec::baseline()).collect());
        b.iter(|| {
            sim.step();
            sim.cycle()
        })
    });
    // The kernel benchmark behind BENCH_kernel.json: the steady-state step
    // loop under sustained uniform-random traffic on the paper's 4x4 cmesh.
    // Each iteration advances 100 cycles with fresh injections, so the
    // reported time divided by 100 is the per-cycle cost at steady state.
    group.bench_function("step_4x4_cmesh_uniform_random", |b| {
        let cfg = NocConfig::paper_4x4_cmesh();
        let n = cfg.num_nodes();
        let mut sim = NocSim::new(cfg, (0..n).map(|_| NodeCodec::baseline()).collect());
        let mut rng = Pcg32::seed_from_u64(42);
        let drive = move |sim: &mut NocSim, rng: &mut Pcg32, cycles: u64| {
            for _ in 0..cycles {
                for node in 0..n {
                    let roll = rng.below(100);
                    if roll < 4 {
                        let mut d = rng.below(n as u32) as usize;
                        if d == node {
                            d = (d + 1) % n;
                        }
                        sim.enqueue_control(NodeId(node as u16), NodeId(d as u16));
                    } else if roll < 5 {
                        let mut d = rng.below(n as u32) as usize;
                        if d == node {
                            d = (d + 1) % n;
                        }
                        let block = CacheBlock::from_i32(&[roll as i32; 16]);
                        sim.enqueue_data(NodeId(node as u16), NodeId(d as u16), block);
                    }
                }
                sim.step();
            }
            sim.drain_delivered().len()
        };
        // Reach steady state before sampling.
        drive(&mut sim, &mut rng, 2_000);
        b.iter(|| drive(&mut sim, &mut rng, 100))
    });
    group.bench_function("deliver_1000_packets", |b| {
        b.iter(|| {
            let cfg = NocConfig::paper_4x4_cmesh();
            let n = cfg.num_nodes();
            let mut sim = NocSim::new(cfg, (0..n).map(|_| NodeCodec::baseline()).collect());
            let mut rng = Pcg32::seed_from_u64(7);
            for _ in 0..1000 {
                let s = rng.below(32);
                let mut d = rng.below(32);
                while d == s {
                    d = rng.below(32);
                }
                sim.enqueue_control(NodeId(s as u16), NodeId(d as u16));
            }
            assert!(sim.drain(100_000));
            sim.stats().packets
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
