//! Figure 15: dynamic power normalized to baseline, plus §5.5 area.

use anoc_bench::{print_config, timed_config};
use anoc_harness::experiments::{fig15, render_fig15, BenchmarkMatrix};
use anoc_harness::runner::run_benchmark;
use anoc_harness::{AreaModel, EnergyModel, Mechanism};
use anoc_traffic::Benchmark;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let matrix = BenchmarkMatrix::run(&print_config(), 42);
    println!("\n{}", render_fig15(&fig15(&matrix)));
    let area = AreaModel::default();
    println!(
        "Section 5.5 area: DI-VAXX {:.4} mm^2 (paper 0.0037), FP-VAXX {:.4} mm^2 (paper 0.0029)",
        area.di_vaxx_encoder_mm2(),
        area.fp_vaxx_encoder_mm2()
    );
    let cfg = timed_config();
    let model = EnergyModel::default();
    let mut group = c.benchmark_group("fig15");
    group.sample_size(10);
    group.bench_function("x264/fp-vaxx/dynamic-power", |b| {
        b.iter(|| {
            let r = run_benchmark(Benchmark::X264, Mechanism::FpVaxx, &cfg, 42);
            model.dynamic_power(&r.activity)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
