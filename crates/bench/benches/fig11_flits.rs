//! Figure 11: injected data flits normalized to the uncompressed baseline.

use anoc_bench::{print_config, timed_config};
use anoc_harness::experiments::{fig11, render_fig11, BenchmarkMatrix};
use anoc_harness::runner::run_benchmark;
use anoc_harness::Mechanism;
use anoc_traffic::Benchmark;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let matrix = BenchmarkMatrix::run(&print_config(), 42);
    println!("\n{}", render_fig11(&fig11(&matrix)));
    let cfg = timed_config();
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    group.bench_function("x264/fp-vaxx/normalized-flits", |b| {
        b.iter(|| {
            run_benchmark(Benchmark::X264, Mechanism::FpVaxx, &cfg, 42)
                .stats
                .normalized_data_flits()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
