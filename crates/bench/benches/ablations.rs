//! Design-choice ablations called out in DESIGN.md §5:
//!
//! 1. shift-based vs exact-multiply error ranges;
//! 2. Guaranteed vs Relaxed (paper-style) don't-care masks;
//! 3. the §4.3 latency-hiding optimizations on/off;
//! 4. window-based (§7 future work) vs per-word error budgets;
//! 5. instantaneous vs in-band dictionary notifications.

use anoc_compression::fp::{FpDecoder, FpEncoder};
use anoc_core::avcl::{Avcl, MaskPolicy};
use anoc_core::codec::{BlockEncoder, EncodeStats};
use anoc_core::data::NodeId;
use anoc_core::rng::Pcg32;
use anoc_core::threshold::ErrorThreshold;
use anoc_core::window::WindowBudget;
use anoc_harness::runner::run_benchmark;
use anoc_harness::{Mechanism, SystemConfig};
use anoc_traffic::{Benchmark, DataModel};
use criterion::{criterion_group, criterion_main, Criterion};

fn encoded_fraction(enc: &mut FpEncoder, model: &mut DataModel, blocks: usize) -> f64 {
    let mut stats = EncodeStats::default();
    for _ in 0..blocks {
        stats.absorb_block(&enc.encode(&model.next_block(true), NodeId(1)));
    }
    stats.encoded_fraction()
}

fn bench(c: &mut Criterion) {
    let t = ErrorThreshold::from_percent(10).expect("valid");

    // 1. shift vs exact-multiply error range ------------------------------
    let mut rng = Pcg32::seed_from_u64(3);
    let values: Vec<u32> = (0..4096).map(|_| rng.next_u32()).collect();
    c.bench_function("ablation/error-range/shift", |b| {
        b.iter(|| values.iter().map(|v| t.error_range(*v) as u64).sum::<u64>())
    });
    c.bench_function("ablation/error-range/exact-multiply", |b| {
        b.iter(|| {
            values
                .iter()
                .map(|v| t.error_range_exact(*v) as u64)
                .sum::<u64>()
        })
    });
    let conservative = values
        .iter()
        .all(|v| t.error_range(*v) <= t.error_range_exact(*v));
    println!("\nablation 1: shift range always <= exact range: {conservative}");

    // 2. Guaranteed vs Relaxed masks --------------------------------------
    let mut model = DataModel::new(Benchmark::Canneal, 11);
    let mut g = FpEncoder::fp_vaxx(Avcl::new(t));
    let guaranteed = encoded_fraction(&mut g, &mut model, 200);
    let mut model = DataModel::new(Benchmark::Canneal, 11);
    let mut r = FpEncoder::fp_vaxx(Avcl::with_policy(t, MaskPolicy::Relaxed));
    let relaxed = encoded_fraction(&mut r, &mut model, 200);
    println!(
        "ablation 2: encoded-word fraction — Guaranteed {guaranteed:.3} vs Relaxed {relaxed:.3} \
         (Relaxed trades a looser bound for more matches)"
    );

    // 3. latency hiding on/off --------------------------------------------
    let base_cfg = SystemConfig::paper().with_sim_cycles(4_000);
    let mut no_hiding = base_cfg.clone();
    no_hiding.noc.hide_compression = false;
    no_hiding.noc.va_overlap = false;
    let with_lat =
        run_benchmark(Benchmark::Ssca2, Mechanism::FpVaxx, &base_cfg, 42).avg_packet_latency();
    let without_lat =
        run_benchmark(Benchmark::Ssca2, Mechanism::FpVaxx, &no_hiding, 42).avg_packet_latency();
    println!(
        "ablation 3: ssca2 FP-VAXX latency — hiding on {with_lat:.2} vs off {without_lat:.2} cycles"
    );

    // 4. window budget vs per-word threshold -------------------------------
    let mut model = DataModel::new(Benchmark::X264, 13);
    let mut plain = FpEncoder::fp_vaxx(Avcl::new(t));
    let plain_frac = encoded_fraction(&mut plain, &mut model, 200);
    let mut model = DataModel::new(Benchmark::X264, 13);
    let mut windowed = FpEncoder::fp_vaxx_windowed(WindowBudget::new(16, 10));
    let window_frac = encoded_fraction(&mut windowed, &mut model, 200);
    println!(
        "ablation 4: x264 encoded fraction — per-word {plain_frac:.3} vs 16-word window {window_frac:.3}"
    );
    c.bench_function("ablation/window/encode", |b| {
        let mut enc = FpEncoder::fp_vaxx_windowed(WindowBudget::new(16, 10));
        let mut dec = FpDecoder::new();
        let mut model = DataModel::new(Benchmark::X264, 17);
        b.iter(|| {
            let block = model.next_block(true);
            let e = enc.encode(&block, NodeId(1));
            anoc_core::codec::BlockDecoder::decode(&mut dec, &e, NodeId(0))
                .block
                .len()
        })
    });

    // 5. notification transport --------------------------------------------
    let mut in_band = base_cfg.clone();
    in_band.noc.notify_in_band = true;
    let instant =
        run_benchmark(Benchmark::Ssca2, Mechanism::DiVaxx, &base_cfg, 42).avg_packet_latency();
    let banded =
        run_benchmark(Benchmark::Ssca2, Mechanism::DiVaxx, &in_band, 42).avg_packet_latency();
    println!(
        "ablation 5: ssca2 DI-VAXX latency — instant notifications {instant:.2} vs in-band control packets {banded:.2} cycles"
    );

    // 6. dictionary PMT capacity (Table 1 fixes 8 entries) ---------------
    {
        use anoc_compression::di::{DiConfig, DiDecoder, DiEncoder};
        use anoc_core::codec::BlockDecoder;
        for entries in [4usize, 8, 16] {
            let cfg = DiConfig {
                pmt_entries: entries,
                ..DiConfig::for_nodes(2)
            };
            let mut enc = DiEncoder::di_vaxx(cfg, Avcl::new(t));
            let mut dec = DiDecoder::new(cfg);
            let mut model = DataModel::new(Benchmark::Ssca2, 19);
            let mut stats = EncodeStats::default();
            for _ in 0..400 {
                let block = model.next_block(true);
                let e = enc.encode(&block, NodeId(1));
                stats.absorb_block(&e);
                let r = dec.decode(&e, NodeId(0));
                for (_, note) in r.notifications {
                    enc.apply_notification(NodeId(1), note);
                }
            }
            println!(
                "ablation 6: {entries}-entry PMT — encoded fraction {:.3}, ratio {:.3}",
                stats.encoded_fraction(),
                stats.compression_ratio()
            );
        }
    }

    let mut group = c.benchmark_group("ablation/system");
    group.sample_size(10);
    group.bench_function("ssca2/fp-vaxx/no-hiding", |b| {
        let mut cfg = SystemConfig::paper().with_sim_cycles(1_000);
        cfg.noc.hide_compression = false;
        b.iter(|| run_benchmark(Benchmark::Ssca2, Mechanism::FpVaxx, &cfg, 42))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
