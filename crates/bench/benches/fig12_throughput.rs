//! Figure 12: packet latency vs injection rate under Uniform Random and
//! Transpose synthetic traffic carrying blackscholes / streamcluster data.

use anoc_bench::timed_config;
use anoc_harness::experiments::{fig12, render_fig12};
use anoc_harness::runner::run_with_source;
use anoc_harness::{Mechanism, SystemConfig};
use anoc_traffic::{Benchmark, DataPool, DestPattern, SyntheticTraffic};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let config = SystemConfig::paper().with_sim_cycles(6_000);
    let rates: Vec<f64> = (1..=14).map(|i| i as f64 * 0.05).collect();
    for (bench, pattern, label) in [
        (
            Benchmark::Blackscholes,
            DestPattern::UniformRandom,
            "blackscholes UR",
        ),
        (
            Benchmark::Blackscholes,
            DestPattern::Transpose,
            "blackscholes TR",
        ),
        (
            Benchmark::Streamcluster,
            DestPattern::UniformRandom,
            "streamcluster UR",
        ),
        (
            Benchmark::Streamcluster,
            DestPattern::Transpose,
            "streamcluster TR",
        ),
    ] {
        let series = fig12(bench, pattern, &rates, &config, 42);
        println!("\n{}", render_fig12(label, &series));
    }
    let cfg = timed_config();
    let pool = DataPool::from_benchmark(Benchmark::Blackscholes, 256, 42);
    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);
    group.bench_function("UR/0.3/fp-vaxx", |b| {
        b.iter(|| {
            let mut src = SyntheticTraffic::new(
                DestPattern::UniformRandom,
                cfg.noc.num_nodes(),
                pool.clone(),
                0.3,
                0.25,
                0.75,
                42,
            );
            run_with_source(&mut src, Mechanism::FpVaxx, &cfg).avg_packet_latency()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
