//! Figure 17: precise vs approximate bodytrack output (PGM artefacts).

use anoc_harness::experiments::fig17;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let r = fig17(42);
    let dir = std::path::Path::new("target/fig17");
    std::fs::create_dir_all(dir).expect("create target/fig17");
    std::fs::write(dir.join("bodytrack_precise.pgm"), &r.precise_pgm).expect("write");
    std::fs::write(dir.join("bodytrack_approx.pgm"), &r.approx_pgm).expect("write");
    println!(
        "\nFigure 17: bodytrack output-vector difference {:.4}% (paper: 2.4%); \
         frames in target/fig17/",
        r.vector_difference * 100.0
    );
    let mut group = c.benchmark_group("fig17");
    group.sample_size(10);
    group.bench_function("bodytrack/full-pipeline", |b| b.iter(|| fig17(42)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
