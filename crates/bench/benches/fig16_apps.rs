//! Figure 16: application output accuracy and normalized performance at
//! data error budgets of 0/10/20%.

use anoc_apps::kernel::evaluate;
use anoc_apps::transport::ApproxTransport;
use anoc_core::threshold::ErrorThreshold;
use anoc_harness::experiments::{fig16, render_fig16};
use anoc_harness::SystemConfig;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let config = SystemConfig::paper().with_sim_cycles(5_000);
    println!("\n{}", render_fig16(&fig16(&config, 42)));
    let mut group = c.benchmark_group("fig16");
    group.sample_size(10);
    group.bench_function("blackscholes/kernel-through-fp-vaxx", |b| {
        b.iter(|| {
            let kernel = anoc_apps::blackscholes::Blackscholes::new(256, 5);
            let mut t = ApproxTransport::fp_vaxx(ErrorThreshold::from_percent(10).expect("valid"));
            evaluate(&kernel, &mut t).2
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
