//! Table 1: prints the simulated configuration; times config construction
//! and validation.

use anoc_harness::SystemConfig;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("\nTable 1: APPROX-NoC Simulation Configuration");
    for (k, v) in SystemConfig::paper().table1_rows() {
        println!("{k:<34} {v}");
    }
    c.bench_function("table1/config_build", |b| {
        b.iter(|| {
            let cfg = SystemConfig::paper();
            std::hint::black_box(cfg.noc.validate().is_ok())
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
