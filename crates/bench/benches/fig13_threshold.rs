//! Figure 13: error-threshold sensitivity (5% / 10% / 20%).

use anoc_harness::experiments::{fig13, render_sensitivity};
use anoc_harness::runner::run_benchmark;
use anoc_harness::{Mechanism, SystemConfig};
use anoc_traffic::Benchmark;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let config = SystemConfig::paper().with_sim_cycles(5_000);
    let rows = fig13(&config, 42);
    println!(
        "\n{}",
        render_sensitivity(
            "Figure 13: Error Threshold Sensitivity (packet latency)",
            &rows
        )
    );
    let mut group = c.benchmark_group("fig13");
    group.sample_size(10);
    for pct in [5u32, 20] {
        let cfg = SystemConfig::paper()
            .with_sim_cycles(1_000)
            .with_threshold(pct);
        group.bench_function(format!("swaptions/fp-vaxx@{pct}"), |b| {
            b.iter(|| run_benchmark(Benchmark::Swaptions, Mechanism::FpVaxx, &cfg, 42))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
