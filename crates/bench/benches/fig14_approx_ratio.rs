//! Figure 14: approximable-packet-ratio sensitivity (25% / 50% / 75%).

use anoc_harness::experiments::{fig14, render_sensitivity};
use anoc_harness::runner::run_benchmark;
use anoc_harness::{Mechanism, SystemConfig};
use anoc_traffic::Benchmark;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let config = SystemConfig::paper().with_sim_cycles(5_000);
    let rows = fig14(&config, 42);
    println!(
        "\n{}",
        render_sensitivity(
            "Figure 14: Approximable Packets Ratio Sensitivity (packet latency)",
            &rows
        )
    );
    let mut group = c.benchmark_group("fig14");
    group.sample_size(10);
    for ratio in [0.25f64, 0.75] {
        let cfg = SystemConfig::paper()
            .with_sim_cycles(1_000)
            .with_approx_ratio(ratio);
        group.bench_function(format!("ssca2/di-vaxx@{ratio}"), |b| {
            b.iter(|| run_benchmark(Benchmark::Ssca2, Mechanism::DiVaxx, &cfg, 42))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
