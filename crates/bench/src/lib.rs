//! # anoc-bench
//!
//! Criterion benchmarks regenerating every table and figure of the
//! APPROX-NoC paper (`benches/table1.rs`, `benches/fig09_latency.rs` …
//! `benches/fig17_bodytrack.rs`), plus microbenchmarks of the hot paths
//! (`benches/micro.rs`) and design-choice ablations (`benches/ablations.rs`).
//!
//! Each figure bench prints the regenerated rows/series once (the artefact)
//! and then times a representative slice of the experiment, so `cargo bench`
//! both reproduces the evaluation and tracks simulator performance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use anoc_harness::SystemConfig;

/// The cycle count used when printing full figure tables from benches.
pub const PRINT_CYCLES: u64 = 8_000;

/// The cycle count used inside timed closures.
pub const TIMED_CYCLES: u64 = 1_000;

/// The config used for figure printing in benches.
pub fn print_config() -> SystemConfig {
    SystemConfig::paper().with_sim_cycles(PRINT_CYCLES)
}

/// The config used for timed closures.
pub fn timed_config() -> SystemConfig {
    SystemConfig::paper().with_sim_cycles(TIMED_CYCLES)
}
