//! End-to-end tests of the resilience layer as campaigns use it: seeded
//! fault plans reproduce bit-for-bit regardless of worker-thread count, and
//! keep-going campaigns complete past panicking and deadlocking cells with
//! typed failure reports while still caching the successes.
//!
//! Like `campaign_integration.rs`, the process-wide [`ExecContext`] is a
//! first-caller-wins `OnceLock`, so this binary installs its own context (2
//! threads + scratch cache). The thread-count comparison deliberately builds
//! private [`ThreadPool`]s instead, so it never depends on the global.

use std::path::PathBuf;
use std::sync::OnceLock;

use anoc_exec::{run_campaign, CampaignOptions, CellError, JobSpec, ResultCache, ThreadPool};
use anoc_harness::campaign::{self, benchmark_job, checked_benchmark_job};
use anoc_harness::persist::encode_run_result;
use anoc_harness::runner::RunResult;
use anoc_harness::{Mechanism, SystemConfig};
use anoc_noc::FaultPlan;
use anoc_traffic::Benchmark;

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("anoc-faults-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch cache dir");
    dir
}

fn ctx() -> &'static campaign::ExecContext {
    static INIT: OnceLock<()> = OnceLock::new();
    INIT.get_or_init(|| {
        let cache = ResultCache::open(scratch_dir()).expect("open scratch cache");
        cache.clear().expect("start from an empty cache");
        assert!(campaign::configure(Some(2), Some(cache), None));
    });
    campaign::context()
}

/// A config whose fault plan actually perturbs the simulation.
fn faulty_config() -> SystemConfig {
    SystemConfig::paper()
        .with_sim_cycles(1_200)
        .with_faults(FaultPlan {
            seed: 5,
            link_bit_flip_ppm: 20_000,
            port_stall_ppm: 2_000,
            stall_cycles: 2,
            credit_drop_ppm: 0,
            credit_dup_ppm: 0,
            dict_corrupt_ppm: 0,
        })
}

/// A config that wedges: every credit return is dropped, and the watchdog
/// turns the resulting starvation into a structured abort.
fn deadlocking_config() -> SystemConfig {
    SystemConfig::paper()
        .with_sim_cycles(4_000)
        .with_faults(FaultPlan {
            seed: 1,
            credit_drop_ppm: 1_000_000,
            ..FaultPlan::none()
        })
        .with_watchdog(1_000)
}

#[test]
fn fault_campaigns_reproduce_across_thread_counts() {
    let config = faulty_config();
    let plan = |seed: u64| -> Vec<JobSpec<RunResult>> {
        [Benchmark::Ssca2, Benchmark::Blackscholes]
            .into_iter()
            .flat_map(|b| {
                [Mechanism::FpVaxx, Mechanism::DiVaxx]
                    .into_iter()
                    .map(move |m| (b, m))
            })
            .map(|(b, m)| benchmark_job(b, m, &config, seed))
            .collect()
    };
    let serial_pool = ThreadPool::new(1);
    let wide_pool = ThreadPool::new(4);
    let (serial, _) = run_campaign(&serial_pool, None, plan(9), &CampaignOptions::quiet(), None);
    let (wide, _) = run_campaign(&wide_pool, None, plan(9), &CampaignOptions::quiet(), None);
    assert_eq!(serial.len(), wide.len());
    for (s, w) in serial.iter().zip(&wide) {
        // The fault RNG is per-simulation, so injected faults — and through
        // them every statistic — must not depend on worker count.
        assert_eq!(encode_run_result(s), encode_run_result(w));
        assert!(
            s.stats.faults.bit_flips > 0,
            "plan injected nothing: {:?}",
            s.stats.faults
        );
    }
}

#[test]
fn keep_going_campaign_survives_panics_and_deadlocks() {
    let ctx = ctx();
    let healthy = SystemConfig::paper().with_sim_cycles(1_000);
    let jobs: Vec<JobSpec<Result<RunResult, String>>> = vec![
        checked_benchmark_job(Benchmark::Ssca2, Mechanism::FpVaxx, &healthy, 21),
        JobSpec::new("explode", "anoc-cell test explode", || {
            panic!("cell deliberately exploded")
        }),
        checked_benchmark_job(
            Benchmark::Ssca2,
            Mechanism::FpVaxx,
            &deadlocking_config(),
            21,
        ),
        checked_benchmark_job(Benchmark::X264, Mechanism::Baseline, &healthy, 21),
    ];
    let before = ctx.failed_cells();
    let (results, failures, report) = ctx.run_checked("resilience", jobs);

    // The campaign completed: healthy cells have results, failed cells are
    // typed with their diagnostics, and the failure counter advanced.
    assert_eq!(results.len(), 4);
    assert!(results[0].is_some() && results[3].is_some());
    assert!(results[1].is_none() && results[2].is_none());
    assert_eq!(failures.len(), 2);
    assert_eq!(ctx.failed_cells(), before + 2);
    assert_eq!(report.jobs, 4);

    let panicked = &failures[0];
    assert_eq!(panicked.index, 1);
    assert!(
        matches!(&panicked.error, CellError::Panicked(m) if m.contains("deliberately exploded")),
        "{panicked}"
    );
    let wedged = &failures[1];
    assert_eq!(wedged.index, 2);
    match &wedged.error {
        CellError::Failed(msg) => {
            // The watchdog's diagnostic dump travels with the failure.
            assert!(msg.contains("deadlock"), "{msg}");
            assert!(msg.contains("stuck"), "{msg}");
        }
        other => panic!("wrong error kind: {other}"),
    }

    // Successes were cached despite the failures: re-asking only the healthy
    // cells computes nothing.
    let rerun = vec![
        checked_benchmark_job(Benchmark::Ssca2, Mechanism::FpVaxx, &healthy, 21),
        checked_benchmark_job(Benchmark::X264, Mechanism::Baseline, &healthy, 21),
    ];
    let (warm, warm_failures, warm_report) = ctx.run_checked("resilience-warm", rerun);
    assert!(warm_failures.is_empty());
    assert_eq!(warm_report.executed, 0, "healthy cells must be cache hits");
    assert_eq!(
        encode_run_result(warm[0].as_ref().expect("cached")),
        encode_run_result(results[0].as_ref().expect("fresh")),
    );
}

#[test]
fn keep_going_mode_substitutes_sentinels_instead_of_panicking() {
    let ctx = ctx();
    let healthy = SystemConfig::paper().with_sim_cycles(800);
    ctx.set_keep_going(true);
    let jobs: Vec<JobSpec<RunResult>> = vec![
        benchmark_job(Benchmark::Blackscholes, Mechanism::Baseline, &healthy, 33),
        JobSpec::new("explode", "anoc-cell test explode-unchecked", || {
            panic!("unchecked cell exploded")
        }),
        benchmark_job(Benchmark::Blackscholes, Mechanism::FpComp, &healthy, 33),
    ];
    let results = ctx.run("keep-going", jobs);
    ctx.set_keep_going(false);
    assert_eq!(results.len(), 3);
    assert!(!results[0].is_failed_sentinel());
    assert!(results[1].is_failed_sentinel());
    assert!(!results[2].is_failed_sentinel());
    assert_eq!(results[2].mechanism, Mechanism::FpComp);
    assert!(ctx.failed_cells() > 0);
}
