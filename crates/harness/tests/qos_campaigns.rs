//! End-to-end tests of the per-flow QoS control plane and the lossy-link
//! scenario family as campaigns use them: active-controller and active-loss
//! runs reproduce bit-for-bit across worker-thread and shard counts, inert
//! specs have zero behavioral footprint, the loss→violation curve is
//! monotone, and the QoS study's realized quality lands within budget.
//!
//! Thread-count comparisons build private [`ThreadPool`]s (the process-wide
//! context is a first-caller-wins `OnceLock`, owned by other test binaries).

use anoc_core::control::QosSpec;
use anoc_exec::{run_campaign, CampaignOptions, JobSpec, ThreadPool};
use anoc_harness::campaign::benchmark_job;
use anoc_harness::persist::encode_run_result;
use anoc_harness::runner::{run_benchmark, RunResult};
use anoc_harness::{Mechanism, SystemConfig};
use anoc_noc::LossPlan;
use anoc_traffic::Benchmark;

/// A config with both new planes armed: per-flow QoS at a 97% quality floor
/// and scaled per-hop word loss.
fn qos_lossy_config() -> SystemConfig {
    SystemConfig::paper()
        .with_sim_cycles(1_500)
        .with_qos(QosSpec::paper(970_000))
        .with_loss(LossPlan::scaled(7, 5_000, 100))
}

#[test]
fn qos_and_lossy_campaigns_reproduce_across_thread_counts() {
    let config = qos_lossy_config();
    let plan = |seed: u64| -> Vec<JobSpec<RunResult>> {
        [Benchmark::Ssca2, Benchmark::Blackscholes]
            .into_iter()
            .map(|b| benchmark_job(b, Mechanism::FpVaxx, &config, seed))
            .collect()
    };
    let serial_pool = ThreadPool::new(1);
    let wide_pool = ThreadPool::new(4);
    let (serial, _) = run_campaign(&serial_pool, None, plan(9), &CampaignOptions::quiet(), None);
    let (wide, _) = run_campaign(&wide_pool, None, plan(9), &CampaignOptions::quiet(), None);
    assert_eq!(serial.len(), wide.len());
    for (s, w) in serial.iter().zip(&wide) {
        // Controller epochs and loss draws are per-simulation state, so
        // every statistic must be independent of worker count.
        assert_eq!(encode_run_result(s), encode_run_result(w));
        assert!(
            s.stats.faults.words_lost > 0,
            "loss plan erased nothing: {:?}",
            s.stats.faults
        );
    }
}

#[test]
fn qos_and_lossy_runs_are_bit_identical_across_shard_counts() {
    let serial = run_benchmark(
        Benchmark::Blackscholes,
        Mechanism::FpVaxx,
        &qos_lossy_config(),
        9,
    );
    let sharded = run_benchmark(
        Benchmark::Blackscholes,
        Mechanism::FpVaxx,
        &qos_lossy_config().with_shards(4),
        9,
    );
    assert_eq!(encode_run_result(&serial), encode_run_result(&sharded));
    assert!(serial.stats.faults.words_lost > 0);
}

/// An inert `QosSpec::off()` + `LossPlan::none()` config must reproduce the
/// plain run exactly: no RNG draws, no controller epochs, no threshold
/// rewrites — zero behavioral footprint.
#[test]
fn inert_qos_and_loss_reproduce_the_plain_run_exactly() {
    let plain = SystemConfig::paper().with_sim_cycles(1_200);
    let inert = plain
        .clone()
        .with_qos(QosSpec::off())
        .with_loss(LossPlan::none());
    for m in [Mechanism::FpVaxx, Mechanism::Baseline] {
        let a = run_benchmark(Benchmark::Ssca2, m, &plain, 9);
        let b = run_benchmark(Benchmark::Ssca2, m, &inert, 9);
        assert_eq!(encode_run_result(&a), encode_run_result(&b), "{}", m.name());
        assert_eq!(a.stats.faults.words_lost, 0);
    }
}

/// Under an active QoS plane the bound checker is armed at the spec ceiling:
/// on healthy links no flow may ever deliver a word past it. (With lossy
/// links the erased words *do* trip the checker — that loss→violation curve
/// is the lossy scenario's signal, so it is exercised separately below.)
#[test]
fn qos_runs_never_violate_the_spec_ceiling() {
    let r = run_benchmark(
        Benchmark::Blackscholes,
        Mechanism::FpVaxx,
        &SystemConfig::paper()
            .with_sim_cycles(1_500)
            .with_qos(QosSpec::paper(970_000)),
        9,
    );
    assert!(r.stats.faults.bound_checked_words > 0);
    assert_eq!(
        r.stats.faults.bound_violations, 0,
        "a flow approximated past the QoS ceiling"
    );
}

/// The lossy sweep's scenario shape: an inert rate injects nothing, and the
/// erased-word count grows with the configured loss rate.
#[test]
fn lossy_curve_is_monotone_in_the_loss_rate() {
    let base = SystemConfig::paper().with_sim_cycles(1_200);
    let lost: Vec<u64> = [0u32, 2_000, 50_000, 400_000]
        .iter()
        .map(|&ppm| {
            let plan = if ppm == 0 {
                LossPlan::none()
            } else {
                LossPlan::scaled(11, ppm, 50)
            };
            let cfg = base.clone().with_loss(plan);
            run_benchmark(Benchmark::Blackscholes, Mechanism::FpVaxx, &cfg, 9)
                .stats
                .faults
                .words_lost
        })
        .collect();
    assert_eq!(lost[0], 0, "inert plan must erase nothing");
    assert!(
        lost.windows(2).all(|w| w[0] <= w[1]) && *lost.last().expect("nonempty") > 0,
        "{lost:?}"
    );
}
