//! End-to-end pins for the warm-start snapshot store as sweeps use it:
//! a multi-threshold sweep forked from a shared post-warmup snapshot is
//! bit-identical to the same sweep run cold — at every shard count — while
//! simulating measurably fewer cycles, and a fault-active campaign's
//! monotonic violation curve is unchanged when its warmups are forked.

use std::path::PathBuf;

use anoc_exec::SnapshotStore;
use anoc_harness::campaign::warmup_key;
use anoc_harness::persist::encode_run_result;
use anoc_harness::runner::{try_run_benchmark_snap, SnapshotPolicy};
use anoc_harness::{Mechanism, SystemConfig};
use anoc_noc::FaultPlan;
use anoc_traffic::Benchmark;

fn scratch_store(name: &str) -> SnapshotStore {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("anoc-snapshot-it-{}-{}", name, std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch snapshot dir");
    let store = SnapshotStore::open(dir).expect("open scratch snapshot store");
    store.clear().expect("start from an empty store");
    store
}

fn warm_policy<'a>(
    store: &'a SnapshotStore,
    config: &SystemConfig,
    mechanism: Mechanism,
    benchmark: Benchmark,
    seed: u64,
    cell: &str,
) -> SnapshotPolicy<'a> {
    SnapshotPolicy {
        store: Some(store),
        warmup_key: Some(warmup_key(
            "bench",
            config,
            mechanism.name(),
            benchmark.name(),
            seed,
        )),
        cell_key: Some(cell.to_string()),
        checkpoint_every: 0,
        resume: false,
    }
}

/// The acceptance pin: a three-threshold sweep at a fixed workload and seed,
/// run warm against a snapshot store, is bit-identical to the cold sweep at
/// shard counts 1 and 2 — and every cell after the first skips its warmup.
#[test]
fn warm_threshold_sweep_is_bit_identical_to_cold_at_any_shard_count() {
    let store = scratch_store("sweep");
    let benchmark = Benchmark::Ssca2;
    let mechanism = Mechanism::FpVaxx;
    let seed = 7;
    let mut skipped_total = 0u64;
    let mut forks = 0usize;

    for shards in [1usize, 2] {
        for threshold in [5u32, 10, 20] {
            let config = SystemConfig::paper()
                .with_sim_cycles(1_500)
                .with_threshold(threshold)
                .with_shards(shards);

            let (cold, cold_info) = try_run_benchmark_snap(
                benchmark,
                mechanism,
                &config,
                seed,
                &SnapshotPolicy::cold(),
            )
            .expect("cold cell");
            assert!(!cold_info.forked && !cold_info.resumed);
            assert_eq!(cold_info.skipped_cycles, 0);

            let cell = format!("s{shards}-t{threshold}");
            let policy = warm_policy(&store, &config, mechanism, benchmark, seed, &cell);
            let (warm, info) = try_run_benchmark_snap(benchmark, mechanism, &config, seed, &policy)
                .expect("warm cell");

            assert_eq!(
                encode_run_result(&cold),
                encode_run_result(&warm),
                "warm cell {cell} differs from its cold twin"
            );
            if info.forked {
                forks += 1;
                assert_eq!(info.skipped_cycles, config.warmup_cycles);
            }
            skipped_total += info.skipped_cycles;
        }
    }

    // The warmup key excludes the threshold and the shard count, so the six
    // cells share one snapshot: the first publishes it, the other five fork.
    assert_eq!(forks, 5, "every cell after the first must fork");
    assert!(
        skipped_total >= 5 * 500,
        "the warm sweep must simulate measurably fewer cycles (skipped {skipped_total})"
    );
    assert_eq!(store.len(), 1, "one shared warmup snapshot, no leftovers");
}

/// Satellite 3 at the harness level: a fault-injection ppm sweep replayed
/// against a warm store forks every cell from its (fault-plan-specific)
/// warmup snapshot, reproduces each cell bit-for-bit, and leaves the
/// monotonic bound-violation curve unchanged.
#[test]
fn fault_active_sweep_survives_warmup_forking() {
    let store = scratch_store("faults");
    let benchmark = Benchmark::Blackscholes;
    let mechanism = Mechanism::FpVaxx;
    let seed = 11;
    let sweep = [2_000u32, 50_000, 400_000];

    let config_for = |ppm: u32| {
        SystemConfig::paper()
            .with_sim_cycles(3_000)
            .with_threshold(10)
            .with_faults(FaultPlan {
                seed: 9,
                link_bit_flip_ppm: ppm,
                ..FaultPlan::none()
            })
            .with_watchdog(20_000)
    };

    let run_pass = |expect_forked: bool| {
        sweep
            .iter()
            .map(|&ppm| {
                let config = config_for(ppm);
                let cell = format!("flt-{ppm}");
                let policy = warm_policy(&store, &config, mechanism, benchmark, seed, &cell);
                let (r, info) =
                    try_run_benchmark_snap(benchmark, mechanism, &config, seed, &policy)
                        .expect("fault cell");
                assert_eq!(
                    info.forked, expect_forked,
                    "ppm {ppm}: forked={} but expected {expect_forked}",
                    info.forked
                );
                r
            })
            .collect::<Vec<_>>()
    };

    // Pass 1 runs cold and publishes each cell's warmup; the fault plan is
    // part of the warmup key, so the three cells publish three snapshots.
    let cold = run_pass(false);
    assert_eq!(store.len(), sweep.len());
    // Pass 2 forks every cell from its snapshot — with the fault RNG, bound
    // checker and watchdog cursors restored mid-plan, not re-seeded.
    let warm = run_pass(true);

    for ((c, w), ppm) in cold.iter().zip(&warm).zip(sweep) {
        assert_eq!(
            encode_run_result(c),
            encode_run_result(w),
            "fault cell at {ppm} ppm differs after forking its warmup"
        );
    }
    let curve: Vec<u64> = warm
        .iter()
        .map(|r| r.stats.faults.bound_violations)
        .collect();
    assert!(
        curve.windows(2).all(|w| w[0] <= w[1]),
        "violation curve must stay monotone: {curve:?}"
    );
    assert!(
        *curve.last().unwrap() > 0,
        "the heaviest fault plan must actually trip the bound checker: {curve:?}"
    );
}
