//! End-to-end tests of the parallel campaign engine as the harness uses it:
//! a figure campaign run on a multi-threaded pool is bit-identical to the
//! serial reference, repeated runs are answered from the result cache, and
//! config changes invalidate exactly the affected cells.
//!
//! These tests share one process-wide [`ExecContext`] (it is a first-caller
//! -wins `OnceLock`), so the context — 4 worker threads plus a cache in a
//! scratch directory — is installed once and every test runs on it.

use std::path::PathBuf;
use std::sync::OnceLock;

use anoc_exec::ResultCache;
use anoc_harness::campaign::{self, benchmark_job};
use anoc_harness::persist::encode_run_result;
use anoc_harness::runner::run_benchmark;
use anoc_harness::{Mechanism, SystemConfig};
use anoc_traffic::Benchmark;

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("anoc-campaign-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch cache dir");
    dir
}

/// Installs the shared test context (4 threads, cache in a scratch dir).
fn ctx() -> &'static campaign::ExecContext {
    static INIT: OnceLock<()> = OnceLock::new();
    INIT.get_or_init(|| {
        let cache = ResultCache::open(scratch_dir()).expect("open scratch cache");
        cache.clear().expect("start from an empty cache");
        assert!(
            campaign::configure(Some(4), Some(cache), None),
            "test context must be installed before any experiment runs"
        );
    });
    campaign::context()
}

fn plan(config: &SystemConfig, seed: u64) -> Vec<anoc_exec::JobSpec<anoc_harness::RunResult>> {
    [Benchmark::Ssca2, Benchmark::X264]
        .into_iter()
        .flat_map(|b| Mechanism::ALL.into_iter().map(move |m| (b, m)))
        .map(|(b, m)| benchmark_job(b, m, config, seed))
        .collect()
}

#[test]
fn parallel_campaign_is_bit_identical_to_serial_reference() {
    let ctx = ctx();
    assert_eq!(ctx.threads(), 4);
    let config = SystemConfig::paper().with_sim_cycles(1_200);

    let (results, _) = ctx.run_reported("determinism", plan(&config, 3));

    // The serial reference: the same cells, one by one, on this thread.
    let mut i = 0;
    for b in [Benchmark::Ssca2, Benchmark::X264] {
        for m in Mechanism::ALL {
            let reference = run_benchmark(b, m, &config, 3);
            assert_eq!(
                encode_run_result(&results[i]),
                encode_run_result(&reference),
                "cell {}/{} differs from the serial reference",
                b.name(),
                m.name(),
            );
            i += 1;
        }
    }
    assert_eq!(i, results.len());
}

#[test]
fn repeated_campaign_hits_the_cache_and_matches_bit_for_bit() {
    let ctx = ctx();
    let config = SystemConfig::paper().with_sim_cycles(900).with_seed(17);

    let (cold, cold_report) = ctx.run_reported("cache-cold", plan(&config, 17));
    // The cold run may still hit cells a sibling test has already cached;
    // what matters is that the warm rerun computes nothing at all.
    let (warm, warm_report) = ctx.run_reported("cache-warm", plan(&config, 17));
    assert_eq!(warm_report.executed, 0, "warm rerun must be all cache hits");
    assert_eq!(warm_report.cache_hits, cold_report.jobs);

    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(encode_run_result(c), encode_run_result(w));
    }
}

#[test]
fn config_change_invalidates_while_unrelated_reruns_still_hit() {
    let ctx = ctx();
    let base = SystemConfig::paper().with_sim_cycles(700).with_seed(5);
    let (_, first) = ctx.run_reported("invalidate-base", plan(&base, 5));

    // Any config knob change is a different content key: all cells miss.
    let tightened = base.clone().with_threshold(5);
    let (_, changed) = ctx.run_reported("invalidate-thr", plan(&tightened, 5));
    assert_eq!(
        changed.executed, changed.jobs,
        "threshold change must invalidate every cell"
    );

    // A different seed is likewise a different computation.
    let (_, reseeded) = ctx.run_reported("invalidate-seed", plan(&base.clone().with_seed(6), 6));
    assert_eq!(reseeded.executed, reseeded.jobs);

    // Re-asking the original cells (e.g. after touching only a reporter)
    // computes nothing: the simulation inputs are unchanged.
    let (_, again) = ctx.run_reported("invalidate-again", plan(&base, 5));
    assert_eq!(again.executed, 0);
    assert_eq!(again.cache_hits, first.jobs);
}
