//! # anoc-harness
//!
//! The experiment harness that regenerates every table and figure of
//! APPROX-NoC (ISCA 2017):
//!
//! * [`config`] — [`SystemConfig`] (Table 1 defaults) and the five
//!   [`Mechanism`]s under comparison;
//! * [`runner`] — the generic traffic → NoC → statistics driver;
//! * [`experiments`] — one runner per figure (`fig9` … `fig17`) plus text
//!   renderers producing the same rows/series the paper reports;
//! * [`campaign`] — the bridge to the `anoc-exec` parallel engine: cell
//!   content keys, the result-cache codec and the process-wide
//!   [`campaign::ExecContext`] every figure runner executes on;
//! * [`cli`] — the unified `anoc` command line (`anoc run fig9`,
//!   `anoc cache clear`, …) that the root binary and every per-figure
//!   alias binary delegate to;
//! * [`persist`] — bit-exact text serialization of [`RunResult`] for the
//!   on-disk result cache;
//! * [`power`] — the event-count dynamic power model and the §5.5 area
//!   accounting.
//!
//! ## Example
//!
//! ```
//! use anoc_harness::{Mechanism, SystemConfig};
//! use anoc_harness::runner::run_benchmark;
//! use anoc_traffic::Benchmark;
//!
//! let config = SystemConfig::paper().with_sim_cycles(2_000);
//! let result = run_benchmark(Benchmark::X264, Mechanism::FpVaxx, &config, 7);
//! assert!(result.data_quality() > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod cli;
pub mod config;
pub mod experiments;
pub mod persist;
pub mod power;
pub mod runner;

pub use campaign::ExecContext;
pub use config::{Mechanism, SystemConfig};
pub use power::{AreaModel, EnergyModel};
pub use runner::{run_benchmark, run_with_source, RunResult};
