//! Bit-exact text serialization of [`RunResult`] for the campaign cache.
//!
//! The format is line-oriented plain text (the cache stores text payloads)
//! and round-trips every field exactly: `f64`s are stored as the hex of
//! their IEEE-754 bits, and the latency histogram as sparse
//! `bucket:count` pairs. A decoded result is indistinguishable from the
//! freshly simulated one, which is what lets cached cells participate in
//! bit-identical figure regeneration.

use anoc_core::codec::{CodecActivity, EncodeStats};
use anoc_core::metrics::QualityAccumulator;
use anoc_noc::router::RouterActivity;
use anoc_noc::{ActivityReport, LatencyHistogram, NetStats};

use crate::config::Mechanism;
use crate::runner::RunResult;

/// Magic first line of the payload; bump the version when the layout of
/// [`RunResult`] changes so stale cache entries turn into misses.
///
/// v4: the mechanism namespace grew (`LZ-VAXX`). Entries written by a v3
/// reader must be rejected, not misparsed, because a v3 binary cannot
/// reconstruct the new mechanism and a v4 binary must not trust cells keyed
/// under the old name rules.
///
/// v5: [`RunResult`] gained `drained` — whether the post-measurement drain
/// completed within budget. v4 entries predate the flag and cannot tell a
/// finished run from a truncated one, so they are rejected and resimulated.
///
/// v6: runs became staged (DESIGN.md §11) — codecs warm up at the exact
/// threshold and retarget at the measurement boundary, so the value-cache
/// contents entering the window (and with them the VAXX numbers) differ from
/// the single-loop methodology that produced v5 entries.
///
/// v7: the fault-counter block grew `words_lost` (lossy-link erasures,
/// DESIGN.md §12). A v6 payload's 7-field `faults` line cannot carry the new
/// counter, and a v7 reader must not guess it as zero for runs that may have
/// predated the loss model's bound-check gating change — so v6 entries are
/// rejected and resimulated.
const MAGIC: &str = "# anoc-result v7";

/// The payload version this build writes and accepts (the numeric suffix of
/// [`MAGIC`]); exposed so cache tooling can report version mixes.
pub const RESULT_FORMAT_VERSION: u32 = 7;

/// Extracts the result-format version of a stored payload without decoding
/// it: `Some(3)` for a stale `# anoc-result v3` entry, `None` for payloads
/// that are not results at all. Lets `anoc cache stats` report how much of
/// the cache is usable by this build versus stale.
pub fn payload_version(payload: &str) -> Option<u32> {
    let first = payload.lines().next()?;
    let v = first.strip_prefix("# anoc-result v")?;
    v.parse().ok()
}

fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_f64_hex(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

fn parse_u64s<const N: usize>(line: &str) -> Option<[u64; N]> {
    let mut out = [0u64; N];
    let mut fields = line.split_ascii_whitespace();
    for slot in &mut out {
        *slot = fields.next()?.parse().ok()?;
    }
    fields.next().is_none().then_some(out)
}

/// Encodes a [`RunResult`] as the cache text payload.
pub fn encode_run_result(r: &RunResult) -> String {
    let s = &r.stats;
    let mut out = String::with_capacity(512);
    out.push_str(MAGIC);
    out.push('\n');
    out.push_str(&format!("mechanism {}\n", r.mechanism.name()));
    out.push_str(&format!("nodes {}\n", r.nodes));
    out.push_str(&format!("total_cycles {}\n", r.total_cycles));
    out.push_str(&format!("drained {}\n", r.drained));
    out.push_str(&format!(
        "stats {} {} {} {} {} {} {} {} {} {} {} {} {}\n",
        s.cycles,
        s.packets,
        s.data_packets,
        s.control_packets,
        s.queue_lat_sum,
        s.net_lat_sum,
        s.decode_lat_sum,
        s.flits_injected,
        s.data_flits_injected,
        s.control_flits_injected,
        s.flits_delivered,
        s.baseline_data_flits,
        s.unfinished,
    ));
    let e = &s.encode;
    out.push_str(&format!(
        "encode {} {} {} {} {} {}\n",
        e.words, e.exact_encoded, e.approx_encoded, e.raw, e.bits_in, e.bits_out,
    ));
    out.push_str(&format!(
        "quality {} {} {}\n",
        s.quality.words(),
        f64_hex(s.quality.error_sum()),
        f64_hex(s.quality.max_relative_error()),
    ));
    let fs = &s.faults;
    out.push_str(&format!(
        "faults {} {} {} {} {} {} {} {}\n",
        fs.bit_flips,
        fs.port_stalls,
        fs.credits_dropped,
        fs.credits_duplicated,
        fs.dict_corruptions,
        fs.bound_checked_words,
        fs.bound_violations,
        fs.words_lost,
    ));
    out.push_str(&format!("hist {}", s.latency_histogram.max()));
    for (b, c) in s.latency_histogram.nonzero_buckets() {
        out.push_str(&format!(" {b}:{c}"));
    }
    out.push('\n');
    let a = &r.activity;
    out.push_str(&format!(
        "routers {} {} {} {} {}\n",
        a.routers.buffer_writes,
        a.routers.buffer_reads,
        a.routers.vc_allocs,
        a.routers.crossbar_traversals,
        a.routers.link_traversals,
    ));
    for (tag, c) in [("encoders", &a.encoders), ("decoders", &a.decoders)] {
        out.push_str(&format!(
            "{tag} {} {} {} {} {} {} {}\n",
            c.cam_searches,
            c.tcam_searches,
            c.table_updates,
            c.avcl_ops,
            c.words_encoded,
            c.words_decoded,
            c.notifications,
        ));
    }
    out.push_str(&format!("activity_cycles {}\n", a.cycles));
    out
}

/// Decodes a payload written by [`encode_run_result`]. Any mismatch —
/// version bump, truncation, unknown mechanism — yields `None`, which the
/// campaign layer treats as a cache miss.
pub fn decode_run_result(payload: &str) -> Option<RunResult> {
    let mut lines = payload.lines();
    if lines.next()? != MAGIC {
        return None;
    }
    let mechanism = Mechanism::from_name(lines.next()?.strip_prefix("mechanism ")?)?;
    let nodes: usize = lines.next()?.strip_prefix("nodes ")?.parse().ok()?;
    let total_cycles: u64 = lines.next()?.strip_prefix("total_cycles ")?.parse().ok()?;
    let drained: bool = lines.next()?.strip_prefix("drained ")?.parse().ok()?;
    let st = parse_u64s::<13>(lines.next()?.strip_prefix("stats ")?)?;
    let en = parse_u64s::<6>(lines.next()?.strip_prefix("encode ")?)?;

    let mut q = lines
        .next()?
        .strip_prefix("quality ")?
        .split_ascii_whitespace();
    let q_words: u64 = q.next()?.parse().ok()?;
    let q_sum = parse_f64_hex(q.next()?)?;
    let q_max = parse_f64_hex(q.next()?)?;
    let quality = QualityAccumulator::from_raw(q_words, q_sum, q_max);
    let fs = parse_u64s::<8>(lines.next()?.strip_prefix("faults ")?)?;

    let mut h = lines
        .next()?
        .strip_prefix("hist ")?
        .split_ascii_whitespace();
    let h_max: u64 = h.next()?.parse().ok()?;
    let mut buckets = Vec::new();
    for pair in h {
        let (b, c) = pair.split_once(':')?;
        buckets.push((b.parse().ok()?, c.parse().ok()?));
    }
    let latency_histogram = LatencyHistogram::from_buckets(buckets, h_max)?;

    let rt = parse_u64s::<5>(lines.next()?.strip_prefix("routers ")?)?;
    let ec = parse_u64s::<7>(lines.next()?.strip_prefix("encoders ")?)?;
    let dc = parse_u64s::<7>(lines.next()?.strip_prefix("decoders ")?)?;
    let activity_cycles: u64 = lines
        .next()?
        .strip_prefix("activity_cycles ")?
        .parse()
        .ok()?;
    if lines.next().is_some() {
        return None;
    }

    let codec_activity = |c: [u64; 7]| CodecActivity {
        cam_searches: c[0],
        tcam_searches: c[1],
        table_updates: c[2],
        avcl_ops: c[3],
        words_encoded: c[4],
        words_decoded: c[5],
        notifications: c[6],
    };
    Some(RunResult {
        mechanism,
        stats: NetStats {
            cycles: st[0],
            packets: st[1],
            data_packets: st[2],
            control_packets: st[3],
            queue_lat_sum: st[4],
            net_lat_sum: st[5],
            decode_lat_sum: st[6],
            flits_injected: st[7],
            data_flits_injected: st[8],
            control_flits_injected: st[9],
            flits_delivered: st[10],
            baseline_data_flits: st[11],
            unfinished: st[12],
            encode: EncodeStats {
                words: en[0],
                exact_encoded: en[1],
                approx_encoded: en[2],
                raw: en[3],
                bits_in: en[4],
                bits_out: en[5],
            },
            quality,
            faults: anoc_noc::FaultStats {
                bit_flips: fs[0],
                port_stalls: fs[1],
                credits_dropped: fs[2],
                credits_duplicated: fs[3],
                dict_corruptions: fs[4],
                bound_checked_words: fs[5],
                bound_violations: fs[6],
                words_lost: fs[7],
            },
            latency_histogram,
        },
        activity: ActivityReport {
            routers: RouterActivity {
                buffer_writes: rt[0],
                buffer_reads: rt[1],
                vc_allocs: rt[2],
                crossbar_traversals: rt[3],
                link_traversals: rt[4],
            },
            encoders: codec_activity(ec),
            decoders: codec_activity(dc),
            cycles: activity_cycles,
        },
        nodes,
        total_cycles,
        drained,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::runner::run_benchmark;
    use anoc_traffic::Benchmark;

    fn assert_roundtrip(r: &RunResult) {
        let text = encode_run_result(r);
        let back = decode_run_result(&text).expect("decode");
        assert_eq!(back.mechanism, r.mechanism);
        assert_eq!(back.nodes, r.nodes);
        assert_eq!(back.drained, r.drained);
        // Re-encoding the decoded value must be byte-identical: that is the
        // exactness property the cache relies on.
        assert_eq!(encode_run_result(&back), text);
        // Spot-check the derived metrics, bit for bit.
        assert_eq!(
            back.avg_packet_latency().to_bits(),
            r.avg_packet_latency().to_bits()
        );
        assert_eq!(back.data_quality().to_bits(), r.data_quality().to_bits());
        assert_eq!(back.latency_percentile(99.0), r.latency_percentile(99.0));
        assert_eq!(
            back.stats.normalized_data_flits().to_bits(),
            r.stats.normalized_data_flits().to_bits()
        );
    }

    #[test]
    fn roundtrip_is_bit_exact_for_real_runs() {
        let cfg = SystemConfig::paper().with_sim_cycles(1_500);
        for m in crate::config::Mechanism::ALL {
            let r = run_benchmark(Benchmark::Ssca2, m, &cfg, 11);
            assert_roundtrip(&r);
        }
    }

    #[test]
    fn roundtrip_handles_default_and_custom() {
        let r = RunResult {
            mechanism: Mechanism::Custom("BD-VAXX"),
            stats: NetStats::default(),
            activity: ActivityReport::default(),
            nodes: 0,
            total_cycles: 0,
            drained: false,
        };
        assert_roundtrip(&r);
    }

    #[test]
    fn corrupt_payloads_decode_to_none() {
        let cfg = SystemConfig::paper().with_sim_cycles(1_000);
        let r = run_benchmark(Benchmark::X264, Mechanism::FpVaxx, &cfg, 1);
        let good = encode_run_result(&r);
        assert!(decode_run_result("").is_none());
        assert!(decode_run_result("garbage").is_none());
        assert!(decode_run_result(&good.replace("v7", "v6")).is_none());
        let truncated = &good[..good.rfind("activity_cycles").expect("field present")];
        assert!(decode_run_result(truncated).is_none());
        let unknown = good.replace("mechanism FP-VAXX", "mechanism NO-SUCH");
        assert!(decode_run_result(&unknown).is_none());
    }

    #[test]
    fn stale_versions_are_rejected_not_misparsed() {
        // Older payloads must be refused outright. A v6 entry lacks the
        // `words_lost` fault counter; a v5 entry was produced by the
        // pre-staged methodology, so accepting it would mix two different
        // experiments in one figure; a v4 entry additionally lacks the
        // `drained` line, and v3 predates the LZ-VAXX mechanism namespace.
        let cfg = SystemConfig::paper().with_sim_cycles(1_000);
        let r = run_benchmark(Benchmark::X264, Mechanism::DiVaxx, &cfg, 2);
        let v7 = encode_run_result(&r);
        assert!(v7.starts_with("# anoc-result v7\n"), "{v7}");
        for stale in [3u32, 4, 5, 6] {
            let old = v7.replacen("# anoc-result v7", &format!("# anoc-result v{stale}"), 1);
            assert!(decode_run_result(&old).is_none());
            assert_eq!(payload_version(&old), Some(stale));
        }
        assert_eq!(payload_version(&v7), Some(RESULT_FORMAT_VERSION));
        assert_eq!(payload_version("not a result"), None);
        assert_eq!(payload_version(""), None);
    }
}
