//! Regenerates Figure 17: precise vs approximate bodytrack output frames
//! (written as PGM images) and the output-vector difference.
use anoc_harness::experiments::fig17;

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/fig17".into());
    let r = fig17(42);
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let precise = format!("{out_dir}/bodytrack_precise.pgm");
    let approx = format!("{out_dir}/bodytrack_approx.pgm");
    std::fs::write(&precise, &r.precise_pgm).expect("write precise frame");
    std::fs::write(&approx, &r.approx_pgm).expect("write approximate frame");
    println!("Figure 17: bodytrack precise vs approximate output");
    println!(
        "  output vector difference: {:.2}% (paper: 2.4%)",
        r.vector_difference * 100.0
    );
    println!("  precise frame:     {precise}");
    println!("  approximate frame: {approx}");
}
