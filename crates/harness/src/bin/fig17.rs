//! Thin alias for `anoc run fig17`: regenerates Figure 17, the precise vs
//! approximate bodytrack output frames (written as PGM images) and the
//! output-vector difference. Takes one optional argument, the output
//! directory (default `target/fig17`).

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/fig17".into());
    std::process::exit(anoc_harness::cli::run_args(&[
        "run", "fig17", "--out", &out,
    ]));
}
