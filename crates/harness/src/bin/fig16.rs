//! Regenerates Figure 16: application output accuracy and normalized
//! performance across data error budgets.
use anoc_harness::experiments::{fig16, render_fig16};
use anoc_harness::SystemConfig;

fn main() {
    let cycles = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(15_000);
    let config = SystemConfig::paper().with_sim_cycles(cycles);
    print!("{}", render_fig16(&fig16(&config, 42)));
}
