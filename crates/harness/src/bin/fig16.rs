//! Thin alias for `anoc run fig16`: regenerates Figure 16: accuracy and performance across error budgets.
//! Takes one optional argument, the measured simulation cycles.

fn main() {
    let cycles = std::env::args()
        .nth(1)
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(15_000);
    let cycles = cycles.to_string();
    std::process::exit(anoc_harness::cli::run_args(&[
        "run", "fig16", "--cycles", &cycles,
    ]));
}
