//! Regenerates Figure 13: error-threshold sensitivity (5/10/20%).
use anoc_harness::experiments::{fig13, render_sensitivity};
use anoc_harness::SystemConfig;

fn main() {
    let cycles = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let config = SystemConfig::paper().with_sim_cycles(cycles);
    let rows = fig13(&config, 42);
    print!(
        "{}",
        render_sensitivity(
            "Figure 13: Error Threshold Sensitivity (packet latency)",
            &rows
        )
    );
}
