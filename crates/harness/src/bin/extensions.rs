//! Thin alias for `anoc run extensions`: regenerates the extension study (VAXX across compression families).
//! Takes one optional argument, the measured simulation cycles.

fn main() {
    let cycles = std::env::args()
        .nth(1)
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(20_000);
    let cycles = cycles.to_string();
    std::process::exit(anoc_harness::cli::run_args(&[
        "run",
        "extensions",
        "--cycles",
        &cycles,
    ]));
}
