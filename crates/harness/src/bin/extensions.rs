//! Extension study: the VAXX engine plugged into three compression families
//! (frequent-pattern, base-delta, adaptive) — the paper's plug-and-play
//! claim, demonstrated beyond its own two case studies.
use anoc_harness::experiments::{extension_study, render_extension};
use anoc_harness::SystemConfig;
use anoc_traffic::Benchmark;

fn main() {
    let cycles = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let config = SystemConfig::paper().with_sim_cycles(cycles);
    for b in [Benchmark::Blackscholes, Benchmark::Ssca2, Benchmark::X264] {
        let results = extension_study(b, &config, 42);
        println!("{}", render_extension(b, &results));
    }
}
