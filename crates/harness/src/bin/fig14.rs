//! Regenerates Figure 14: approximable-packet-ratio sensitivity (25/50/75%).
use anoc_harness::experiments::{fig14, render_sensitivity};
use anoc_harness::SystemConfig;

fn main() {
    let cycles = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let config = SystemConfig::paper().with_sim_cycles(cycles);
    let rows = fig14(&config, 42);
    print!(
        "{}",
        render_sensitivity(
            "Figure 14: Approximable Packets Ratio Sensitivity (packet latency)",
            &rows
        )
    );
}
