//! Thin alias for `anoc run fig14`: regenerates Figure 14: approximable-packets-ratio sensitivity.
//! Takes one optional argument, the measured simulation cycles.

fn main() {
    let cycles = std::env::args()
        .nth(1)
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(20_000);
    let cycles = cycles.to_string();
    std::process::exit(anoc_harness::cli::run_args(&[
        "run", "fig14", "--cycles", &cycles,
    ]));
}
