//! Thin alias for `anoc run fig15`: regenerates Figure 15: data quality across mechanisms.
//! Takes one optional argument, the measured simulation cycles.

fn main() {
    let cycles = std::env::args()
        .nth(1)
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(30_000);
    let cycles = cycles.to_string();
    std::process::exit(anoc_harness::cli::run_args(&[
        "run", "fig15", "--cycles", &cycles,
    ]));
}
