//! Regenerates Figure 15: dynamic power normalized to baseline, plus the
//! §5.5 encoder area accounting.
use anoc_harness::experiments::{fig15, render_fig15, BenchmarkMatrix};
use anoc_harness::{AreaModel, SystemConfig};

fn main() {
    let cycles = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000);
    let config = SystemConfig::paper().with_sim_cycles(cycles);
    let matrix = BenchmarkMatrix::run(&config, 42);
    print!("{}", render_fig15(&fig15(&matrix)));
    let area = AreaModel::default();
    println!("\nSection 5.5 encoder area (45 nm):");
    println!(
        "  DI-VAXX encoder: {:.4} mm^2 (paper: 0.0037)",
        area.di_vaxx_encoder_mm2()
    );
    println!(
        "  FP-VAXX encoder: {:.4} mm^2 (paper: 0.0029)",
        area.fp_vaxx_encoder_mm2()
    );
}
