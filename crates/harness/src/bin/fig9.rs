//! Regenerates Figure 9: average packet latency breakdown + data quality.
use anoc_harness::experiments::{fig9, render_fig9, BenchmarkMatrix};
use anoc_harness::SystemConfig;

fn main() {
    let cycles = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000);
    let config = SystemConfig::paper().with_sim_cycles(cycles);
    let matrix = BenchmarkMatrix::run(&config, 42);
    print!("{}", render_fig9(&fig9(&matrix)));
}
