//! Prints Table 1: the simulated system configuration.
use anoc_harness::SystemConfig;

fn main() {
    let config = SystemConfig::paper();
    println!("Table 1: APPROX-NoC Simulation Configuration");
    for (k, v) in config.table1_rows() {
        println!("{k:<34} {v}");
    }
}
