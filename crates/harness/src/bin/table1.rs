//! Thin alias for `anoc run table1`: prints the simulated system
//! configuration (Table 1).

fn main() {
    std::process::exit(anoc_harness::cli::run_args(&["run", "table1"]));
}
