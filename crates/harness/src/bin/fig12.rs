//! Regenerates Figure 12: latency vs injection rate under UR/TR synthetic
//! traffic with blackscholes/streamcluster data.
use anoc_harness::experiments::{fig12, render_fig12};
use anoc_harness::SystemConfig;
use anoc_traffic::{Benchmark, DestPattern};

fn main() {
    let cycles = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let config = SystemConfig::paper().with_sim_cycles(cycles);
    let rates: Vec<f64> = (1..=14).map(|i| i as f64 * 0.05).collect();
    for (bench, label) in [
        (Benchmark::Blackscholes, "blackscholes"),
        (Benchmark::Streamcluster, "streamcluster"),
    ] {
        for (pattern, pname) in [
            (DestPattern::UniformRandom, "UR"),
            (DestPattern::Transpose, "TR"),
        ] {
            let series = fig12(bench, pattern, &rates, &config, 42);
            print!("{}", render_fig12(&format!("{label} {pname}"), &series));
        }
    }
}
