//! Thin alias for `anoc run fig10`: regenerates Figure 10: flit reduction breakdown.
//! Takes one optional argument, the measured simulation cycles.

fn main() {
    let cycles = std::env::args()
        .nth(1)
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(50_000);
    let cycles = cycles.to_string();
    std::process::exit(anoc_harness::cli::run_args(&[
        "run", "fig10", "--cycles", &cycles,
    ]));
}
