//! Regenerates Figure 10: encoded-word fraction and compression ratio.
use anoc_harness::experiments::{fig10, render_fig10, BenchmarkMatrix};
use anoc_harness::SystemConfig;

fn main() {
    let cycles = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000);
    let config = SystemConfig::paper().with_sim_cycles(cycles);
    let matrix = BenchmarkMatrix::run(&config, 42);
    print!("{}", render_fig10(&fig10(&matrix)));
}
