//! The `anoc` command-line interface.
//!
//! One binary drives the whole evaluation:
//!
//! ```sh
//! anoc run fig9                    # one figure, parallel + cached
//! anoc run all --cycles 20000      # every table and figure
//! anoc run ablations --no-cache    # figs 13/14 + extension study, uncached
//! anoc run fig12 --csv             # CSV instead of the text table
//! anoc run fig9 --seed 7 --threads 4
//! anoc cache stats                 # entries / bytes / location
//! anoc cache clear
//! anoc capture --out trace.txt     # persist a benchmark trace
//! anoc replay --out trace.txt      # simulate from a saved trace
//! anoc lint --deny                 # determinism/correctness static analysis
//! ```
//!
//! The historical per-figure commands (`anoc fig9`, `anoc table1`, …) keep
//! working as aliases for `anoc run <target>`, and the per-figure binaries
//! (`fig9` … `fig17`, `table1`, `extensions`) are thin wrappers over this
//! module. Campaigns run on the process-wide [`crate::campaign::ExecContext`]:
//! parallel across cells, answering repeated cells from the on-disk result
//! cache unless `--no-cache` is given.

use anoc_exec::{ResultCache, SnapshotStore};
use anoc_traffic::{Benchmark, DestPattern};

use crate::campaign;
use crate::config::SystemConfig;
use crate::experiments::{self, BenchmarkMatrix};
use crate::power::AreaModel;

const USAGE: &str = "usage: anoc run <TARGET> [OPTIONS]
       anoc cache <stats|clear>
       anoc capture [OPTIONS]
       anoc replay [OPTIONS]
       anoc lint [--json] [--deny] [--baseline FILE]
       anoc <TARGET> [OPTIONS]          (alias for `anoc run <TARGET>`)

targets:
  table1 fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16 fig17 extensions
  faults      fault-injection resilience sweep (latency/quality vs flip rate)
  lossy       lossy-link degradation sweep (quality/violations vs loss rate)
  lz          LZ-VAXX study: threshold x workload vs DI-VAXX/FP-VAXX
  qos         per-flow QoS control loop vs worst-case-safe static threshold
  scale       kernel scaling sweep: 8x8 -> 32x32 cmesh, serial vs sharded
  all         every table and figure in order (excludes scale)
  ablations   the sensitivity studies: fig13, fig14 and the extension study

options:
  --cycles N    measured simulation cycles (default varies per target)
  --seed N      traffic/data RNG seed (default 42)
  --threads N   worker threads (default: ANOC_THREADS or all cores)
  --shards N    worker shards inside each simulation (default 1 = serial;
                results are bit-identical for any value)
  --grids N     scale target only: sweep the N smallest meshes (default 3)
  --no-cache    always simulate; do not read or write the result cache
                (also disables the warm-start snapshot store)
  --checkpoint-every N
                snapshot each in-flight cell every N measured cycles, so a
                killed campaign can restart with --resume (default 0 = off)
  --resume      restart killed cells from their last checkpoint
  --csv         emit CSV instead of a text table
  --json        emit JSON instead of a text table (lz and qos targets)
  --mechs A,B   mechanism columns for the matrix figures (fig9/10/11/15),
                e.g. --mechs Baseline,FP-VAXX,LZ-VAXX (default: the paper's 5)
  --keep-going  complete campaigns past failed cells (exit 3 if any failed)
  --out PATH    output path (fig17 image directory, capture/replay trace)

lint options:
  --json                  machine-readable report (schema in EXPERIMENTS.md)
  --deny                  treat warnings as errors (what CI runs)
  --root PATH             lint this tree instead of the enclosing workspace
  --baseline FILE         grandfather the findings recorded in FILE; fail only
                          on new findings or suppression-count growth
  --write-baseline FILE   regenerate FILE from the current tree and exit
  --phase-deny NAME       add NAME to the D005 serial-edge deny list
                          (repeatable)";

/// All figure/table targets of `anoc run`, in `all` order.
const TARGETS: [&str; 15] = [
    "table1",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "extensions",
    "faults",
    "lossy",
    "qos",
    "lz",
];

/// The sensitivity/ablation subset behind `anoc run ablations`.
const ABLATIONS: [&str; 3] = ["fig13", "fig14", "extensions"];

#[derive(Debug, Clone)]
struct Opts {
    cycles: u64,
    seed: u64,
    threads: Option<usize>,
    shards: usize,
    grids: usize,
    no_cache: bool,
    checkpoint_every: u64,
    resume: bool,
    csv: bool,
    json: bool,
    keep_going: bool,
    out: Option<String>,
    mechs: Option<Vec<crate::config::Mechanism>>,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            cycles: 0,
            seed: 42,
            threads: None,
            shards: 1,
            grids: 3,
            no_cache: false,
            checkpoint_every: 0,
            resume: false,
            csv: false,
            json: false,
            keep_going: false,
            out: None,
            mechs: None,
        }
    }
}

/// Parses a `--mechs` comma list into mechanism columns, accepting both the
/// canonical names (`FP-VAXX`) and their lowercase spellings (`fp-vaxx`).
fn parse_mechs(list: &str) -> Result<Vec<crate::config::Mechanism>, String> {
    let mechs: Vec<_> = list
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            crate::config::Mechanism::from_name(s)
                .or_else(|| crate::config::Mechanism::from_name(&s.to_uppercase()))
                .or_else(|| match s.to_lowercase().as_str() {
                    "baseline" => Some(crate::config::Mechanism::Baseline),
                    _ => None,
                })
                .ok_or_else(|| format!("unknown mechanism `{s}` in --mechs"))
        })
        .collect::<Result<_, _>>()?;
    if mechs.is_empty() {
        return Err("--mechs needs at least one mechanism".into());
    }
    Ok(mechs)
}

#[derive(Debug, Clone)]
enum Command {
    Run { target: String, opts: Opts },
    CacheStats,
    CacheClear,
    Capture { opts: Opts },
    Replay { opts: Opts },
    Lint { args: Vec<String> },
}

/// Entry point for the `anoc` binary: parses `std::env::args`, runs, and
/// returns the process exit code (0 success, 1 runtime error, 2 usage).
pub fn run() -> i32 {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    run_argv(&argv)
}

/// Entry point for the per-figure alias binaries: runs with an explicit
/// argument list and returns the process exit code.
pub fn run_args(args: &[&str]) -> i32 {
    let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    run_argv(&argv)
}

fn run_argv(argv: &[String]) -> i32 {
    match parse(argv) {
        // Lint owns its exit-code contract (1 findings, 2 usage), so it
        // bypasses the Ok/Err mapping below.
        Ok(Command::Lint { args }) => anoc_lint::run_cli(&args),
        Ok(cmd) => match execute(cmd) {
            // Completed-but-degraded campaigns (keep-going mode or a faults
            // sweep with aborted cells) exit 3, distinct from hard errors.
            Ok(()) if campaign::context().failed_cells() > 0 => {
                eprintln!(
                    "warning: {} cell(s) failed; results are partial",
                    campaign::context().failed_cells()
                );
                3
            }
            Ok(()) => 0,
            Err(e) => {
                eprintln!("error: {e}");
                1
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            2
        }
    }
}

fn parse(argv: &[String]) -> Result<Command, String> {
    let mut it = argv.iter().map(String::as_str);
    let first = it.next().ok_or("missing command")?;
    let (kind, target) = match first {
        "run" => {
            let t = it.next().ok_or("`run` needs a target")?;
            ("run", t.to_string())
        }
        "cache" => {
            let action = it.next().ok_or("`cache` needs `stats` or `clear`")?;
            return match (action, it.next()) {
                ("stats", None) => Ok(Command::CacheStats),
                ("clear", None) => Ok(Command::CacheClear),
                (other, None) => Err(format!("unknown cache action `{other}`")),
                _ => Err("`cache` takes exactly one action".into()),
            };
        }
        "capture" => ("capture", String::new()),
        "replay" => ("replay", String::new()),
        // `lint` has its own flag set, parsed by anoc-lint itself.
        "lint" => {
            return Ok(Command::Lint {
                args: it.map(str::to_string).collect(),
            });
        }
        t if TARGETS.contains(&t) || t == "all" || t == "ablations" || t == "scale" => {
            ("run", t.to_string())
        }
        other => return Err(format!("unknown command `{other}`")),
    };
    if kind == "run"
        && !(TARGETS.contains(&target.as_str())
            || target == "all"
            || target == "ablations"
            || target == "scale")
    {
        return Err(format!("unknown target `{target}`"));
    }

    let mut opts = Opts::default();
    while let Some(a) = it.next() {
        let mut num = |flag: &str| -> Result<u64, String> {
            it.next()
                .and_then(|v| v.parse().ok())
                .ok_or(format!("{flag} needs a number"))
        };
        match a {
            "--cycles" => opts.cycles = num("--cycles")?,
            "--seed" => opts.seed = num("--seed")?,
            "--threads" => opts.threads = Some(num("--threads")?.max(1) as usize),
            "--shards" => opts.shards = num("--shards")?.max(1) as usize,
            "--grids" => opts.grids = num("--grids")?.max(1) as usize,
            "--no-cache" => opts.no_cache = true,
            "--checkpoint-every" => opts.checkpoint_every = num("--checkpoint-every")?,
            "--resume" => opts.resume = true,
            "--csv" => opts.csv = true,
            "--json" => opts.json = true,
            "--keep-going" => opts.keep_going = true,
            "--out" => opts.out = Some(it.next().ok_or("--out needs a path")?.to_string()),
            "--mechs" => {
                let list = it.next().ok_or("--mechs needs a comma-separated list")?;
                opts.mechs = Some(parse_mechs(list)?);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(match kind {
        "run" => Command::Run { target, opts },
        "capture" => Command::Capture { opts },
        _ => Command::Replay { opts },
    })
}

/// Installs the process-wide execution context from the CLI options.
///
/// When `--shards` is active every simulation multiplies the process's
/// parallelism by its shard count, so the campaign-level worker budget is
/// divided down with [`anoc_exec::plan_threads`] to keep `--threads` (or the
/// machine's core count) from being oversubscribed.
fn install_context(opts: &Opts) -> Result<(), String> {
    let (cache, snapshots) = if opts.no_cache {
        (None, None)
    } else {
        (
            Some(
                ResultCache::open_default()
                    .map_err(|e| format!("cannot open result cache: {e} (try --no-cache)"))?,
            ),
            Some(
                SnapshotStore::open_default()
                    .map_err(|e| format!("cannot open snapshot store: {e} (try --no-cache)"))?,
            ),
        )
    };
    let threads = if opts.shards > 1 {
        let total = opts.threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        Some(anoc_exec::plan_threads(total, opts.shards).0)
    } else {
        opts.threads
    };
    campaign::configure(threads, cache, snapshots);
    let ctx = campaign::context();
    ctx.set_keep_going(opts.keep_going);
    ctx.set_checkpoint_every(opts.checkpoint_every);
    ctx.set_resume(opts.resume);
    Ok(())
}

/// The configuration for one target: its default cycle budget unless
/// `--cycles` overrode it, with the CLI seed threaded through.
fn config(opts: &Opts, default_cycles: u64) -> SystemConfig {
    let cycles = if opts.cycles == 0 {
        default_cycles
    } else {
        opts.cycles
    };
    SystemConfig::paper()
        .with_sim_cycles(cycles)
        .with_seed(opts.seed)
        .with_shards(opts.shards)
}

fn execute(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Run { target, opts } => {
            install_context(&opts)?;
            let outcome = match target.as_str() {
                "all" => TARGETS.iter().try_for_each(|t| {
                    println!("==== {t} ====");
                    run_target(t, &opts)
                }),
                "ablations" => ABLATIONS.iter().try_for_each(|t| {
                    println!("==== {t} ====");
                    run_target(t, &opts)
                }),
                t => run_target(t, &opts),
            };
            print_sim_summary();
            outcome
        }
        Command::CacheStats => {
            let cache = ResultCache::open_default().map_err(|e| e.to_string())?;
            println!(
                "result cache: {} entries, {} bytes, at {}",
                cache.len(),
                cache.size_bytes(),
                cache.dir().display()
            );
            // Payload-format version mix: stale-versioned entries are dead
            // weight (the current reader rejects them), so surface them here.
            let mut mix: std::collections::BTreeMap<String, usize> =
                std::collections::BTreeMap::new();
            for payload in cache.payloads() {
                let label = match crate::persist::payload_version(&payload) {
                    Some(v) => format!("v{v}"),
                    None => "unversioned".to_string(),
                };
                *mix.entry(label).or_insert(0) += 1;
            }
            let current = format!("v{}", crate::persist::RESULT_FORMAT_VERSION);
            for (version, count) in &mix {
                let note = if *version == current {
                    "current"
                } else {
                    "stale"
                };
                println!("  format {version}: {count} entries ({note})");
            }
            Ok(())
        }
        Command::CacheClear => {
            let cache = ResultCache::open_default().map_err(|e| e.to_string())?;
            let removed = cache.clear().map_err(|e| e.to_string())?;
            println!(
                "cleared {removed} cache entries from {}",
                cache.dir().display()
            );
            let store = SnapshotStore::open_default().map_err(|e| e.to_string())?;
            let snaps = store.clear().map_err(|e| e.to_string())?;
            println!("cleared {snaps} snapshots from {}", store.dir().display());
            Ok(())
        }
        Command::Capture { opts } => capture(&opts),
        Command::Replay { opts } => replay(&opts),
        Command::Lint { .. } => unreachable!("lint is dispatched in run_argv"),
    }
}

/// Prints the simulation-throughput summary for everything this invocation
/// executed. Goes to stderr (like progress lines) so tables and CSV on
/// stdout stay clean. Only jobs that simulated this run enter the Mcyc/s
/// numbers — cache hits simulate nothing, so they are reported on their own
/// line instead of being folded into (and distorting) the throughput.
fn print_sim_summary() {
    let t = campaign::context().totals();
    if t.executed_jobs > 0 {
        eprintln!(
            "simulated {:.2} Mcycles across {} jobs in {:.1}s: {:.2} Mcyc/s",
            t.simulated_cycles() as f64 / 1e6,
            t.executed_jobs,
            t.wall.as_secs_f64(),
            t.cycles_per_second() / 1e6,
        );
    }
    if t.forked_jobs > 0 || t.resumed_jobs > 0 {
        eprintln!(
            "forked {} cell(s) from warmup snapshots, resumed {} from checkpoints: {:.2} Mcycles restored instead of simulated",
            t.forked_jobs,
            t.resumed_jobs,
            t.skipped_cycles as f64 / 1e6,
        );
    }
    if t.cached_jobs > 0 {
        eprintln!(
            "answered {} cell(s) from the result cache (no cycles simulated for them)",
            t.cached_jobs
        );
    }
}

fn run_target(target: &str, opts: &Opts) -> Result<(), String> {
    match target {
        "table1" => {
            println!("Table 1: APPROX-NoC Simulation Configuration");
            for (k, v) in config(opts, 50_000).table1_rows() {
                println!("{k:<34} {v}");
            }
            Ok(())
        }
        "fig9" | "fig10" | "fig11" | "fig15" => matrix_figure(target, opts),
        "fig12" => fig12(opts),
        "fig13" => {
            let cfg = config(opts, 15_000);
            let rows = experiments::fig13(&cfg, cfg.seed);
            if opts.csv {
                print!("{}", experiments::sensitivity_csv(&rows));
            } else {
                print!(
                    "{}",
                    experiments::render_sensitivity(
                        "Figure 13: Error Threshold Sensitivity",
                        &rows
                    )
                );
            }
            Ok(())
        }
        "fig14" => {
            let cfg = config(opts, 15_000);
            let rows = experiments::fig14(&cfg, cfg.seed);
            if opts.csv {
                print!("{}", experiments::sensitivity_csv(&rows));
            } else {
                print!(
                    "{}",
                    experiments::render_sensitivity(
                        "Figure 14: Approximable Packets Ratio Sensitivity",
                        &rows
                    )
                );
            }
            Ok(())
        }
        "fig16" => {
            let cfg = config(opts, 15_000);
            let rows = experiments::fig16(&cfg, cfg.seed);
            if opts.csv {
                print!("{}", experiments::fig16_csv(&rows));
            } else {
                print!("{}", experiments::render_fig16(&rows));
            }
            Ok(())
        }
        "fig17" => fig17(opts),
        "scale" => scale(opts),
        "faults" => {
            let cfg = config(opts, 15_000);
            let rates: [u32; 5] = [0, 100, 1_000, 10_000, 100_000];
            let (points, failures) =
                experiments::faults_sweep(Benchmark::Blackscholes, &rates, &cfg, cfg.seed);
            if opts.csv {
                print!("{}", experiments::faults_csv(&points));
            } else {
                print!(
                    "{}",
                    experiments::render_faults(Benchmark::Blackscholes, &points, &failures)
                );
            }
            Ok(())
        }
        "lossy" => {
            let cfg = config(opts, 15_000);
            let rates: [u32; 5] = [0, 100, 1_000, 10_000, 100_000];
            // Each approximation-threshold percent adds 50 ppm per hop on
            // top of the base rate: heavily approximated traffic rides the
            // cheaper, lossier signaling.
            let (points, failures) =
                experiments::lossy_sweep(Benchmark::Blackscholes, &rates, 50, &cfg, cfg.seed);
            if opts.csv {
                print!("{}", experiments::lossy_csv(&points));
            } else {
                print!(
                    "{}",
                    experiments::render_lossy(Benchmark::Blackscholes, &points, &failures)
                );
            }
            Ok(())
        }
        "qos" => {
            let cfg = config(opts, 15_000);
            let rows = experiments::qos_study(&cfg, cfg.seed, &[5, 10, 20]);
            if opts.json {
                print!("{}", experiments::qos_json(&rows));
            } else if opts.csv {
                print!("{}", experiments::qos_csv(&rows));
            } else {
                print!("{}", experiments::render_qos(&rows));
            }
            Ok(())
        }
        "lz" => {
            let cfg = config(opts, 15_000);
            let rows = experiments::lz_study(&cfg, cfg.seed, &[5, 10, 20], &Benchmark::ALL);
            if opts.json {
                print!("{}", experiments::lz_json(&rows));
            } else if opts.csv {
                print!("{}", experiments::lz_csv(&rows));
            } else {
                print!("{}", experiments::render_lz(&rows));
            }
            Ok(())
        }
        "extensions" => {
            let cfg = config(opts, 20_000);
            for b in [Benchmark::Blackscholes, Benchmark::Ssca2, Benchmark::X264] {
                let results = experiments::extension_study(b, &cfg, cfg.seed);
                println!("{}", experiments::render_extension(b, &results));
            }
            Ok(())
        }
        other => Err(format!("unknown target `{other}`")),
    }
}

fn matrix_figure(target: &str, opts: &Opts) -> Result<(), String> {
    let cfg = config(opts, 50_000);
    let matrix = match &opts.mechs {
        Some(mechs) => BenchmarkMatrix::run_with(&cfg, cfg.seed, mechs),
        None => BenchmarkMatrix::run(&cfg, cfg.seed),
    };
    match (target, opts.csv) {
        ("fig9", false) => print!("{}", experiments::render_fig9(&experiments::fig9(&matrix))),
        ("fig9", true) => print!("{}", experiments::fig9_csv(&experiments::fig9(&matrix))),
        ("fig10", false) => print!(
            "{}",
            experiments::render_fig10(&experiments::fig10(&matrix))
        ),
        ("fig10", true) => print!("{}", experiments::fig10_csv(&experiments::fig10(&matrix))),
        ("fig11", false) => print!(
            "{}",
            experiments::render_fig11(&experiments::fig11(&matrix))
        ),
        ("fig11", true) => print!("{}", experiments::fig11_csv(&experiments::fig11(&matrix))),
        ("fig15", false) => {
            print!(
                "{}",
                experiments::render_fig15(&experiments::fig15(&matrix))
            );
            let area = AreaModel::default();
            println!(
                "\nSection 5.5 area: DI-VAXX {:.4} mm^2, FP-VAXX {:.4} mm^2",
                area.di_vaxx_encoder_mm2(),
                area.fp_vaxx_encoder_mm2()
            );
        }
        ("fig15", true) => print!("{}", experiments::fig15_csv(&experiments::fig15(&matrix))),
        _ => unreachable!("matrix_figure called with {target}"),
    }
    Ok(())
}

fn fig12(opts: &Opts) -> Result<(), String> {
    let cfg = config(opts, 15_000);
    let rates: Vec<f64> = (1..=14).map(|i| i as f64 * 0.05).collect();
    for (bench, label) in [
        (Benchmark::Blackscholes, "blackscholes"),
        (Benchmark::Streamcluster, "streamcluster"),
    ] {
        for (pattern, pname) in [
            (DestPattern::UniformRandom, "UR"),
            (DestPattern::Transpose, "TR"),
        ] {
            let series = experiments::fig12(bench, pattern, &rates, &cfg, cfg.seed);
            let panel = format!("{label} {pname}");
            if opts.csv {
                print!("{}", experiments::fig12_csv(&panel, &series));
            } else {
                print!("{}", experiments::render_fig12(&panel, &series));
            }
        }
    }
    Ok(())
}

fn fig17(opts: &Opts) -> Result<(), String> {
    let cfg = config(opts, 50_000);
    let out = opts.out.clone().unwrap_or_else(|| "target/fig17".into());
    let r = experiments::fig17(cfg.seed);
    std::fs::create_dir_all(&out)
        .map_err(|e| format!("cannot create output directory {out}: {e}"))?;
    let precise = format!("{out}/bodytrack_precise.pgm");
    let approx = format!("{out}/bodytrack_approx.pgm");
    std::fs::write(&precise, &r.precise_pgm).map_err(|e| format!("cannot write {precise}: {e}"))?;
    std::fs::write(&approx, &r.approx_pgm).map_err(|e| format!("cannot write {approx}: {e}"))?;
    println!(
        "Figure 17: vector difference {:.4}% (paper: 2.4%)\n  {precise}\n  {approx}",
        r.vector_difference * 100.0
    );
    Ok(())
}

/// The `scale` target: single-simulation step-throughput across mesh sizes,
/// serial kernel vs sharded kernel. It drives `NocSim::step` directly with
/// the uniform-random workload of the kernel-fingerprint test, so the number
/// measures the cycle kernel rather than a traffic generator. Timing is the
/// measurement, so this never touches the result cache and runs one
/// simulation at a time.
fn scale(opts: &Opts) -> Result<(), String> {
    use anoc_core::data::{CacheBlock, NodeId};
    use anoc_core::rng::Pcg32;
    use anoc_noc::{NocConfig, NocSim, NodeCodec};
    use std::time::Instant;

    let shards = if opts.shards > 1 { opts.shards } else { 4 };
    let cycles = if opts.cycles == 0 { 2_000 } else { opts.cycles };
    let grids: &[(usize, usize)] = &[(8, 8), (16, 16), (32, 32)];
    let grids = &grids[..opts.grids.min(grids.len())];
    println!("Kernel scaling: {cycles} stepped cycles per point, serial vs {shards} shards");
    if opts.csv {
        println!("mesh,nodes,serial_mcycs,sharded_mcycs,speedup");
    }
    for &(w, h) in grids {
        let config = NocConfig::cmesh(w, h, 2);
        let nodes = config.num_nodes();
        let mut rates = [0.0f64; 2];
        for (i, s) in [1, shards].into_iter().enumerate() {
            let codecs = (0..nodes).map(|_| NodeCodec::baseline()).collect();
            let mut sim = NocSim::new(config.clone(), codecs);
            sim.set_shards(s);
            let mut rng = Pcg32::seed_from_u64(opts.seed ^ 0xA90C);
            let start = Instant::now();
            for _ in 0..cycles {
                for node in 0..nodes {
                    let roll = rng.below(100);
                    if roll >= 6 {
                        continue;
                    }
                    let mut d = rng.below(nodes as u32) as usize;
                    if d == node {
                        d = (d + 1) % nodes;
                    }
                    if roll < 4 {
                        sim.enqueue_control(NodeId(node as u16), NodeId(d as u16));
                    } else {
                        let word = rng.next_u32() as i32;
                        sim.enqueue_data(
                            NodeId(node as u16),
                            NodeId(d as u16),
                            CacheBlock::from_i32(&[word; 16]),
                        );
                    }
                }
                sim.step();
                sim.discard_delivered();
            }
            rates[i] = cycles as f64 / start.elapsed().as_secs_f64().max(1e-9) / 1e6;
        }
        if opts.csv {
            println!(
                "{w}x{h},{nodes},{:.4},{:.4},{:.4}",
                rates[0],
                rates[1],
                rates[1] / rates[0]
            );
        } else {
            println!(
                "  {w:>2}x{h:<2} cmesh ({nodes:>4} nodes): serial {:>7.3} Mcyc/s, {shards} shards {:>7.3} Mcyc/s, speedup {:.2}x",
                rates[0],
                rates[1],
                rates[1] / rates[0]
            );
        }
    }
    Ok(())
}

fn capture(opts: &Opts) -> Result<(), String> {
    use anoc_traffic::{BenchmarkTraffic, Trace};
    let cfg = config(opts, 10_000);
    let out = opts
        .out
        .clone()
        .unwrap_or_else(|| "target/trace.txt".into());
    let mut source = BenchmarkTraffic::new(
        Benchmark::Ssca2,
        cfg.noc.num_nodes(),
        cfg.approx_ratio,
        cfg.seed,
    );
    let trace = Trace::capture(&mut source, cfg.warmup_cycles + cfg.sim_cycles);
    trace
        .save(&out)
        .map_err(|e| format!("cannot write trace {out}: {e}"))?;
    println!(
        "captured {} injections over {} cycles into {out}",
        trace.len(),
        cfg.warmup_cycles + cfg.sim_cycles,
    );
    Ok(())
}

fn replay(opts: &Opts) -> Result<(), String> {
    use crate::config::Mechanism;
    use crate::runner::run_with_source;
    use anoc_traffic::Trace;
    let cfg = config(opts, 10_000);
    let out = opts
        .out
        .clone()
        .unwrap_or_else(|| "target/trace.txt".into());
    let trace = Trace::load(&out).map_err(|e| format!("cannot read trace {out}: {e}"))?;
    println!("replaying {} injections from {out}:", trace.len());
    for m in Mechanism::ALL {
        let mut replay = trace.replay();
        let r = run_with_source(&mut replay, m, &cfg);
        println!(
            "  {:<9} latency {:>8.2}  p99 {:>5}  norm_flits {:.3}  quality {:.4}{}",
            m.name(),
            r.avg_packet_latency(),
            r.latency_percentile(99.0),
            r.stats.normalized_data_flits(),
            r.data_quality(),
            if r.drained { "" } else { "  [undrained]" },
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_strs(args: &[&str]) -> Result<Command, String> {
        parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_run_with_options() {
        let cmd = parse_strs(&[
            "run",
            "fig9",
            "--cycles",
            "2000",
            "--seed",
            "7",
            "--threads",
            "3",
            "--no-cache",
            "--csv",
        ])
        .expect("parse");
        match cmd {
            Command::Run { target, opts } => {
                assert_eq!(target, "fig9");
                assert_eq!(opts.cycles, 2000);
                assert_eq!(opts.seed, 7);
                assert_eq!(opts.threads, Some(3));
                assert!(opts.no_cache);
                assert!(opts.csv);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn legacy_figure_commands_alias_run() {
        for t in TARGETS {
            match parse_strs(&[t]).expect("parse") {
                Command::Run { target, .. } => assert_eq!(target, t),
                other => panic!("wrong command {other:?}"),
            }
        }
    }

    #[test]
    fn keep_going_and_faults_target_parse() {
        match parse_strs(&["run", "faults", "--keep-going"]).expect("parse") {
            Command::Run { target, opts } => {
                assert_eq!(target, "faults");
                assert!(opts.keep_going);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(!Opts::default().keep_going);
    }

    #[test]
    fn shards_and_scale_parse() {
        match parse_strs(&["run", "scale", "--shards", "4", "--grids", "1"]).expect("parse") {
            Command::Run { target, opts } => {
                assert_eq!(target, "scale");
                assert_eq!(opts.shards, 4);
                assert_eq!(opts.grids, 1);
            }
            other => panic!("wrong command {other:?}"),
        }
        // `scale` works as a bare alias like every other target, `--shards`
        // threads into any target's config, and 0 clamps to serial.
        match parse_strs(&["scale"]).expect("parse") {
            Command::Run { target, opts } => {
                assert_eq!(target, "scale");
                assert_eq!(opts.shards, 1);
                assert_eq!(opts.grids, 3);
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse_strs(&["run", "fig9", "--shards", "0"]).expect("parse") {
            Command::Run { opts, .. } => {
                assert_eq!(opts.shards, 1);
                assert_eq!(config(&opts, 1_000).shards, 1);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse_strs(&["run", "scale", "--shards"]).is_err());
    }

    #[test]
    fn qos_lossy_targets_and_mechs_flag_parse() {
        use crate::config::Mechanism;
        for t in ["qos", "lossy"] {
            match parse_strs(&["run", t, "--json"]).expect("parse") {
                Command::Run { target, opts } => {
                    assert_eq!(target, t);
                    assert!(opts.json);
                }
                other => panic!("wrong command {other:?}"),
            }
        }
        match parse_strs(&["run", "fig9", "--mechs", "Baseline,fp-vaxx,LZ-VAXX"]).expect("parse") {
            Command::Run { opts, .. } => assert_eq!(
                opts.mechs.as_deref(),
                Some(&[Mechanism::Baseline, Mechanism::FpVaxx, Mechanism::LzVaxx][..])
            ),
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse_strs(&["run", "fig9", "--mechs"]).is_err());
        assert!(parse_strs(&["run", "fig9", "--mechs", "warp-drive"]).is_err());
        assert!(parse_strs(&["run", "fig9", "--mechs", ","]).is_err());
    }

    #[test]
    fn checkpoint_and_resume_flags_parse() {
        match parse_strs(&["run", "fig13", "--checkpoint-every", "5000", "--resume"])
            .expect("parse")
        {
            Command::Run { target, opts } => {
                assert_eq!(target, "fig13");
                assert_eq!(opts.checkpoint_every, 5000);
                assert!(opts.resume);
            }
            other => panic!("wrong command {other:?}"),
        }
        let d = Opts::default();
        assert_eq!(d.checkpoint_every, 0);
        assert!(!d.resume);
        assert!(parse_strs(&["run", "fig13", "--checkpoint-every"]).is_err());
    }

    #[test]
    fn cache_subcommands_parse() {
        assert!(matches!(
            parse_strs(&["cache", "stats"]),
            Ok(Command::CacheStats)
        ));
        assert!(matches!(
            parse_strs(&["cache", "clear"]),
            Ok(Command::CacheClear)
        ));
        assert!(parse_strs(&["cache"]).is_err());
        assert!(parse_strs(&["cache", "nuke"]).is_err());
    }

    #[test]
    fn lint_subcommand_parses_with_passthrough_flags() {
        match parse_strs(&["lint"]).expect("parse") {
            Command::Lint { args } => assert!(args.is_empty()),
            other => panic!("wrong command {other:?}"),
        }
        match parse_strs(&["lint", "--json", "--deny"]).expect("parse") {
            Command::Lint { args } => assert_eq!(args, vec!["--json", "--deny"]),
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn lint_rejects_unknown_flags_with_usage_exit_code() {
        assert_eq!(run_args(&["lint", "--frobnicate"]), 2);
    }

    #[test]
    fn bad_input_is_a_usage_error() {
        assert!(parse_strs(&[]).is_err());
        assert!(parse_strs(&["run"]).is_err());
        assert!(parse_strs(&["run", "fig99"]).is_err());
        assert!(parse_strs(&["fig9", "--cycles"]).is_err());
        assert!(parse_strs(&["fig9", "--frobnicate"]).is_err());
    }

    #[test]
    fn run_argv_reports_usage_exit_code() {
        assert_eq!(run_args(&["definitely-not-a-command"]), 2);
    }

    #[test]
    fn seed_and_cycles_thread_into_config() {
        let opts = Opts {
            cycles: 1234,
            seed: 9,
            ..Opts::default()
        };
        let cfg = config(&opts, 50_000);
        assert_eq!(cfg.sim_cycles, 1234);
        assert_eq!(cfg.seed, 9);
        let default_cfg = config(&Opts::default(), 15_000);
        assert_eq!(default_cfg.sim_cycles, 15_000);
        assert_eq!(default_cfg.seed, 42);
    }
}
