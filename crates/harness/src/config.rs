//! Experiment configuration: Table 1 plus the evaluation knobs of §5.1.

use anoc_compression::di::{DiConfig, DiDecoder, DiEncoder};
use anoc_compression::fp::{FpDecoder, FpEncoder};
use anoc_compression::lz::{LzConfig, LzDecoder, LzEncoder};
use anoc_core::avcl::Avcl;
use anoc_core::control::QosSpec;
use anoc_core::threshold::ErrorThreshold;
use anoc_noc::{FaultPlan, LossPlan, NocConfig, NodeCodec};

/// The five mechanisms compared throughout the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mechanism {
    /// No compression.
    Baseline,
    /// Dynamic dictionary compression (Jin et al.).
    DiComp,
    /// Dictionary compression + VAXX approximation.
    DiVaxx,
    /// Static frequent-pattern compression (Das et al.).
    FpComp,
    /// Frequent-pattern compression + VAXX approximation.
    FpVaxx,
    /// Streaming approximate-LZ compression + VAXX approximation: cross-word
    /// back-references within a cache block, confirmed against AVCL
    /// don't-care patterns. Not part of the paper's five-way comparison
    /// ([`Mechanism::ALL`]); driven by the `anoc run lz` study.
    LzVaxx,
    /// A custom mechanism driven through [`crate::runner::run_custom`]
    /// (extension studies: BD-COMP/BD-VAXX, adaptive, windowed FP-VAXX).
    Custom(&'static str),
}

impl Mechanism {
    /// All mechanisms in the paper's plotting order.
    pub const ALL: [Mechanism; 5] = [
        Mechanism::Baseline,
        Mechanism::DiComp,
        Mechanism::DiVaxx,
        Mechanism::FpComp,
        Mechanism::FpVaxx,
    ];

    /// Display name as used in the figures.
    pub fn name(&self) -> &'static str {
        match self {
            Mechanism::Baseline => "Baseline",
            Mechanism::DiComp => "DI-COMP",
            Mechanism::DiVaxx => "DI-VAXX",
            Mechanism::FpComp => "FP-COMP",
            Mechanism::FpVaxx => "FP-VAXX",
            Mechanism::LzVaxx => "LZ-VAXX",
            Mechanism::Custom(name) => name,
        }
    }

    /// The inverse of [`name`](Self::name) over every mechanism the harness
    /// knows, including the extension-study customs — the hook the result
    /// cache uses to reconstruct a mechanism from its stored name.
    pub fn from_name(name: &str) -> Option<Mechanism> {
        Some(match name {
            "Baseline" => Mechanism::Baseline,
            "DI-COMP" => Mechanism::DiComp,
            "DI-VAXX" => Mechanism::DiVaxx,
            "FP-COMP" => Mechanism::FpComp,
            "FP-VAXX" => Mechanism::FpVaxx,
            "LZ-VAXX" => Mechanism::LzVaxx,
            "BD-COMP" => Mechanism::Custom("BD-COMP"),
            "BD-VAXX" => Mechanism::Custom("BD-VAXX"),
            "FP-adaptive" => Mechanism::Custom("FP-adaptive"),
            "FP-VAXX-win" => Mechanism::Custom("FP-VAXX-win"),
            _ => return None,
        })
    }

    /// Whether this mechanism performs value approximation.
    pub fn is_vaxx(&self) -> bool {
        matches!(
            self,
            Mechanism::DiVaxx | Mechanism::FpVaxx | Mechanism::LzVaxx
        )
    }

    /// Whether this mechanism uses the dynamic dictionary (the shared
    /// encoder/decoder PMT with its install/invalidate notification
    /// protocol). LZ-VAXX's dictionary is intra-block and stateless, so it
    /// does not count.
    pub fn is_dictionary(&self) -> bool {
        matches!(self, Mechanism::DiComp | Mechanism::DiVaxx)
    }

    /// Builds the per-node codec pairs for a network of `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics for [`Mechanism::Custom`]: custom mechanisms supply their own
    /// codecs through [`crate::runner::run_custom`].
    pub fn codecs(&self, nodes: usize, threshold: ErrorThreshold) -> Vec<NodeCodec> {
        (0..nodes)
            .map(|_| match self {
                Mechanism::Custom(name) => {
                    panic!("custom mechanism {name} must use run_custom")
                }
                Mechanism::Baseline => NodeCodec::baseline(),
                Mechanism::FpComp => {
                    NodeCodec::new(Box::new(FpEncoder::fp_comp()), Box::new(FpDecoder::new()))
                }
                Mechanism::FpVaxx => NodeCodec::new(
                    Box::new(FpEncoder::fp_vaxx(Avcl::new(threshold))),
                    Box::new(FpDecoder::new()),
                ),
                Mechanism::DiComp => {
                    let cfg = DiConfig::for_nodes(nodes);
                    NodeCodec::new(
                        Box::new(DiEncoder::di_comp(cfg)),
                        Box::new(DiDecoder::new(cfg)),
                    )
                }
                Mechanism::DiVaxx => {
                    let cfg = DiConfig::for_nodes(nodes);
                    NodeCodec::new(
                        Box::new(DiEncoder::di_vaxx(cfg, Avcl::new(threshold))),
                        Box::new(DiDecoder::new(cfg)),
                    )
                }
                Mechanism::LzVaxx => NodeCodec::new(
                    Box::new(LzEncoder::lz_vaxx(
                        LzConfig::default(),
                        Avcl::new(threshold),
                    )),
                    Box::new(LzDecoder::new()),
                ),
            })
            .collect()
    }
}

impl std::fmt::Display for Mechanism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Full experiment configuration (Table 1 defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// The NoC parameters.
    pub noc: NocConfig,
    /// Error threshold percentage (paper default: 10; 0 = exact).
    pub threshold_percent: u32,
    /// Fraction of data packets annotated approximable (paper default 0.75).
    pub approx_ratio: f64,
    /// Warmup cycles before measurement starts.
    pub warmup_cycles: u64,
    /// Measured simulation cycles.
    pub sim_cycles: u64,
    /// Additional cycles allowed for draining in-flight packets.
    pub drain_cycles: u64,
    /// Traffic/data RNG seed used when an experiment does not override it.
    pub seed: u64,
    /// Deterministic fault-injection plan (inert by default).
    pub faults: FaultPlan,
    /// Deterministic lossy-link plan (inert by default).
    pub loss: LossPlan,
    /// Per-flow QoS control-loop spec (off by default). When active, the
    /// measurement window runs under runtime-controlled per-flow thresholds
    /// instead of the static `threshold_percent`.
    pub qos: QosSpec,
    /// Watchdog no-forward-progress horizon in cycles (0 disables).
    pub watchdog_horizon: u64,
    /// Worker shards for the parallel cycle kernel (1 = serial). Sharded
    /// execution is bit-identical to serial (DESIGN.md §10), so this knob is
    /// deliberately excluded from the result-cache `config_key`.
    pub shards: usize,
}

impl SystemConfig {
    /// The paper's default operating point.
    pub fn paper() -> Self {
        SystemConfig {
            noc: NocConfig::paper_4x4_cmesh(),
            threshold_percent: 10,
            approx_ratio: 0.75,
            warmup_cycles: 5_000,
            sim_cycles: 50_000,
            drain_cycles: 50_000,
            seed: 42,
            faults: FaultPlan::none(),
            loss: LossPlan::none(),
            qos: QosSpec::off(),
            watchdog_horizon: 20_000,
            shards: 1,
        }
    }

    /// The §5.4 full-system configuration: a 64-core CMP on an 8×8 mesh.
    pub fn full_system() -> Self {
        SystemConfig {
            noc: NocConfig::mesh_8x8(),
            ..SystemConfig::paper()
        }
    }

    /// Overrides the measured cycle count (warmup scales to 10%).
    #[must_use]
    pub fn with_sim_cycles(mut self, cycles: u64) -> Self {
        self.sim_cycles = cycles;
        self.warmup_cycles = (cycles / 10).max(500);
        self.drain_cycles = cycles;
        self
    }

    /// Overrides the error threshold percentage (0 = exact matching only).
    #[must_use]
    pub fn with_threshold(mut self, percent: u32) -> Self {
        self.threshold_percent = percent;
        self
    }

    /// Overrides the approximable-packet ratio.
    #[must_use]
    pub fn with_approx_ratio(mut self, ratio: f64) -> Self {
        self.approx_ratio = ratio;
        self
    }

    /// Overrides the default RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Installs a fault-injection plan (see [`FaultPlan`]).
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Installs a lossy-link plan (see [`LossPlan`]).
    #[must_use]
    pub fn with_loss(mut self, loss: LossPlan) -> Self {
        self.loss = loss;
        self
    }

    /// Arms the per-flow QoS control loop (see [`QosSpec`]).
    #[must_use]
    pub fn with_qos(mut self, qos: QosSpec) -> Self {
        self.qos = qos;
        self
    }

    /// Overrides the watchdog no-forward-progress horizon (0 disables).
    #[must_use]
    pub fn with_watchdog(mut self, horizon: u64) -> Self {
        self.watchdog_horizon = horizon;
        self
    }

    /// Overrides the shard count of the parallel cycle kernel (1 = serial).
    /// Results are bit-identical for any value, so this never invalidates
    /// cached results.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// The error threshold object.
    pub fn threshold(&self) -> ErrorThreshold {
        if self.threshold_percent == 0 {
            ErrorThreshold::exact()
        } else {
            ErrorThreshold::from_percent(self.threshold_percent).expect("validated percentage")
        }
    }

    /// The threshold the end-to-end bound checker arms at: the static
    /// threshold normally, the QoS ceiling when the per-flow control loop
    /// owns the encoder thresholds (no flow can ever exceed its controller's
    /// `max_percent`, so a delivered word outside it still means a codec
    /// bug, not a control decision).
    pub fn bound_threshold(&self) -> ErrorThreshold {
        if self.qos.is_active() && self.qos.max_percent > 0 {
            ErrorThreshold::from_percent(self.qos.max_percent).expect("validated percentage")
        } else {
            self.threshold()
        }
    }

    /// Renders Table 1 as printable rows.
    pub fn table1_rows(&self) -> Vec<(String, String)> {
        vec![
            (
                "System parameters".into(),
                "32 OoO cores @ 2 GHz, 32KB L1I$/64KB L1D$ 2-way, 2MB L2$, 16 dirs, MOESI".into(),
            ),
            (
                "NoC topology".into(),
                format!(
                    "{}x{} 2D concentrated mesh ({} nodes)",
                    self.noc.width,
                    self.noc.height,
                    self.noc.num_nodes()
                ),
            ),
            (
                "Router".into(),
                format!(
                    "2 GHz, three-stage, {} VCs x {}-flit buffers, {}-bit flits, wormhole, XY",
                    self.noc.vcs, self.noc.vc_buffer, self.noc.flit_bits
                ),
            ),
            (
                "Error threshold".into(),
                format!(
                    "5%, 10% (default), 20% — current: {}%",
                    self.threshold_percent
                ),
            ),
            (
                "Approximable data packet ratio".into(),
                format!(
                    "25%, 50%, 75% (default) — current: {:.0}%",
                    self.approx_ratio * 100.0
                ),
            ),
            ("Dictionary-based mechanisms".into(), "8-entry PMT".into()),
        ]
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mechanisms_build_matching_codecs() {
        let t = ErrorThreshold::default();
        for m in Mechanism::ALL {
            let codecs = m.codecs(4, t);
            assert_eq!(codecs.len(), 4);
            let expected = match m {
                Mechanism::Baseline => "Baseline",
                Mechanism::DiComp => "DI-COMP",
                Mechanism::DiVaxx => "DI-VAXX",
                Mechanism::FpComp => "FP-COMP",
                Mechanism::FpVaxx => "FP-VAXX",
                Mechanism::LzVaxx => "LZ-VAXX",
                Mechanism::Custom(name) => name,
            };
            assert_eq!(codecs[0].encoder.name(), expected);
            assert_eq!(m.to_string(), expected);
        }
    }

    #[test]
    fn lz_vaxx_is_first_class_but_outside_the_paper_comparison() {
        assert!(!Mechanism::ALL.contains(&Mechanism::LzVaxx));
        assert_eq!(Mechanism::from_name("LZ-VAXX"), Some(Mechanism::LzVaxx));
        let codecs = Mechanism::LzVaxx.codecs(4, ErrorThreshold::default());
        assert_eq!(codecs.len(), 4);
        assert_eq!(codecs[0].encoder.name(), "LZ-VAXX");
    }

    #[test]
    fn vaxx_and_dictionary_classification() {
        assert!(Mechanism::DiVaxx.is_vaxx() && Mechanism::FpVaxx.is_vaxx());
        assert!(Mechanism::LzVaxx.is_vaxx());
        assert!(!Mechanism::DiComp.is_vaxx() && !Mechanism::Baseline.is_vaxx());
        assert!(Mechanism::DiComp.is_dictionary() && Mechanism::DiVaxx.is_dictionary());
        assert!(!Mechanism::FpComp.is_dictionary());
        assert!(!Mechanism::LzVaxx.is_dictionary());
    }

    #[test]
    fn full_system_preset_is_8x8() {
        let c = SystemConfig::full_system();
        assert_eq!(c.noc.num_nodes(), 64);
        assert_eq!(c.noc.concentration, 1);
    }

    #[test]
    fn config_builders() {
        let c = SystemConfig::paper()
            .with_sim_cycles(10_000)
            .with_threshold(20)
            .with_approx_ratio(0.5);
        assert_eq!(c.sim_cycles, 10_000);
        assert_eq!(c.warmup_cycles, 1_000);
        assert_eq!(c.threshold().percent(), 20);
        assert_eq!(c.approx_ratio, 0.5);
        let exact = SystemConfig::paper().with_threshold(0);
        assert!(exact.threshold().is_exact());
    }

    #[test]
    fn table1_mentions_the_key_parameters() {
        let rows = SystemConfig::paper().table1_rows();
        let all: String = rows.iter().map(|(k, v)| format!("{k}: {v}\n")).collect();
        for needle in ["4x4", "three-stage", "8-entry PMT", "75%", "10%"] {
            assert!(all.contains(needle), "Table 1 missing {needle}: {all}");
        }
    }
}
