//! Dynamic power and area models (Figure 15 and §5.5).
//!
//! The paper evaluates network power with CACTI/Verilog at 45 nm; here the
//! *dynamic* energy is an event-count model — every microarchitectural event
//! the simulator counts carries a per-event energy, so relative dynamic power
//! across mechanisms (what Figure 15 plots) falls out of the activity
//! reports. Static power is uniform across mechanisms ("the static power
//! overhead of all the APPROX-NoC mechanisms is minimal", §5.5) and omitted
//! from the normalized comparison. Area constants are fitted to the paper's
//! reported encoder totals (DI-VAXX 0.0037 mm², FP-VAXX 0.0029 mm²).

use anoc_compression::cam::CamSpec;
use anoc_noc::ActivityReport;

/// Per-event dynamic energies, in picojoules (45 nm-class constants).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Writing one flit into a VC buffer.
    pub buffer_write_pj: f64,
    /// Reading one flit out of a VC buffer.
    pub buffer_read_pj: f64,
    /// One output-VC allocation.
    pub vc_alloc_pj: f64,
    /// One crossbar traversal.
    pub crossbar_pj: f64,
    /// One router-to-router link traversal.
    pub link_pj: f64,
    /// One AVCL/APCL activation.
    pub avcl_pj: f64,
    /// One word pushed through encode/decode datapath logic.
    pub codec_word_pj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            buffer_write_pj: 0.60,
            buffer_read_pj: 0.40,
            vc_alloc_pj: 0.12,
            crossbar_pj: 0.70,
            link_pj: 1.00,
            avcl_pj: 0.05,
            codec_word_pj: 0.03,
        }
    }
}

impl EnergyModel {
    /// Total dynamic energy of a run, in picojoules.
    pub fn dynamic_energy_pj(&self, report: &ActivityReport) -> f64 {
        let r = &report.routers;
        let cam = CamSpec::pmt_cam();
        let tcam = CamSpec::pmt_tcam();
        let router = r.buffer_writes as f64 * self.buffer_write_pj
            + r.buffer_reads as f64 * self.buffer_read_pj
            + r.vc_allocs as f64 * self.vc_alloc_pj
            + r.crossbar_traversals as f64 * self.crossbar_pj
            + r.link_traversals as f64 * self.link_pj;
        let enc = &report.encoders;
        let dec = &report.decoders;
        let codec = enc.cam_searches as f64 * cam.search_energy_pj()
            + enc.tcam_searches as f64 * tcam.search_energy_pj()
            + enc.table_updates as f64 * tcam.update_energy_pj()
            + (enc.avcl_ops + dec.avcl_ops) as f64 * self.avcl_pj
            + (enc.words_encoded + dec.words_decoded) as f64 * self.codec_word_pj
            + dec.cam_searches as f64 * cam.search_energy_pj()
            + dec.notifications as f64 * cam.update_energy_pj();
        router + codec
    }

    /// Average dynamic power in pJ/cycle (proportional to watts at fixed
    /// frequency).
    pub fn dynamic_power(&self, report: &ActivityReport) -> f64 {
        if report.cycles == 0 {
            0.0
        } else {
            self.dynamic_energy_pj(report) / report.cycles as f64
        }
    }
}

/// Encoder area accounting (§5.5, 45 nm).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// Area of one APCL/AVCL unit in mm².
    pub apcl_unit_mm2: f64,
    /// Per-entry index/valid-bit bookkeeping SRAM in mm².
    pub index_vector_mm2: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel {
            apcl_unit_mm2: 0.00024,
            index_vector_mm2: 0.00098,
        }
    }
}

impl AreaModel {
    /// FP-VAXX encoder area per NI: the PMT CAM plus eight parallel AVCL
    /// units (§4.3). The paper reports 0.0029 mm².
    pub fn fp_vaxx_encoder_mm2(&self) -> f64 {
        CamSpec::pmt_cam().area_mm2() + 8.0 * self.apcl_unit_mm2
    }

    /// DI-VAXX encoder area per NI: the ternary PMT, the original-pattern
    /// storage, one install-time APCL and the per-destination index vectors.
    /// The paper reports 0.0037 mm².
    pub fn di_vaxx_encoder_mm2(&self) -> f64 {
        CamSpec::pmt_tcam().area_mm2()
            + CamSpec::pmt_cam().area_mm2()
            + self.apcl_unit_mm2
            + self.index_vector_mm2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anoc_core::codec::CodecActivity;
    use anoc_noc::ActivityReport;

    fn report(flits: u64, words: u64) -> ActivityReport {
        let mut r = ActivityReport {
            cycles: 1000,
            ..Default::default()
        };
        r.routers.buffer_writes = flits;
        r.routers.buffer_reads = flits;
        r.routers.crossbar_traversals = flits;
        r.routers.link_traversals = flits;
        r.encoders = CodecActivity {
            cam_searches: words,
            words_encoded: words,
            ..Default::default()
        };
        r
    }

    #[test]
    fn fewer_flits_means_less_power() {
        let m = EnergyModel::default();
        let heavy = report(10_000, 0);
        let light = report(6_000, 0);
        assert!(m.dynamic_power(&heavy) > m.dynamic_power(&light));
    }

    #[test]
    fn codec_overhead_is_small_relative_to_router_energy() {
        let m = EnergyModel::default();
        let no_codec = report(10_000, 0);
        let with_codec = report(10_000, 5_000);
        let overhead = m.dynamic_power(&with_codec) / m.dynamic_power(&no_codec) - 1.0;
        assert!(overhead > 0.0);
        assert!(
            overhead < 0.25,
            "codec energy should not dominate: {overhead}"
        );
    }

    #[test]
    fn zero_cycles_guarded() {
        let m = EnergyModel::default();
        let r = ActivityReport::default();
        assert_eq!(m.dynamic_power(&r), 0.0);
    }

    #[test]
    fn areas_match_the_paper_within_ten_percent() {
        let a = AreaModel::default();
        let fp = a.fp_vaxx_encoder_mm2();
        let di = a.di_vaxx_encoder_mm2();
        assert!((fp - 0.0029).abs() / 0.0029 < 0.10, "FP-VAXX {fp}");
        assert!((di - 0.0037).abs() / 0.0037 < 0.10, "DI-VAXX {di}");
        assert!(di > fp, "DI-VAXX is the bigger encoder");
    }
}
