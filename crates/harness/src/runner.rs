//! The generic experiment driver: traffic source → NoC → statistics.

use anoc_noc::{ActivityReport, NetStats, NocSim, SimError};
use anoc_traffic::{Benchmark, BenchmarkTraffic, Injection, TrafficSource};

use crate::config::{Mechanism, SystemConfig};

/// The result of one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The mechanism simulated.
    pub mechanism: Mechanism,
    /// Network statistics over the measurement window.
    pub stats: NetStats,
    /// Hardware activity for the power model.
    pub activity: ActivityReport,
    /// Number of nodes simulated.
    pub nodes: usize,
    /// Total simulated cycles (warmup + measurement + drain). Divided by
    /// the host wall time this gives the simulator's cycles-per-second
    /// throughput, which the campaign layer reports per job.
    pub total_cycles: u64,
    /// Whether the post-measurement drain finished within
    /// `drain_cycles` — `false` means packets were still in flight when the
    /// budget ran out and the delivery statistics are a lower bound, not
    /// final (`stats.unfinished` counts the stragglers).
    pub drained: bool,
}

impl RunResult {
    /// Average end-to-end packet latency in cycles.
    pub fn avg_packet_latency(&self) -> f64 {
        self.stats.avg_packet_latency()
    }

    /// Delivered throughput in flits/node/cycle.
    pub fn throughput(&self) -> f64 {
        self.stats.throughput(self.nodes)
    }

    /// Data value quality (1 − mean relative word error).
    pub fn data_quality(&self) -> f64 {
        self.stats.quality.quality()
    }

    /// Tail latency: the given percentile of end-to-end packet latency.
    pub fn latency_percentile(&self, p: f64) -> u64 {
        self.stats.latency_histogram.percentile(p)
    }

    /// The placeholder substituted for a failed cell when a keep-going
    /// campaign completes despite per-cell errors: mechanism `"FAILED"`,
    /// every statistic zero. Never cached.
    pub fn failed_sentinel() -> Self {
        RunResult {
            mechanism: Mechanism::Custom("FAILED"),
            stats: NetStats::default(),
            activity: ActivityReport::default(),
            nodes: 0,
            total_cycles: 0,
            drained: false,
        }
    }

    /// Whether this result is the keep-going failure placeholder.
    pub fn is_failed_sentinel(&self) -> bool {
        self.mechanism == Mechanism::Custom("FAILED") && self.total_cycles == 0
    }
}

/// Runs `mechanism` under the traffic produced by `source` for the
/// configured warmup + measurement window, then drains.
///
/// # Panics
///
/// Panics if the configured watchdog or bound checker aborts the
/// simulation; campaigns that must survive that use
/// [`try_run_with_source`].
pub fn run_with_source(
    source: &mut dyn TrafficSource,
    mechanism: Mechanism,
    config: &SystemConfig,
) -> RunResult {
    match try_run_with_source(source, mechanism, config) {
        Ok(r) => r,
        Err(e) => panic!("simulation failed: {e}"),
    }
}

/// Fallible [`run_with_source`]: a watchdog deadlock abort or a fatal
/// bound-checker violation comes back as `Err` instead of panicking.
pub fn try_run_with_source(
    source: &mut dyn TrafficSource,
    mechanism: Mechanism,
    config: &SystemConfig,
) -> Result<RunResult, SimError> {
    let codecs = mechanism.codecs(config.noc.num_nodes(), config.threshold());
    try_run_custom(source, mechanism, config, codecs)
}

/// Runs with explicitly supplied codec pairs — the entry point for
/// extension mechanisms (BD-COMP/BD-VAXX, adaptive or windowed encoders)
/// that [`Mechanism`] does not enumerate.
///
/// # Panics
///
/// Panics if `source` / `codecs` disagree with the configuration's node
/// count, or if the watchdog/bound checker aborts the run.
pub fn run_custom(
    source: &mut dyn TrafficSource,
    mechanism: Mechanism,
    config: &SystemConfig,
    codecs: Vec<anoc_noc::NodeCodec>,
) -> RunResult {
    match try_run_custom(source, mechanism, config, codecs) {
        Ok(r) => r,
        Err(e) => panic!("simulation failed: {e}"),
    }
}

/// Fallible [`run_custom`], the core driver every other entry point wraps.
///
/// Installs the configuration's [`anoc_noc::FaultPlan`] and watchdog
/// horizon on the simulator. The end-to-end bound checker arms for the
/// enumerated mechanisms, whose per-word guarantee is exactly
/// `config.threshold()`; custom mechanisms (adaptive thresholds, windowed
/// budgets) manage their own per-word allowances and are exempt.
///
/// # Panics
///
/// Panics if `source` / `codecs` disagree with the configuration's node
/// count.
pub fn try_run_custom(
    source: &mut dyn TrafficSource,
    mechanism: Mechanism,
    config: &SystemConfig,
    codecs: Vec<anoc_noc::NodeCodec>,
) -> Result<RunResult, SimError> {
    let nodes = config.noc.num_nodes();
    assert_eq!(
        source.num_nodes(),
        nodes,
        "traffic source and NoC disagree on node count"
    );
    let mut sim = NocSim::new(config.noc.clone(), codecs);
    sim.set_shards(config.shards);
    sim.set_fault_plan(config.faults);
    sim.set_watchdog(config.watchdog_horizon);
    if !matches!(mechanism, Mechanism::Custom(_)) {
        sim.set_bound_check(config.threshold());
    }
    let mut buf: Vec<Injection> = Vec::new();
    let total = config.warmup_cycles + config.sim_cycles;
    for cycle in 0..total {
        if cycle == config.warmup_cycles {
            sim.begin_measurement();
        }
        buf.clear();
        source.tick(cycle, &mut buf);
        for inj in buf.drain(..) {
            match inj.payload {
                Some(block) => {
                    sim.enqueue_data(inj.src, inj.dest, block);
                }
                None => {
                    sim.enqueue_control(inj.src, inj.dest);
                }
            }
        }
        sim.step();
        if let Some(e) = sim.take_fatal_error() {
            return Err(e);
        }
        sim.discard_delivered(); // keep the delivery buffer from growing
    }
    // Stop offering traffic; let in-flight measured packets finish.
    sim.end_measurement();
    let drained = sim.try_drain(config.drain_cycles)?;
    sim.discard_delivered();
    sim.record_unfinished();
    let activity = sim.activity_report();
    let stats = sim.stats().clone();
    Ok(RunResult {
        mechanism,
        stats,
        activity,
        nodes,
        total_cycles: sim.cycle(),
        drained,
    })
}

/// Summary statistics over repeated runs with different seeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeedSummary {
    /// Number of runs.
    pub runs: usize,
    /// Mean of the metric.
    pub mean: f64,
    /// Sample standard deviation (0 for a single run).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl SeedSummary {
    /// Summarises a set of observations.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarise zero runs");
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = if values.len() < 2 {
            0.0
        } else {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0)
        };
        SeedSummary {
            runs: values.len(),
            mean,
            std_dev: var.sqrt(),
            min: values.iter().cloned().fold(f64::INFINITY, f64::min),
            max: values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// Runs `mechanism` under `benchmark`-shaped traffic once per seed and
/// summarises the average packet latency — the multi-seed rigour the paper's
/// single-trace methodology lacks.
pub fn run_benchmark_seeds(
    benchmark: Benchmark,
    mechanism: Mechanism,
    config: &SystemConfig,
    seeds: &[u64],
) -> SeedSummary {
    let latencies: Vec<f64> = seeds
        .iter()
        .map(|s| run_benchmark(benchmark, mechanism, config, *s).avg_packet_latency())
        .collect();
    SeedSummary::of(&latencies)
}

/// Runs `mechanism` under `benchmark`-shaped traffic.
pub fn run_benchmark(
    benchmark: Benchmark,
    mechanism: Mechanism,
    config: &SystemConfig,
    seed: u64,
) -> RunResult {
    let mut source =
        BenchmarkTraffic::new(benchmark, config.noc.num_nodes(), config.approx_ratio, seed);
    run_with_source(&mut source, mechanism, config)
}

/// Fallible [`run_benchmark`]: a watchdog or bound-checker abort comes back
/// as `Err` instead of panicking — the form fault-injection campaigns use.
pub fn try_run_benchmark(
    benchmark: Benchmark,
    mechanism: Mechanism,
    config: &SystemConfig,
    seed: u64,
) -> Result<RunResult, SimError> {
    let mut source =
        BenchmarkTraffic::new(benchmark, config.noc.num_nodes(), config.approx_ratio, seed);
    try_run_with_source(&mut source, mechanism, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SystemConfig {
        SystemConfig::paper().with_sim_cycles(4_000)
    }

    #[test]
    fn baseline_run_produces_traffic_and_latency() {
        let r = run_benchmark(Benchmark::Blackscholes, Mechanism::Baseline, &quick(), 1);
        assert!(r.stats.packets > 50, "packets {}", r.stats.packets);
        assert!(r.avg_packet_latency() > 5.0);
        assert!(r.throughput() > 0.0);
        assert_eq!(r.data_quality(), 1.0, "baseline is exact");
        assert_eq!(r.mechanism, Mechanism::Baseline);
        // Tail behaviour is recorded and ordered.
        assert_eq!(r.stats.latency_histogram.samples(), r.stats.packets);
        let (p50, p99) = (r.latency_percentile(50.0), r.latency_percentile(99.0));
        assert!(p50 as f64 <= r.avg_packet_latency() * 2.0);
        assert!(p99 >= p50, "p99 {p99} < p50 {p50}");
    }

    #[test]
    fn compression_reduces_injected_data_flits() {
        let cfg = quick();
        let base = run_benchmark(Benchmark::Ssca2, Mechanism::Baseline, &cfg, 2);
        let fp = run_benchmark(Benchmark::Ssca2, Mechanism::FpComp, &cfg, 2);
        assert_eq!(base.stats.normalized_data_flits(), 1.0);
        assert!(
            fp.stats.normalized_data_flits() < 0.95,
            "FP-COMP flits {}",
            fp.stats.normalized_data_flits()
        );
    }

    #[test]
    fn vaxx_compresses_more_than_exact_compression() {
        let cfg = quick();
        let fp = run_benchmark(Benchmark::Ssca2, Mechanism::FpComp, &cfg, 3);
        let vaxx = run_benchmark(Benchmark::Ssca2, Mechanism::FpVaxx, &cfg, 3);
        assert!(
            vaxx.stats.encode.encoded_fraction() > fp.stats.encode.encoded_fraction(),
            "vaxx {} vs fp {}",
            vaxx.stats.encode.encoded_fraction(),
            fp.stats.encode.encoded_fraction()
        );
        assert!(vaxx.stats.encode.approx_encoded > 0);
        assert_eq!(
            fp.stats.encode.approx_encoded, 0,
            "FP-COMP never approximates"
        );
    }

    #[test]
    fn vaxx_quality_stays_above_97_percent() {
        let cfg = quick();
        for m in [Mechanism::DiVaxx, Mechanism::FpVaxx] {
            let r = run_benchmark(Benchmark::Blackscholes, m, &cfg, 4);
            assert!(r.data_quality() > 0.97, "{m}: quality {}", r.data_quality());
        }
    }

    #[test]
    fn seed_summary_statistics() {
        let s = SeedSummary::of(&[10.0, 12.0, 14.0]);
        assert_eq!(s.runs, 3);
        assert!((s.mean - 12.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert_eq!((s.min, s.max), (10.0, 14.0));
        let single = SeedSummary::of(&[7.0]);
        assert_eq!(single.std_dev, 0.0);
    }

    #[test]
    fn multi_seed_runs_agree_within_noise() {
        let cfg = SystemConfig::paper().with_sim_cycles(1_500);
        let s = run_benchmark_seeds(Benchmark::Bodytrack, Mechanism::FpVaxx, &cfg, &[1, 2, 3]);
        assert_eq!(s.runs, 3);
        assert!(s.mean > 5.0);
        // Different seeds give different but same-regime results.
        assert!(s.std_dev < s.mean * 0.5, "{s:?}");
        assert!(s.min <= s.mean && s.mean <= s.max);
    }

    #[test]
    fn incomplete_drain_is_recorded_not_silently_finalized() {
        let mut cfg = quick();
        let full = run_benchmark(Benchmark::Blackscholes, Mechanism::Baseline, &cfg, 7);
        assert!(full.drained, "generous budget should drain completely");
        assert_eq!(full.stats.unfinished, 0);
        // A one-cycle drain budget cannot possibly flush in-flight packets.
        cfg.drain_cycles = 1;
        let cut = run_benchmark(Benchmark::Blackscholes, Mechanism::Baseline, &cfg, 7);
        assert!(!cut.drained, "1-cycle drain budget reported as complete");
        assert!(cut.stats.unfinished > 0, "stragglers not recorded");
    }

    #[test]
    fn sharded_runs_match_serial_runs_exactly() {
        let cfg = quick();
        let serial = run_benchmark(Benchmark::Ssca2, Mechanism::FpVaxx, &cfg, 9);
        let sharded = run_benchmark(
            Benchmark::Ssca2,
            Mechanism::FpVaxx,
            &cfg.clone().with_shards(4),
            9,
        );
        assert_eq!(
            format!("{:?}", serial.stats),
            format!("{:?}", sharded.stats)
        );
        assert_eq!(serial.total_cycles, sharded.total_cycles);
        assert_eq!(serial.drained, sharded.drained);
    }

    #[test]
    fn exact_mechanisms_preserve_data_perfectly() {
        let cfg = quick();
        for m in [Mechanism::DiComp, Mechanism::FpComp] {
            let r = run_benchmark(Benchmark::Streamcluster, m, &cfg, 5);
            assert_eq!(r.data_quality(), 1.0, "{m} corrupted data");
        }
    }
}
