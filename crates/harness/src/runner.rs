//! The generic experiment driver: traffic source → NoC → statistics.
//!
//! Runs are **staged** (DESIGN.md §11): codecs are built at the exact
//! threshold, the warmup window runs threshold-free, and only at the
//! measurement boundary are the encoders retargeted to the configured
//! threshold, the bound checker armed and measurement begun. The warmup
//! trajectory is therefore identical for every threshold variant of a sweep,
//! which is what lets the [`SnapshotPolicy`] fork those variants from one
//! shared post-warmup snapshot instead of replaying the warmup per cell.

use anoc_core::snap::{SnapReader, SnapWriter};
use anoc_core::threshold::ErrorThreshold;
use anoc_exec::hash::fnv1a64;
use anoc_exec::SnapshotStore;
use anoc_noc::{ActivityReport, NetStats, NocSim, SimError};
use anoc_traffic::{Benchmark, BenchmarkTraffic, Injection, TrafficSource};

use crate::config::{Mechanism, SystemConfig};

/// The result of one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The mechanism simulated.
    pub mechanism: Mechanism,
    /// Network statistics over the measurement window.
    pub stats: NetStats,
    /// Hardware activity for the power model.
    pub activity: ActivityReport,
    /// Number of nodes simulated.
    pub nodes: usize,
    /// Total simulated cycles (warmup + measurement + drain). Divided by
    /// the host wall time this gives the simulator's cycles-per-second
    /// throughput, which the campaign layer reports per job.
    pub total_cycles: u64,
    /// Whether the post-measurement drain finished within
    /// `drain_cycles` — `false` means packets were still in flight when the
    /// budget ran out and the delivery statistics are a lower bound, not
    /// final (`stats.unfinished` counts the stragglers).
    pub drained: bool,
}

impl RunResult {
    /// Average end-to-end packet latency in cycles.
    pub fn avg_packet_latency(&self) -> f64 {
        self.stats.avg_packet_latency()
    }

    /// Delivered throughput in flits/node/cycle.
    pub fn throughput(&self) -> f64 {
        self.stats.throughput(self.nodes)
    }

    /// Data value quality (1 − mean relative word error).
    pub fn data_quality(&self) -> f64 {
        self.stats.quality.quality()
    }

    /// Tail latency: the given percentile of end-to-end packet latency.
    pub fn latency_percentile(&self, p: f64) -> u64 {
        self.stats.latency_histogram.percentile(p)
    }

    /// The placeholder substituted for a failed cell when a keep-going
    /// campaign completes despite per-cell errors: mechanism `"FAILED"`,
    /// every statistic zero. Never cached.
    pub fn failed_sentinel() -> Self {
        RunResult {
            mechanism: Mechanism::Custom("FAILED"),
            stats: NetStats::default(),
            activity: ActivityReport::default(),
            nodes: 0,
            total_cycles: 0,
            drained: false,
        }
    }

    /// Whether this result is the keep-going failure placeholder.
    pub fn is_failed_sentinel(&self) -> bool {
        self.mechanism == Mechanism::Custom("FAILED") && self.total_cycles == 0
    }
}

/// How one run interacts with the on-disk [`SnapshotStore`].
///
/// [`cold`](SnapshotPolicy::cold) is a plain replayed-warmup run. With a
/// store, `warmup_key` forks the run from the shared post-warmup snapshot
/// (publishing it first when absent), `cell_key` + `checkpoint_every`
/// periodically checkpoint the measurement window, and `resume` restarts a
/// killed cell from its last checkpoint. Every snapshot miss, stale blob or
/// restore failure silently degrades to the cold path — the store can make
/// a campaign slower, never wrong.
#[derive(Debug, Clone, Default)]
pub struct SnapshotPolicy<'a> {
    /// The snapshot store, or `None` for a purely cold run.
    pub store: Option<&'a SnapshotStore>,
    /// Key of the shared post-warmup snapshot to fork from (and to publish
    /// on a cold run); see [`crate::campaign::warmup_key`].
    pub warmup_key: Option<String>,
    /// The cell's content key, identifying its mid-measurement checkpoints.
    pub cell_key: Option<String>,
    /// Checkpoint every N measured cycles (0 disables checkpointing).
    pub checkpoint_every: u64,
    /// Restart from the cell's last checkpoint if one exists.
    pub resume: bool,
}

impl SnapshotPolicy<'_> {
    /// A policy that never touches a snapshot store.
    pub fn cold() -> Self {
        SnapshotPolicy::default()
    }
}

/// Execution metadata of one staged run — how the result was obtained, never
/// part of the (cacheable) result itself, so warm and cold cells stay
/// bit-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StagedInfo {
    /// The warmup was restored from a snapshot instead of simulated.
    pub forked: bool,
    /// The measurement window resumed from a mid-run checkpoint.
    pub resumed: bool,
    /// Simulated cycles avoided by forking/resuming (still counted in the
    /// result's `total_cycles`, which reflects simulated *time*, not work).
    pub skipped_cycles: u64,
}

/// The store key of a cell's mid-measurement checkpoint.
pub fn checkpoint_key(cell_key: &str) -> String {
    format!("checkpoint {cell_key}")
}

/// Stage tag of a post-warmup snapshot in a store blob.
const STAGE_WARMUP: u32 = 1;
/// Stage tag of a mid-measurement checkpoint in a store blob.
const STAGE_CHECKPOINT: u32 = 2;

/// Runs `mechanism` under the traffic produced by `source` for the
/// configured warmup + measurement window, then drains.
///
/// # Panics
///
/// Panics if the configured watchdog or bound checker aborts the
/// simulation; campaigns that must survive that use
/// [`try_run_with_source`].
pub fn run_with_source(
    source: &mut dyn TrafficSource,
    mechanism: Mechanism,
    config: &SystemConfig,
) -> RunResult {
    match try_run_with_source(source, mechanism, config) {
        Ok(r) => r,
        Err(e) => panic!("simulation failed: {e}"),
    }
}

/// Fallible [`run_with_source`]: a watchdog deadlock abort or a fatal
/// bound-checker violation comes back as `Err` instead of panicking.
///
/// This is the staged cold path: exact-threshold warmup, retarget + arm +
/// measure (see the module docs). It never touches a snapshot store.
pub fn try_run_with_source(
    source: &mut dyn TrafficSource,
    mechanism: Mechanism,
    config: &SystemConfig,
) -> Result<RunResult, SimError> {
    cold_run(source, mechanism, config, None, &SnapshotPolicy::cold())
}

/// Runs with explicitly supplied codec pairs — the entry point for
/// extension mechanisms (BD-COMP/BD-VAXX, adaptive or windowed encoders)
/// that [`Mechanism`] does not enumerate.
///
/// # Panics
///
/// Panics if `source` / `codecs` disagree with the configuration's node
/// count, or if the watchdog/bound checker aborts the run.
pub fn run_custom(
    source: &mut dyn TrafficSource,
    mechanism: Mechanism,
    config: &SystemConfig,
    codecs: Vec<anoc_noc::NodeCodec>,
) -> RunResult {
    match try_run_custom(source, mechanism, config, codecs) {
        Ok(r) => r,
        Err(e) => panic!("simulation failed: {e}"),
    }
}

/// Fallible [`run_custom`]: custom codecs are used as supplied for the whole
/// run (no exact-warmup retargeting — adaptive and windowed encoders manage
/// their own thresholds), and the end-to-end bound checker stays off for
/// [`Mechanism::Custom`], whose per-word allowance the configuration's
/// threshold does not describe.
///
/// # Panics
///
/// Panics if `source` / `codecs` disagree with the configuration's node
/// count.
pub fn try_run_custom(
    source: &mut dyn TrafficSource,
    mechanism: Mechanism,
    config: &SystemConfig,
    codecs: Vec<anoc_noc::NodeCodec>,
) -> Result<RunResult, SimError> {
    let nodes = config.noc.num_nodes();
    assert_eq!(
        source.num_nodes(),
        nodes,
        "traffic source and NoC disagree on node count"
    );
    let mut sim = NocSim::new(config.noc.clone(), codecs);
    sim.set_shards(config.shards);
    sim.set_fault_plan(config.faults);
    sim.set_loss_plan(config.loss);
    sim.set_qos(config.qos);
    sim.set_watchdog(config.watchdog_horizon);
    let mut buf: Vec<Injection> = Vec::new();
    drive(&mut sim, source, config.warmup_cycles, &mut buf)?;
    if !matches!(mechanism, Mechanism::Custom(_)) {
        sim.set_bound_check(config.bound_threshold());
    }
    // Unconditional: a zero-cycle warmup (even with a zero-cycle measurement
    // window) still arms measurement, so the statistics are well-defined.
    sim.begin_measurement();
    measure_and_finish(&mut sim, source, mechanism, config, None, &mut buf)
}

/// Offers one cycle of traffic and advances the simulator, keeping the
/// delivery log drained.
fn step_cycle(
    sim: &mut NocSim,
    source: &mut dyn TrafficSource,
    buf: &mut Vec<Injection>,
) -> Result<(), SimError> {
    buf.clear();
    source.tick(sim.cycle(), buf);
    for inj in buf.drain(..) {
        match inj.payload {
            Some(block) => {
                sim.enqueue_data(inj.src, inj.dest, block);
            }
            None => {
                sim.enqueue_control(inj.src, inj.dest);
            }
        }
    }
    sim.step();
    if let Some(e) = sim.take_fatal_error() {
        return Err(e);
    }
    sim.discard_delivered(); // keep the delivery buffer from growing
    Ok(())
}

/// Advances the simulation until `sim.cycle()` reaches `until`.
fn drive(
    sim: &mut NocSim,
    source: &mut dyn TrafficSource,
    until: u64,
    buf: &mut Vec<Injection>,
) -> Result<(), SimError> {
    while sim.cycle() < until {
        step_cycle(sim, source, buf)?;
    }
    Ok(())
}

/// A fresh simulator for the staged path: exact-threshold codecs (retargeted
/// at the measurement boundary), shards/fault-plan/watchdog armed — the
/// arming happens *before* any snapshot restore, whose serialized cursors
/// then overwrite what arming reset.
fn fresh_sim(mechanism: Mechanism, config: &SystemConfig) -> NocSim {
    let codecs = mechanism.codecs(config.noc.num_nodes(), ErrorThreshold::exact());
    let mut sim = NocSim::new(config.noc.clone(), codecs);
    sim.set_shards(config.shards);
    sim.set_fault_plan(config.faults);
    sim.set_loss_plan(config.loss);
    sim.set_qos(config.qos);
    sim.set_watchdog(config.watchdog_horizon);
    sim
}

/// The measurement boundary of a staged run: retarget the encoders to the
/// configured threshold, arm the bound checker, start measuring.
fn arm_measurement(sim: &mut NocSim, config: &SystemConfig) {
    rearm_thresholds(sim, config);
    sim.begin_measurement();
}

/// Re-arms the threshold machinery the snapshot format deliberately
/// excludes. Statically-thresholded runs retarget every encoder to the
/// configured threshold; QoS runs must NOT — the per-flow controllers own
/// the encoder thresholds (lazily reinstalled per enqueue), and a global
/// retarget here would stomp what the controllers learned. Either way the
/// bound checker arms at [`SystemConfig::bound_threshold`].
fn rearm_thresholds(sim: &mut NocSim, config: &SystemConfig) {
    if !config.qos.is_active() {
        sim.set_error_threshold(config.threshold());
    }
    sim.set_bound_check(config.bound_threshold());
}

/// Runs the measurement window from wherever `sim` currently stands to its
/// end, then drains and assembles the [`RunResult`]. Checkpoints per
/// `policy` and retires the cell's checkpoint on success.
fn measure_and_finish(
    sim: &mut NocSim,
    source: &mut dyn TrafficSource,
    mechanism: Mechanism,
    config: &SystemConfig,
    store: Option<&SnapshotStore>,
    buf: &mut Vec<Injection>,
) -> Result<RunResult, SimError> {
    measure_and_finish_ckpt(sim, source, mechanism, config, store, 0, None, buf)
}

#[allow(clippy::too_many_arguments)]
fn measure_and_finish_ckpt(
    sim: &mut NocSim,
    source: &mut dyn TrafficSource,
    mechanism: Mechanism,
    config: &SystemConfig,
    store: Option<&SnapshotStore>,
    checkpoint_every: u64,
    cell_key: Option<&str>,
    buf: &mut Vec<Injection>,
) -> Result<RunResult, SimError> {
    let nodes = config.noc.num_nodes();
    let total = config.warmup_cycles + config.sim_cycles;
    while sim.cycle() < total {
        step_cycle(sim, source, buf)?;
        if checkpoint_every > 0 && sim.cycle() < total {
            if let (Some(st), Some(ck)) = (store, cell_key) {
                let measured = sim.cycle() - config.warmup_cycles;
                if measured.is_multiple_of(checkpoint_every) {
                    publish(st, &checkpoint_key(ck), STAGE_CHECKPOINT, sim, source);
                }
            }
        }
    }
    // Stop offering traffic; let in-flight measured packets finish.
    sim.end_measurement();
    let drained = sim.try_drain(config.drain_cycles)?;
    sim.discard_delivered();
    sim.record_unfinished();
    let activity = sim.activity_report();
    let stats = sim.stats().clone();
    if let (Some(st), Some(ck)) = (store, cell_key) {
        // The cell completed: its checkpoint is spent.
        let _ = st.remove(&checkpoint_key(ck));
    }
    Ok(RunResult {
        mechanism,
        stats,
        activity,
        nodes,
        total_cycles: sim.cycle(),
        drained,
    })
}

/// The staged cold path: exact-threshold warmup, optional snapshot publish,
/// retarget + arm + measure.
fn cold_run(
    source: &mut dyn TrafficSource,
    mechanism: Mechanism,
    config: &SystemConfig,
    store: Option<&SnapshotStore>,
    policy: &SnapshotPolicy<'_>,
) -> Result<RunResult, SimError> {
    let nodes = config.noc.num_nodes();
    assert_eq!(
        source.num_nodes(),
        nodes,
        "traffic source and NoC disagree on node count"
    );
    let mut sim = fresh_sim(mechanism, config);
    let mut buf: Vec<Injection> = Vec::new();
    drive(&mut sim, source, config.warmup_cycles, &mut buf)?;
    if let (Some(st), Some(wk)) = (store, policy.warmup_key.as_deref()) {
        if source.snapshot_supported() {
            publish(st, wk, STAGE_WARMUP, &sim, source);
        }
    }
    arm_measurement(&mut sim, config);
    measure_and_finish_ckpt(
        &mut sim,
        source,
        mechanism,
        config,
        store,
        policy.checkpoint_every,
        policy.cell_key.as_deref(),
        &mut buf,
    )
}

/// Frames `sim` + `source` state as one store blob:
/// `[u32 stage tag][u64 sim-blob length][sim blob][traffic-source state]`.
fn freeze(
    sim: &NocSim,
    source: &dyn TrafficSource,
    tag: u32,
    fingerprint: u64,
) -> Result<Vec<u8>, anoc_noc::SnapshotError> {
    let sim_blob = sim.save_snapshot(fingerprint)?;
    let mut w = SnapWriter::new();
    w.u32(tag);
    w.u64(sim_blob.len() as u64);
    w.bytes(&sim_blob);
    source.save_state(&mut w);
    Ok(w.into_bytes())
}

/// Best-effort snapshot publication: a failed save or store write costs a
/// replayed warmup next time, never the run.
fn publish(store: &SnapshotStore, key: &str, tag: u32, sim: &NocSim, source: &dyn TrafficSource) {
    match freeze(sim, source, tag, fnv1a64(key.as_bytes())) {
        Ok(blob) => {
            if let Err(e) = store.put(key, &blob) {
                eprintln!("snapshot write for '{key}' failed: {e}");
            }
        }
        Err(e) => eprintln!("snapshot save for '{key}' refused: {e}"),
    }
}

/// Restores a store blob into a freshly armed `sim` + never-ticked `source`.
/// Any error means the pair is in an unspecified state: the caller must
/// discard both and rebuild for the cold path.
fn thaw(
    blob: &[u8],
    expect_tag: u32,
    fingerprint: u64,
    sim: &mut NocSim,
    source: &mut dyn TrafficSource,
) -> Result<(), String> {
    let mut r = SnapReader::new(blob);
    let tag = r.u32().map_err(|e| format!("stage tag: {e}"))?;
    if tag != expect_tag {
        return Err(format!("unexpected stage tag {tag} (want {expect_tag})"));
    }
    let len = r.u64().map_err(|e| format!("sim-blob length: {e}"))?;
    let len = usize::try_from(len).map_err(|_| "sim-blob length overflows".to_string())?;
    let sim_blob = r.bytes(len).map_err(|e| format!("sim blob: {e}"))?;
    sim.restore_snapshot(sim_blob, fingerprint)
        .map_err(|e| e.to_string())?;
    source
        .load_state(&mut r)
        .map_err(|e| format!("traffic state: {e}"))?;
    if !r.is_exhausted() {
        return Err("trailing bytes after traffic state".into());
    }
    Ok(())
}

/// Runs just the warmup of a benchmark cell and publishes the post-warmup
/// snapshot under `warmup_key` — the shared stage the campaign planner runs
/// once per distinct key before the measurement cells. Skips simulating when
/// the store already holds the key. Returns whether a fresh warmup was
/// simulated and published.
pub fn publish_benchmark_warmup(
    benchmark: Benchmark,
    mechanism: Mechanism,
    config: &SystemConfig,
    seed: u64,
    store: &SnapshotStore,
    warmup_key: &str,
) -> Result<bool, SimError> {
    if store.get(warmup_key).is_some() {
        return Ok(false);
    }
    let mut source =
        BenchmarkTraffic::new(benchmark, config.noc.num_nodes(), config.approx_ratio, seed);
    if !source.snapshot_supported() {
        return Ok(false);
    }
    let mut sim = fresh_sim(mechanism, config);
    let mut buf = Vec::new();
    drive(&mut sim, &mut source, config.warmup_cycles, &mut buf)?;
    publish(store, warmup_key, STAGE_WARMUP, &sim, &source);
    Ok(true)
}

/// The snapshot-aware benchmark driver: resume from a checkpoint if asked,
/// else fork from the shared warmup snapshot, else run cold (publishing the
/// warmup for the next cell). Returns the result plus [`StagedInfo`]
/// describing how it was obtained; warm and cold results are bit-identical.
pub fn try_run_benchmark_snap(
    benchmark: Benchmark,
    mechanism: Mechanism,
    config: &SystemConfig,
    seed: u64,
    policy: &SnapshotPolicy<'_>,
) -> Result<(RunResult, StagedInfo), SimError> {
    let nodes = config.noc.num_nodes();
    let make_source = || BenchmarkTraffic::new(benchmark, nodes, config.approx_ratio, seed);
    let store = if make_source().snapshot_supported() {
        policy.store
    } else {
        None
    };
    let total = config.warmup_cycles + config.sim_cycles;
    let mut buf: Vec<Injection> = Vec::new();

    // 1. Resume from the cell's last checkpoint.
    if policy.resume {
        if let (Some(st), Some(ck)) = (store, policy.cell_key.as_deref()) {
            let key = checkpoint_key(ck);
            if let Some(blob) = st.get(&key) {
                let mut sim = fresh_sim(mechanism, config);
                let mut source = make_source();
                let thawed = thaw(
                    &blob,
                    STAGE_CHECKPOINT,
                    fnv1a64(key.as_bytes()),
                    &mut sim,
                    &mut source,
                )
                .and_then(|()| {
                    if sim.cycle() < config.warmup_cycles || sim.cycle() > total {
                        Err(format!("checkpoint cycle {} out of range", sim.cycle()))
                    } else {
                        Ok(())
                    }
                });
                match thawed {
                    Ok(()) => {
                        // Mid-measurement state: re-arm the excluded pieces
                        // (threshold, bound check) but do NOT begin a new
                        // measurement — the restored one continues.
                        let skipped = sim.cycle();
                        rearm_thresholds(&mut sim, config);
                        let result = measure_and_finish_ckpt(
                            &mut sim,
                            &mut source,
                            mechanism,
                            config,
                            store,
                            policy.checkpoint_every,
                            policy.cell_key.as_deref(),
                            &mut buf,
                        )?;
                        return Ok((
                            result,
                            StagedInfo {
                                forked: false,
                                resumed: true,
                                skipped_cycles: skipped,
                            },
                        ));
                    }
                    Err(msg) => {
                        // A stale checkpoint is worse than none: drop it so
                        // the next resume does not trip over it again.
                        eprintln!("checkpoint for '{ck}' unusable ({msg}); restarting the cell");
                        let _ = st.remove(&key);
                    }
                }
            }
        }
    }

    // 2. Fork from the shared post-warmup snapshot.
    if let (Some(st), Some(wk)) = (store, policy.warmup_key.as_deref()) {
        if let Some(blob) = st.get(wk) {
            let mut sim = fresh_sim(mechanism, config);
            let mut source = make_source();
            let thawed = thaw(
                &blob,
                STAGE_WARMUP,
                fnv1a64(wk.as_bytes()),
                &mut sim,
                &mut source,
            )
            .and_then(|()| {
                if sim.cycle() == config.warmup_cycles {
                    Ok(())
                } else {
                    Err(format!(
                        "snapshot is at cycle {}, warmup ends at {}",
                        sim.cycle(),
                        config.warmup_cycles
                    ))
                }
            });
            match thawed {
                Ok(()) => {
                    arm_measurement(&mut sim, config);
                    let result = measure_and_finish_ckpt(
                        &mut sim,
                        &mut source,
                        mechanism,
                        config,
                        store,
                        policy.checkpoint_every,
                        policy.cell_key.as_deref(),
                        &mut buf,
                    )?;
                    return Ok((
                        result,
                        StagedInfo {
                            forked: true,
                            resumed: false,
                            skipped_cycles: config.warmup_cycles,
                        },
                    ));
                }
                Err(msg) => {
                    // Counted as a cold cell, never a panic: discard the
                    // half-restored pair and replay the warmup below.
                    eprintln!("warmup snapshot '{wk}' unusable ({msg}); replaying warmup");
                }
            }
        }
    }

    // 3. Cold: replay the warmup (publishing it for the sweep's next cells).
    let mut source = make_source();
    let result = cold_run(&mut source, mechanism, config, store, policy)?;
    Ok((result, StagedInfo::default()))
}

/// Summary statistics over repeated runs with different seeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeedSummary {
    /// Number of runs.
    pub runs: usize,
    /// Mean of the metric.
    pub mean: f64,
    /// Sample standard deviation (0 for a single run).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl SeedSummary {
    /// Summarises a set of observations.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarise zero runs");
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = if values.len() < 2 {
            0.0
        } else {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0)
        };
        SeedSummary {
            runs: values.len(),
            mean,
            std_dev: var.sqrt(),
            min: values.iter().cloned().fold(f64::INFINITY, f64::min),
            max: values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// Runs `mechanism` under `benchmark`-shaped traffic once per seed and
/// summarises the average packet latency — the multi-seed rigour the paper's
/// single-trace methodology lacks.
pub fn run_benchmark_seeds(
    benchmark: Benchmark,
    mechanism: Mechanism,
    config: &SystemConfig,
    seeds: &[u64],
) -> SeedSummary {
    let latencies: Vec<f64> = seeds
        .iter()
        .map(|s| run_benchmark(benchmark, mechanism, config, *s).avg_packet_latency())
        .collect();
    SeedSummary::of(&latencies)
}

/// Runs `mechanism` under `benchmark`-shaped traffic.
pub fn run_benchmark(
    benchmark: Benchmark,
    mechanism: Mechanism,
    config: &SystemConfig,
    seed: u64,
) -> RunResult {
    let mut source =
        BenchmarkTraffic::new(benchmark, config.noc.num_nodes(), config.approx_ratio, seed);
    run_with_source(&mut source, mechanism, config)
}

/// Fallible [`run_benchmark`]: a watchdog or bound-checker abort comes back
/// as `Err` instead of panicking — the form fault-injection campaigns use.
pub fn try_run_benchmark(
    benchmark: Benchmark,
    mechanism: Mechanism,
    config: &SystemConfig,
    seed: u64,
) -> Result<RunResult, SimError> {
    let mut source =
        BenchmarkTraffic::new(benchmark, config.noc.num_nodes(), config.approx_ratio, seed);
    try_run_with_source(&mut source, mechanism, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SystemConfig {
        SystemConfig::paper().with_sim_cycles(4_000)
    }

    #[test]
    fn baseline_run_produces_traffic_and_latency() {
        let r = run_benchmark(Benchmark::Blackscholes, Mechanism::Baseline, &quick(), 1);
        assert!(r.stats.packets > 50, "packets {}", r.stats.packets);
        assert!(r.avg_packet_latency() > 5.0);
        assert!(r.throughput() > 0.0);
        assert_eq!(r.data_quality(), 1.0, "baseline is exact");
        assert_eq!(r.mechanism, Mechanism::Baseline);
        // Tail behaviour is recorded and ordered.
        assert_eq!(r.stats.latency_histogram.samples(), r.stats.packets);
        let (p50, p99) = (r.latency_percentile(50.0), r.latency_percentile(99.0));
        assert!(p50 as f64 <= r.avg_packet_latency() * 2.0);
        assert!(p99 >= p50, "p99 {p99} < p50 {p50}");
    }

    #[test]
    fn compression_reduces_injected_data_flits() {
        let cfg = quick();
        let base = run_benchmark(Benchmark::Ssca2, Mechanism::Baseline, &cfg, 2);
        let fp = run_benchmark(Benchmark::Ssca2, Mechanism::FpComp, &cfg, 2);
        assert_eq!(base.stats.normalized_data_flits(), 1.0);
        assert!(
            fp.stats.normalized_data_flits() < 0.95,
            "FP-COMP flits {}",
            fp.stats.normalized_data_flits()
        );
    }

    #[test]
    fn vaxx_compresses_more_than_exact_compression() {
        let cfg = quick();
        let fp = run_benchmark(Benchmark::Ssca2, Mechanism::FpComp, &cfg, 3);
        let vaxx = run_benchmark(Benchmark::Ssca2, Mechanism::FpVaxx, &cfg, 3);
        assert!(
            vaxx.stats.encode.encoded_fraction() > fp.stats.encode.encoded_fraction(),
            "vaxx {} vs fp {}",
            vaxx.stats.encode.encoded_fraction(),
            fp.stats.encode.encoded_fraction()
        );
        assert!(vaxx.stats.encode.approx_encoded > 0);
        assert_eq!(
            fp.stats.encode.approx_encoded, 0,
            "FP-COMP never approximates"
        );
    }

    #[test]
    fn vaxx_quality_stays_above_97_percent() {
        let cfg = quick();
        for m in [Mechanism::DiVaxx, Mechanism::FpVaxx] {
            let r = run_benchmark(Benchmark::Blackscholes, m, &cfg, 4);
            assert!(r.data_quality() > 0.97, "{m}: quality {}", r.data_quality());
        }
    }

    #[test]
    fn seed_summary_statistics() {
        let s = SeedSummary::of(&[10.0, 12.0, 14.0]);
        assert_eq!(s.runs, 3);
        assert!((s.mean - 12.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert_eq!((s.min, s.max), (10.0, 14.0));
        let single = SeedSummary::of(&[7.0]);
        assert_eq!(single.std_dev, 0.0);
    }

    #[test]
    fn multi_seed_runs_agree_within_noise() {
        let cfg = SystemConfig::paper().with_sim_cycles(1_500);
        let s = run_benchmark_seeds(Benchmark::Bodytrack, Mechanism::FpVaxx, &cfg, &[1, 2, 3]);
        assert_eq!(s.runs, 3);
        assert!(s.mean > 5.0);
        // Different seeds give different but same-regime results.
        assert!(s.std_dev < s.mean * 0.5, "{s:?}");
        assert!(s.min <= s.mean && s.mean <= s.max);
    }

    #[test]
    fn incomplete_drain_is_recorded_not_silently_finalized() {
        let mut cfg = quick();
        let full = run_benchmark(Benchmark::Blackscholes, Mechanism::Baseline, &cfg, 7);
        assert!(full.drained, "generous budget should drain completely");
        assert_eq!(full.stats.unfinished, 0);
        // A one-cycle drain budget cannot possibly flush in-flight packets.
        cfg.drain_cycles = 1;
        let cut = run_benchmark(Benchmark::Blackscholes, Mechanism::Baseline, &cfg, 7);
        assert!(!cut.drained, "1-cycle drain budget reported as complete");
        assert!(cut.stats.unfinished > 0, "stragglers not recorded");
    }

    #[test]
    fn sharded_runs_match_serial_runs_exactly() {
        let cfg = quick();
        let serial = run_benchmark(Benchmark::Ssca2, Mechanism::FpVaxx, &cfg, 9);
        let sharded = run_benchmark(
            Benchmark::Ssca2,
            Mechanism::FpVaxx,
            &cfg.clone().with_shards(4),
            9,
        );
        assert_eq!(
            format!("{:?}", serial.stats),
            format!("{:?}", sharded.stats)
        );
        assert_eq!(serial.total_cycles, sharded.total_cycles);
        assert_eq!(serial.drained, sharded.drained);
    }

    #[test]
    fn exact_mechanisms_preserve_data_perfectly() {
        let cfg = quick();
        for m in [Mechanism::DiComp, Mechanism::FpComp] {
            let r = run_benchmark(Benchmark::Streamcluster, m, &cfg, 5);
            assert_eq!(r.data_quality(), 1.0, "{m} corrupted data");
        }
    }

    fn temp_store(name: &str) -> SnapshotStore {
        let dir = std::env::temp_dir().join(format!("anoc-runner-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        SnapshotStore::open(dir).expect("open temp store")
    }

    /// Regression for the zero-warmup corner: `begin_measurement` arming
    /// used to hinge on the loop hitting `cycle == warmup_cycles`, which a
    /// zero-cycle run never did — statistics came back from an unarmed
    /// window.
    #[test]
    fn zero_warmup_and_zero_window_still_arm_measurement() {
        let mut cfg = SystemConfig::paper();
        cfg.warmup_cycles = 0;
        cfg.sim_cycles = 0;
        let r = try_run_benchmark(Benchmark::Blackscholes, Mechanism::Baseline, &cfg, 1)
            .expect("empty run completes");
        assert!(r.drained, "nothing in flight, drain is trivially complete");
        assert_eq!(r.stats.packets, 0);
        assert_eq!(r.stats.unfinished, 0);
        assert_eq!(r.total_cycles, 0);
    }

    #[test]
    fn zero_warmup_measures_from_cycle_zero() {
        let mut cfg = SystemConfig::paper().with_sim_cycles(2_000);
        cfg.warmup_cycles = 0;
        let r =
            try_run_benchmark(Benchmark::Ssca2, Mechanism::FpComp, &cfg, 6).expect("run completes");
        assert_eq!(r.stats.cycles, 2_000, "window covers the whole run");
        assert!(r.stats.packets > 0, "cycle-0 injections are measured");
    }

    #[test]
    fn forked_run_matches_cold_run_bit_for_bit() {
        let store = temp_store("fork");
        let cfg = SystemConfig::paper().with_sim_cycles(2_500);
        let (bench, mech, seed) = (Benchmark::Ssca2, Mechanism::FpVaxx, 13);
        let wk = "warmup fork-test";
        assert!(
            publish_benchmark_warmup(bench, mech, &cfg, seed, &store, wk).expect("warmup runs"),
            "first publish simulates the warmup"
        );
        assert!(
            !publish_benchmark_warmup(bench, mech, &cfg, seed, &store, wk).expect("no-op"),
            "second publish is a store hit"
        );
        let policy = SnapshotPolicy {
            store: Some(&store),
            warmup_key: Some(wk.into()),
            cell_key: Some("cell fork-test".into()),
            checkpoint_every: 700,
            resume: false,
        };
        let (warm, info) =
            try_run_benchmark_snap(bench, mech, &cfg, seed, &policy).expect("forked run");
        assert!(info.forked && !info.resumed);
        assert_eq!(info.skipped_cycles, cfg.warmup_cycles);
        let cold = try_run_benchmark(bench, mech, &cfg, seed).expect("cold run");
        assert_eq!(
            crate::persist::encode_run_result(&warm),
            crate::persist::encode_run_result(&cold),
            "forking the warmup changed the measured result"
        );
        assert!(
            store.get(&checkpoint_key("cell fork-test")).is_none(),
            "completed cell retires its checkpoint"
        );
        // A corrupt warmup blob degrades to a cold cell with the same result.
        store.put(wk, b"garbage").expect("corrupt");
        let (fallback, info) =
            try_run_benchmark_snap(bench, mech, &cfg, seed, &policy).expect("fallback run");
        assert!(!info.forked && info.skipped_cycles == 0);
        assert_eq!(
            crate::persist::encode_run_result(&fallback),
            crate::persist::encode_run_result(&cold)
        );
        let _ = std::fs::remove_dir_all(store.dir());
    }

    /// Regression: a forked QoS run must reprogram the encoders from the
    /// snapshot's per-node installed percents. The staged path builds its
    /// sims with exact-threshold codecs, and under QoS `arm_measurement`
    /// deliberately skips the global retarget — so without the restore-side
    /// reprogram the whole measurement window runs at the exact threshold
    /// (quality 1.0, no approximation) and silently diverges from cold.
    #[test]
    fn forked_qos_run_matches_cold_run_bit_for_bit() {
        let store = temp_store("fork-qos");
        let cfg = SystemConfig::paper()
            .with_sim_cycles(2_500)
            .with_qos(anoc_core::control::QosSpec::paper(970_000))
            .with_loss(anoc_noc::LossPlan::scaled(3, 5_000, 100));
        let (bench, mech, seed) = (Benchmark::Blackscholes, Mechanism::FpVaxx, 13);
        let wk = "warmup fork-qos-test";
        assert!(
            publish_benchmark_warmup(bench, mech, &cfg, seed, &store, wk).expect("warmup runs"),
            "first publish simulates the warmup"
        );
        let policy = SnapshotPolicy {
            store: Some(&store),
            warmup_key: Some(wk.into()),
            cell_key: None,
            checkpoint_every: 0,
            resume: false,
        };
        let (warm, info) =
            try_run_benchmark_snap(bench, mech, &cfg, seed, &policy).expect("forked run");
        assert!(info.forked && !info.resumed);
        let cold = try_run_benchmark(bench, mech, &cfg, seed).expect("cold run");
        assert!(
            cold.data_quality() < 1.0,
            "QoS measurement window must actually approximate"
        );
        assert!(cold.stats.faults.words_lost > 0, "loss plan must be live");
        assert_eq!(
            crate::persist::encode_run_result(&warm),
            crate::persist::encode_run_result(&cold),
            "forking the warmup changed the measured QoS result"
        );
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn resume_from_checkpoint_is_bit_identical_and_retires_it() {
        let store = temp_store("resume");
        let cfg = SystemConfig::paper().with_sim_cycles(3_000);
        let (bench, mech, seed) = (Benchmark::Ssca2, Mechanism::FpVaxx, 11);
        let cold = try_run_benchmark(bench, mech, &cfg, seed).expect("cold reference");
        // Reproduce a killed cell: warmup + 600 measured cycles, checkpoint,
        // then "die".
        let mut source = BenchmarkTraffic::new(bench, cfg.noc.num_nodes(), cfg.approx_ratio, seed);
        let mut sim = fresh_sim(mech, &cfg);
        let mut buf = Vec::new();
        drive(&mut sim, &mut source, cfg.warmup_cycles, &mut buf).expect("warmup");
        arm_measurement(&mut sim, &cfg);
        drive(&mut sim, &mut source, cfg.warmup_cycles + 600, &mut buf).expect("measure");
        let ck = "cell resume-test";
        publish(&store, &checkpoint_key(ck), STAGE_CHECKPOINT, &sim, &source);
        assert!(store.get(&checkpoint_key(ck)).is_some(), "checkpoint saved");
        drop(sim);
        let policy = SnapshotPolicy {
            store: Some(&store),
            warmup_key: None,
            cell_key: Some(ck.into()),
            checkpoint_every: 0,
            resume: true,
        };
        let (resumed, info) =
            try_run_benchmark_snap(bench, mech, &cfg, seed, &policy).expect("resumed run");
        assert!(info.resumed && !info.forked);
        assert_eq!(info.skipped_cycles, cfg.warmup_cycles + 600);
        assert_eq!(
            crate::persist::encode_run_result(&resumed),
            crate::persist::encode_run_result(&cold),
            "resuming mid-measurement changed the result"
        );
        assert!(
            store.get(&checkpoint_key(ck)).is_none(),
            "completed cell retires its checkpoint"
        );
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
