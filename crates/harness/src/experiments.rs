//! One runner per table/figure of the paper's evaluation (§5).
//!
//! Every function regenerates the corresponding result: the same rows or
//! series the paper plots, printed via the `render_*` helpers or consumed
//! programmatically. Absolute numbers differ from the paper (the substrate
//! is a reimplemented simulator driven by modelled traffic); EXPERIMENTS.md
//! records the shape comparison.

use anoc_exec::{CellFailure, JobSpec};
use anoc_noc::{FaultPlan, LossPlan};
use anoc_traffic::{Benchmark, DataPool, DestPattern, SyntheticTraffic};

use crate::campaign::{benchmark_job, cell_key, checked_benchmark_job, context, pattern_tag};
use crate::config::{Mechanism, SystemConfig};
use crate::power::EnergyModel;
pub use crate::runner::{run_benchmark, run_with_source, RunResult};

/// The full benchmark × mechanism result matrix backing Figures 9, 10, 11
/// and 15.
#[derive(Debug, Clone)]
pub struct BenchmarkMatrix {
    /// Per-benchmark results, one per mechanism in [`BenchmarkMatrix::mechs`]
    /// order.
    pub cells: Vec<(Benchmark, Vec<RunResult>)>,
    /// The mechanism columns of the matrix ([`Mechanism::ALL`] by default;
    /// `--mechs` can extend the comparison, e.g. with LZ-VAXX).
    pub mechs: Vec<Mechanism>,
}

impl BenchmarkMatrix {
    /// Runs all 8 benchmarks × 5 mechanisms as one parallel campaign;
    /// results are merged in plan order, bit-identical to the serial loop
    /// this replaces.
    pub fn run(config: &SystemConfig, seed: u64) -> Self {
        Self::run_with(config, seed, &Mechanism::ALL)
    }

    /// Like [`run`](Self::run) with an explicit mechanism list — the hook
    /// behind `--mechs`, letting the matrix figures carry extra curves
    /// (LZ-VAXX as a sixth bar) next to the paper's five. The first
    /// mechanism anchors any baseline-normalized figure, so lists should
    /// start with [`Mechanism::Baseline`].
    pub fn run_with(config: &SystemConfig, seed: u64, mechs: &[Mechanism]) -> Self {
        let jobs = Benchmark::ALL
            .iter()
            .flat_map(|b| mechs.iter().map(|m| benchmark_job(*b, *m, config, seed)))
            .collect();
        let mut results = context().run("matrix", jobs).into_iter();
        let cells = Benchmark::ALL
            .iter()
            .map(|b| (*b, results.by_ref().take(mechs.len()).collect()))
            .collect();
        BenchmarkMatrix {
            cells,
            mechs: mechs.to_vec(),
        }
    }

    /// The result for one (benchmark, mechanism) cell.
    pub fn get(&self, benchmark: Benchmark, mechanism: Mechanism) -> &RunResult {
        let (_, runs) = self
            .cells
            .iter()
            .find(|(b, _)| *b == benchmark)
            .expect("benchmark present");
        let idx = self
            .mechs
            .iter()
            .position(|m| *m == mechanism)
            .expect("mechanism present");
        &runs[idx]
    }
}

/// One bar of Figure 9: latency breakdown plus data quality.
#[derive(Debug, Clone, Copy)]
pub struct Fig9Row {
    /// Benchmark.
    pub benchmark: Benchmark,
    /// Mechanism.
    pub mechanism: Mechanism,
    /// NI queueing latency (cycles).
    pub queue_lat: f64,
    /// Network latency (cycles).
    pub net_lat: f64,
    /// Decode latency (cycles).
    pub decode_lat: f64,
    /// Data value quality (right axis).
    pub quality: f64,
}

impl Fig9Row {
    /// Total average packet latency.
    pub fn total(&self) -> f64 {
        self.queue_lat + self.net_lat + self.decode_lat
    }
}

/// Figure 9: average packet latency breakdown and approximation quality.
pub fn fig9(matrix: &BenchmarkMatrix) -> Vec<Fig9Row> {
    let mut rows = Vec::new();
    for (b, runs) in &matrix.cells {
        for r in runs {
            rows.push(Fig9Row {
                benchmark: *b,
                mechanism: r.mechanism,
                queue_lat: r.stats.avg_queue_latency(),
                net_lat: r.stats.avg_net_latency(),
                decode_lat: r.stats.avg_decode_latency(),
                quality: r.data_quality(),
            });
        }
    }
    rows
}

/// Renders Figure 9 as a text table.
pub fn render_fig9(rows: &[Fig9Row]) -> String {
    let mut out = String::from(
        "Figure 9: Average Packet Latency Breakdown and Overall Approximation Quality\n\
         benchmark      mechanism  queue_lat  net_lat  decode_lat  total  quality\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:<9} {:>9.2} {:>8.2} {:>10.3} {:>6.2} {:>8.4}\n",
            r.benchmark.name(),
            r.mechanism.name(),
            r.queue_lat,
            r.net_lat,
            r.decode_lat,
            r.total(),
            r.quality,
        ));
    }
    out
}

/// One bar group of Figure 10: encoded-word fraction split and compression
/// ratio.
#[derive(Debug, Clone, Copy)]
pub struct Fig10Row {
    /// Benchmark.
    pub benchmark: Benchmark,
    /// Mechanism (compression mechanisms only; baseline is omitted as in
    /// the paper).
    pub mechanism: Mechanism,
    /// Fraction of words encoded by exact matching (Figure 10a).
    pub exact_fraction: f64,
    /// Fraction of words encoded thanks to approximation (Figure 10a).
    pub approx_fraction: f64,
    /// Compression ratio (Figure 10b).
    pub compression_ratio: f64,
}

/// Figure 10: encoded-word breakdown (a) and compression ratio (b).
pub fn fig10(matrix: &BenchmarkMatrix) -> Vec<Fig10Row> {
    let mut rows = Vec::new();
    for (b, runs) in &matrix.cells {
        for r in runs {
            if r.mechanism == Mechanism::Baseline {
                continue;
            }
            rows.push(Fig10Row {
                benchmark: *b,
                mechanism: r.mechanism,
                exact_fraction: r.stats.encode.exact_fraction(),
                approx_fraction: r.stats.encode.approx_fraction(),
                compression_ratio: r.stats.encode.compression_ratio(),
            });
        }
    }
    rows
}

/// Renders Figure 10 as a text table.
pub fn render_fig10(rows: &[Fig10Row]) -> String {
    let mut out = String::from(
        "Figure 10: Encoded Word Fraction (exact + approx) and Compression Ratio\n\
         benchmark      mechanism  exact_frac  approx_frac  total_frac  comp_ratio\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:<9} {:>10.3} {:>12.3} {:>11.3} {:>11.3}\n",
            r.benchmark.name(),
            r.mechanism.name(),
            r.exact_fraction,
            r.approx_fraction,
            r.exact_fraction + r.approx_fraction,
            r.compression_ratio,
        ));
    }
    out
}

/// One bar of Figure 11: injected data flits normalized to baseline.
#[derive(Debug, Clone, Copy)]
pub struct Fig11Row {
    /// Benchmark.
    pub benchmark: Benchmark,
    /// Mechanism.
    pub mechanism: Mechanism,
    /// Data flits injected, normalized to the uncompressed baseline.
    pub normalized_flits: f64,
}

/// Figure 11: reduction in the number of injected data flits.
pub fn fig11(matrix: &BenchmarkMatrix) -> Vec<Fig11Row> {
    let mut rows = Vec::new();
    for (b, runs) in &matrix.cells {
        for r in runs {
            rows.push(Fig11Row {
                benchmark: *b,
                mechanism: r.mechanism,
                normalized_flits: r.stats.normalized_data_flits(),
            });
        }
    }
    rows
}

/// Renders Figure 11 as a text table.
pub fn render_fig11(rows: &[Fig11Row]) -> String {
    let mut out = String::from(
        "Figure 11: Data Flits Injected (normalized to Baseline)\nbenchmark      mechanism  normalized\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:<9} {:>10.3}\n",
            r.benchmark.name(),
            r.mechanism.name(),
            r.normalized_flits
        ));
    }
    out
}

/// One latency-vs-injection-rate curve of Figure 12.
#[derive(Debug, Clone)]
pub struct Fig12Series {
    /// Mechanism.
    pub mechanism: Mechanism,
    /// `(offered flits/node/cycle, avg packet latency)` points; the sweep
    /// stops once the network saturates (latency above the cap).
    pub points: Vec<(f64, f64)>,
}

impl Fig12Series {
    /// The saturation throughput: the highest offered rate whose latency
    /// stayed under the cap.
    pub fn saturation_rate(&self) -> f64 {
        self.points.last().map(|(r, _)| *r).unwrap_or(0.0)
    }
}

/// Figure 12: throughput under synthetic traffic with benchmark data.
///
/// `data_ratio` is 0.25 in the paper (25:75 data-to-control mix);
/// `latency_cap` ends each mechanism's sweep once saturated.
pub fn fig12(
    benchmark: Benchmark,
    pattern: DestPattern,
    rates: &[f64],
    config: &SystemConfig,
    seed: u64,
) -> Vec<Fig12Series> {
    let latency_cap = 120.0;
    let pool = DataPool::from_benchmark(benchmark, 512, seed);
    // Plan every (mechanism, rate) cell up front; the serial loop stopped a
    // mechanism's sweep at its first over-cap latency, so reproduce that by
    // truncating each series after the fact. Cells past the knee are wasted
    // work but run in parallel, so the wall clock still wins.
    let jobs = Mechanism::ALL
        .iter()
        .flat_map(|m| {
            rates.iter().map(|&rate| {
                let id = format!(
                    "{}/{}/{}@{rate:.3}",
                    benchmark.name(),
                    pattern_tag(pattern),
                    m.name()
                );
                let work = format!(
                    "fig12 bench={} pat={} rate={:016x} dr=3fd0000000000000 pool=512",
                    benchmark.name(),
                    pattern_tag(pattern),
                    rate.to_bits(),
                );
                let key = cell_key("synth", config, m.name(), &work, seed);
                let (m, config, pool) = (*m, config.clone(), pool.clone());
                JobSpec::new(id, key, move || {
                    let mut source = SyntheticTraffic::new(
                        pattern,
                        config.noc.num_nodes(),
                        pool,
                        rate,
                        0.25,
                        config.approx_ratio,
                        seed,
                    );
                    run_with_source(&mut source, m, &config)
                })
            })
        })
        .collect();
    let mut results = context().run("fig12", jobs).into_iter();
    Mechanism::ALL
        .iter()
        .map(|m| {
            let mut points = Vec::new();
            for &rate in rates {
                let lat = results
                    .next()
                    .expect("one result per cell")
                    .avg_packet_latency();
                if points
                    .last()
                    .map(|(_, l)| *l <= latency_cap)
                    .unwrap_or(true)
                {
                    points.push((rate, lat));
                }
            }
            Fig12Series {
                mechanism: *m,
                points,
            }
        })
        .collect()
}

/// Renders one Figure 12 panel as a text table.
pub fn render_fig12(label: &str, series: &[Fig12Series]) -> String {
    let mut out = format!("Figure 12 ({label}): Packet Latency vs Injection Rate\n");
    for s in series {
        out.push_str(&format!("{:<9}", s.mechanism.name()));
        for (rate, lat) in &s.points {
            out.push_str(&format!("  {rate:.2}:{lat:.1}"));
        }
        out.push_str(&format!("  [saturation ~{:.2}]\n", s.saturation_rate()));
    }
    out
}

/// One group of Figure 13 (error-threshold sensitivity) or Figure 14
/// (approximable-ratio sensitivity): the exact-compression latency plus the
/// VAXX latency at each setting.
#[derive(Debug, Clone)]
pub struct SensitivityRow {
    /// Benchmark.
    pub benchmark: Benchmark,
    /// `"DI-based"` or `"FP-based"`.
    pub family: &'static str,
    /// Latency of the exact compression mechanism (the "Compression" bar).
    pub compression_latency: f64,
    /// `(setting, latency)` for each swept value.
    pub vaxx_latencies: Vec<(u32, f64)>,
}

/// Figure 13: error-threshold sensitivity (5%, 10%, 20%).
pub fn fig13(config: &SystemConfig, seed: u64) -> Vec<SensitivityRow> {
    sensitivity_sweep(
        config,
        seed,
        &Benchmark::ALL,
        &[5, 10, 20],
        |cfg, setting| cfg.with_threshold(setting),
    )
}

/// Figure 14: approximable-packet-ratio sensitivity (25%, 50%, 75%).
pub fn fig14(config: &SystemConfig, seed: u64) -> Vec<SensitivityRow> {
    sensitivity_sweep(
        config,
        seed,
        &Benchmark::ALL,
        &[25, 50, 75],
        |cfg, setting| cfg.with_approx_ratio(setting as f64 / 100.0),
    )
}

/// The generic Figure 13/14 machinery: for each benchmark and codec family,
/// measure the exact-compression latency plus the VAXX latency at each
/// setting produced by `apply`.
pub fn sensitivity_sweep(
    config: &SystemConfig,
    seed: u64,
    benchmarks: &[Benchmark],
    settings: &[u32],
    apply: impl Fn(SystemConfig, u32) -> SystemConfig,
) -> Vec<SensitivityRow> {
    const FAMILIES: [(&str, Mechanism, Mechanism); 2] = [
        ("DI-based", Mechanism::DiComp, Mechanism::DiVaxx),
        ("FP-based", Mechanism::FpComp, Mechanism::FpVaxx),
    ];
    // One plan: per (benchmark, family) the compression anchor cell followed
    // by one VAXX cell per swept setting.
    let mut jobs = Vec::new();
    for &b in benchmarks {
        for (_, comp, vaxx) in FAMILIES {
            jobs.push(benchmark_job(b, comp, config, seed));
            for &s in settings {
                jobs.push(benchmark_job(b, vaxx, &apply(config.clone(), s), seed));
            }
        }
    }
    let mut results = context().run("sensitivity", jobs).into_iter();
    let mut rows = Vec::new();
    for &b in benchmarks {
        for (family, _, _) in FAMILIES {
            let comp_lat = results.next().expect("anchor cell").avg_packet_latency();
            let vaxx_latencies = settings
                .iter()
                .map(|s| (*s, results.next().expect("vaxx cell").avg_packet_latency()))
                .collect();
            rows.push(SensitivityRow {
                benchmark: b,
                family,
                compression_latency: comp_lat,
                vaxx_latencies,
            });
        }
    }
    rows
}

/// Renders Figure 13/14 as a text table.
pub fn render_sensitivity(title: &str, rows: &[SensitivityRow]) -> String {
    let mut out = format!("{title}\nbenchmark      family    compression");
    if let Some(first) = rows.first() {
        for (s, _) in &first.vaxx_latencies {
            out.push_str(&format!("  vaxx@{s:<3}"));
        }
    }
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:<9} {:>10.2}",
            r.benchmark.name(),
            r.family,
            r.compression_latency
        ));
        for (_, lat) in &r.vaxx_latencies {
            out.push_str(&format!(" {lat:>8.2}"));
        }
        out.push('\n');
    }
    out
}

/// One point of the fault-injection resilience sweep: FP-VAXX under an
/// increasing link bit-flip rate.
#[derive(Debug, Clone, Copy)]
pub struct FaultCurvePoint {
    /// Link bit-flip rate in flips per million traversals.
    pub flip_ppm: u32,
    /// Average end-to-end packet latency in cycles.
    pub avg_latency: f64,
    /// Data value quality (1 − mean relative word error).
    pub quality: f64,
    /// Bit flips the fault injector actually performed.
    pub bit_flips: u64,
    /// Delivered words audited by the end-to-end bound checker.
    pub bound_checked_words: u64,
    /// Audited words whose error exceeded the configured threshold.
    pub bound_violations: u64,
}

/// The fault-injection resilience sweep: runs `benchmark` under FP-VAXX at
/// each link bit-flip rate, through the fault-tolerant campaign path, and
/// reports one curve point per rate that completed plus the typed failures
/// for cells that did not (watchdog aborts at extreme rates are expected
/// behaviour, not sweep-ending errors).
///
/// At rate 0 the fault plan is inert and the cell is bit-identical to a
/// healthy run; violations must be 0 there, and the violation count is
/// non-decreasing in the flip rate.
pub fn faults_sweep(
    benchmark: Benchmark,
    rates_ppm: &[u32],
    config: &SystemConfig,
    seed: u64,
) -> (Vec<(u32, Option<FaultCurvePoint>)>, Vec<CellFailure>) {
    let jobs = rates_ppm
        .iter()
        .map(|&ppm| {
            let cfg = config.clone().with_faults(FaultPlan::bit_flips(seed, ppm));
            checked_benchmark_job(benchmark, Mechanism::FpVaxx, &cfg, seed)
        })
        .collect();
    let (results, failures, _) = context().run_checked("faults", jobs);
    let points = rates_ppm
        .iter()
        .zip(results)
        .map(|(&ppm, slot)| {
            let point = slot.map(|r| FaultCurvePoint {
                flip_ppm: ppm,
                avg_latency: r.avg_packet_latency(),
                quality: r.data_quality(),
                bit_flips: r.stats.faults.bit_flips,
                bound_checked_words: r.stats.faults.bound_checked_words,
                bound_violations: r.stats.faults.bound_violations,
            });
            (ppm, point)
        })
        .collect();
    (points, failures)
}

/// Renders the fault sweep as a text table, failed cells included.
pub fn render_faults(
    benchmark: Benchmark,
    points: &[(u32, Option<FaultCurvePoint>)],
    failures: &[CellFailure],
) -> String {
    let mut out = format!(
        "Fault-injection sweep: {} / FP-VAXX\nflip_ppm    latency   quality   bit_flips    checked  violations\n",
        benchmark.name()
    );
    for (ppm, point) in points {
        match point {
            Some(p) => out.push_str(&format!(
                "{:>8} {:>10.2} {:>9.4} {:>11} {:>10} {:>11}\n",
                ppm,
                p.avg_latency,
                p.quality,
                p.bit_flips,
                p.bound_checked_words,
                p.bound_violations,
            )),
            None => out.push_str(&format!("{ppm:>8}     failed (see below)\n")),
        }
    }
    for f in failures {
        out.push_str(&format!("failed: {f}\n"));
    }
    out
}

/// CSV form of the fault sweep (completed points only).
pub fn faults_csv(points: &[(u32, Option<FaultCurvePoint>)]) -> String {
    let mut out = String::from(
        "flip_ppm,avg_latency,quality,bit_flips,bound_checked_words,bound_violations\n",
    );
    for (ppm, point) in points {
        if let Some(p) = point {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                ppm,
                p.avg_latency,
                p.quality,
                p.bit_flips,
                p.bound_checked_words,
                p.bound_violations,
            ));
        } else {
            out.push_str(&format!("{ppm},,,,,\n"));
        }
    }
    out
}

/// One point of the lossy-link degradation sweep (`anoc run lossy`):
/// FP-VAXX under an increasing per-hop word-loss rate, with the loss rate
/// additionally scaled by each packet's approximation level (LORAX-style:
/// aggressively approximated traffic rides the cheaper, lossier signaling).
#[derive(Debug, Clone, Copy)]
pub struct LossCurvePoint {
    /// Base per-hop loss rate in erasures per million traversals.
    pub loss_ppm: u32,
    /// Average end-to-end packet latency in cycles.
    pub avg_latency: f64,
    /// Data value quality (1 − mean relative word error).
    pub quality: f64,
    /// Words the lossy links actually erased.
    pub words_lost: u64,
    /// Delivered words audited by the end-to-end bound checker.
    pub bound_checked_words: u64,
    /// Audited words whose error exceeded the configured threshold.
    pub bound_violations: u64,
}

/// The lossy-link degradation sweep: runs `benchmark` under FP-VAXX at each
/// base loss rate (each nonzero rate also scaled by `approx_scale_ppm` per
/// approximation-threshold percent), through the fault-tolerant campaign
/// path. Rate 0 installs an inert plan and is bit-identical to a healthy
/// run: violations must be 0 there, and the violation count is
/// non-decreasing in the loss rate.
pub fn lossy_sweep(
    benchmark: Benchmark,
    rates_ppm: &[u32],
    approx_scale_ppm: u32,
    config: &SystemConfig,
    seed: u64,
) -> (Vec<(u32, Option<LossCurvePoint>)>, Vec<CellFailure>) {
    let jobs = rates_ppm
        .iter()
        .map(|&ppm| {
            let plan = if ppm == 0 {
                LossPlan::none()
            } else {
                LossPlan::scaled(seed, ppm, approx_scale_ppm)
            };
            let cfg = config.clone().with_loss(plan);
            checked_benchmark_job(benchmark, Mechanism::FpVaxx, &cfg, seed)
        })
        .collect();
    let (results, failures, _) = context().run_checked("lossy", jobs);
    let points = rates_ppm
        .iter()
        .zip(results)
        .map(|(&ppm, slot)| {
            let point = slot.map(|r| LossCurvePoint {
                loss_ppm: ppm,
                avg_latency: r.avg_packet_latency(),
                quality: r.data_quality(),
                words_lost: r.stats.faults.words_lost,
                bound_checked_words: r.stats.faults.bound_checked_words,
                bound_violations: r.stats.faults.bound_violations,
            });
            (ppm, point)
        })
        .collect();
    (points, failures)
}

/// Renders the lossy-link sweep as a text table, failed cells included.
pub fn render_lossy(
    benchmark: Benchmark,
    points: &[(u32, Option<LossCurvePoint>)],
    failures: &[CellFailure],
) -> String {
    let mut out = format!(
        "Lossy-link sweep: {} / FP-VAXX\nloss_ppm    latency   quality  words_lost    checked  violations\n",
        benchmark.name()
    );
    for (ppm, point) in points {
        match point {
            Some(p) => out.push_str(&format!(
                "{:>8} {:>10.2} {:>9.4} {:>11} {:>10} {:>11}\n",
                ppm,
                p.avg_latency,
                p.quality,
                p.words_lost,
                p.bound_checked_words,
                p.bound_violations,
            )),
            None => out.push_str(&format!("{ppm:>8}     failed (see below)\n")),
        }
    }
    for f in failures {
        out.push_str(&format!("failed: {f}\n"));
    }
    out
}

/// CSV form of the lossy-link sweep (completed points only).
pub fn lossy_csv(points: &[(u32, Option<LossCurvePoint>)]) -> String {
    let mut out = String::from(
        "loss_ppm,avg_latency,quality,words_lost,bound_checked_words,bound_violations\n",
    );
    for (ppm, point) in points {
        if let Some(p) = point {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                ppm,
                p.avg_latency,
                p.quality,
                p.words_lost,
                p.bound_checked_words,
                p.bound_violations,
            ));
        } else {
            out.push_str(&format!("{ppm},,,,,\n"));
        }
    }
    out
}

/// One row of the QoS campaign (`anoc run qos`): one application kernel at
/// one output-error budget, comparing the runtime per-flow control loop
/// against the best *worst-case-safe* static threshold.
#[derive(Debug, Clone)]
pub struct QosStudyRow {
    /// Application kernel name (fig16/fig17 mini-kernels).
    pub kernel: &'static str,
    /// The benchmark whose traffic profile drives the network cell.
    pub benchmark: Benchmark,
    /// Application output-error budget in percent.
    pub budget_percent: u32,
    /// Threshold the app-level AIMD controller converged to.
    pub converged_percent: u32,
    /// Realized kernel output error at the converged threshold — the
    /// quality-within-budget check: must be ≤ `budget_percent / 100`.
    pub realized_error: f64,
    /// Largest static threshold whose *worst-case* output error (every
    /// approximable word off by the full threshold) still meets the budget —
    /// what an offline configuration must pick to guarantee the budget.
    pub static_percent: u32,
    /// Realized kernel output error at that static threshold.
    pub static_error: f64,
    /// Network compression ratio delivered by the per-flow QoS run.
    pub qos_compression: f64,
    /// Network compression ratio of the static-threshold run.
    pub static_compression: f64,
    /// Average packet latency of the QoS run (cycles).
    pub qos_latency: f64,
    /// Average packet latency of the static run (cycles).
    pub static_latency: f64,
    /// Delivered data quality of the QoS run's measurement window.
    pub qos_quality: f64,
    /// End-to-end bound violations in the QoS run (must be 0: no flow may
    /// approximate past the spec ceiling).
    pub qos_violations: u64,
}

impl QosStudyRow {
    /// Whether the realized output error landed within the budget.
    pub fn within_budget(&self) -> bool {
        self.realized_error <= f64::from(self.budget_percent) / 100.0 + 1e-9
    }

    /// Whether the QoS run delivered at least the static run's compression.
    pub fn beats_static(&self) -> bool {
        self.qos_compression >= self.static_compression
    }
}

/// The QoS campaign: for every fig16/17 mini-kernel (paired with its
/// benchmark traffic profile) and every output-error budget,
///
/// 1. converge an app-level AIMD controller ([`QualityController`]) on the
///    kernel's realized output error — epochs of kernel evaluation feeding
///    `observe_epoch` until the threshold stabilizes;
/// 2. find the largest *worst-case-safe* static threshold: the offline
///    alternative must assume every approximable word errs by the full
///    threshold ([`AdversarialTransport`]), which is exactly the headroom a
///    runtime controller can harvest and a static pick cannot;
/// 3. run the network under the per-flow QoS control plane
///    ([`QosSpec::paper`] at the budget's quality floor) and under the
///    static threshold, and compare delivered compression.
///
/// [`QualityController`]: anoc_core::control::QualityController
/// [`QosSpec::paper`]: anoc_core::control::QosSpec::paper
/// [`AdversarialTransport`]: anoc_apps::transport::AdversarialTransport
pub fn qos_study(config: &SystemConfig, seed: u64, budgets: &[u32]) -> Vec<QosStudyRow> {
    use anoc_apps::transport::{AdversarialTransport, ApproxTransport, PreciseTransport};
    use anoc_core::control::{QosSpec, QualityController};
    use anoc_core::threshold::ErrorThreshold;

    let kernels = anoc_apps::default_kernels();
    // Application side first (cheap, this thread): per (kernel, budget),
    // converge the app-level controller and find the worst-case-safe static
    // threshold. The static percent feeds the network job below.
    struct AppSide {
        converged_percent: u32,
        realized_error: f64,
        static_percent: u32,
        static_error: f64,
    }
    let mut app: Vec<AppSide> = Vec::new();
    for (kernel, _) in kernels.iter().zip(Benchmark::ALL) {
        let precise = kernel.run(&mut PreciseTransport);
        for &budget in budgets {
            let target = 1.0 - f64::from(budget) / 100.0;
            let error_at = |percent: u32| -> f64 {
                if percent == 0 {
                    return 0.0;
                }
                let t = ErrorThreshold::from_percent(percent).expect("valid percent");
                let out = kernel.run(&mut ApproxTransport::fp_vaxx(t));
                kernel.output_error(&precise, &out)
            };
            // 1. App-level convergence: epochs of kernel evaluation, AIMD on
            // the realized output quality. Converged when one full epoch
            // leaves the threshold unchanged (bounded walk: the percent
            // range is 1..=20 and AIMD moves monotonically between limit
            // points, so 16 epochs is generous).
            let mut ctl = QualityController::new(target.max(1e-6), 10, 1, 20);
            let mut percent = ctl.percent();
            let mut realized = error_at(percent);
            for _ in 0..16 {
                ctl.observe_epoch(1.0 - realized, 1, 0);
                if ctl.percent() == percent {
                    break;
                }
                percent = ctl.percent();
                realized = error_at(percent);
            }
            // 2. The offline pick: largest threshold whose worst-case output
            // error still meets the budget.
            let worst_at = |percent: u32| -> f64 {
                let t = ErrorThreshold::from_percent(percent).expect("valid percent");
                let out = kernel.run(&mut AdversarialTransport::new(t));
                kernel.output_error(&precise, &out)
            };
            let static_percent = (1..=20u32)
                .rev()
                .find(|&p| worst_at(p) <= f64::from(budget) / 100.0 + 1e-9)
                .unwrap_or(0);
            let static_error = error_at(static_percent);
            app.push(AppSide {
                converged_percent: percent,
                realized_error: realized,
                static_percent,
                static_error,
            });
        }
    }
    // Network side: one per-flow QoS cell plus one static cell per row, as
    // one parallel campaign.
    let mut jobs = Vec::new();
    let mut idx = 0usize;
    for (_, benchmark) in kernels.iter().zip(Benchmark::ALL) {
        for &budget in budgets {
            let floor_ppm = 1_000_000u32.saturating_sub(budget.saturating_mul(10_000));
            // Two study-scale adjustments to the paper spec: the per-flow
            // anti-windup floor (64 words/epoch) is sized for long
            // production runs and would hold sparse flows at their initial
            // threshold forever at campaign scale, and the start is made
            // optimistic (begin at the ceiling, tighten on violation) so a
            // flow whose first packet arrives mid-measurement is not
            // permanently behind the static ladder it is compared against.
            let base = QosSpec::paper(floor_ppm);
            let spec = QosSpec {
                min_words: 1,
                initial_percent: base.max_percent,
                ..base
            };
            let qos_cfg = config.clone().with_qos(spec);
            jobs.push(benchmark_job(benchmark, Mechanism::FpVaxx, &qos_cfg, seed));
            let static_cfg = config.clone().with_threshold(app[idx].static_percent);
            jobs.push(benchmark_job(
                benchmark,
                Mechanism::FpVaxx,
                &static_cfg,
                seed,
            ));
            idx += 1;
        }
    }
    let mut results = context().run("qos", jobs).into_iter();
    let mut rows = Vec::new();
    let mut idx = 0usize;
    for (kernel, benchmark) in kernels.iter().zip(Benchmark::ALL) {
        for &budget in budgets {
            let a = &app[idx];
            idx += 1;
            let qos_run = results.next().expect("qos cell");
            let static_run = results.next().expect("static cell");
            rows.push(QosStudyRow {
                kernel: kernel.name(),
                benchmark,
                budget_percent: budget,
                converged_percent: a.converged_percent,
                realized_error: a.realized_error,
                static_percent: a.static_percent,
                static_error: a.static_error,
                qos_compression: qos_run.stats.encode.compression_ratio(),
                static_compression: static_run.stats.encode.compression_ratio(),
                qos_latency: qos_run.avg_packet_latency(),
                static_latency: static_run.avg_packet_latency(),
                qos_quality: qos_run.data_quality(),
                qos_violations: qos_run.stats.faults.bound_violations,
            });
        }
    }
    rows
}

/// Renders the QoS campaign as a text table with a per-budget summary of
/// budget compliance and the QoS-vs-static compression score.
pub fn render_qos(rows: &[QosStudyRow]) -> String {
    let mut out = String::from(
        "Per-flow QoS campaign: runtime control loop vs worst-case-safe static threshold\n\
         kernel          budget%  conv%  realized_err  static%  static_err  qos_comp  static_comp  qos_lat  quality  in_budget\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<15} {:>7} {:>6} {:>13.4} {:>8} {:>11.4} {:>9.3} {:>12.3} {:>8.2} {:>8.4} {:>10}\n",
            r.kernel,
            r.budget_percent,
            r.converged_percent,
            r.realized_error,
            r.static_percent,
            r.static_error,
            r.qos_compression,
            r.static_compression,
            r.qos_latency,
            r.qos_quality,
            if r.within_budget() { "yes" } else { "NO" },
        ));
    }
    let mut budgets: Vec<u32> = rows.iter().map(|r| r.budget_percent).collect();
    budgets.sort_unstable();
    budgets.dedup();
    for b in budgets {
        let of_budget: Vec<&QosStudyRow> = rows.iter().filter(|r| r.budget_percent == b).collect();
        let within = of_budget.iter().filter(|r| r.within_budget()).count();
        let beats = of_budget.iter().filter(|r| r.beats_static()).count();
        out.push_str(&format!(
            "summary: at {b}% budget, {within}/{} apps within budget; QoS compression >= static on {beats}/{}\n",
            of_budget.len(),
            of_budget.len(),
        ));
    }
    out
}

/// Serialises the QoS campaign as CSV.
pub fn qos_csv(rows: &[QosStudyRow]) -> String {
    let mut out = String::from(
        "kernel,benchmark,budget_percent,converged_percent,realized_error,static_percent,static_error,qos_compression,static_compression,qos_latency,static_latency,qos_quality,qos_violations,within_budget,beats_static\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{:.6},{},{:.6},{:.6},{:.6},{:.4},{:.4},{:.6},{},{},{}\n",
            r.kernel,
            r.benchmark.name(),
            r.budget_percent,
            r.converged_percent,
            r.realized_error,
            r.static_percent,
            r.static_error,
            r.qos_compression,
            r.static_compression,
            r.qos_latency,
            r.static_latency,
            r.qos_quality,
            r.qos_violations,
            r.within_budget(),
            r.beats_static(),
        ));
    }
    out
}

/// Serialises the QoS campaign as JSON (schema documented in
/// EXPERIMENTS.md): `{"study":"qos","rows":[{...}, ...]}`.
pub fn qos_json(rows: &[QosStudyRow]) -> String {
    let mut out = String::from("{\"study\":\"qos\",\"rows\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"kernel\":\"{}\",\"benchmark\":\"{}\",\"budget_percent\":{},\
             \"converged_percent\":{},\"realized_error\":{:.6},\
             \"static_percent\":{},\"static_error\":{:.6},\
             \"qos_compression\":{:.6},\"static_compression\":{:.6},\
             \"qos_latency\":{:.4},\"static_latency\":{:.4},\
             \"qos_quality\":{:.6},\"qos_violations\":{},\
             \"within_budget\":{},\"beats_static\":{}}}",
            r.kernel,
            r.benchmark.name(),
            r.budget_percent,
            r.converged_percent,
            r.realized_error,
            r.static_percent,
            r.static_error,
            r.qos_compression,
            r.static_compression,
            r.qos_latency,
            r.static_latency,
            r.qos_quality,
            r.qos_violations,
            r.within_budget(),
            r.beats_static(),
        ));
    }
    out.push_str("\n]}\n");
    out
}

/// One bar of Figure 15: dynamic power normalized to baseline.
#[derive(Debug, Clone, Copy)]
pub struct Fig15Row {
    /// Benchmark.
    pub benchmark: Benchmark,
    /// Mechanism.
    pub mechanism: Mechanism,
    /// Dynamic power normalized to the baseline run of the same benchmark.
    pub normalized_power: f64,
}

/// Figure 15: dynamic power consumption normalized to baseline.
pub fn fig15(matrix: &BenchmarkMatrix) -> Vec<Fig15Row> {
    let model = EnergyModel::default();
    let mut rows = Vec::new();
    for (b, runs) in &matrix.cells {
        let base = model.dynamic_power(&runs[0].activity).max(1e-12);
        for r in runs {
            rows.push(Fig15Row {
                benchmark: *b,
                mechanism: r.mechanism,
                normalized_power: model.dynamic_power(&r.activity) / base,
            });
        }
    }
    rows
}

/// Renders Figure 15 as a text table.
pub fn render_fig15(rows: &[Fig15Row]) -> String {
    let mut out = String::from(
        "Figure 15: Dynamic Power (normalized to Baseline)\nbenchmark      mechanism  normalized\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:<9} {:>10.3}\n",
            r.benchmark.name(),
            r.mechanism.name(),
            r.normalized_power
        ));
    }
    out
}

/// One point of Figure 16: application output error and normalized
/// performance at an error budget.
#[derive(Debug, Clone)]
pub struct Fig16Row {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Data error budget in percent (0, 10, 20).
    pub budget_percent: u32,
    /// Output error with the real FP-VAXX value path (typically far below
    /// the budget because matches land in close proximity).
    pub output_error: f64,
    /// Output error when the data channel spends the *entire* budget on
    /// every approximable word (the pessimistic bound; the paper's measured
    /// errors lie between `output_error` and this).
    pub worst_case_error: f64,
    /// Runtime performance normalized to the 0% budget.
    pub normalized_performance: f64,
}

/// Figure 16: application output accuracy and normalized performance for
/// data error budgets of 0/10/20%.
///
/// Output error comes from running the real kernels through an FP-VAXX
/// value path at each budget. Performance comes from the NoC: the measured
/// latency improvement of FP-VAXX at each budget over the 0% (exact
/// compression) case, scaled by the benchmark's sharing degree — the §5.4
/// observation that "higher degree of sharing leads to ... improving the
/// efficacy of our mechanism".
pub fn fig16(config: &SystemConfig, seed: u64) -> Vec<Fig16Row> {
    use anoc_apps::transport::{ApproxTransport, PreciseTransport};
    use anoc_core::threshold::ErrorThreshold;
    let budgets = [0u32, 10, 20];
    let kernels = anoc_apps::default_kernels();
    // The network cells (one FP-COMP anchor plus one FP-VAXX run per nonzero
    // budget, per benchmark) go through a campaign; the application kernels
    // are cheap and stay on this thread.
    let mut jobs = Vec::new();
    for (_, benchmark) in kernels.iter().zip(Benchmark::ALL) {
        jobs.push(benchmark_job(benchmark, Mechanism::FpComp, config, seed));
        for &budget in &budgets[1..] {
            let cfg = config.clone().with_threshold(budget);
            jobs.push(benchmark_job(benchmark, Mechanism::FpVaxx, &cfg, seed));
        }
    }
    let mut lats = context()
        .run("fig16", jobs)
        .into_iter()
        .map(|r| r.avg_packet_latency());
    let mut rows = Vec::new();
    for (kernel, benchmark) in kernels.iter().zip(Benchmark::ALL) {
        let precise = kernel.run(&mut PreciseTransport);
        let sharing = benchmark.profile().sharing;
        // Latency at 0% budget (exact compression) anchors performance.
        let lat0 = lats.next().expect("anchor cell");
        for budget in budgets {
            let (error, worst, lat) = if budget == 0 {
                (0.0, 0.0, lat0)
            } else {
                let threshold = ErrorThreshold::from_percent(budget).expect("valid budget");
                let mut t = ApproxTransport::fp_vaxx(threshold);
                let approx = kernel.run(&mut t);
                let err = kernel.output_error(&precise, &approx);
                let mut adv = anoc_apps::transport::AdversarialTransport::new(threshold);
                let worst_out = kernel.run(&mut adv);
                let worst = kernel.output_error(&precise, &worst_out);
                let lat = lats.next().expect("budget cell");
                (err, worst, lat)
            };
            // Network latency improvement → runtime improvement, scaled by
            // how communication-bound (sharing-heavy) the benchmark is.
            let latency_gain = ((lat0 - lat) / lat0).max(0.0);
            let normalized_performance = 1.0 + sharing * latency_gain;
            rows.push(Fig16Row {
                benchmark: kernel.name(),
                budget_percent: budget,
                output_error: error,
                worst_case_error: worst,
                normalized_performance,
            });
        }
    }
    rows
}

/// Renders Figure 16 as a text table.
pub fn render_fig16(rows: &[Fig16Row]) -> String {
    let mut out = String::from(
        "Figure 16: Application Output Accuracy and Normalized Performance\n\
         benchmark      budget%  error(FP-VAXX)  error(worst-case)  accuracy%  norm_perf\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:>7} {:>15.4} {:>18.4} {:>10.2} {:>10.3}\n",
            r.benchmark,
            r.budget_percent,
            r.output_error,
            r.worst_case_error,
            (1.0 - r.worst_case_error) * 100.0,
            r.normalized_performance
        ));
    }
    out
}

/// The Figure 17 artefacts: precise and approximate bodytrack outputs.
#[derive(Debug, Clone)]
pub struct Fig17Result {
    /// Mean output-vector difference (the paper reports 2.4% at 10%).
    pub vector_difference: f64,
    /// PGM bytes of a precise frame (for writing to disk).
    pub precise_pgm: Vec<u8>,
    /// PGM bytes of the corresponding approximate frame.
    pub approx_pgm: Vec<u8>,
}

/// Figure 17: precise vs approximate bodytrack output at a 10% threshold.
pub fn fig17(seed: u64) -> Fig17Result {
    use anoc_apps::bodytrack::{frame_to_pgm, Bodytrack};
    use anoc_apps::transport::ApproxTransport;
    use anoc_core::threshold::ErrorThreshold;
    let kernel = Bodytrack::new(64, 3, 10, seed);
    let (frames, _) = kernel.render();
    let mut transport =
        ApproxTransport::fp_vaxx(ErrorThreshold::from_percent(10).expect("10% is valid"));
    let (precise, approx, err) = anoc_apps::kernel::evaluate(&kernel, &mut transport);
    debug_assert_eq!(precise.len(), approx.len());
    // Render the mid-sequence frame both ways for visual comparison.
    let mid = frames.len() / 2;
    let precise_frame = &frames[mid];
    let mut t2 = ApproxTransport::fp_vaxx(ErrorThreshold::from_percent(10).expect("10% is valid"));
    let approx_frame = anoc_apps::transport::BlockTransport::transmit_f32(&mut t2, precise_frame);
    Fig17Result {
        vector_difference: err,
        precise_pgm: frame_to_pgm(precise_frame, kernel.size),
        approx_pgm: frame_to_pgm(&approx_frame, kernel.size),
    }
}

/// Extension study (beyond the paper's five mechanisms): the VAXX engine
/// plugged into a third compression family — base-delta (BD-COMP/BD-VAXX,
/// after the Zhan et al. mechanism cited in §6) — plus Jin et al.'s
/// adaptive on/off controller wrapped around FP-COMP. Demonstrates the §1
/// claim that VAXX is a "plug and play module for any underlying NoC data
/// compression mechanism".
pub fn extension_study(benchmark: Benchmark, config: &SystemConfig, seed: u64) -> Vec<RunResult> {
    const MECHANISMS: [Mechanism; 6] = [
        Mechanism::FpComp,
        Mechanism::FpVaxx,
        Mechanism::Custom("BD-COMP"),
        Mechanism::Custom("BD-VAXX"),
        Mechanism::Custom("FP-adaptive"),
        Mechanism::Custom("FP-VAXX-win"),
    ];
    let jobs = MECHANISMS
        .iter()
        .map(|&mechanism| {
            let id = format!("ext/{}/{}", benchmark.name(), mechanism.name());
            let key = cell_key("ext", config, mechanism.name(), benchmark.name(), seed);
            let config = config.clone();
            JobSpec::new(id, key, move || {
                run_extension_cell(benchmark, mechanism, &config, seed)
            })
        })
        .collect();
    context().run("extensions", jobs)
}

/// Runs one extension-study cell: `mechanism`'s codec family (built fresh
/// per node) under benchmark traffic.
fn run_extension_cell(
    benchmark: Benchmark,
    mechanism: Mechanism,
    config: &SystemConfig,
    seed: u64,
) -> RunResult {
    use crate::runner::run_custom;
    use anoc_compression::adaptive::AdaptiveEncoder;
    use anoc_compression::bd::{BdDecoder, BdEncoder};
    use anoc_compression::fp::{FpDecoder, FpEncoder};
    use anoc_core::avcl::Avcl;
    use anoc_core::window::WindowBudget;
    use anoc_noc::NodeCodec;
    use anoc_traffic::BenchmarkTraffic;

    let nodes = config.noc.num_nodes();
    let t = config.threshold();
    let factory = || -> NodeCodec {
        match mechanism.name() {
            "FP-COMP" => NodeCodec::new(Box::new(FpEncoder::fp_comp()), Box::new(FpDecoder::new())),
            "FP-VAXX" => NodeCodec::new(
                Box::new(FpEncoder::fp_vaxx(Avcl::new(t))),
                Box::new(FpDecoder::new()),
            ),
            "BD-COMP" => NodeCodec::new(Box::new(BdEncoder::bd_comp()), Box::new(BdDecoder::new())),
            "BD-VAXX" => NodeCodec::new(
                Box::new(BdEncoder::bd_vaxx(Avcl::new(t))),
                Box::new(BdDecoder::new()),
            ),
            "FP-adaptive" => NodeCodec::new(
                Box::new(AdaptiveEncoder::new(FpEncoder::fp_comp())),
                Box::new(FpDecoder::new()),
            ),
            "FP-VAXX-win" => NodeCodec::new(
                Box::new(FpEncoder::fp_vaxx_windowed(WindowBudget::new(
                    16,
                    t.percent().max(1),
                ))),
                Box::new(FpDecoder::new()),
            ),
            other => panic!("unknown extension mechanism {other}"),
        }
    };
    let mut source = BenchmarkTraffic::new(benchmark, nodes, config.approx_ratio, seed);
    let codecs = (0..nodes).map(|_| factory()).collect();
    run_custom(&mut source, mechanism, config, codecs)
}

/// Renders the extension study as a text table.
pub fn render_extension(benchmark: Benchmark, results: &[RunResult]) -> String {
    let mut out = format!(
        "Extension study ({benchmark}): VAXX plugged into three compression families\n\
         mechanism     latency  norm_flits  comp_ratio  approx_frac  quality\n"
    );
    for r in results {
        out.push_str(&format!(
            "{:<13} {:>8.2} {:>11.3} {:>11.3} {:>12.3} {:>8.4}{}\n",
            r.mechanism.name(),
            r.avg_packet_latency(),
            r.stats.normalized_data_flits(),
            r.stats.encode.compression_ratio(),
            r.stats.encode.approx_fraction(),
            r.data_quality(),
            // A run that outlived its drain budget reports lower-bound
            // delivery stats, not final ones — say so on the cell's line.
            if r.drained { "" } else { "  [undrained]" },
        ));
    }
    out
}

/// One cell of the LZ-VAXX study (`anoc run lz`): one mechanism at one
/// error threshold on one benchmark, with the end-to-end bound auditor armed.
#[derive(Debug, Clone, Copy)]
pub struct LzStudyRow {
    /// Benchmark.
    pub benchmark: Benchmark,
    /// Error threshold percentage of this sweep point.
    pub threshold_percent: u32,
    /// Mechanism (DI-VAXX, FP-VAXX or LZ-VAXX).
    pub mechanism: Mechanism,
    /// Compression ratio (input bits / output bits).
    pub compression_ratio: f64,
    /// The encoder's pipeline latency in cycles (LZ-VAXX pays one extra
    /// cycle for cross-word match extension).
    pub encode_latency_cycles: u64,
    /// Average end-to-end packet latency in cycles.
    pub avg_packet_latency: f64,
    /// Data value quality (1 − mean relative word error).
    pub quality: f64,
    /// Delivered words audited by the end-to-end bound checker.
    pub bound_checked_words: u64,
    /// Audited words whose error exceeded the threshold (must be 0 in a
    /// fault-free run for every enumerated mechanism).
    pub bound_violations: u64,
}

/// The LZ-VAXX study: sweeps `thresholds` × `benchmarks` × the three VAXX
/// mechanisms (DI, FP, LZ) with the bound auditor armed, so LZ-VAXX's
/// compression ratio, encode latency and output quality land next to the
/// paper's two mechanisms at equal error budgets.
pub fn lz_study(
    config: &SystemConfig,
    seed: u64,
    thresholds: &[u32],
    benchmarks: &[Benchmark],
) -> Vec<LzStudyRow> {
    const MECHANISMS: [Mechanism; 3] = [Mechanism::DiVaxx, Mechanism::FpVaxx, Mechanism::LzVaxx];
    let mut jobs = Vec::new();
    for &t in thresholds {
        let cfg = config.clone().with_threshold(t);
        for &b in benchmarks {
            for m in MECHANISMS {
                jobs.push(benchmark_job(b, m, &cfg, seed));
            }
        }
    }
    let mut results = context().run("lz", jobs).into_iter();
    let mut rows = Vec::new();
    for &t in thresholds {
        let threshold = config.clone().with_threshold(t).threshold();
        for &b in benchmarks {
            for m in MECHANISMS {
                let r = results.next().expect("one result per cell");
                rows.push(LzStudyRow {
                    benchmark: b,
                    threshold_percent: t,
                    mechanism: m,
                    compression_ratio: r.stats.encode.compression_ratio(),
                    encode_latency_cycles: m.codecs(1, threshold)[0].encoder.compression_latency(),
                    avg_packet_latency: r.avg_packet_latency(),
                    quality: r.data_quality(),
                    bound_checked_words: r.stats.faults.bound_checked_words,
                    bound_violations: r.stats.faults.bound_violations,
                });
            }
        }
    }
    rows
}

/// Renders the LZ-VAXX study as a text table, with a per-threshold summary
/// of how many apps LZ-VAXX compresses at least as well as DI-VAXX on.
pub fn render_lz(rows: &[LzStudyRow]) -> String {
    let mut out = String::from(
        "LZ-VAXX study: streaming approximate-LZ vs DI-VAXX / FP-VAXX\n\
         threshold%  benchmark      mechanism  comp_ratio  enc_lat  latency  quality  checked  violations\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>9} {:<15} {:<9} {:>11.3} {:>8} {:>8.2} {:>8.4} {:>8} {:>11}\n",
            r.threshold_percent,
            r.benchmark.name(),
            r.mechanism.name(),
            r.compression_ratio,
            r.encode_latency_cycles,
            r.avg_packet_latency,
            r.quality,
            r.bound_checked_words,
            r.bound_violations,
        ));
    }
    let mut thresholds: Vec<u32> = rows.iter().map(|r| r.threshold_percent).collect();
    thresholds.dedup();
    for t in thresholds {
        let di: Vec<&LzStudyRow> = rows
            .iter()
            .filter(|r| r.threshold_percent == t && r.mechanism == Mechanism::DiVaxx)
            .collect();
        let wins = rows
            .iter()
            .filter(|r| r.threshold_percent == t && r.mechanism == Mechanism::LzVaxx)
            .filter(|lz| {
                di.iter().any(|d| {
                    d.benchmark == lz.benchmark && lz.compression_ratio >= d.compression_ratio
                })
            })
            .count();
        out.push_str(&format!(
            "summary: at {t}% threshold LZ-VAXX >= DI-VAXX compression on {wins}/{} apps\n",
            di.len()
        ));
    }
    out
}

/// Serialises the LZ-VAXX study as CSV.
pub fn lz_csv(rows: &[LzStudyRow]) -> String {
    let mut out = String::from(
        "threshold_percent,benchmark,mechanism,compression_ratio,encode_latency_cycles,avg_packet_latency,quality,bound_checked_words,bound_violations\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{:.6},{},{:.4},{:.6},{},{}\n",
            r.threshold_percent,
            r.benchmark.name(),
            r.mechanism.name(),
            r.compression_ratio,
            r.encode_latency_cycles,
            r.avg_packet_latency,
            r.quality,
            r.bound_checked_words,
            r.bound_violations,
        ));
    }
    out
}

/// Serialises the LZ-VAXX study as JSON (schema documented in
/// EXPERIMENTS.md): `{"study":"lz","rows":[{...}, ...]}`.
pub fn lz_json(rows: &[LzStudyRow]) -> String {
    let mut out = String::from("{\"study\":\"lz\",\"rows\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"threshold_percent\":{},\"benchmark\":\"{}\",\"mechanism\":\"{}\",\
             \"compression_ratio\":{:.6},\"encode_latency_cycles\":{},\
             \"avg_packet_latency\":{:.4},\"quality\":{:.6},\
             \"bound_checked_words\":{},\"bound_violations\":{}}}",
            r.threshold_percent,
            r.benchmark.name(),
            r.mechanism.name(),
            r.compression_ratio,
            r.encode_latency_cycles,
            r.avg_packet_latency,
            r.quality,
            r.bound_checked_words,
            r.bound_violations,
        ));
    }
    out.push_str("\n]}\n");
    out
}

/// Serialises Figure 9 rows as CSV.
pub fn fig9_csv(rows: &[Fig9Row]) -> String {
    let mut out = String::from("benchmark,mechanism,queue_lat,net_lat,decode_lat,total,quality\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{:.4},{:.4},{:.4},{:.4},{:.6}\n",
            r.benchmark.name(),
            r.mechanism.name(),
            r.queue_lat,
            r.net_lat,
            r.decode_lat,
            r.total(),
            r.quality
        ));
    }
    out
}

/// Serialises Figure 10 rows as CSV.
pub fn fig10_csv(rows: &[Fig10Row]) -> String {
    let mut out =
        String::from("benchmark,mechanism,exact_fraction,approx_fraction,compression_ratio\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{:.6},{:.6},{:.6}\n",
            r.benchmark.name(),
            r.mechanism.name(),
            r.exact_fraction,
            r.approx_fraction,
            r.compression_ratio
        ));
    }
    out
}

/// Serialises Figure 11 rows as CSV.
pub fn fig11_csv(rows: &[Fig11Row]) -> String {
    let mut out = String::from("benchmark,mechanism,normalized_data_flits\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{:.6}\n",
            r.benchmark.name(),
            r.mechanism.name(),
            r.normalized_flits
        ));
    }
    out
}

/// Serialises Figure 12 series as CSV (long format).
pub fn fig12_csv(label: &str, series: &[Fig12Series]) -> String {
    let mut out = String::from("panel,mechanism,injection_rate,latency\n");
    for s in series {
        for (rate, lat) in &s.points {
            out.push_str(&format!(
                "{label},{},{rate:.3},{lat:.4}\n",
                s.mechanism.name()
            ));
        }
    }
    out
}

/// Serialises sensitivity (Figure 13/14) rows as CSV.
pub fn sensitivity_csv(rows: &[SensitivityRow]) -> String {
    let mut out = String::from("benchmark,family,setting,latency\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},compression,{:.4}\n",
            r.benchmark.name(),
            r.family,
            r.compression_latency
        ));
        for (setting, lat) in &r.vaxx_latencies {
            out.push_str(&format!(
                "{},{},{setting},{lat:.4}\n",
                r.benchmark.name(),
                r.family
            ));
        }
    }
    out
}

/// Serialises Figure 15 rows as CSV.
pub fn fig15_csv(rows: &[Fig15Row]) -> String {
    let mut out = String::from("benchmark,mechanism,normalized_dynamic_power\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{:.6}\n",
            r.benchmark.name(),
            r.mechanism.name(),
            r.normalized_power
        ));
    }
    out
}

/// Serialises Figure 16 rows as CSV.
pub fn fig16_csv(rows: &[Fig16Row]) -> String {
    let mut out = String::from(
        "benchmark,budget_percent,output_error,worst_case_error,normalized_performance\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{:.6},{:.6},{:.6}\n",
            r.benchmark,
            r.budget_percent,
            r.output_error,
            r.worst_case_error,
            r.normalized_performance
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SystemConfig {
        SystemConfig::paper().with_sim_cycles(2_000)
    }

    #[test]
    fn matrix_and_figures_9_10_11_15() {
        let cfg = tiny();
        let matrix = BenchmarkMatrix::run(&cfg, 1);
        assert_eq!(matrix.cells.len(), 8);

        let f9 = fig9(&matrix);
        assert_eq!(f9.len(), 40);
        assert!(f9.iter().all(|r| r.total() > 0.0));
        assert!(render_fig9(&f9).contains("ssca2"));

        let f10 = fig10(&matrix);
        assert_eq!(f10.len(), 32, "baseline excluded");
        assert!(f10.iter().all(|r| r.compression_ratio >= 0.9));
        assert!(render_fig10(&f10).contains("FP-VAXX"));

        let f11 = fig11(&matrix);
        let base_rows: Vec<_> = f11
            .iter()
            .filter(|r| r.mechanism == Mechanism::Baseline)
            .collect();
        assert!(base_rows
            .iter()
            .all(|r| (r.normalized_flits - 1.0).abs() < 1e-9));
        assert!(render_fig11(&f11).contains("normalized"));

        let f15 = fig15(&matrix);
        assert_eq!(f15.len(), 40);
        let base_power: Vec<_> = f15
            .iter()
            .filter(|r| r.mechanism == Mechanism::Baseline)
            .collect();
        assert!(base_power
            .iter()
            .all(|r| (r.normalized_power - 1.0).abs() < 1e-9));
        assert!(render_fig15(&f15).contains("Dynamic Power"));

        // The headline relationship: VAXX compresses at least as well as the
        // exact version on the data-intensive benchmark.
        let di = matrix.get(Benchmark::Ssca2, Mechanism::DiComp);
        let divaxx = matrix.get(Benchmark::Ssca2, Mechanism::DiVaxx);
        assert!(divaxx.stats.encode.encoded_fraction() >= di.stats.encode.encoded_fraction());
    }

    #[test]
    fn fig12_saturates_in_rate_order() {
        let cfg = SystemConfig::paper().with_sim_cycles(1_500);
        let series = fig12(
            Benchmark::Blackscholes,
            DestPattern::UniformRandom,
            &[0.05, 0.45],
            &cfg,
            3,
        );
        assert_eq!(series.len(), 5);
        for s in &series {
            assert!(!s.points.is_empty());
            // Latency grows (weakly) with offered load.
            if s.points.len() == 2 {
                assert!(s.points[1].1 >= s.points[0].1 * 0.8);
            }
        }
        let txt = render_fig12("test UR", &series);
        assert!(txt.contains("saturation"));
    }

    #[test]
    fn sensitivity_sweep_single_benchmark() {
        let cfg = SystemConfig::paper().with_sim_cycles(1_200);
        let rows = sensitivity_sweep(&cfg, 9, &[Benchmark::Swaptions], &[5, 20], |c, s| {
            c.with_threshold(s)
        });
        assert_eq!(rows.len(), 2, "one row per codec family");
        for r in &rows {
            assert_eq!(r.vaxx_latencies.len(), 2);
            assert!(r.compression_latency > 0.0);
            assert!(r.vaxx_latencies.iter().all(|(_, l)| *l > 0.0));
        }
        let txt = render_sensitivity("test", &rows);
        assert!(txt.contains("DI-based") && txt.contains("FP-based"));
        let csv = sensitivity_csv(&rows);
        assert!(csv.lines().count() == 1 + 2 * 3, "{csv}");
    }

    #[test]
    fn lz_study_audits_bounds_and_reports_all_three_mechanisms() {
        let cfg = SystemConfig::paper().with_sim_cycles(1_500);
        let rows = lz_study(&cfg, 6, &[10], &[Benchmark::Ssca2, Benchmark::Blackscholes]);
        assert_eq!(rows.len(), 6, "2 benchmarks x 3 mechanisms");
        for r in &rows {
            assert!(r.compression_ratio >= 0.9, "{r:?}");
            assert!(r.bound_checked_words > 0, "auditor must be armed: {r:?}");
            assert_eq!(r.bound_violations, 0, "fault-free run violated: {r:?}");
            assert!(r.quality > 0.9, "{r:?}");
        }
        let lz: Vec<_> = rows
            .iter()
            .filter(|r| r.mechanism == Mechanism::LzVaxx)
            .collect();
        assert_eq!(lz.len(), 2);
        assert!(lz.iter().all(|r| r.encode_latency_cycles == 4));

        let txt = render_lz(&rows);
        assert!(
            txt.contains("LZ-VAXX") && txt.contains("summary: at 10%"),
            "{txt}"
        );
        let csv = lz_csv(&rows);
        assert_eq!(csv.lines().count(), 1 + 6);
        let json = lz_json(&rows);
        assert!(json.starts_with("{\"study\":\"lz\",\"rows\":["), "{json}");
        assert_eq!(json.matches("\"mechanism\":\"LZ-VAXX\"").count(), 2);
        assert!(json.trim_end().ends_with("]}"), "{json}");
    }

    #[test]
    fn fig17_produces_images_and_small_difference() {
        let r = fig17(5);
        assert!(r.precise_pgm.starts_with(b"P5\n64 64\n255\n"));
        assert_eq!(r.precise_pgm.len(), r.approx_pgm.len());
        assert!(r.vector_difference < 0.15, "{}", r.vector_difference);
        // Figure 17's point is visual indistinguishability: at most a small
        // fraction of the 8-bit pixels may move, and only barely.
        let diffs = r
            .precise_pgm
            .iter()
            .zip(&r.approx_pgm)
            .filter(|(a, b)| a != b)
            .count();
        assert!(diffs < r.precise_pgm.len() / 4, "{diffs} bytes differ");
        for (a, b) in r.precise_pgm.iter().zip(&r.approx_pgm).skip(13) {
            assert!(a.abs_diff(*b) <= 26, "pixel moved {a} -> {b}");
        }
    }
}
