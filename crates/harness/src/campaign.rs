//! The harness side of the [`anoc_exec`] campaign engine: content keys for
//! simulation cells, the [`RunResult`] cache codec and the process-wide
//! execution context.
//!
//! Every simulation cell is a pure function of its inputs (DESIGN.md §6), so
//! a cell's cache key is the canonical rendering of exactly those inputs:
//! the full [`SystemConfig`], the mechanism, the workload and the seed,
//! prefixed with a campaign kind that distinguishes differently-driven cells
//! (benchmark traffic vs synthetic sweeps vs extension codecs). Cells that
//! are the same computation share a key across figures — a `fig13` rerun
//! reuses the matrix cells `fig9` already paid for.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use anoc_exec::{
    run_campaign, run_campaign_checked, CampaignOptions, CampaignReport, CellFailure, JobSpec,
    ResultCache, ResultCodec, ThreadPool,
};
use anoc_traffic::{Benchmark, DestPattern};

use crate::config::{Mechanism, SystemConfig};
use crate::persist::{decode_run_result, encode_run_result};
use crate::runner::RunResult;

/// The [`ResultCodec`] storing [`RunResult`]s in the campaign cache.
pub struct RunResultCodec;

impl ResultCodec<RunResult> for RunResultCodec {
    fn encode(&self, value: &RunResult) -> String {
        encode_run_result(value)
    }
    fn decode(&self, payload: &str) -> Option<RunResult> {
        decode_run_result(payload)
    }
}

/// The process-wide execution context: one thread pool and (optionally) one
/// result cache shared by every campaign in the process.
pub struct ExecContext {
    pool: ThreadPool,
    cache: Option<ResultCache>,
    sim_cycles: AtomicU64,
    wall_nanos: AtomicU64,
    executed_jobs: AtomicU64,
    cached_jobs: AtomicU64,
    keep_going: AtomicBool,
    failed_cells: AtomicU64,
}

impl ExecContext {
    fn with(pool: ThreadPool, cache: Option<ResultCache>) -> Self {
        ExecContext {
            pool,
            cache,
            sim_cycles: AtomicU64::new(0),
            wall_nanos: AtomicU64::new(0),
            executed_jobs: AtomicU64::new(0),
            cached_jobs: AtomicU64::new(0),
            keep_going: AtomicBool::new(false),
            failed_cells: AtomicU64::new(0),
        }
    }
}

/// Simulation-throughput totals accumulated over every campaign a context
/// has run, for the `anoc run` end-of-run summary.
#[derive(Debug, Clone, Copy)]
pub struct ExecTotals {
    /// Simulated cycles across all executed (non-cached) jobs.
    pub sim_cycles: u64,
    /// Wall-clock time spent inside campaigns.
    pub wall: Duration,
    /// Jobs that actually simulated (cache hits excluded).
    pub executed_jobs: u64,
    /// Jobs answered from the result cache without simulating.
    pub cached_jobs: u64,
}

impl ExecTotals {
    /// Aggregate simulator throughput in cycles per second.
    pub fn cycles_per_second(&self) -> f64 {
        if self.sim_cycles == 0 || self.wall.is_zero() {
            0.0
        } else {
            self.sim_cycles as f64 / self.wall.as_secs_f64()
        }
    }
}

static CONTEXT: OnceLock<ExecContext> = OnceLock::new();

/// Installs the process-wide context. Returns `false` if a context was
/// already installed (first caller wins); call before any experiment runs.
pub fn configure(threads: Option<usize>, cache: Option<ResultCache>) -> bool {
    CONTEXT
        .set(ExecContext::with(
            threads
                .map(ThreadPool::new)
                .unwrap_or_else(ThreadPool::with_default_size),
            cache,
        ))
        .is_ok()
}

/// The installed context, or a default one (default-sized pool, no cache —
/// the CLI opts into caching explicitly, so library users and tests always
/// simulate for real unless they configure otherwise).
pub fn context() -> &'static ExecContext {
    CONTEXT.get_or_init(|| ExecContext::with(ThreadPool::with_default_size(), None))
}

impl ExecContext {
    /// Number of worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The result cache, if caching is enabled.
    pub fn cache(&self) -> Option<&ResultCache> {
        self.cache.as_ref()
    }

    /// Enables (or disables) keep-going mode: campaigns run to completion
    /// past failed cells, substituting [`RunResult::failed_sentinel`]s and
    /// counting the failures instead of panicking.
    pub fn set_keep_going(&self, enabled: bool) {
        self.keep_going.store(enabled, Ordering::Relaxed);
    }

    /// Whether keep-going mode is on.
    pub fn keep_going(&self) -> bool {
        self.keep_going.load(Ordering::Relaxed)
    }

    /// Failed cells accumulated across every keep-going campaign (the CLI
    /// turns a nonzero count into a nonzero exit code).
    pub fn failed_cells(&self) -> u64 {
        self.failed_cells.load(Ordering::Relaxed)
    }

    /// Runs a campaign plan, returning results in plan order.
    ///
    /// Under [keep-going](Self::set_keep_going) mode, failed cells come back
    /// as [`RunResult::failed_sentinel`]s (reported on stderr and counted in
    /// [`failed_cells`](Self::failed_cells)); otherwise a failed cell
    /// panics after the whole plan has run.
    pub fn run(&self, label: &str, jobs: Vec<JobSpec<RunResult>>) -> Vec<RunResult> {
        if self.keep_going() {
            let jobs: Vec<JobSpec<Result<RunResult, String>>> =
                jobs.into_iter().map(|job| job.map(Ok)).collect();
            let (results, failures, _) = self.run_checked(label, jobs);
            if !failures.is_empty() {
                eprintln!("[{label}] {} cell(s) failed:", failures.len());
                for f in &failures {
                    eprintln!("[{label}]   {f}");
                }
            }
            results
                .into_iter()
                .map(|slot| slot.unwrap_or_else(RunResult::failed_sentinel))
                .collect()
        } else {
            self.run_reported(label, jobs).0
        }
    }

    /// [`run`](Self::run) plus the campaign report (for CLI summaries and
    /// the cache tests). Always panics on cell failure, regardless of
    /// keep-going mode.
    pub fn run_reported(
        &self,
        label: &str,
        jobs: Vec<JobSpec<RunResult>>,
    ) -> (Vec<RunResult>, CampaignReport) {
        let binding = self
            .cache
            .as_ref()
            .map(|c| (c, &RunResultCodec as &dyn ResultCodec<RunResult>));
        let (results, report) = run_campaign(
            &self.pool,
            binding,
            jobs,
            &CampaignOptions::labeled(label),
            Some(|r: &RunResult| r.total_cycles),
        );
        self.record_report(&report);
        (results, report)
    }

    /// Runs a fault-tolerant campaign: cells return `Result<RunResult,
    /// String>` and may panic; both failure modes are isolated per cell and
    /// returned typed. Results come back in plan order with `None` at the
    /// failed cells. Failures are counted in
    /// [`failed_cells`](Self::failed_cells).
    pub fn run_checked(
        &self,
        label: &str,
        jobs: Vec<JobSpec<Result<RunResult, String>>>,
    ) -> (Vec<Option<RunResult>>, Vec<CellFailure>, CampaignReport) {
        let binding = self
            .cache
            .as_ref()
            .map(|c| (c, &RunResultCodec as &dyn ResultCodec<RunResult>));
        let outcome = run_campaign_checked(
            &self.pool,
            binding,
            jobs,
            &CampaignOptions::labeled(label),
            Some(|r: &RunResult| r.total_cycles),
        );
        self.record_report(&outcome.report);
        self.failed_cells
            .fetch_add(outcome.failures.len() as u64, Ordering::Relaxed);
        (outcome.results, outcome.failures, outcome.report)
    }

    fn record_report(&self, report: &CampaignReport) {
        self.sim_cycles
            .fetch_add(report.sim_cycles, Ordering::Relaxed);
        // Wall time counts toward throughput only when the campaign actually
        // simulated something: an all-cached campaign spends its wall on
        // cache lookups, and folding that into the denominator while its
        // cycles (zero) fold into the numerator made warm-rerun Mcyc/s
        // numbers meaningless.
        if report.executed > 0 {
            self.wall_nanos
                .fetch_add(report.wall.as_nanos() as u64, Ordering::Relaxed);
        }
        self.executed_jobs
            .fetch_add(report.executed as u64, Ordering::Relaxed);
        self.cached_jobs
            .fetch_add(report.cache_hits as u64, Ordering::Relaxed);
    }

    /// Totals accumulated over every campaign this context has run.
    pub fn totals(&self) -> ExecTotals {
        ExecTotals {
            sim_cycles: self.sim_cycles.load(Ordering::Relaxed),
            wall: Duration::from_nanos(self.wall_nanos.load(Ordering::Relaxed)),
            executed_jobs: self.executed_jobs.load(Ordering::Relaxed),
            cached_jobs: self.cached_jobs.load(Ordering::Relaxed),
        }
    }
}

/// The canonical single-line rendering of a [`SystemConfig`]: every field
/// that influences a simulation, floats by their exact bits. The fault plan
/// is part of the key, so cached healthy results are never confused with
/// fault-injected ones (and vice versa).
pub fn config_key(c: &SystemConfig) -> String {
    let n = &c.noc;
    format!(
        "noc={}x{}x{} vcs={} buf={} flit={} hide={} vao={} nib={} thr={} ar={:016x} warm={} sim={} drain={} flt={{{}}} wd={}",
        n.width,
        n.height,
        n.concentration,
        n.vcs,
        n.vc_buffer,
        n.flit_bits,
        n.hide_compression,
        n.va_overlap,
        n.notify_in_band,
        c.threshold_percent,
        c.approx_ratio.to_bits(),
        c.warmup_cycles,
        c.sim_cycles,
        c.drain_cycles,
        c.faults.key_fragment(),
        c.watchdog_horizon,
    )
}

/// The content key of one simulation cell.
///
/// `kind` names the cell computation (`bench`, `fig12 …`, `ext`); equal keys
/// must mean equal results, so anything that changes what the cell computes
/// belongs in here.
pub fn cell_key(
    kind: &str,
    config: &SystemConfig,
    mechanism: &str,
    workload: &str,
    seed: u64,
) -> String {
    format!(
        "anoc-cell v1 kind={kind} {} mech={mechanism} work={workload} seed={seed}",
        config_key(config)
    )
}

/// A short stable tag for a synthetic destination pattern, for cell keys.
pub fn pattern_tag(p: DestPattern) -> String {
    match p {
        DestPattern::UniformRandom => "UR".into(),
        DestPattern::Transpose => "TR".into(),
        DestPattern::BitComplement => "BC".into(),
        DestPattern::BitReverse => "BR".into(),
        DestPattern::Hotspot { node, percent } => format!("HS{node}p{percent}"),
        DestPattern::Tornado => "TO".into(),
        DestPattern::Neighbor => "NB".into(),
        DestPattern::Shuffle => "SH".into(),
    }
}

/// Builds the job for one standard benchmark-traffic cell — the unit behind
/// the matrix figures, the sensitivity sweeps and the Figure 16 anchors. All
/// of them share the `bench` kind, so identical cells are computed (and
/// cached) once regardless of which figure asks first.
pub fn benchmark_job(
    benchmark: Benchmark,
    mechanism: Mechanism,
    config: &SystemConfig,
    seed: u64,
) -> JobSpec<RunResult> {
    let id = format!("{}/{}/s{seed}", benchmark.name(), mechanism.name());
    let key = cell_key("bench", config, mechanism.name(), benchmark.name(), seed);
    let config = config.clone();
    JobSpec::new(id, key, move || {
        crate::runner::run_benchmark(benchmark, mechanism, &config, seed)
    })
}

/// The fault-tolerant sibling of [`benchmark_job`]: the cell returns `Err`
/// (instead of panicking) when the watchdog or bound checker aborts the
/// simulation, so [`ExecContext::run_checked`] campaigns survive it. Shares
/// the `bench` cell key — a successful checked cell and an unchecked cell
/// with the same inputs are the same computation.
pub fn checked_benchmark_job(
    benchmark: Benchmark,
    mechanism: Mechanism,
    config: &SystemConfig,
    seed: u64,
) -> JobSpec<Result<RunResult, String>> {
    let id = format!("{}/{}/s{seed}", benchmark.name(), mechanism.name());
    let key = cell_key("bench", config, mechanism.name(), benchmark.name(), seed);
    let config = config.clone();
    JobSpec::new(id, key, move || {
        crate::runner::try_run_benchmark(benchmark, mechanism, &config, seed)
            .map_err(|e| e.to_string())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_key_distinguishes_every_knob() {
        let base = SystemConfig::paper();
        let variants = [
            base.clone().with_sim_cycles(1_000),
            base.clone().with_threshold(5),
            base.clone().with_approx_ratio(0.5),
            base.clone()
                .with_faults(anoc_noc::FaultPlan::bit_flips(1, 100)),
            base.clone().with_watchdog(0),
            SystemConfig::full_system(),
        ];
        let k0 = config_key(&base);
        for v in &variants {
            assert_ne!(config_key(v), k0, "{v:?}");
        }
        assert_eq!(config_key(&base), config_key(&SystemConfig::paper()));
    }

    #[test]
    fn config_key_is_shard_independent() {
        // Sharded execution is bit-identical to serial (DESIGN.md §10), so
        // the shard count must never invalidate cached results.
        let base = SystemConfig::paper();
        assert_eq!(config_key(&base), config_key(&base.clone().with_shards(4)));
    }

    #[test]
    fn cell_key_separates_kind_mechanism_workload_seed() {
        let c = SystemConfig::paper();
        let k = |kind: &str, m: &str, w: &str, s: u64| cell_key(kind, &c, m, w, s);
        let base = k("bench", "FP-VAXX", "ssca2", 42);
        assert_eq!(base, k("bench", "FP-VAXX", "ssca2", 42));
        assert_ne!(base, k("ext", "FP-VAXX", "ssca2", 42));
        assert_ne!(base, k("bench", "FP-COMP", "ssca2", 42));
        assert_ne!(base, k("bench", "FP-VAXX", "x264", 42));
        assert_ne!(base, k("bench", "FP-VAXX", "ssca2", 43));
    }

    #[test]
    fn pattern_tags_are_distinct() {
        let tags: std::collections::BTreeSet<String> = [
            DestPattern::UniformRandom,
            DestPattern::Transpose,
            DestPattern::BitComplement,
            DestPattern::BitReverse,
            DestPattern::Hotspot {
                node: anoc_core::NodeId(3),
                percent: 20,
            },
            DestPattern::Tornado,
        ]
        .into_iter()
        .map(pattern_tag)
        .collect();
        assert_eq!(tags.len(), 6);
    }

    #[test]
    fn default_context_has_no_cache_and_runs_jobs() {
        let ctx = context();
        assert!(ctx.threads() >= 1);
        let cfg = SystemConfig::paper().with_sim_cycles(1_000);
        let jobs = vec![
            benchmark_job(Benchmark::X264, Mechanism::Baseline, &cfg, 1),
            benchmark_job(Benchmark::X264, Mechanism::FpComp, &cfg, 1),
        ];
        let (results, report) = ctx.run_reported("test", jobs);
        assert_eq!(results.len(), 2);
        assert_eq!(report.executed + report.cache_hits, 2);
        assert_eq!(results[0].mechanism, Mechanism::Baseline);
        assert_eq!(results[1].mechanism, Mechanism::FpComp);
    }
}
