//! The harness side of the [`anoc_exec`] campaign engine: content keys for
//! simulation cells, the [`RunResult`] cache codec and the process-wide
//! execution context.
//!
//! Every simulation cell is a pure function of its inputs (DESIGN.md §6), so
//! a cell's cache key is the canonical rendering of exactly those inputs:
//! the full [`SystemConfig`], the mechanism, the workload and the seed,
//! prefixed with a campaign kind that distinguishes differently-driven cells
//! (benchmark traffic vs synthetic sweeps vs extension codecs). Cells that
//! are the same computation share a key across figures — a `fig13` rerun
//! reuses the matrix cells `fig9` already paid for.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use anoc_exec::{
    run_campaign, run_campaign_checked, CampaignOptions, CampaignReport, CellFailure, JobSpec,
    ResultCache, ResultCodec, SnapshotStore, ThreadPool,
};
use anoc_noc::SimError;
use anoc_traffic::{Benchmark, DestPattern};

use crate::config::{Mechanism, SystemConfig};
use crate::persist::{decode_run_result, encode_run_result};
use crate::runner::{
    publish_benchmark_warmup, try_run_benchmark_snap, RunResult, SnapshotPolicy, StagedInfo,
};

/// The [`ResultCodec`] storing [`RunResult`]s in the campaign cache.
pub struct RunResultCodec;

impl ResultCodec<RunResult> for RunResultCodec {
    fn encode(&self, value: &RunResult) -> String {
        encode_run_result(value)
    }
    fn decode(&self, payload: &str) -> Option<RunResult> {
        decode_run_result(payload)
    }
}

/// The process-wide execution context: one thread pool and (optionally) one
/// result cache shared by every campaign in the process.
pub struct ExecContext {
    pool: ThreadPool,
    cache: Option<ResultCache>,
    snapshots: Option<SnapshotStore>,
    sim_cycles: AtomicU64,
    wall_nanos: AtomicU64,
    executed_jobs: AtomicU64,
    cached_jobs: AtomicU64,
    keep_going: AtomicBool,
    failed_cells: AtomicU64,
    checkpoint_every: AtomicU64,
    resume: AtomicBool,
    forked_jobs: AtomicU64,
    resumed_jobs: AtomicU64,
    skipped_cycles: AtomicU64,
}

impl ExecContext {
    fn with(
        pool: ThreadPool,
        cache: Option<ResultCache>,
        snapshots: Option<SnapshotStore>,
    ) -> Self {
        ExecContext {
            pool,
            cache,
            snapshots,
            sim_cycles: AtomicU64::new(0),
            wall_nanos: AtomicU64::new(0),
            executed_jobs: AtomicU64::new(0),
            cached_jobs: AtomicU64::new(0),
            keep_going: AtomicBool::new(false),
            failed_cells: AtomicU64::new(0),
            checkpoint_every: AtomicU64::new(0),
            resume: AtomicBool::new(false),
            forked_jobs: AtomicU64::new(0),
            resumed_jobs: AtomicU64::new(0),
            skipped_cycles: AtomicU64::new(0),
        }
    }
}

/// Simulation-throughput totals accumulated over every campaign a context
/// has run, for the `anoc run` end-of-run summary.
#[derive(Debug, Clone, Copy)]
pub struct ExecTotals {
    /// Simulated cycles across all executed (non-cached) jobs.
    pub sim_cycles: u64,
    /// Wall-clock time spent inside campaigns.
    pub wall: Duration,
    /// Jobs that actually simulated (cache hits excluded).
    pub executed_jobs: u64,
    /// Jobs answered from the result cache without simulating.
    pub cached_jobs: u64,
    /// Executed jobs whose warmup was forked from a snapshot.
    pub forked_jobs: u64,
    /// Executed jobs resumed from a mid-measurement checkpoint.
    pub resumed_jobs: u64,
    /// Cycles in `sim_cycles` that were restored rather than simulated
    /// (forked warmups, resumed measurement prefixes).
    pub skipped_cycles: u64,
}

impl ExecTotals {
    /// Cycles that were actually stepped: `sim_cycles` counts each result's
    /// full simulated time, so restored (forked/resumed) cycles come off.
    pub fn simulated_cycles(&self) -> u64 {
        self.sim_cycles.saturating_sub(self.skipped_cycles)
    }

    /// Aggregate simulator throughput in cycles per second, over the cycles
    /// that were actually stepped.
    pub fn cycles_per_second(&self) -> f64 {
        let simulated = self.simulated_cycles();
        if simulated == 0 || self.wall.is_zero() {
            0.0
        } else {
            simulated as f64 / self.wall.as_secs_f64()
        }
    }
}

static CONTEXT: OnceLock<ExecContext> = OnceLock::new();

/// Installs the process-wide context. Returns `false` if a context was
/// already installed (first caller wins); call before any experiment runs.
pub fn configure(
    threads: Option<usize>,
    cache: Option<ResultCache>,
    snapshots: Option<SnapshotStore>,
) -> bool {
    CONTEXT
        .set(ExecContext::with(
            threads
                .map(ThreadPool::new)
                .unwrap_or_else(ThreadPool::with_default_size),
            cache,
            snapshots,
        ))
        .is_ok()
}

/// The installed context, or a default one (default-sized pool, no cache, no
/// snapshot store — the CLI opts into caching explicitly, so library users
/// and tests always simulate for real unless they configure otherwise).
pub fn context() -> &'static ExecContext {
    CONTEXT.get_or_init(|| ExecContext::with(ThreadPool::with_default_size(), None, None))
}

/// The installed context if [`configure`] has run, without installing the
/// default one. Job builders use this so that merely *constructing* a plan
/// never racingly claims the first-caller-wins [`configure`] slot.
fn installed_context() -> Option<&'static ExecContext> {
    CONTEXT.get()
}

impl ExecContext {
    /// Number of worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The result cache, if caching is enabled.
    pub fn cache(&self) -> Option<&ResultCache> {
        self.cache.as_ref()
    }

    /// The snapshot store, if warm-starting is enabled.
    pub fn snapshots(&self) -> Option<&SnapshotStore> {
        self.snapshots.as_ref()
    }

    /// Checkpoint executed cells every N measured cycles (0 disables).
    pub fn set_checkpoint_every(&self, cycles: u64) {
        self.checkpoint_every.store(cycles, Ordering::Relaxed);
    }

    /// The configured checkpoint interval (0 when disabled).
    pub fn checkpoint_every(&self) -> u64 {
        self.checkpoint_every.load(Ordering::Relaxed)
    }

    /// Lets cells restart from their last stored checkpoint.
    pub fn set_resume(&self, enabled: bool) {
        self.resume.store(enabled, Ordering::Relaxed);
    }

    /// Whether checkpoint resumption is on.
    pub fn resume(&self) -> bool {
        self.resume.load(Ordering::Relaxed)
    }

    /// Folds one cell's [`StagedInfo`] into the context totals.
    pub fn note_staged(&self, info: &StagedInfo) {
        if info.forked {
            self.forked_jobs.fetch_add(1, Ordering::Relaxed);
        }
        if info.resumed {
            self.resumed_jobs.fetch_add(1, Ordering::Relaxed);
        }
        self.skipped_cycles
            .fetch_add(info.skipped_cycles, Ordering::Relaxed);
    }

    /// Counts a shared warmup stage that actually simulated (a snapshot-store
    /// miss). Cell results only account for their own simulated time, so
    /// without this a cold sweep would report the same cycle total as a warm
    /// one and the summary could not show the warm-start saving.
    pub fn note_warmup_simulated(&self, cycles: u64) {
        self.sim_cycles.fetch_add(cycles, Ordering::Relaxed);
    }

    /// Enables (or disables) keep-going mode: campaigns run to completion
    /// past failed cells, substituting [`RunResult::failed_sentinel`]s and
    /// counting the failures instead of panicking.
    pub fn set_keep_going(&self, enabled: bool) {
        self.keep_going.store(enabled, Ordering::Relaxed);
    }

    /// Whether keep-going mode is on.
    pub fn keep_going(&self) -> bool {
        self.keep_going.load(Ordering::Relaxed)
    }

    /// Failed cells accumulated across every keep-going campaign (the CLI
    /// turns a nonzero count into a nonzero exit code).
    pub fn failed_cells(&self) -> u64 {
        self.failed_cells.load(Ordering::Relaxed)
    }

    /// Runs a campaign plan, returning results in plan order.
    ///
    /// Under [keep-going](Self::set_keep_going) mode, failed cells come back
    /// as [`RunResult::failed_sentinel`]s (reported on stderr and counted in
    /// [`failed_cells`](Self::failed_cells)); otherwise a failed cell
    /// panics after the whole plan has run.
    pub fn run(&self, label: &str, jobs: Vec<JobSpec<RunResult>>) -> Vec<RunResult> {
        if self.keep_going() {
            let jobs: Vec<JobSpec<Result<RunResult, String>>> =
                jobs.into_iter().map(|job| job.map(Ok)).collect();
            let (results, failures, _) = self.run_checked(label, jobs);
            if !failures.is_empty() {
                eprintln!("[{label}] {} cell(s) failed:", failures.len());
                for f in &failures {
                    eprintln!("[{label}]   {f}");
                }
            }
            results
                .into_iter()
                .map(|slot| slot.unwrap_or_else(RunResult::failed_sentinel))
                .collect()
        } else {
            self.run_reported(label, jobs).0
        }
    }

    /// [`run`](Self::run) plus the campaign report (for CLI summaries and
    /// the cache tests). Always panics on cell failure, regardless of
    /// keep-going mode.
    pub fn run_reported(
        &self,
        label: &str,
        jobs: Vec<JobSpec<RunResult>>,
    ) -> (Vec<RunResult>, CampaignReport) {
        let binding = self
            .cache
            .as_ref()
            .map(|c| (c, &RunResultCodec as &dyn ResultCodec<RunResult>));
        let (results, report) = run_campaign(
            &self.pool,
            binding,
            jobs,
            &CampaignOptions::labeled(label),
            Some(|r: &RunResult| r.total_cycles),
        );
        self.record_report(&report);
        (results, report)
    }

    /// Runs a fault-tolerant campaign: cells return `Result<RunResult,
    /// String>` and may panic; both failure modes are isolated per cell and
    /// returned typed. Results come back in plan order with `None` at the
    /// failed cells. Failures are counted in
    /// [`failed_cells`](Self::failed_cells).
    pub fn run_checked(
        &self,
        label: &str,
        jobs: Vec<JobSpec<Result<RunResult, String>>>,
    ) -> (Vec<Option<RunResult>>, Vec<CellFailure>, CampaignReport) {
        let binding = self
            .cache
            .as_ref()
            .map(|c| (c, &RunResultCodec as &dyn ResultCodec<RunResult>));
        let outcome = run_campaign_checked(
            &self.pool,
            binding,
            jobs,
            &CampaignOptions::labeled(label),
            Some(|r: &RunResult| r.total_cycles),
        );
        self.record_report(&outcome.report);
        self.failed_cells
            .fetch_add(outcome.failures.len() as u64, Ordering::Relaxed);
        (outcome.results, outcome.failures, outcome.report)
    }

    fn record_report(&self, report: &CampaignReport) {
        self.sim_cycles
            .fetch_add(report.sim_cycles, Ordering::Relaxed);
        // Wall time counts toward throughput only when the campaign actually
        // simulated something: an all-cached campaign spends its wall on
        // cache lookups, and folding that into the denominator while its
        // cycles (zero) fold into the numerator made warm-rerun Mcyc/s
        // numbers meaningless.
        if report.executed > 0 {
            self.wall_nanos
                .fetch_add(report.wall.as_nanos() as u64, Ordering::Relaxed);
        }
        self.executed_jobs
            .fetch_add(report.executed as u64, Ordering::Relaxed);
        self.cached_jobs
            .fetch_add(report.cache_hits as u64, Ordering::Relaxed);
    }

    /// Totals accumulated over every campaign this context has run.
    pub fn totals(&self) -> ExecTotals {
        ExecTotals {
            sim_cycles: self.sim_cycles.load(Ordering::Relaxed),
            wall: Duration::from_nanos(self.wall_nanos.load(Ordering::Relaxed)),
            executed_jobs: self.executed_jobs.load(Ordering::Relaxed),
            cached_jobs: self.cached_jobs.load(Ordering::Relaxed),
            forked_jobs: self.forked_jobs.load(Ordering::Relaxed),
            resumed_jobs: self.resumed_jobs.load(Ordering::Relaxed),
            skipped_cycles: self.skipped_cycles.load(Ordering::Relaxed),
        }
    }
}

/// The canonical single-line rendering of a [`SystemConfig`]: every field
/// that influences a simulation, floats by their exact bits. The fault plan
/// is part of the key, so cached healthy results are never confused with
/// fault-injected ones (and vice versa).
pub fn config_key(c: &SystemConfig) -> String {
    let n = &c.noc;
    format!(
        "noc={}x{}x{} vcs={} buf={} flit={} hide={} vao={} nib={} thr={} ar={:016x} warm={} sim={} drain={} flt={{{}}} lp={{{}}} qos={{{}}} wd={}",
        n.width,
        n.height,
        n.concentration,
        n.vcs,
        n.vc_buffer,
        n.flit_bits,
        n.hide_compression,
        n.va_overlap,
        n.notify_in_band,
        c.threshold_percent,
        c.approx_ratio.to_bits(),
        c.warmup_cycles,
        c.sim_cycles,
        c.drain_cycles,
        c.faults.key_fragment(),
        c.loss.key_fragment(),
        c.qos.key_fragment(),
        c.watchdog_horizon,
    )
}

/// The content key of one simulation cell.
///
/// `kind` names the cell computation (`bench`, `fig12 …`, `ext`); equal keys
/// must mean equal results, so anything that changes what the cell computes
/// belongs in here.
pub fn cell_key(
    kind: &str,
    config: &SystemConfig,
    mechanism: &str,
    workload: &str,
    seed: u64,
) -> String {
    format!(
        "anoc-cell v1 kind={kind} {} mech={mechanism} work={workload} seed={seed}",
        config_key(config)
    )
}

/// The content key of one cell's *warmup stage* — everything that influences
/// the simulator state at the end of the warmup window, and nothing more.
///
/// Deliberately excluded, so sweep variants share one warmup snapshot:
///
/// * `threshold_percent` — staged runs warm up at the exact threshold and
///   only retarget at the measurement boundary (DESIGN.md §11), so the
///   post-warmup state is threshold-independent by construction;
/// * `sim_cycles` / `drain_cycles` — they shape the measurement window and
///   drain, which happen entirely after the snapshot point;
/// * the shard count — sharded stepping is bit-identical to serial
///   (DESIGN.md §10) and snapshots restore at any shard count.
pub fn warmup_key(
    kind: &str,
    config: &SystemConfig,
    mechanism: &str,
    workload: &str,
    seed: u64,
) -> String {
    let n = &config.noc;
    format!(
        "anoc-warmup v1 kind={kind} noc={}x{}x{} vcs={} buf={} flit={} hide={} vao={} nib={} ar={:016x} warm={} flt={{{}}} lp={{{}}} qos={{{}}} wd={} mech={mechanism} work={workload} seed={seed}",
        n.width,
        n.height,
        n.concentration,
        n.vcs,
        n.vc_buffer,
        n.flit_bits,
        n.hide_compression,
        n.va_overlap,
        n.notify_in_band,
        config.approx_ratio.to_bits(),
        config.warmup_cycles,
        config.faults.key_fragment(),
        config.loss.key_fragment(),
        config.qos.key_fragment(),
        config.watchdog_horizon,
    )
}

/// A short stable tag for a synthetic destination pattern, for cell keys.
pub fn pattern_tag(p: DestPattern) -> String {
    match p {
        DestPattern::UniformRandom => "UR".into(),
        DestPattern::Transpose => "TR".into(),
        DestPattern::BitComplement => "BC".into(),
        DestPattern::BitReverse => "BR".into(),
        DestPattern::Hotspot { node, percent } => format!("HS{node}p{percent}"),
        DestPattern::Tornado => "TO".into(),
        DestPattern::Neighbor => "NB".into(),
        DestPattern::Shuffle => "SH".into(),
    }
}

/// Runs one benchmark cell through the snapshot-aware driver, folding its
/// [`StagedInfo`] into the context totals. With no snapshot store configured
/// this is exactly [`crate::runner::try_run_benchmark`].
fn run_benchmark_cell(
    benchmark: Benchmark,
    mechanism: Mechanism,
    config: &SystemConfig,
    seed: u64,
    key: &str,
) -> Result<RunResult, SimError> {
    let ctx = installed_context();
    let policy = match ctx {
        Some(c) => SnapshotPolicy {
            store: c.snapshots(),
            warmup_key: Some(warmup_key(
                "bench",
                config,
                mechanism.name(),
                benchmark.name(),
                seed,
            )),
            cell_key: Some(key.to_string()),
            checkpoint_every: c.checkpoint_every(),
            resume: c.resume(),
        },
        None => SnapshotPolicy::cold(),
    };
    let (result, info) = try_run_benchmark_snap(benchmark, mechanism, config, seed, &policy)?;
    if let Some(c) = ctx {
        c.note_staged(&info);
    }
    Ok(result)
}

/// Attaches the shared warmup stage to a benchmark job when warm-starting is
/// on: the planner runs each distinct warmup key once (before any cell
/// simulates) so every cache-missing cell of the sweep forks from it. A
/// failed warmup costs replayed warmups, never the campaign.
fn with_benchmark_warmup<T>(
    job: JobSpec<T>,
    benchmark: Benchmark,
    mechanism: Mechanism,
    config: &SystemConfig,
    seed: u64,
) -> JobSpec<T> {
    if installed_context()
        .and_then(ExecContext::snapshots)
        .is_none()
    {
        return job;
    }
    let wkey = warmup_key("bench", config, mechanism.name(), benchmark.name(), seed);
    let config = config.clone();
    let key = wkey.clone();
    job.with_warmup(wkey, move || {
        let Some(ctx) = installed_context() else {
            return;
        };
        if let Some(store) = ctx.snapshots() {
            match publish_benchmark_warmup(benchmark, mechanism, &config, seed, store, &key) {
                Ok(true) => ctx.note_warmup_simulated(config.warmup_cycles),
                Ok(false) => {}
                Err(e) => {
                    eprintln!("warmup '{key}' failed ({e}); its cells replay the warmup");
                }
            }
        }
    })
}

/// Builds the job for one standard benchmark-traffic cell — the unit behind
/// the matrix figures, the sensitivity sweeps and the Figure 16 anchors. All
/// of them share the `bench` kind, so identical cells are computed (and
/// cached) once regardless of which figure asks first.
pub fn benchmark_job(
    benchmark: Benchmark,
    mechanism: Mechanism,
    config: &SystemConfig,
    seed: u64,
) -> JobSpec<RunResult> {
    let id = format!("{}/{}/s{seed}", benchmark.name(), mechanism.name());
    let key = cell_key("bench", config, mechanism.name(), benchmark.name(), seed);
    let cfg = config.clone();
    let cell = key.clone();
    let job = JobSpec::new(id, key, move || {
        match run_benchmark_cell(benchmark, mechanism, &cfg, seed, &cell) {
            Ok(r) => r,
            Err(e) => panic!("simulation failed: {e}"),
        }
    });
    with_benchmark_warmup(job, benchmark, mechanism, config, seed)
}

/// The fault-tolerant sibling of [`benchmark_job`]: the cell returns `Err`
/// (instead of panicking) when the watchdog or bound checker aborts the
/// simulation, so [`ExecContext::run_checked`] campaigns survive it. Shares
/// the `bench` cell key — a successful checked cell and an unchecked cell
/// with the same inputs are the same computation.
pub fn checked_benchmark_job(
    benchmark: Benchmark,
    mechanism: Mechanism,
    config: &SystemConfig,
    seed: u64,
) -> JobSpec<Result<RunResult, String>> {
    let id = format!("{}/{}/s{seed}", benchmark.name(), mechanism.name());
    let key = cell_key("bench", config, mechanism.name(), benchmark.name(), seed);
    let cfg = config.clone();
    let cell = key.clone();
    let job = JobSpec::new(id, key, move || {
        run_benchmark_cell(benchmark, mechanism, &cfg, seed, &cell).map_err(|e| e.to_string())
    });
    with_benchmark_warmup(job, benchmark, mechanism, config, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_key_distinguishes_every_knob() {
        let base = SystemConfig::paper();
        let variants = [
            base.clone().with_sim_cycles(1_000),
            base.clone().with_threshold(5),
            base.clone().with_approx_ratio(0.5),
            base.clone()
                .with_faults(anoc_noc::FaultPlan::bit_flips(1, 100)),
            base.clone().with_loss(anoc_noc::LossPlan::uniform(1, 100)),
            base.clone()
                .with_qos(anoc_core::control::QosSpec::paper(990_000)),
            base.clone().with_watchdog(0),
            SystemConfig::full_system(),
        ];
        let k0 = config_key(&base);
        for v in &variants {
            assert_ne!(config_key(v), k0, "{v:?}");
        }
        assert_eq!(config_key(&base), config_key(&SystemConfig::paper()));
    }

    #[test]
    fn config_key_is_shard_independent() {
        // Sharded execution is bit-identical to serial (DESIGN.md §10), so
        // the shard count must never invalidate cached results.
        let base = SystemConfig::paper();
        assert_eq!(config_key(&base), config_key(&base.clone().with_shards(4)));
    }

    #[test]
    fn cell_key_separates_kind_mechanism_workload_seed() {
        let c = SystemConfig::paper();
        let k = |kind: &str, m: &str, w: &str, s: u64| cell_key(kind, &c, m, w, s);
        let base = k("bench", "FP-VAXX", "ssca2", 42);
        assert_eq!(base, k("bench", "FP-VAXX", "ssca2", 42));
        assert_ne!(base, k("ext", "FP-VAXX", "ssca2", 42));
        assert_ne!(base, k("bench", "FP-COMP", "ssca2", 42));
        assert_ne!(base, k("bench", "FP-VAXX", "x264", 42));
        assert_ne!(base, k("bench", "FP-VAXX", "ssca2", 43));
    }

    #[test]
    fn warmup_key_excludes_measurement_window_knobs() {
        let base = SystemConfig::paper();
        let k = |c: &SystemConfig| warmup_key("bench", c, "FP-VAXX", "ssca2", 42);
        let k0 = k(&base);
        // Measurement-window knobs do not split the warmup.
        assert_eq!(k0, k(&base.clone().with_threshold(5)));
        assert_eq!(k0, k(&base.clone().with_shards(4)));
        let mut window = base.clone();
        window.sim_cycles = 123;
        window.drain_cycles = 456;
        assert_eq!(k0, k(&window));
        // Everything shaping the post-warmup state does.
        let mut warm = base.clone();
        warm.warmup_cycles += 1;
        assert_ne!(k0, k(&warm));
        assert_ne!(k0, k(&base.clone().with_approx_ratio(0.5)));
        assert_ne!(
            k0,
            k(&base
                .clone()
                .with_faults(anoc_noc::FaultPlan::bit_flips(1, 100)))
        );
        assert_ne!(k0, k(&base.clone().with_watchdog(0)));
        // Loss and QoS shape warmup traffic and controller training.
        assert_ne!(
            k0,
            k(&base.clone().with_loss(anoc_noc::LossPlan::uniform(1, 100)))
        );
        assert_ne!(
            k0,
            k(&base
                .clone()
                .with_qos(anoc_core::control::QosSpec::paper(990_000)))
        );
        assert_ne!(k0, warmup_key("bench", &base, "FP-COMP", "ssca2", 42));
        assert_ne!(k0, warmup_key("bench", &base, "FP-VAXX", "x264", 42));
        assert_ne!(k0, warmup_key("bench", &base, "FP-VAXX", "ssca2", 43));
        assert_ne!(k0, warmup_key("synth", &base, "FP-VAXX", "ssca2", 42));
    }

    #[test]
    fn pattern_tags_are_distinct() {
        let tags: std::collections::BTreeSet<String> = [
            DestPattern::UniformRandom,
            DestPattern::Transpose,
            DestPattern::BitComplement,
            DestPattern::BitReverse,
            DestPattern::Hotspot {
                node: anoc_core::NodeId(3),
                percent: 20,
            },
            DestPattern::Tornado,
        ]
        .into_iter()
        .map(pattern_tag)
        .collect();
        assert_eq!(tags.len(), 6);
    }

    #[test]
    fn default_context_has_no_cache_and_runs_jobs() {
        let ctx = context();
        assert!(ctx.threads() >= 1);
        let cfg = SystemConfig::paper().with_sim_cycles(1_000);
        let jobs = vec![
            benchmark_job(Benchmark::X264, Mechanism::Baseline, &cfg, 1),
            benchmark_job(Benchmark::X264, Mechanism::FpComp, &cfg, 1),
        ];
        let (results, report) = ctx.run_reported("test", jobs);
        assert_eq!(results.len(), 2);
        assert_eq!(report.executed + report.cache_hits, 2);
        assert_eq!(results[0].mechanism, Mechanism::Baseline);
        assert_eq!(results[1].mechanism, Mechanism::FpComp);
    }
}
