//! Input-generation strategies and the macros of the public API.

use crate::test_runner::TestRng;

/// A generator of test-case inputs.
///
/// Unlike real proptest there is no shrinking: a strategy is just a pure
/// function from the deterministic [`TestRng`] to a value.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniformly random values of a primitive type — `any::<T>()`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The strategy generating arbitrary values of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u32())
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below_u64(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below_u64(span) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start() + (rng.unit_f64() as $t) * (self.end() - self.start())
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// `prop_map` combinator.
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    pub(crate) source: S,
    pub(crate) f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// An inclusive length range for collection strategies, converted from the
/// range forms `prop::collection::vec` accepts (so bare literals like `1..5`
/// unify to `usize`).
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// `prop::collection::vec` combinator.
#[derive(Clone, Copy, Debug)]
pub struct VecStrategy<E> {
    pub(crate) elem: E,
    pub(crate) sizes: SizeRange,
}

impl<E: Strategy> Strategy for VecStrategy<E> {
    type Value = Vec<E::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<E::Value> {
        let span = (self.sizes.hi - self.sizes.lo + 1) as u64;
        let len = self.sizes.lo + rng.below_u64(span) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

/// `prop::sample::select` combinator.
#[derive(Clone, Debug)]
pub struct Select<T: Clone> {
    pub(crate) items: Vec<T>,
}

/// `prop_oneof!` combinator: uniform choice among boxed alternatives.
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union over `arms`; panics on an empty list.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u32) as usize;
        self.arms[i].generate(rng)
    }
}

/// Boxes a strategy for [`Union`] (used by `prop_oneof!` so type inference
/// unifies heterogeneous arms).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// The property-test entry macro; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_property(stringify!($name), &__config, |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Uniform choice among the listed strategies (all arms must generate the
/// same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            __a == __b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            __a == __b,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            __a,
            __b
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            __a != __b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            __a
        );
    }};
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = (1u32..=100).generate(&mut rng);
            assert!((1..=100).contains(&v));
            let w = (-128i32..=127).generate(&mut rng);
            assert!((-128..=127).contains(&w));
            let f = (0.0f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&f));
            let u = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn vec_and_map_compose() {
        let strat = prop::collection::vec(any::<i32>(), 4..=8).prop_map(|v| v.len());
        let mut rng = crate::test_runner::TestRng::seed_from_u64(1);
        for _ in 0..100 {
            let n = strat.generate(&mut rng);
            assert!((4..=8).contains(&n));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let strat = prop_oneof![Just(1u32), Just(2u32), 10u32..=20];
        let mut rng = crate::test_runner::TestRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                1 => seen[0] = true,
                2 => seen[1] = true,
                10..=20 => seen[2] = true,
                other => panic!("out-of-range value {other}"),
            }
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn normal_floats_are_normal() {
        let mut rng = crate::test_runner::TestRng::seed_from_u64(3);
        for _ in 0..500 {
            assert!(prop::num::f32::NORMAL.generate(&mut rng).is_normal());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = prop::collection::vec(any::<u64>(), 1..=16);
        let gen = |seed| {
            let mut rng = crate::test_runner::TestRng::seed_from_u64(seed);
            (0..10)
                .map(|_| strat.generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen(9), gen(9));
        assert_ne!(gen(9), gen(10));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro itself: bindings, assume and assert plumbing.
        #[test]
        fn macro_end_to_end(a in 1u32..=50, b in any::<bool>(), xs in prop::collection::vec(0u8..10, 1..5)) {
            prop_assume!(a != 13);
            prop_assert!((1..=50).contains(&a));
            prop_assert_eq!(b, b);
            prop_assert_ne!(a, 0u32);
            prop_assert!(xs.iter().all(|x| *x < 10), "bad vec {:?}", xs);
        }
    }
}
