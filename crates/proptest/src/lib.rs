//! A vendored, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships this minimal implementation of the `proptest` API
//! subset its test suites actually use: the [`proptest!`] macro with
//! `name in strategy` bindings, `any::<T>()`, integer/float range
//! strategies, `prop::collection::vec`, `prop_oneof!`, `Just`, tuples,
//! `prop_map`, `prop::num::f32::NORMAL`, `prop::sample::select`, the
//! `prop_assert*` / `prop_assume!` macros and `ProptestConfig`.
//!
//! Differences from real proptest:
//!
//! * inputs are generated from a fixed deterministic seed sequence, so a
//!   given binary always tests the same cases (good for CI, no flakes);
//! * there is no shrinking — failures report the case index and message;
//! * the default case count is 256, overridable per-block with
//!   `ProptestConfig::with_cases` or globally with the
//!   `ANOC_PROPTEST_CASES` environment variable.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Strategy combinators namespaced like the real crate (`prop::...`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{SizeRange, Strategy, VecStrategy};

        /// A strategy producing `Vec`s of `elem` values whose length is
        /// drawn uniformly from `sizes` (a `usize` range or exact length).
        pub fn vec<E: Strategy>(elem: E, sizes: impl Into<SizeRange>) -> VecStrategy<E> {
            VecStrategy {
                elem,
                sizes: sizes.into(),
            }
        }
    }

    /// Numeric strategies.
    pub mod num {
        /// `f32` strategies.
        pub mod f32 {
            /// Generates normal (finite, non-zero, non-subnormal) floats of
            /// either sign.
            pub const NORMAL: NormalF32 = NormalF32;

            /// See [`NORMAL`].
            #[derive(Clone, Copy, Debug)]
            pub struct NormalF32;

            impl crate::strategy::Strategy for NormalF32 {
                type Value = f32;
                fn generate(&self, rng: &mut crate::test_runner::TestRng) -> f32 {
                    loop {
                        let v = f32::from_bits(rng.next_u32());
                        if v.is_normal() {
                            return v;
                        }
                    }
                }
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::strategy::{Select, Strategy};
        use crate::test_runner::TestRng;

        /// Picks uniformly from an explicit list of values.
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "cannot select from an empty list");
            Select { items }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.items[rng.below(self.items.len() as u32) as usize].clone()
            }
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

pub use strategy::{any, Just, Strategy};
pub use test_runner::ProptestConfig;
