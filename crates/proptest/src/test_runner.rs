//! The case driver: configuration, deterministic RNG and failure plumbing.

/// Per-block configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count, honouring the `ANOC_PROPTEST_CASES` env override.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("ANOC_PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
            .max(1)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// An assertion failure carrying `msg`.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// A small, fast, deterministic RNG (splitmix64) for input generation.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator.
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "below(0)");
        // Lemire-style widening multiply: negligible bias is irrelevant for
        // test-input generation.
        ((u64::from(self.next_u32()) * u64::from(bound)) >> 32) as u32
    }

    /// Uniform value in `[0, bound)` for 64-bit bounds.
    pub fn below_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below_u64(0)");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Runs a property body over `config.effective_cases()` deterministic cases.
///
/// `body` receives a fresh RNG per case; `Reject` outcomes are skipped (with
/// a retry budget so heavy `prop_assume!` filters still make progress),
/// `Fail` panics with the case index and message.
pub fn run_property(
    name: &str,
    config: &ProptestConfig,
    body: impl Fn(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let cases = config.effective_cases();
    let mut rejected = 0u32;
    let mut case = 0u32;
    let mut salt = 0u64;
    while case < cases {
        // Distinct, deterministic seed per (property, case, reject-retry).
        let mut seed = 0xA5A5_0000_0000_0000u64 ^ u64::from(case) ^ (salt << 32);
        for b in name.bytes() {
            seed = seed
                .wrapping_mul(0x100_0000_01B3)
                .wrapping_add(u64::from(b));
        }
        let mut rng = TestRng::seed_from_u64(seed);
        match body(&mut rng) {
            Ok(()) => case += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                salt += 1;
                assert!(
                    rejected < cases.saturating_mul(16).max(1024),
                    "property {name}: too many rejected cases ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property {name} failed at case {case}: {msg}")
            }
        }
    }
}
