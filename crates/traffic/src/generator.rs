//! Traffic sources: per-cycle packet injections for the simulator.
//!
//! Sources are decoupled from the simulator: each cycle they emit a list of
//! [`Injection`]s the driver enqueues into the NoC. Two kinds exist, matching
//! the paper's two methodologies (§5.1):
//!
//! * [`BenchmarkTraffic`] — closed-form model of a benchmark's communication
//!   (its offered load, burst phases, data:control mix and data values);
//! * [`SyntheticTraffic`] — classic rate-swept synthetic traffic (UR/TR/...)
//!   whose *data payloads* come from a benchmark data pool, exactly like the
//!   paper's throughput study ("the synthetic workloads can be used to vary
//!   the traffic pattern/injection rate but the data being communicated can
//!   be kept constant and correlated with data locality in the benchmarks").

use anoc_core::data::{CacheBlock, NodeId};
use anoc_core::rng::Pcg32;
use anoc_core::snap::{SnapError, SnapReader, SnapWriter};

use crate::datamodel::{Benchmark, DataModel};
use crate::pattern::DestPattern;
use crate::trace::DataPool;

/// One packet to inject this cycle.
#[derive(Debug, Clone)]
pub struct Injection {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dest: NodeId,
    /// Payload: `None` for a control packet, a cache block for data.
    pub payload: Option<CacheBlock>,
}

/// A generator of per-cycle injections.
pub trait TrafficSource {
    /// Emits the injections for `cycle`, appending to `out`.
    fn tick(&mut self, cycle: u64, out: &mut Vec<Injection>);

    /// Number of nodes this source drives.
    fn num_nodes(&self) -> usize;

    /// Whether this source can be snapshotted mid-run. Sources that answer
    /// `false` force the harness onto the cold (replayed-warmup) path.
    fn snapshot_supported(&self) -> bool {
        false
    }

    /// Serializes mid-run state for a simulator snapshot. Only meaningful
    /// when [`snapshot_supported`](Self::snapshot_supported) is true.
    fn save_state(&self, _w: &mut SnapWriter) {}

    /// Restores state written by [`save_state`](Self::save_state).
    fn load_state(&mut self, _r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Ok(())
    }
}

/// Benchmark-shaped traffic: Bernoulli packet generation per node at the
/// profile's load, with bursty phases, the profile's data:control mix, and
/// values drawn from the benchmark data model.
#[derive(Debug, Clone)]
pub struct BenchmarkTraffic {
    benchmark: Benchmark,
    num_nodes: usize,
    model: DataModel,
    rng: Pcg32,
    approx_ratio: f64,
    load_scale: f64,
    /// Remaining cycles of the current phase, and whether it is a burst.
    phase: (u64, bool),
}

impl BenchmarkTraffic {
    /// Creates benchmark traffic over `num_nodes` nodes. `approx_ratio` is
    /// the fraction of data packets flagged approximable (the paper's
    /// default is 0.75).
    pub fn new(benchmark: Benchmark, num_nodes: usize, approx_ratio: f64, seed: u64) -> Self {
        BenchmarkTraffic {
            benchmark,
            num_nodes,
            model: DataModel::new(benchmark, seed),
            // anoc-lint: rng-site: per-generator injection stream, seeded from the workload seed
            rng: Pcg32::new(seed, 0x6765_6e65_7261),
            approx_ratio,
            load_scale: 1.0,
            phase: (0, false),
        }
    }

    /// Scales the profile's offered load (for sensitivity studies).
    #[must_use]
    pub fn with_load_scale(mut self, scale: f64) -> Self {
        self.load_scale = scale;
        self
    }

    /// The benchmark this source models.
    pub fn benchmark(&self) -> Benchmark {
        self.benchmark
    }
}

impl TrafficSource for BenchmarkTraffic {
    fn tick(&mut self, _cycle: u64, out: &mut Vec<Injection>) {
        let profile = *self.model.profile();
        // Phase machine: alternate steady and bursty intervals.
        if self.phase.0 == 0 {
            let burst = self.rng.chance(profile.burstiness);
            let len = self.rng.range(200, 800) as u64;
            self.phase = (len, burst);
        }
        self.phase.0 -= 1;
        let burst_mult = if self.phase.1 { 4.0 } else { 1.0 };
        let rate = (profile.load * self.load_scale * burst_mult).min(1.0);
        for node in 0..self.num_nodes {
            if !self.rng.chance(rate) {
                continue;
            }
            let src = NodeId::from(node);
            let dest = DestPattern::UniformRandom.dest(src, self.num_nodes, &mut self.rng);
            let payload = if self.rng.chance(profile.data_packet_ratio) {
                let approx = self.rng.chance(self.approx_ratio);
                Some(self.model.next_block(approx))
            } else {
                None
            };
            out.push(Injection { src, dest, payload });
        }
    }

    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn snapshot_supported(&self) -> bool {
        true
    }

    fn save_state(&self, w: &mut SnapWriter) {
        let (state, inc) = self.rng.state_parts();
        w.u64(state);
        w.u64(inc);
        self.model.save_state(w);
        w.u64(self.phase.0);
        w.bool(self.phase.1);
        w.f64_bits(self.load_scale);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let state = r.u64()?;
        let inc = r.u64()?;
        self.rng = Pcg32::from_state_parts(state, inc);
        self.model.load_state(r)?;
        self.phase = (r.u64()?, r.bool()?);
        self.load_scale = r.f64_bits()?;
        Ok(())
    }
}

/// Rate-swept synthetic traffic with benchmark data payloads (Figure 12).
#[derive(Debug, Clone)]
pub struct SyntheticTraffic {
    pattern: DestPattern,
    num_nodes: usize,
    pool: DataPool,
    rng: Pcg32,
    /// Offered load in flits per node per cycle.
    flit_rate: f64,
    /// Fraction of packets that are data packets (25:75 in §5.2.2).
    data_ratio: f64,
    approx_ratio: f64,
    /// Average flits per data packet (for converting flit rate to packet
    /// rate); the uncompressed size is used so offered load is
    /// mechanism-independent.
    data_flits: f64,
}

impl SyntheticTraffic {
    /// Creates a synthetic source.
    ///
    /// * `flit_rate` — offered load in flits/node/cycle (the x-axis of
    ///   Figure 12);
    /// * `data_ratio` — fraction of packets carrying data (0.25 in §5.2.2);
    /// * `pool` — benchmark data pool supplying payload values.
    pub fn new(
        pattern: DestPattern,
        num_nodes: usize,
        pool: DataPool,
        flit_rate: f64,
        data_ratio: f64,
        approx_ratio: f64,
        seed: u64,
    ) -> Self {
        let data_flits = 9.0; // uncompressed 64 B block on 64-bit flits
        SyntheticTraffic {
            pattern,
            num_nodes,
            pool,
            // anoc-lint: rng-site: synthetic-pattern stream, seeded from the workload seed
            rng: Pcg32::new(seed, 0x0073_796e_7468),
            flit_rate,
            data_ratio,
            approx_ratio,
            data_flits,
        }
    }

    /// The offered load in flits/node/cycle.
    pub fn flit_rate(&self) -> f64 {
        self.flit_rate
    }
}

impl TrafficSource for SyntheticTraffic {
    fn tick(&mut self, _cycle: u64, out: &mut Vec<Injection>) {
        // Convert the flit rate to a packet rate given the mix's average
        // packet size.
        let avg_flits = self.data_ratio * self.data_flits + (1.0 - self.data_ratio);
        let packet_rate = (self.flit_rate / avg_flits).min(1.0);
        for node in 0..self.num_nodes {
            if !self.rng.chance(packet_rate) {
                continue;
            }
            let src = NodeId::from(node);
            let dest = self.pattern.dest(src, self.num_nodes, &mut self.rng);
            let payload = if self.rng.chance(self.data_ratio) {
                let approx = self.rng.chance(self.approx_ratio);
                Some(self.pool.draw(&mut self.rng).with_approximable(approx))
            } else {
                None
            };
            out.push(Injection { src, dest, payload });
        }
    }

    fn num_nodes(&self) -> usize {
        self.num_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_traffic_rate_is_roughly_the_profile_load() {
        let n = 32;
        let mut t = BenchmarkTraffic::new(Benchmark::Blackscholes, n, 0.75, 1);
        let mut out = Vec::new();
        let cycles = 5000;
        for c in 0..cycles {
            t.tick(c, &mut out);
        }
        let per_node_per_cycle = out.len() as f64 / (n as f64 * cycles as f64);
        let base = Benchmark::Blackscholes.profile().load;
        // Bursts push the average above the base load, but within ~4x.
        assert!(
            per_node_per_cycle > base * 0.8 && per_node_per_cycle < base * 4.0,
            "rate {per_node_per_cycle} vs base {base}"
        );
        assert_eq!(t.num_nodes(), n);
    }

    #[test]
    fn data_control_mix_matches_profile() {
        let mut t = BenchmarkTraffic::new(Benchmark::Ssca2, 16, 0.75, 2);
        let mut out = Vec::new();
        for c in 0..4000 {
            t.tick(c, &mut out);
        }
        let data = out.iter().filter(|i| i.payload.is_some()).count();
        let ratio = data as f64 / out.len() as f64;
        let want = Benchmark::Ssca2.profile().data_packet_ratio;
        assert!((ratio - want).abs() < 0.05, "ratio {ratio} want {want}");
    }

    #[test]
    fn approx_ratio_respected() {
        let mut t = BenchmarkTraffic::new(Benchmark::Ssca2, 16, 0.5, 3);
        let mut out = Vec::new();
        for c in 0..4000 {
            t.tick(c, &mut out);
        }
        let blocks: Vec<_> = out.iter().filter_map(|i| i.payload.as_ref()).collect();
        let approx = blocks.iter().filter(|b| b.is_approximable()).count();
        let frac = approx as f64 / blocks.len() as f64;
        assert!((frac - 0.5).abs() < 0.06, "approximable fraction {frac}");
    }

    #[test]
    fn synthetic_traffic_sweeps_rate() {
        let pool = DataPool::from_benchmark(Benchmark::Blackscholes, 64, 4);
        for rate in [0.05, 0.3] {
            let mut t = SyntheticTraffic::new(
                DestPattern::UniformRandom,
                32,
                pool.clone(),
                rate,
                0.25,
                0.75,
                5,
            );
            let mut out = Vec::new();
            for c in 0..3000 {
                t.tick(c, &mut out);
            }
            // offered flits = packets * avg size
            let flits: f64 = out
                .iter()
                .map(|i| if i.payload.is_some() { 9.0 } else { 1.0 })
                .sum();
            let measured = flits / (32.0 * 3000.0);
            assert!(
                (measured - rate).abs() < rate * 0.25,
                "measured {measured} vs offered {rate}"
            );
            assert_eq!(t.flit_rate(), rate);
        }
    }

    #[test]
    fn synthetic_traffic_respects_pattern() {
        let pool = DataPool::from_benchmark(Benchmark::Streamcluster, 16, 6);
        let mut t = SyntheticTraffic::new(DestPattern::BitComplement, 16, pool, 0.2, 0.25, 0.75, 7);
        let mut out = Vec::new();
        for c in 0..200 {
            t.tick(c, &mut out);
        }
        for i in &out {
            assert_eq!(i.dest.0, (!i.src.0) & 15);
        }
    }

    #[test]
    fn benchmark_traffic_snapshot_resumes_exactly() {
        let mut a = BenchmarkTraffic::new(Benchmark::Fluidanimate, 16, 0.75, 42);
        let mut scratch = Vec::new();
        for c in 0..500 {
            a.tick(c, &mut scratch);
        }
        assert!(a.snapshot_supported());
        let mut w = SnapWriter::new();
        a.save_state(&mut w);
        let bytes = w.into_bytes();
        // Restore into a freshly built source (same constructor arguments).
        let mut b = BenchmarkTraffic::new(Benchmark::Fluidanimate, 16, 0.75, 42);
        let mut r = SnapReader::new(&bytes);
        b.load_state(&mut r).unwrap();
        assert!(r.is_exhausted());
        for c in 500..1000 {
            let mut ia = Vec::new();
            let mut ib = Vec::new();
            a.tick(c, &mut ia);
            b.tick(c, &mut ib);
            assert_eq!(ia.len(), ib.len(), "cycle {c}");
            for (x, y) in ia.iter().zip(&ib) {
                assert_eq!(x.src, y.src);
                assert_eq!(x.dest, y.dest);
                assert_eq!(x.payload, y.payload);
            }
        }
        // Truncated state is a typed error.
        let mut short = SnapReader::new(&bytes[..4]);
        assert!(b.load_state(&mut short).is_err());
        // Synthetic traffic declines snapshots (harness falls back to cold).
        let pool = DataPool::from_benchmark(Benchmark::Streamcluster, 16, 6);
        let s = SyntheticTraffic::new(DestPattern::BitComplement, 16, pool, 0.2, 0.25, 0.75, 7);
        assert!(!s.snapshot_supported());
    }
}
