//! Synthetic destination patterns (§5.2.2 uses Uniform Random and Transpose;
//! the usual companions are included for completeness).

use anoc_core::data::NodeId;
use anoc_core::rng::Pcg32;

/// A synthetic traffic destination pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DestPattern {
    /// Every other node equally likely (UR).
    UniformRandom,
    /// Node with bit-transposed id: for an id of 2b bits, destination is the
    /// low and high halves swapped (TR).
    Transpose,
    /// Destination is the bit complement of the source id.
    BitComplement,
    /// Destination is the source id bit-reversed within `log2(n)` bits.
    BitReverse,
    /// A fraction of the traffic targets a fixed hotspot node; the rest is
    /// uniform random.
    Hotspot {
        /// The hot node.
        node: NodeId,
        /// Fraction of packets aimed at it (0..=1 as percent).
        percent: u8,
    },
    /// Destination is `src + n/2 (mod n)` — the classic tornado pattern
    /// that stresses one dimension of the mesh.
    Tornado,
    /// Destination is the next node (`src + 1 mod n`) — nearest-neighbour
    /// traffic with minimal path lengths.
    Neighbor,
    /// Destination is `2*src mod (n-1)` (perfect shuffle).
    Shuffle,
}

impl DestPattern {
    /// Picks a destination for `src` in a network of `num_nodes` nodes.
    /// Always returns a node different from `src` (self-traffic is retried
    /// for random patterns and redirected to the next node for permutation
    /// patterns that map a node to itself).
    pub fn dest(&self, src: NodeId, num_nodes: usize, rng: &mut Pcg32) -> NodeId {
        debug_assert!(num_nodes >= 2, "patterns need at least two nodes");
        let n = num_nodes as u32;
        let s = src.0 as u32;
        let d = match *self {
            DestPattern::UniformRandom => {
                let mut d = rng.below(n);
                while d == s {
                    d = rng.below(n);
                }
                d
            }
            DestPattern::Transpose => {
                let bits = n.trailing_zeros().max(2);
                let half = bits / 2;
                let mask = (1 << half) - 1;
                let lo = s & mask;
                let hi = (s >> half) & mask;
                ((lo << half) | hi) % n
            }
            DestPattern::BitComplement => (!s) & (n - 1),
            DestPattern::BitReverse => {
                let bits = n.trailing_zeros();
                let mut d = 0;
                for b in 0..bits {
                    if s & (1 << b) != 0 {
                        d |= 1 << (bits - 1 - b);
                    }
                }
                d
            }
            DestPattern::Tornado => (s + n / 2) % n,
            DestPattern::Neighbor => (s + 1) % n,
            DestPattern::Shuffle => {
                if n <= 2 {
                    (s + 1) % n
                } else {
                    (s * 2) % (n - 1)
                }
            }
            DestPattern::Hotspot { node, percent } => {
                if rng.below(100) < percent as u32 && node.0 as u32 != s {
                    node.0 as u32
                } else {
                    let mut d = rng.below(n);
                    while d == s {
                        d = rng.below(n);
                    }
                    d
                }
            }
        };
        if d == s {
            NodeId(((d + 1) % n) as u16)
        } else {
            NodeId(d as u16)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_self_traffic() {
        let mut rng = Pcg32::seed_from_u64(1);
        let patterns = [
            DestPattern::UniformRandom,
            DestPattern::Transpose,
            DestPattern::BitComplement,
            DestPattern::BitReverse,
            DestPattern::Hotspot {
                node: NodeId(3),
                percent: 50,
            },
            DestPattern::Tornado,
            DestPattern::Neighbor,
            DestPattern::Shuffle,
        ];
        for p in patterns {
            for s in 0..32u16 {
                for _ in 0..20 {
                    let d = p.dest(NodeId(s), 32, &mut rng);
                    assert_ne!(d, NodeId(s), "{p:?} produced self traffic");
                    assert!((d.0 as usize) < 32);
                }
            }
        }
    }

    #[test]
    fn uniform_covers_all_destinations() {
        let mut rng = Pcg32::seed_from_u64(2);
        let mut seen = [false; 16];
        for _ in 0..2000 {
            let d = DestPattern::UniformRandom.dest(NodeId(0), 16, &mut rng);
            seen[d.index()] = true;
        }
        assert!(seen.iter().skip(1).all(|s| *s));
        assert!(!seen[0]);
    }

    #[test]
    fn transpose_is_an_involution_for_square_sizes() {
        let mut rng = Pcg32::seed_from_u64(3);
        for s in 0..16u16 {
            let d = DestPattern::Transpose.dest(NodeId(s), 16, &mut rng);
            if d != NodeId(s) {
                // transpose(transpose(s)) == s, unless redirected.
                let dd = DestPattern::Transpose.dest(d, 16, &mut rng);
                let raw = {
                    let lo = d.0 & 0b11;
                    let hi = (d.0 >> 2) & 0b11;
                    (lo << 2) | hi
                };
                if raw != d.0 {
                    assert_eq!(dd, NodeId(raw));
                }
            }
        }
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let mut rng = Pcg32::seed_from_u64(4);
        let hot = NodeId(5);
        let p = DestPattern::Hotspot {
            node: hot,
            percent: 60,
        };
        let hits = (0..1000)
            .filter(|_| p.dest(NodeId(0), 16, &mut rng) == hot)
            .count();
        assert!((500..750).contains(&hits), "hotspot hits: {hits}");
    }

    #[test]
    fn tornado_neighbor_shuffle() {
        let mut rng = Pcg32::seed_from_u64(6);
        assert_eq!(
            DestPattern::Tornado.dest(NodeId(3), 16, &mut rng),
            NodeId(11)
        );
        assert_eq!(
            DestPattern::Neighbor.dest(NodeId(15), 16, &mut rng),
            NodeId(0)
        );
        assert_eq!(
            DestPattern::Shuffle.dest(NodeId(5), 16, &mut rng),
            NodeId(10)
        );
        // Shuffle of 0 maps to 0 -> redirected to the next node.
        assert_eq!(
            DestPattern::Shuffle.dest(NodeId(0), 16, &mut rng),
            NodeId(1)
        );
    }

    #[test]
    fn bit_complement_of_zero_is_max() {
        let mut rng = Pcg32::seed_from_u64(5);
        let d = DestPattern::BitComplement.dest(NodeId(0), 16, &mut rng);
        assert_eq!(d, NodeId(15));
    }
}
