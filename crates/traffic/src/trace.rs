//! Data pools and communication traces.
//!
//! The paper's throughput study (Figure 12) replays benchmark *data* under
//! synthetic *traffic*: "we collect the data injected at each node from the
//! gem5 benchmark traces and utilize the data traces to create data packets
//! in the synthetic workloads". [`DataPool`] plays the role of those captured
//! data traces; [`Trace`] records and replays full (cycle, src, dest, block)
//! streams so experiments are repeatable across mechanisms.

use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use anoc_core::data::{CacheBlock, DataType, NodeId};
use anoc_core::rng::Pcg32;

use crate::datamodel::{Benchmark, DataModel};
use crate::generator::{Injection, TrafficSource};

/// A pool of benchmark-shaped cache blocks, drawn from when synthetic
/// traffic needs a payload.
#[derive(Debug, Clone)]
pub struct DataPool {
    blocks: Vec<CacheBlock>,
}

impl DataPool {
    /// Captures `size` blocks from a benchmark's data model.
    pub fn from_benchmark(benchmark: Benchmark, size: usize, seed: u64) -> Self {
        let mut model = DataModel::new(benchmark, seed);
        DataPool {
            blocks: (0..size.max(1)).map(|_| model.next_block(true)).collect(),
        }
    }

    /// Wraps an explicit set of blocks.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty.
    pub fn from_blocks(blocks: Vec<CacheBlock>) -> Self {
        assert!(!blocks.is_empty(), "a data pool cannot be empty");
        DataPool { blocks }
    }

    /// Number of blocks in the pool.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the pool is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Draws a uniformly random block (cloned).
    pub fn draw(&self, rng: &mut Pcg32) -> CacheBlock {
        self.blocks[rng.below(self.blocks.len() as u32) as usize].clone()
    }
}

/// One recorded injection.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Cycle the packet was offered.
    pub cycle: u64,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dest: NodeId,
    /// Payload (None = control packet).
    pub payload: Option<CacheBlock>,
}

/// A recorded communication trace, replayable as a [`TrafficSource`].
#[derive(Debug, Clone, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
    num_nodes: usize,
}

impl Trace {
    /// Creates an empty trace over `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        Trace {
            records: Vec::new(),
            num_nodes,
        }
    }

    /// Records a live source for `cycles` cycles.
    pub fn capture(source: &mut dyn TrafficSource, cycles: u64) -> Self {
        let mut trace = Trace::new(source.num_nodes());
        let mut buf = Vec::new();
        for c in 0..cycles {
            buf.clear();
            source.tick(c, &mut buf);
            for inj in buf.drain(..) {
                trace.records.push(TraceRecord {
                    cycle: c,
                    src: inj.src,
                    dest: inj.dest,
                    payload: inj.payload,
                });
            }
        }
        trace
    }

    /// Number of recorded injections.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The recorded injections.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// A replay cursor over this trace.
    pub fn replay(&self) -> TraceReplay<'_> {
        TraceReplay {
            trace: self,
            next: 0,
        }
    }

    /// Saves the trace to a file in the line-oriented text format (see the
    /// module docs) — the equivalent of the paper's gem5-captured
    /// communication traces, decoupling capture from simulation.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        let mut w = BufWriter::new(file);
        writeln!(w, "# anoc-trace v1 nodes={}", self.num_nodes)?;
        for r in &self.records {
            match &r.payload {
                None => writeln!(w, "{} {} {} C", r.cycle, r.src.0, r.dest.0)?,
                Some(block) => {
                    let dtype = match block.dtype() {
                        DataType::Int => "i",
                        DataType::F32 => "f",
                    };
                    let approx = if block.is_approximable() { "a" } else { "p" };
                    write!(w, "{} {} {} D {dtype}{approx}", r.cycle, r.src.0, r.dest.0)?;
                    for word in block.words() {
                        write!(w, " {word:08x}")?;
                    }
                    writeln!(w)?;
                }
            }
        }
        w.flush()
    }

    /// Loads a trace saved by [`Trace::save`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on any malformed line, and propagates I/O
    /// errors.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
        let file = std::fs::File::open(path)?;
        let reader = std::io::BufReader::new(file);
        let mut lines = reader.lines();
        let header = lines.next().ok_or_else(|| bad("empty trace file"))??;
        let nodes: usize = header
            .strip_prefix("# anoc-trace v1 nodes=")
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| bad("bad trace header"))?;
        let mut trace = Trace::new(nodes);
        for line in lines {
            let line = line?;
            if line.is_empty() {
                continue;
            }
            let mut f = line.split_whitespace();
            let cycle: u64 = f
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| bad("missing cycle"))?;
            let src: u16 = f
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| bad("missing src"))?;
            let dest: u16 = f
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| bad("missing dest"))?;
            let kind = f.next().ok_or_else(|| bad("missing kind"))?;
            let payload = match kind {
                "C" => None,
                "D" => {
                    let meta = f.next().ok_or_else(|| bad("missing data metadata"))?;
                    let mut meta_chars = meta.chars();
                    let dtype = match meta_chars.next() {
                        Some('i') => DataType::Int,
                        Some('f') => DataType::F32,
                        _ => return Err(bad("bad data type")),
                    };
                    let approx = match meta_chars.next() {
                        Some('a') => true,
                        Some('p') => false,
                        _ => return Err(bad("bad approximable flag")),
                    };
                    let words: Result<Vec<u32>, _> =
                        f.map(|w| u32::from_str_radix(w, 16)).collect();
                    let words = words.map_err(|_| bad("bad payload word"))?;
                    Some(CacheBlock::new(words, dtype, approx))
                }
                _ => return Err(bad("bad record kind")),
            };
            trace.records.push(TraceRecord {
                cycle,
                src: NodeId(src),
                dest: NodeId(dest),
                payload,
            });
        }
        Ok(trace)
    }
}

/// Replays a [`Trace`] as a traffic source.
#[derive(Debug, Clone)]
pub struct TraceReplay<'a> {
    trace: &'a Trace,
    next: usize,
}

impl TrafficSource for TraceReplay<'_> {
    fn tick(&mut self, cycle: u64, out: &mut Vec<Injection>) {
        while let Some(r) = self.trace.records.get(self.next) {
            if r.cycle > cycle {
                break;
            }
            out.push(Injection {
                src: r.src,
                dest: r.dest,
                payload: r.payload.clone(),
            });
            self.next += 1;
        }
    }

    fn num_nodes(&self) -> usize {
        self.trace.num_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::BenchmarkTraffic;

    #[test]
    fn pool_draws_from_captured_blocks() {
        let pool = DataPool::from_benchmark(Benchmark::X264, 8, 1);
        assert_eq!(pool.len(), 8);
        assert!(!pool.is_empty());
        let mut rng = Pcg32::seed_from_u64(2);
        for _ in 0..50 {
            let b = pool.draw(&mut rng);
            assert_eq!(b.len(), 16);
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_pool_rejected() {
        let _ = DataPool::from_blocks(vec![]);
    }

    #[test]
    fn capture_and_replay_are_identical() {
        let mut src = BenchmarkTraffic::new(Benchmark::Swaptions, 8, 0.75, 9);
        let trace = Trace::capture(&mut src, 500);
        assert!(!trace.is_empty());
        assert_eq!(trace.replay().num_nodes(), 8);

        // Replaying twice yields the same stream.
        let collect = |t: &Trace| {
            let mut replay = t.replay();
            let mut all = Vec::new();
            for c in 0..500 {
                let mut buf = Vec::new();
                replay.tick(c, &mut buf);
                all.extend(buf.into_iter().map(|i| (c, i.src, i.dest, i.payload)));
            }
            all
        };
        let a = collect(&trace);
        let b = collect(&trace);
        assert_eq!(a.len(), trace.len());
        assert_eq!(a, b);
    }

    #[test]
    fn replay_emits_records_at_their_cycles() {
        let mut trace = Trace::new(4);
        trace.records.push(TraceRecord {
            cycle: 3,
            src: NodeId(0),
            dest: NodeId(1),
            payload: None,
        });
        trace.records.push(TraceRecord {
            cycle: 5,
            src: NodeId(2),
            dest: NodeId(3),
            payload: None,
        });
        let mut replay = trace.replay();
        let mut out = Vec::new();
        replay.tick(0, &mut out);
        assert!(out.is_empty());
        replay.tick(3, &mut out);
        assert_eq!(out.len(), 1);
        out.clear();
        // Skipping ahead delivers everything due.
        replay.tick(10, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].src, NodeId(2));
    }
}

#[cfg(test)]
mod file_tests {
    use super::*;
    use crate::datamodel::Benchmark;
    use crate::generator::BenchmarkTraffic;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("anoc-trace-test-{name}-{}", std::process::id()))
    }

    #[test]
    fn save_load_roundtrip() {
        let mut src = BenchmarkTraffic::new(Benchmark::X264, 8, 0.75, 3);
        let trace = Trace::capture(&mut src, 300);
        assert!(!trace.is_empty());
        let path = temp_path("roundtrip");
        trace.save(&path).expect("save trace");
        let loaded = Trace::load(&path).expect("load trace");
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.records(), trace.records());
        assert_eq!(loaded.replay().num_nodes(), 8);
    }

    #[test]
    fn malformed_files_are_rejected() {
        let path = temp_path("malformed");
        for content in [
            "",                                         // empty
            "garbage header\n",                         // bad header
            "# anoc-trace v1 nodes=4\n1 0\n",           // truncated record
            "# anoc-trace v1 nodes=4\n1 0 1 X\n",       // bad kind
            "# anoc-trace v1 nodes=4\n1 0 1 D zz 00\n", // bad metadata
            "# anoc-trace v1 nodes=4\n1 0 1 D ia zz\n", // bad word
        ] {
            std::fs::write(&path, content).expect("write fixture");
            assert!(Trace::load(&path).is_err(), "accepted: {content:?}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn control_and_data_records_roundtrip_exactly() {
        let mut trace = Trace::new(4);
        trace.records.push(TraceRecord {
            cycle: 5,
            src: NodeId(1),
            dest: NodeId(2),
            payload: None,
        });
        trace.records.push(TraceRecord {
            cycle: 9,
            src: NodeId(3),
            dest: NodeId(0),
            payload: Some(CacheBlock::new(
                vec![0, u32::MAX, 0xDEAD_BEEF],
                DataType::F32,
                false,
            )),
        });
        let path = temp_path("exact");
        trace.save(&path).expect("save");
        let loaded = Trace::load(&path).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.records(), trace.records());
    }
}
