//! Per-benchmark data-value models.
//!
//! The paper drives its NoC simulator with communication traces captured from
//! gem5 running PARSEC (`simlarge`) and a modified SSCA2 (§5.1). Those traces
//! are not redistributable, so — per the substitution policy in DESIGN.md —
//! each benchmark is modelled by a statistical generator exposing exactly the
//! properties the evaluated mechanisms are sensitive to:
//!
//! * **zero-word density** and **small-value density** (what FP-COMP exploits),
//! * **hot-value working set and reuse** (what DI-COMP learns),
//! * **value jitter around hot values** (what VAXX converts into hits),
//! * **int/float mix** (which AVCL datapath runs),
//! * **data-to-control packet ratio and offered load** (queueing behaviour),
//! * **burstiness** (congested phases where flit reduction pays off).
//!
//! The parameters are calibrated so the *relative* behaviour across
//! benchmarks matches the paper's characterization (e.g. SSCA2 is data-
//! intensive and value-local; bodytrack/canneal/fluidanimate have low
//! data-to-control ratios and light queueing).

use anoc_core::data::CacheBlock;
use anoc_core::rng::Pcg32;

/// Words per generated cache block (64 B lines, as in §5.4).
pub const BLOCK_WORDS: usize = 16;

/// The benchmarks of Figure 9 (PARSEC + the SSCA2 graph kernel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Black–Scholes option pricing (float-heavy, high value similarity).
    Blackscholes,
    /// Body tracking (low data ratio, image-derived floats).
    Bodytrack,
    /// Simulated-annealing routing cost (pointer/int-heavy, low data ratio).
    Canneal,
    /// SPH fluid simulation (float, low queueing).
    Fluidanimate,
    /// Online clustering (float coordinates, moderate locality).
    Streamcluster,
    /// HJM swaption Monte-Carlo (float, high sharing).
    Swaptions,
    /// H.264 encoding (int pixels/residuals, many zeros and small values).
    X264,
    /// SSCA2 betweenness centrality (data-intensive graph analytics).
    Ssca2,
}

impl Benchmark {
    /// All benchmarks in the paper's plotting order.
    pub const ALL: [Benchmark; 8] = [
        Benchmark::Blackscholes,
        Benchmark::Bodytrack,
        Benchmark::Canneal,
        Benchmark::Fluidanimate,
        Benchmark::Streamcluster,
        Benchmark::Swaptions,
        Benchmark::X264,
        Benchmark::Ssca2,
    ];

    /// Lower-case display name.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::Blackscholes => "blackscholes",
            Benchmark::Bodytrack => "bodytrack",
            Benchmark::Canneal => "canneal",
            Benchmark::Fluidanimate => "fluidanimate",
            Benchmark::Streamcluster => "streamcluster",
            Benchmark::Swaptions => "swaptions",
            Benchmark::X264 => "x264",
            Benchmark::Ssca2 => "ssca2",
        }
    }

    /// The calibrated data-value profile.
    pub fn profile(&self) -> Profile {
        match self {
            Benchmark::Blackscholes => Profile {
                float_ratio: 0.90,
                zero_word_prob: 0.20,
                small_int_prob: 0.30,
                hot_values: 12,
                hot_reuse_prob: 0.62,
                jitter_frac: 0.05,
                data_packet_ratio: 0.30,
                load: 0.028,
                burstiness: 0.25,
                sharing: 0.35,
            },
            Benchmark::Bodytrack => Profile {
                float_ratio: 0.75,
                zero_word_prob: 0.18,
                small_int_prob: 0.35,
                hot_values: 10,
                hot_reuse_prob: 0.45,
                jitter_frac: 0.06,
                data_packet_ratio: 0.14,
                load: 0.035,
                burstiness: 0.10,
                sharing: 0.20,
            },
            Benchmark::Canneal => Profile {
                float_ratio: 0.20,
                zero_word_prob: 0.10,
                small_int_prob: 0.25,
                hot_values: 16,
                hot_reuse_prob: 0.40,
                jitter_frac: 0.03,
                data_packet_ratio: 0.16,
                load: 0.040,
                burstiness: 0.15,
                sharing: 0.15,
            },
            Benchmark::Fluidanimate => Profile {
                float_ratio: 0.85,
                zero_word_prob: 0.14,
                small_int_prob: 0.20,
                hot_values: 10,
                hot_reuse_prob: 0.42,
                jitter_frac: 0.05,
                data_packet_ratio: 0.15,
                load: 0.035,
                burstiness: 0.12,
                sharing: 0.20,
            },
            Benchmark::Streamcluster => Profile {
                float_ratio: 0.88,
                zero_word_prob: 0.12,
                small_int_prob: 0.15,
                hot_values: 12,
                hot_reuse_prob: 0.50,
                jitter_frac: 0.07,
                data_packet_ratio: 0.22,
                load: 0.030,
                burstiness: 0.30,
                sharing: 0.30,
            },
            Benchmark::Swaptions => Profile {
                float_ratio: 0.92,
                zero_word_prob: 0.15,
                small_int_prob: 0.15,
                hot_values: 10,
                hot_reuse_prob: 0.55,
                jitter_frac: 0.06,
                data_packet_ratio: 0.28,
                load: 0.026,
                burstiness: 0.30,
                sharing: 0.45,
            },
            Benchmark::X264 => Profile {
                float_ratio: 0.15,
                zero_word_prob: 0.34,
                small_int_prob: 0.45,
                hot_values: 14,
                hot_reuse_prob: 0.48,
                jitter_frac: 0.08,
                data_packet_ratio: 0.30,
                load: 0.027,
                burstiness: 0.35,
                sharing: 0.25,
            },
            Benchmark::Ssca2 => Profile {
                float_ratio: 0.55,
                zero_word_prob: 0.16,
                small_int_prob: 0.28,
                hot_values: 8,
                hot_reuse_prob: 0.72,
                jitter_frac: 0.05,
                data_packet_ratio: 0.55,
                load: 0.016,
                burstiness: 0.55,
                sharing: 0.50,
            },
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The tunable data/traffic characteristics of one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Profile {
    /// Fraction of data blocks holding floats (vs integers).
    pub float_ratio: f64,
    /// Probability a word is exactly zero.
    pub zero_word_prob: f64,
    /// Probability a word is a small, sign-extension-friendly integer.
    pub small_int_prob: f64,
    /// Size of the hot-value working set.
    pub hot_values: usize,
    /// Probability a word reuses (a jittered copy of) a hot value.
    pub hot_reuse_prob: f64,
    /// Relative jitter applied to reused hot values (the approximate
    /// similarity VAXX exploits).
    pub jitter_frac: f64,
    /// Fraction of generated packets that are data packets.
    pub data_packet_ratio: f64,
    /// Offered load in packets per node per cycle.
    pub load: f64,
    /// Fraction of time spent in 4×-rate bursty phases.
    pub burstiness: f64,
    /// Degree of data sharing (drives the full-system speedups of §5.4).
    pub sharing: f64,
}

/// A deterministic generator of benchmark-shaped cache blocks.
#[derive(Debug, Clone)]
pub struct DataModel {
    profile: Profile,
    hot_ints: Vec<u32>,
    hot_floats: Vec<f32>,
    rng: Pcg32,
}

impl DataModel {
    /// Creates a data model for `benchmark` seeded with `seed`.
    pub fn new(benchmark: Benchmark, seed: u64) -> Self {
        DataModel::from_profile(benchmark.profile(), seed)
    }

    /// Creates a data model from an explicit profile.
    pub fn from_profile(profile: Profile, seed: u64) -> Self {
        // anoc-lint: rng-site: value-pool synthesis stream, seeded from the workload seed
        let mut rng = Pcg32::new(seed, 0x7261_6666_6963);
        let hot_ints = (0..profile.hot_values)
            .map(|_| {
                // Hot integers span magnitudes so some are FPC-friendly and
                // some only dictionary-compressible.
                let mag = 1u32 << rng.range(4, 28);
                rng.below(mag).max(1)
            })
            .collect();
        let hot_floats = (0..profile.hot_values)
            .map(|_| {
                let exp = rng.range(0, 12) as i32 - 6;
                (rng.f32() + 0.5) * 2f32.powi(exp)
            })
            .collect();
        DataModel {
            profile,
            hot_ints,
            hot_floats,
            rng,
        }
    }

    /// The profile driving this model.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Serializes mid-run state for a simulator snapshot. The hot-value
    /// tables are a pure function of `(profile, seed)` and are rebuilt by
    /// the constructor, so only the RNG cursor travels.
    pub fn save_state(&self, w: &mut anoc_core::snap::SnapWriter) {
        let (state, inc) = self.rng.state_parts();
        w.u64(state);
        w.u64(inc);
    }

    /// Restores state written by [`save_state`](Self::save_state) into a
    /// model built with the same `(profile, seed)`.
    pub fn load_state(
        &mut self,
        r: &mut anoc_core::snap::SnapReader<'_>,
    ) -> Result<(), anoc_core::snap::SnapError> {
        let state = r.u64()?;
        let inc = r.u64()?;
        self.rng = Pcg32::from_state_parts(state, inc);
        Ok(())
    }

    /// Generates the next cache block. `approximable` marks the metadata
    /// flag (the caller applies the experiment's approximable-packet ratio).
    pub fn next_block(&mut self, approximable: bool) -> CacheBlock {
        let is_float = self.rng.chance(self.profile.float_ratio);
        if is_float {
            let mut vals = [0f32; BLOCK_WORDS];
            for v in &mut vals {
                *v = self.next_float_word();
            }
            CacheBlock::from_f32(&vals).with_approximable(approximable)
        } else {
            let mut vals = [0i32; BLOCK_WORDS];
            for v in &mut vals {
                *v = self.next_int_word();
            }
            CacheBlock::from_i32(&vals).with_approximable(approximable)
        }
    }

    fn next_int_word(&mut self) -> i32 {
        let p = self.profile;
        if self.rng.chance(p.zero_word_prob) {
            return 0;
        }
        if self.rng.chance(p.small_int_prob) {
            // Sign-extension-friendly magnitudes (4/8/16-bit).
            let bits = *self.rng.choose(&[3u32, 7, 7, 15]);
            let mag = self.rng.below(1 << bits) as i32;
            return if self.rng.chance(0.4) { -mag } else { mag };
        }
        if self.rng.chance(p.hot_reuse_prob) {
            let hot = *self.rng.choose(&self.hot_ints);
            return self.jitter_int(hot) as i32;
        }
        self.rng.next_u32() as i32
    }

    fn jitter_int(&mut self, value: u32) -> u32 {
        let jf = self.profile.jitter_frac;
        if jf <= 0.0 || !self.rng.chance(0.7) {
            return value;
        }
        // Value similarity in real workloads concentrates in the low-order
        // bits (quantised weights, pixel components, counters): perturb the
        // low bits only, bounding |w - v| by roughly jf * v.
        let span = ((value as f64) * jf) as u64;
        if span == 0 {
            return value;
        }
        let bits = 64 - span.leading_zeros() - 1; // floor(log2 span)
        let mask = if bits >= 32 {
            u32::MAX
        } else {
            (1u32 << bits) - 1
        };
        (value & !mask) | (self.rng.next_u32() & mask)
    }

    fn next_float_word(&mut self) -> f32 {
        let p = self.profile;
        if self.rng.chance(p.zero_word_prob) {
            return 0.0;
        }
        if self.rng.chance(p.hot_reuse_prob) {
            let hot = *self.rng.choose(&self.hot_floats);
            return self.jitter_float(hot);
        }
        // Cold values: moderately ranged floats.
        let exp = self.rng.range(0, 16) as i32 - 8;
        (self.rng.f32() + 0.5) * 2f32.powi(exp)
    }

    fn jitter_float(&mut self, value: f32) -> f32 {
        let jf = self.profile.jitter_frac;
        if jf <= 0.0 || !self.rng.chance(0.7) || !value.is_normal() {
            return value;
        }
        // Perturb low mantissa bits: a relative change bounded by jf that
        // keeps the high mantissa bits (the similarity structure VAXX and
        // approximate caches exploit) intact.
        let span_bits = ((8_388_608.0 * jf) as u32).max(1); // 2^23 * jf
        let bits = 32 - span_bits.leading_zeros() - 1;
        let mask = (1u32 << bits.min(22)) - 1;
        let word = value.to_bits();
        f32::from_bits((word & !mask) | (self.rng.next_u32() & mask))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anoc_core::data::DataType;

    #[test]
    fn deterministic_given_seed() {
        let mut a = DataModel::new(Benchmark::Ssca2, 42);
        let mut b = DataModel::new(Benchmark::Ssca2, 42);
        for _ in 0..20 {
            assert_eq!(a.next_block(true), b.next_block(true));
        }
        let mut c = DataModel::new(Benchmark::Ssca2, 43);
        assert_ne!(a.next_block(true), c.next_block(true));
    }

    #[test]
    fn blocks_have_uniform_dtype_and_flag() {
        let mut m = DataModel::new(Benchmark::Blackscholes, 7);
        for approx in [true, false] {
            let b = m.next_block(approx);
            assert_eq!(b.len(), BLOCK_WORDS);
            assert_eq!(b.is_approximable(), approx);
            assert!(matches!(b.dtype(), DataType::Int | DataType::F32));
        }
    }

    #[test]
    fn x264_is_int_and_zero_heavy() {
        let mut m = DataModel::new(Benchmark::X264, 9);
        let mut zeros = 0usize;
        let mut int_blocks = 0usize;
        let total_blocks = 300;
        for _ in 0..total_blocks {
            let b = m.next_block(true);
            if b.dtype() == DataType::Int {
                int_blocks += 1;
            }
            zeros += b.words().iter().filter(|w| **w == 0).count();
        }
        assert!(int_blocks > total_blocks * 3 / 5, "{int_blocks}");
        let zero_frac = zeros as f64 / (total_blocks * BLOCK_WORDS) as f64;
        assert!(zero_frac > 0.25, "zero fraction {zero_frac}");
    }

    #[test]
    fn ssca2_shows_value_locality() {
        let mut m = DataModel::new(Benchmark::Ssca2, 11);
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..200 {
            let b = m.next_block(true);
            for w in b.words() {
                *counts.entry(*w).or_insert(0usize) += 1;
            }
        }
        // The hottest value should recur far more than uniform chance.
        let max = counts.values().copied().max().unwrap();
        assert!(max > 50, "hottest value seen {max} times");
    }

    #[test]
    fn profiles_are_distinct_and_sane() {
        for b in Benchmark::ALL {
            let p = b.profile();
            assert!((0.0..=1.0).contains(&p.float_ratio), "{b}");
            assert!((0.0..=1.0).contains(&p.data_packet_ratio));
            assert!(p.load > 0.0 && p.load < 1.0);
            assert!(p.hot_values > 0);
            assert_eq!(b.name(), b.to_string());
        }
        assert!(
            Benchmark::Ssca2.profile().data_packet_ratio
                > Benchmark::Bodytrack.profile().data_packet_ratio * 2.0,
            "ssca2 is the data-intensive outlier"
        );
    }

    #[test]
    fn jitter_stays_relative() {
        let mut m = DataModel::new(Benchmark::Blackscholes, 13);
        for _ in 0..200 {
            let j = m.jitter_int(10_000);
            assert!((9_400..=10_600).contains(&j), "{j}");
            let f = m.jitter_float(2.0);
            assert!((1.8..=2.2).contains(&f), "{f}");
        }
    }
}
