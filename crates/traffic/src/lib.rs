//! # anoc-traffic
//!
//! Traffic generation for the APPROX-NoC evaluation:
//!
//! * [`pattern`] — synthetic destination patterns (Uniform Random,
//!   Transpose, ... — §5.2.2);
//! * [`datamodel`] — per-benchmark data-value models standing in for the
//!   paper's gem5/PARSEC/SSCA2 communication traces (see DESIGN.md's
//!   substitution table);
//! * [`generator`] — benchmark-shaped and rate-swept synthetic traffic
//!   sources;
//! * [`trace`] — data pools and record/replay traces so every mechanism sees
//!   identical offered traffic.
//!
//! ## Example
//!
//! ```
//! use anoc_traffic::{Benchmark, BenchmarkTraffic, TrafficSource};
//!
//! let mut source = BenchmarkTraffic::new(Benchmark::Ssca2, 32, 0.75, 42);
//! let mut injections = Vec::new();
//! for cycle in 0..100 {
//!     source.tick(cycle, &mut injections);
//! }
//! assert!(!injections.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datamodel;
pub mod generator;
pub mod pattern;
pub mod trace;

pub use datamodel::{Benchmark, DataModel, Profile, BLOCK_WORDS};
pub use generator::{BenchmarkTraffic, Injection, SyntheticTraffic, TrafficSource};
pub use pattern::DestPattern;
pub use trace::{DataPool, Trace, TraceReplay};
