//! The approximable-kernel interface shared by all application models.
//!
//! Each kernel is a deterministic function of its configuration and seed;
//! running it against [`PreciseTransport`] yields the reference output and
//! running it against an approximate transport yields the degraded output.
//! The per-application error metric follows the paper's §5.4 ("we extend
//! application-specific accuracy metrics based on prior approximate
//! computing research").
//!
//! [`PreciseTransport`]: crate::transport::PreciseTransport

use anoc_core::metrics::mean_relative_error;

use crate::transport::{BlockTransport, PreciseTransport};

/// An application kernel whose shared data travels through a transport.
pub trait ApproxKernel {
    /// Benchmark name (matches the traffic model's naming).
    fn name(&self) -> &'static str;

    /// Runs the kernel, routing all approximable shared data through
    /// `transport`, and returns the output vector.
    fn run(&self, transport: &mut dyn BlockTransport) -> Vec<f64>;

    /// Application-specific output error in `[0, 1]` between the precise
    /// and approximate outputs. Defaults to the mean relative error.
    fn output_error(&self, precise: &[f64], approx: &[f64]) -> f64 {
        mean_relative_error(precise, approx, 1e-6)
    }
}

/// Convenience: runs a kernel precisely and through `transport`, returning
/// `(precise, approximate, output_error)`.
pub fn evaluate(
    kernel: &dyn ApproxKernel,
    transport: &mut dyn BlockTransport,
) -> (Vec<f64>, Vec<f64>, f64) {
    let precise = kernel.run(&mut PreciseTransport);
    let approx = kernel.run(transport);
    let err = kernel.output_error(&precise, &approx);
    (precise, approx, err)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Doubler;
    impl ApproxKernel for Doubler {
        fn name(&self) -> &'static str {
            "doubler"
        }
        fn run(&self, transport: &mut dyn BlockTransport) -> Vec<f64> {
            transport
                .transmit_f32(&[1.0, 2.0, 3.0])
                .into_iter()
                .map(|v| (v * 2.0) as f64)
                .collect()
        }
    }

    #[test]
    fn evaluate_with_identity_gives_zero_error() {
        let (p, a, err) = evaluate(&Doubler, &mut PreciseTransport);
        assert_eq!(p, a);
        assert_eq!(err, 0.0);
        assert_eq!(Doubler.name(), "doubler");
    }
}
