//! The SSCA2 kernel wrapper: betweenness centrality on an R-MAT graph.
//!
//! §5.1: "we explore the approximation opportunities in big data analytics by
//! modifying SSCA2, a data intensive graph benchmark, to evaluate betweenness
//! centrality (BC)... We approximate the floating-point pair-wise
//! dependencies that is used for centrality calculation." §5.4: "we evaluate
//! the pair-wise betweenness centrality difference between the approximate
//! output and its precise counterpart for error calculation."

use crate::graph::{betweenness_centrality, Graph};
use crate::kernel::ApproxKernel;
use crate::transport::BlockTransport;

/// The SSCA2 kernel configuration.
#[derive(Debug, Clone, Copy)]
pub struct Ssca2 {
    /// Number of graph vertices (power of two, as R-MAT requires).
    pub nodes: usize,
    /// Number of undirected edges.
    pub edges: usize,
    /// BFS sources evaluated (SSCA2 samples on big graphs).
    pub sources: usize,
    /// Graph-generation seed.
    pub seed: u64,
}

impl Ssca2 {
    /// A BC problem on an R-MAT graph of `nodes` vertices.
    pub fn new(nodes: usize, edges: usize, seed: u64) -> Self {
        Ssca2 {
            nodes,
            edges,
            sources: nodes,
            seed,
        }
    }

    /// The generated graph (exposed for inspection and benches).
    pub fn graph(&self) -> Graph {
        Graph::rmat(self.nodes, self.edges, self.seed)
    }
}

impl Default for Ssca2 {
    fn default() -> Self {
        Ssca2::new(128, 512, 1)
    }
}

impl ApproxKernel for Ssca2 {
    fn name(&self) -> &'static str {
        "ssca2"
    }

    fn run(&self, transport: &mut dyn BlockTransport) -> Vec<f64> {
        let graph = self.graph();
        betweenness_centrality(&graph, self.sources, Some(transport))
    }

    /// Pair-wise BC difference, normalised by the precise score (guarded for
    /// low-centrality vertices).
    fn output_error(&self, precise: &[f64], approx: &[f64]) -> f64 {
        anoc_core::metrics::mean_relative_error(precise, approx, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::evaluate;
    use crate::transport::{ApproxTransport, PreciseTransport};
    use anoc_core::threshold::ErrorThreshold;

    #[test]
    fn identifies_central_entities() {
        let k = Ssca2::new(64, 256, 3);
        let bc = k.run(&mut PreciseTransport);
        assert_eq!(bc.len(), 64);
        // R-MAT hubs must rank far above the median vertex.
        let mut sorted = bc.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[32];
        let max = sorted[63];
        assert!(max > median * 3.0 + 1.0, "max {max} median {median}");
    }

    #[test]
    fn deterministic() {
        let k = Ssca2::new(64, 256, 4);
        assert_eq!(k.run(&mut PreciseTransport), k.run(&mut PreciseTransport));
    }

    #[test]
    fn pairwise_bc_error_is_bounded_at_10_percent() {
        let k = Ssca2::new(64, 256, 5);
        let mut t = ApproxTransport::di_vaxx(ErrorThreshold::from_percent(10).unwrap());
        let (_, _, err) = evaluate(&k, &mut t);
        assert!(err < 0.10, "pair-wise BC error {err}");
    }

    #[test]
    fn graph_accessor_matches_run() {
        let k = Ssca2::new(32, 96, 6);
        let g = k.graph();
        assert_eq!(g.len(), 32);
        assert_eq!(g.num_edges(), 96);
    }
}
