//! The blackscholes kernel: closed-form European option pricing.
//!
//! PARSEC's blackscholes prices a portfolio of options from per-option
//! parameter arrays. The approximable shared data are exactly those input
//! arrays (spot, strike, volatility, time-to-maturity); the output error is
//! the mean relative error of the computed prices.

use anoc_core::rng::Pcg32;

use crate::kernel::ApproxKernel;
use crate::transport::BlockTransport;

/// The blackscholes kernel configuration.
#[derive(Debug, Clone, Copy)]
pub struct Blackscholes {
    /// Number of options priced.
    pub options: usize,
    /// Input-generation seed.
    pub seed: u64,
}

impl Blackscholes {
    /// A portfolio of `options` options.
    pub fn new(options: usize, seed: u64) -> Self {
        Blackscholes { options, seed }
    }
}

impl Default for Blackscholes {
    fn default() -> Self {
        Blackscholes::new(512, 1)
    }
}

/// The cumulative standard normal distribution (Abramowitz–Stegun 26.2.17,
/// the same polynomial PARSEC uses).
pub fn cnd(x: f64) -> f64 {
    let l = x.abs();
    let k = 1.0 / (1.0 + 0.2316419 * l);
    let poly = k
        * (0.319381530
            + k * (-0.356563782 + k * (1.781477937 + k * (-1.821255978 + k * 1.330274429))));
    let w = 1.0 - (-l * l / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt() * poly;
    if x < 0.0 {
        1.0 - w
    } else {
        w
    }
}

/// Black–Scholes price of a European call.
pub fn call_price(s: f64, k: f64, r: f64, v: f64, t: f64) -> f64 {
    let d1 = ((s / k).ln() + (r + v * v / 2.0) * t) / (v * t.sqrt());
    let d2 = d1 - v * t.sqrt();
    s * cnd(d1) - k * (-r * t).exp() * cnd(d2)
}

impl ApproxKernel for Blackscholes {
    fn name(&self) -> &'static str {
        "blackscholes"
    }

    fn run(&self, transport: &mut dyn BlockTransport) -> Vec<f64> {
        // anoc-lint: rng-site: seeded from the workload's config seed with a fixed per-app stream
        let mut rng = Pcg32::new(self.seed, 0x626c6b);
        let n = self.options;
        let spot: Vec<f32> = (0..n).map(|_| 20.0 + rng.f32() * 80.0).collect();
        let strike: Vec<f32> = (0..n).map(|_| 20.0 + rng.f32() * 80.0).collect();
        let vol: Vec<f32> = (0..n).map(|_| 0.10 + rng.f32() * 0.5).collect();
        let tte: Vec<f32> = (0..n).map(|_| 0.25 + rng.f32() * 2.0).collect();
        let r = 0.02f64;
        // The option arrays are the annotated approximable region.
        let spot = transport.transmit_f32(&spot);
        let strike = transport.transmit_f32(&strike);
        let vol = transport.transmit_f32(&vol);
        let tte = transport.transmit_f32(&tte);
        (0..n)
            .map(|i| {
                call_price(
                    spot[i] as f64,
                    strike[i] as f64,
                    r,
                    vol[i] as f64,
                    tte[i] as f64,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::evaluate;
    use crate::transport::{ApproxTransport, PreciseTransport};
    use anoc_core::threshold::ErrorThreshold;

    #[test]
    fn cnd_is_a_cdf() {
        assert!((cnd(0.0) - 0.5).abs() < 1e-7);
        assert!(cnd(-6.0) < 1e-8);
        assert!(cnd(6.0) > 1.0 - 1e-8);
        for x in [-2.0, -0.5, 0.3, 1.7] {
            assert!(cnd(x) < cnd(x + 0.1), "monotone at {x}");
        }
    }

    #[test]
    fn call_price_sanity() {
        // Deep in the money: price ~ S - K e^{-rT}.
        let p = call_price(150.0, 50.0, 0.02, 0.2, 1.0);
        assert!((p - (150.0 - 50.0 * (-0.02f64).exp())).abs() < 0.5, "{p}");
        // Deep out of the money: nearly zero.
        assert!(call_price(10.0, 100.0, 0.02, 0.2, 1.0) < 0.01);
        // Longer maturity is worth more.
        assert!(
            call_price(100.0, 100.0, 0.02, 0.3, 2.0) > call_price(100.0, 100.0, 0.02, 0.3, 0.5)
        );
    }

    #[test]
    fn deterministic_and_nontrivial() {
        let k = Blackscholes::new(64, 3);
        let a = k.run(&mut PreciseTransport);
        let b = k.run(&mut PreciseTransport);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        assert!(a.iter().any(|p| *p > 1.0));
    }

    #[test]
    fn ten_percent_threshold_keeps_output_error_low() {
        let k = Blackscholes::new(256, 5);
        let mut t = ApproxTransport::fp_vaxx(ErrorThreshold::from_percent(10).unwrap());
        let (_, _, err) = evaluate(&k, &mut t);
        // Option prices are smooth in their inputs; 10% data error keeps the
        // output error in the few-percent regime (Figure 16).
        assert!(err > 0.0, "approximation should perturb something");
        assert!(err < 0.30, "output error {err}");
    }
}
