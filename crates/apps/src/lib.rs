//! # anoc-apps
//!
//! Approximable application models for the APPROX-NoC output-quality study
//! (§5.4 and Figures 16–17):
//!
//! * [`transport`] — the value path of a block crossing the network (precise
//!   identity vs a real VAXX codec pair);
//! * [`cachesim`] — the 16-core private-L1 cache simulator that pulls every
//!   miss through the transport, as the paper's Pin tool does;
//! * [`kernel`] — the kernel interface and evaluation helper;
//! * [`graph`] — R-MAT generation + Brandes betweenness centrality (the
//!   SSCA2 substrate);
//! * one module per benchmark: [`blackscholes`], [`bodytrack`], [`canneal`],
//!   [`fluidanimate`], [`streamcluster`], [`swaptions`], [`x264`], [`ssca2`].
//!
//! ## Example
//!
//! ```
//! use anoc_apps::blackscholes::Blackscholes;
//! use anoc_apps::kernel::evaluate;
//! use anoc_apps::transport::ApproxTransport;
//! use anoc_core::threshold::ErrorThreshold;
//!
//! let kernel = Blackscholes::new(64, 1);
//! let mut transport = ApproxTransport::fp_vaxx(ErrorThreshold::from_percent(10)?);
//! let (_precise, _approx, error) = evaluate(&kernel, &mut transport);
//! assert!(error < 0.3);
//! # Ok::<(), anoc_core::threshold::ThresholdError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blackscholes;
pub mod bodytrack;
pub mod cachesim;
pub mod canneal;
pub mod fluidanimate;
pub mod graph;
pub mod kernel;
pub mod ssca2;
pub mod streamcluster;
pub mod swaptions;
pub mod transport;
pub mod x264;

pub use kernel::{evaluate, ApproxKernel};
pub use transport::{ApproxTransport, BlockTransport, PreciseTransport};

/// All eight kernels with small default sizes, in the paper's plotting order
/// (blackscholes, bodytrack, canneal, fluidanimate, streamcluster,
/// swaptions, x264, ssca2).
pub fn default_kernels() -> Vec<Box<dyn ApproxKernel>> {
    vec![
        Box::new(blackscholes::Blackscholes::default()),
        Box::new(bodytrack::Bodytrack::default()),
        Box::new(canneal::Canneal::default()),
        Box::new(fluidanimate::Fluidanimate::default()),
        Box::new(streamcluster::Streamcluster::default()),
        Box::new(swaptions::Swaptions::default()),
        Box::new(x264::X264::default()),
        Box::new(ssca2::Ssca2::default()),
    ]
}
