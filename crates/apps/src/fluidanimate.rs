//! The fluidanimate kernel: one SPH density/force step.
//!
//! PARSEC's fluidanimate is smoothed-particle hydrodynamics. The model
//! kernel computes per-particle densities with a poly6-style kernel and
//! advances one symplectic-Euler step; the approximable shared data are the
//! particle positions exchanged between threads. The output vector holds the
//! post-step densities, judged by mean relative error.

use anoc_core::rng::Pcg32;

use crate::kernel::ApproxKernel;
use crate::transport::BlockTransport;

/// The fluidanimate kernel configuration.
#[derive(Debug, Clone, Copy)]
pub struct Fluidanimate {
    /// Number of particles.
    pub particles: usize,
    /// SPH smoothing radius.
    pub radius: f64,
    /// Input-generation seed.
    pub seed: u64,
}

impl Fluidanimate {
    /// A fluid of `particles` particles.
    pub fn new(particles: usize, seed: u64) -> Self {
        Fluidanimate {
            particles,
            radius: 6.0,
            seed,
        }
    }
}

impl Default for Fluidanimate {
    fn default() -> Self {
        Fluidanimate::new(256, 1)
    }
}

impl ApproxKernel for Fluidanimate {
    fn name(&self) -> &'static str {
        "fluidanimate"
    }

    fn run(&self, transport: &mut dyn BlockTransport) -> Vec<f64> {
        // anoc-lint: rng-site: seeded from the workload's config seed with a fixed per-app stream
        let mut rng = Pcg32::new(self.seed, 0x666c7569);
        let n = self.particles;
        let box_size = 50.0f32;
        let mut pos = vec![0f32; n * 3];
        for p in pos.iter_mut() {
            *p = rng.f32() * box_size;
        }
        // Positions shared across threads are the approximable region.
        let pos = transport.transmit_f32(&pos);
        let h = self.radius;
        let h2 = h * h;
        // Poly6 density.
        let mut density = vec![0f64; n];
        for i in 0..n {
            let (xi, yi, zi) = (pos[i * 3], pos[i * 3 + 1], pos[i * 3 + 2]);
            for j in 0..n {
                let dx = (xi - pos[j * 3]) as f64;
                let dy = (yi - pos[j * 3 + 1]) as f64;
                let dz = (zi - pos[j * 3 + 2]) as f64;
                let r2 = dx * dx + dy * dy + dz * dz;
                if r2 < h2 {
                    let w = h2 - r2;
                    density[i] += w * w * w;
                }
            }
        }
        // One pressure-gradient kick so the output depends on interactions,
        // not just counts.
        let rest = anoc_core::metrics::mean(&density);
        density.iter().map(|d| d / rest.max(1e-12)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::evaluate;
    use crate::transport::{ApproxTransport, PreciseTransport};
    use anoc_core::threshold::ErrorThreshold;

    #[test]
    fn densities_are_positive_and_self_counted() {
        let k = Fluidanimate::new(64, 2);
        let d = k.run(&mut PreciseTransport);
        assert_eq!(d.len(), 64);
        assert!(d.iter().all(|x| *x > 0.0), "self-contribution is nonzero");
        // Normalised to a mean of 1.
        let mean = anoc_core::metrics::mean(&d);
        assert!((mean - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic() {
        let k = Fluidanimate::new(64, 3);
        assert_eq!(k.run(&mut PreciseTransport), k.run(&mut PreciseTransport));
    }

    #[test]
    fn denser_regions_have_higher_density() {
        // Construct with a seed, then verify the density field varies (a
        // uniform field would make approximation trivially invisible).
        let k = Fluidanimate::new(128, 5);
        let d = k.run(&mut PreciseTransport);
        let max = d.iter().cloned().fold(f64::MIN, f64::max);
        let min = d.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min > 1.5, "field too uniform: {min}..{max}");
    }

    #[test]
    fn approximate_positions_shift_densities_slightly() {
        let k = Fluidanimate::new(128, 7);
        let mut t = ApproxTransport::fp_vaxx(ErrorThreshold::from_percent(10).unwrap());
        let (_, _, err) = evaluate(&k, &mut t);
        // Density is a smooth functional of positions near the kernel
        // support; bounded degradation expected.
        assert!(err < 0.35, "density error {err}");
    }
}
