//! Value-path transports: what an application's data looks like after
//! crossing the (possibly approximate) network.
//!
//! The paper studies application output error with a Pin-based coherent cache
//! simulator that "emulates packet response whenever a miss happens" (§5.4):
//! functionally, every cache block transferred between nodes passes once
//! through the VAXX + compression encoder and the paired decoder. A
//! [`BlockTransport`] captures exactly that value path (timing is the NoC
//! simulator's business); kernels run against either the precise identity
//! transport or a codec-backed approximate one.

use anoc_compression::di::{DiConfig, DiDecoder, DiEncoder};
use anoc_compression::fp::{FpDecoder, FpEncoder};
use anoc_core::avcl::Avcl;
use anoc_core::codec::{BlockDecoder, BlockEncoder};
use anoc_core::data::{CacheBlock, NodeId};
use anoc_core::threshold::ErrorThreshold;

/// One hop of the data's journey: source NI encode → destination NI decode.
pub trait BlockTransport {
    /// Transmits a block, returning what the consumer receives.
    fn transmit(&mut self, block: CacheBlock) -> CacheBlock;

    /// Transmits a slice of `f32` values (chunked into 16-word blocks; the
    /// tail chunk is zero-padded on the wire and trimmed on arrival).
    fn transmit_f32(&mut self, values: &[f32]) -> Vec<f32> {
        let mut out = Vec::with_capacity(values.len());
        for chunk in values.chunks(16) {
            let mut words = [0f32; 16];
            words[..chunk.len()].copy_from_slice(chunk);
            let rx = self.transmit(CacheBlock::from_f32(&words));
            out.extend(rx.as_f32().into_iter().take(chunk.len()));
        }
        out
    }

    /// Transmits a slice of `i32` values (chunked like [`transmit_f32`]).
    ///
    /// [`transmit_f32`]: BlockTransport::transmit_f32
    fn transmit_i32(&mut self, values: &[i32]) -> Vec<i32> {
        let mut out = Vec::with_capacity(values.len());
        for chunk in values.chunks(16) {
            let mut words = [0i32; 16];
            words[..chunk.len()].copy_from_slice(chunk);
            let rx = self.transmit(CacheBlock::from_i32(&words));
            out.extend(rx.as_i32().into_iter().take(chunk.len()));
        }
        out
    }
}

/// The identity transport: bit-exact delivery (the precise baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct PreciseTransport;

impl BlockTransport for PreciseTransport {
    fn transmit(&mut self, block: CacheBlock) -> CacheBlock {
        block
    }
}

/// A codec-backed transport: blocks travel through a real APPROX-NoC
/// encoder/decoder pair between two fixed endpoints, with dictionary
/// notifications applied instantly.
pub struct ApproxTransport {
    encoder: Box<dyn BlockEncoder>,
    decoder: Box<dyn BlockDecoder>,
    src: NodeId,
    dest: NodeId,
}

impl std::fmt::Debug for ApproxTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ApproxTransport")
            .field("mechanism", &self.encoder.name())
            .finish()
    }
}

impl ApproxTransport {
    /// An FP-VAXX transport at the given error threshold.
    pub fn fp_vaxx(threshold: ErrorThreshold) -> Self {
        ApproxTransport {
            encoder: Box::new(FpEncoder::fp_vaxx(Avcl::new(threshold))),
            decoder: Box::new(FpDecoder::new()),
            src: NodeId(0),
            dest: NodeId(1),
        }
    }

    /// A DI-VAXX transport at the given error threshold.
    pub fn di_vaxx(threshold: ErrorThreshold) -> Self {
        let config = DiConfig::for_nodes(2);
        ApproxTransport {
            encoder: Box::new(DiEncoder::di_vaxx(config, Avcl::new(threshold))),
            decoder: Box::new(DiDecoder::new(config)),
            src: NodeId(0),
            dest: NodeId(1),
        }
    }

    /// A transport around an arbitrary codec pair.
    pub fn from_codecs(encoder: Box<dyn BlockEncoder>, decoder: Box<dyn BlockDecoder>) -> Self {
        ApproxTransport {
            encoder,
            decoder,
            src: NodeId(0),
            dest: NodeId(1),
        }
    }

    /// The mechanism name of the underlying encoder.
    pub fn mechanism(&self) -> &'static str {
        self.encoder.name()
    }
}

impl BlockTransport for ApproxTransport {
    fn transmit(&mut self, block: CacheBlock) -> CacheBlock {
        let encoded = self.encoder.encode(&block, self.dest);
        let result = self.decoder.decode(&encoded, self.src);
        for (to, note) in result.notifications {
            debug_assert_eq!(to, self.src);
            let _ = to;
            self.encoder.apply_notification(self.dest, note);
        }
        result.block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precise_transport_is_identity() {
        let mut t = PreciseTransport;
        let vals = [1.5f32, -2.0, 0.0, 123.456];
        assert_eq!(t.transmit_f32(&vals), vals);
        let ints = [7i32, -9, 0, i32::MAX];
        assert_eq!(t.transmit_i32(&ints), ints);
    }

    #[test]
    fn fp_vaxx_transport_bounds_error() {
        let mut t = ApproxTransport::fp_vaxx(ErrorThreshold::from_percent(10).unwrap());
        assert_eq!(t.mechanism(), "FP-VAXX");
        let vals: Vec<f32> = (0..100).map(|i| 1.0 + i as f32 * 0.37).collect();
        let rx = t.transmit_f32(&vals);
        assert_eq!(rx.len(), vals.len());
        for (p, a) in vals.iter().zip(&rx) {
            assert!(((a - p) / p).abs() <= 0.10 + 1e-6, "{p} -> {a}");
        }
    }

    #[test]
    fn di_vaxx_transport_learns_and_bounds_error() {
        let mut t = ApproxTransport::di_vaxx(ErrorThreshold::from_percent(10).unwrap());
        // Repeated similar values let the dictionary learn, then approximate.
        for round in 0..20 {
            let base = 10_000.0 + (round % 3) as f32 * 100.0;
            let vals = vec![base; 32];
            let rx = t.transmit_f32(&vals);
            for (p, a) in vals.iter().zip(&rx) {
                assert!(((a - p) / p).abs() <= 0.10 + 1e-6, "{p} -> {a}");
            }
        }
    }

    #[test]
    fn tail_chunks_are_trimmed() {
        let mut t = ApproxTransport::fp_vaxx(ErrorThreshold::default());
        let vals = [3.0f32; 19]; // 16 + 3
        assert_eq!(t.transmit_f32(&vals).len(), 19);
        let ints = [5i32; 17];
        assert_eq!(t.transmit_i32(&ints).len(), 17);
        assert!(format!("{t:?}").contains("FP-VAXX"));
    }
}

/// A worst-case-within-budget transport: every approximable word is replaced
/// by the *farthest* value its don't-care window tolerates.
///
/// Honest codecs realise far less error than the budget (FP-VAXX's float
/// matches truncate at most the low mantissa halfword, well under 1%
/// relative). This channel instead exercises the full budget — the
/// pessimistic bound on the Figure 16 question "what does an `e%` data error
/// budget do to application output quality?". Real mechanisms land between
/// this curve and zero.
#[derive(Debug, Clone, Copy)]
pub struct AdversarialTransport {
    avcl: Avcl,
}

impl AdversarialTransport {
    /// Creates a worst-case channel for the given threshold.
    pub fn new(threshold: ErrorThreshold) -> Self {
        AdversarialTransport {
            avcl: Avcl::new(threshold),
        }
    }
}

impl BlockTransport for AdversarialTransport {
    fn transmit(&mut self, block: CacheBlock) -> CacheBlock {
        if !block.is_approximable() {
            return block;
        }
        let words = block
            .words()
            .iter()
            .map(|&w| {
                let p = self.avcl.approx_pattern(w, block.dtype());
                let mask = p.mask();
                if mask == 0 {
                    return w;
                }
                // Pick the masked-bit endpoint farthest from the original.
                let zeros = w & !mask;
                let ones = w | mask;
                if w.abs_diff(zeros) >= w.abs_diff(ones) {
                    zeros
                } else {
                    ones
                }
            })
            .collect();
        CacheBlock::new(words, block.dtype(), true)
    }
}

#[cfg(test)]
mod adversarial_tests {
    use super::*;
    use anoc_core::avcl::Avcl;
    use anoc_core::data::DataType;

    #[test]
    fn adversarial_errors_stay_within_threshold() {
        let t = ErrorThreshold::from_percent(20).unwrap();
        let mut tr = AdversarialTransport::new(t);
        let vals: Vec<f32> = (1..200).map(|i| i as f32 * 3.7).collect();
        let rx = tr.transmit_f32(&vals);
        let mut worst: f64 = 0.0;
        for (p, a) in vals.iter().zip(&rx) {
            let err = Avcl::relative_error(p.to_bits(), a.to_bits(), DataType::F32).unwrap();
            assert!(err <= 0.20 + 1e-6, "{p} -> {a}");
            worst = worst.max(err);
        }
        // It really does spend the budget (more than half of it at worst).
        assert!(worst > 0.05, "worst-case error only {worst}");
    }

    #[test]
    fn adversarial_respects_precise_blocks() {
        let t = ErrorThreshold::from_percent(20).unwrap();
        let mut tr = AdversarialTransport::new(t);
        let block = CacheBlock::from_i32(&[1000; 4]).with_approximable(false);
        assert_eq!(tr.transmit(block.clone()), block);
    }
}
