//! The swaptions kernel: Monte-Carlo swaption pricing.
//!
//! PARSEC's swaptions prices interest-rate swaptions by HJM Monte-Carlo
//! simulation. The approximable shared data are the simulated forward-rate
//! paths; the output error is the mean relative error of the prices.

use anoc_core::rng::Pcg32;

use crate::kernel::ApproxKernel;
use crate::transport::BlockTransport;

/// The swaptions kernel configuration.
#[derive(Debug, Clone, Copy)]
pub struct Swaptions {
    /// Number of swaptions priced.
    pub swaptions: usize,
    /// Monte-Carlo trials per swaption.
    pub trials: usize,
    /// Time steps per simulated rate path.
    pub steps: usize,
    /// Input-generation seed.
    pub seed: u64,
}

impl Swaptions {
    /// Prices `swaptions` instruments with `trials` paths each.
    pub fn new(swaptions: usize, trials: usize, seed: u64) -> Self {
        Swaptions {
            swaptions,
            trials,
            steps: 16,
            seed,
        }
    }
}

impl Default for Swaptions {
    fn default() -> Self {
        Swaptions::new(16, 64, 1)
    }
}

impl ApproxKernel for Swaptions {
    fn name(&self) -> &'static str {
        "swaptions"
    }

    fn run(&self, transport: &mut dyn BlockTransport) -> Vec<f64> {
        // anoc-lint: rng-site: seeded from the workload's config seed with a fixed per-app stream
        let mut rng = Pcg32::new(self.seed, 0x73776170);
        let mut prices = Vec::with_capacity(self.swaptions);
        for _ in 0..self.swaptions {
            let strike = 0.02 + rng.f64() * 0.06;
            let r0 = 0.01 + rng.f64() * 0.05;
            let vol = 0.008 + rng.f64() * 0.02;
            let dt = 0.25f64;
            let mut payoff_sum = 0.0;
            for _ in 0..self.trials {
                // Simulate one short-rate path (simple lognormal-ish walk —
                // the HJM drift is immaterial for the approximation study).
                let mut path = vec![0f32; self.steps];
                let mut r = r0;
                for p in path.iter_mut() {
                    r += vol * rng.normal() * dt.sqrt();
                    r = r.max(1e-4);
                    *p = r as f32;
                }
                // The simulated path is the shared approximable data.
                let path = transport.transmit_f32(&path);
                // Payoff: discounted positive part of (average rate - strike).
                let avg: f64 = path.iter().map(|x| *x as f64).sum::<f64>() / self.steps as f64;
                let discount: f64 = (-path.iter().map(|x| *x as f64).sum::<f64>() * dt).exp();
                payoff_sum += (avg - strike).max(0.0) * discount * 100.0;
            }
            prices.push(payoff_sum / self.trials as f64);
        }
        prices
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::evaluate;
    use crate::transport::{ApproxTransport, PreciseTransport};
    use anoc_core::threshold::ErrorThreshold;

    #[test]
    fn deterministic_prices() {
        let k = Swaptions::new(4, 16, 3);
        let a = k.run(&mut PreciseTransport);
        assert_eq!(a, k.run(&mut PreciseTransport));
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|p| *p >= 0.0));
        assert!(a.iter().any(|p| *p > 0.0));
    }

    #[test]
    fn more_volatile_rates_move_prices() {
        // Different seeds -> different instruments -> different prices.
        let a = Swaptions::new(4, 16, 3).run(&mut PreciseTransport);
        let b = Swaptions::new(4, 16, 4).run(&mut PreciseTransport);
        assert_ne!(a, b);
    }

    #[test]
    fn approximation_error_is_bounded() {
        let k = Swaptions::new(8, 32, 5);
        let mut t = ApproxTransport::fp_vaxx(ErrorThreshold::from_percent(10).unwrap());
        let (_, _, err) = evaluate(&k, &mut t);
        // Rates are small floats whose mantissas approximate well; the
        // payoff max() makes the output piecewise, so allow some slack but
        // stay well under total corruption.
        assert!(err < 0.5, "output error {err}");
    }
}
