//! The bodytrack kernel: blob tracking on synthetic frames.
//!
//! PARSEC's bodytrack follows body parts across camera frames. The model
//! kernel renders frames of moving Gaussian blobs ("body parts"), ships the
//! pixel data through the transport, and tracks each blob with a windowed
//! intensity centroid. The output is the sequence of tracked positions and
//! the error metric is the mean relative deviation of the output vectors —
//! the paper reports a 2.4% vector difference at a 10% data threshold, with
//! outputs "hardly captured through human vision" (Figure 17).

use anoc_core::rng::Pcg32;

use crate::kernel::ApproxKernel;
use crate::transport::BlockTransport;

/// A rendered frame: row-major pixel intensities in `[0, 255]`.
pub type Frame = Vec<f32>;

/// Per-frame blob positions.
pub type Positions = Vec<(f64, f64)>;

/// The bodytrack kernel configuration.
#[derive(Debug, Clone, Copy)]
pub struct Bodytrack {
    /// Frame width/height in pixels (square frames).
    pub size: usize,
    /// Number of tracked blobs.
    pub blobs: usize,
    /// Number of frames.
    pub frames: usize,
    /// Input-generation seed.
    pub seed: u64,
}

impl Bodytrack {
    /// Tracks `blobs` blobs over `frames` frames of `size`×`size` pixels.
    pub fn new(size: usize, blobs: usize, frames: usize, seed: u64) -> Self {
        Bodytrack {
            size,
            blobs,
            frames,
            seed,
        }
    }

    /// Renders the ground-truth frame sequence (row-major pixel intensities
    /// in `[0, 255]`) and true blob trajectories.
    pub fn render(&self) -> (Vec<Frame>, Vec<Positions>) {
        // anoc-lint: rng-site: seeded from the workload's config seed with a fixed per-app stream
        let mut rng = Pcg32::new(self.seed, 0x626f6479);
        let s = self.size as f64;
        let mut pos: Vec<(f64, f64)> = (0..self.blobs)
            .map(|_| (rng.f64() * s * 0.6 + s * 0.2, rng.f64() * s * 0.6 + s * 0.2))
            .collect();
        let mut vel: Vec<(f64, f64)> = (0..self.blobs)
            .map(|_| (rng.f64() * 2.0 - 1.0, rng.f64() * 2.0 - 1.0))
            .collect();
        let sigma = s / 16.0;
        let mut frames = Vec::with_capacity(self.frames);
        let mut truth = Vec::with_capacity(self.frames);
        for _ in 0..self.frames {
            let mut img = vec![0f32; self.size * self.size];
            for (cx, cy) in &pos {
                for y in 0..self.size {
                    for x in 0..self.size {
                        let dx = x as f64 - cx;
                        let dy = y as f64 - cy;
                        let v = 200.0 * (-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp();
                        img[y * self.size + x] += v as f32;
                    }
                }
            }
            for p in &mut img {
                *p = p.min(255.0);
            }
            frames.push(img);
            truth.push(pos.clone());
            for (p, v) in pos.iter_mut().zip(&mut vel) {
                p.0 += v.0;
                p.1 += v.1;
                if p.0 < s * 0.1 || p.0 > s * 0.9 {
                    v.0 = -v.0;
                }
                if p.1 < s * 0.1 || p.1 > s * 0.9 {
                    v.1 = -v.1;
                }
            }
        }
        (frames, truth)
    }

    /// Tracks blobs on (already transported) frames, starting from the true
    /// initial positions. Returns per-frame positions.
    pub fn track(&self, frames: &[Frame], init: &[(f64, f64)]) -> Vec<Positions> {
        let window = (self.size / 8).max(3) as i64;
        let mut pos: Vec<(f64, f64)> = init.to_vec();
        let mut out = Vec::with_capacity(frames.len());
        for img in frames {
            for p in pos.iter_mut() {
                let (mut wx, mut wy, mut wsum) = (0f64, 0f64, 0f64);
                let cx = p.0.round() as i64;
                let cy = p.1.round() as i64;
                for dy in -window..=window {
                    for dx in -window..=window {
                        let x = cx + dx;
                        let y = cy + dy;
                        if x < 0 || y < 0 || x >= self.size as i64 || y >= self.size as i64 {
                            continue;
                        }
                        let v = img[y as usize * self.size + x as usize] as f64;
                        wx += v * x as f64;
                        wy += v * y as f64;
                        wsum += v;
                    }
                }
                if wsum > 1e-9 {
                    *p = (wx / wsum, wy / wsum);
                }
            }
            out.push(pos.clone());
        }
        out
    }
}

impl Default for Bodytrack {
    fn default() -> Self {
        Bodytrack::new(48, 3, 12, 1)
    }
}

impl ApproxKernel for Bodytrack {
    fn name(&self) -> &'static str {
        "bodytrack"
    }

    fn run(&self, transport: &mut dyn BlockTransport) -> Vec<f64> {
        let (frames, truth) = self.render();
        // The camera frames are the shared approximable data.
        let frames: Vec<Frame> = frames
            .into_iter()
            .map(|f| transport.transmit_f32(&f))
            .collect();
        let tracked = self.track(&frames, &truth[0]);
        tracked
            .into_iter()
            .flat_map(|frame| frame.into_iter().flat_map(|(x, y)| [x, y]))
            .collect()
    }

    /// Mean relative deviation of the tracked position vectors, normalised
    /// by the frame size (the paper's "output vectors differ by 2.4%").
    fn output_error(&self, precise: &[f64], approx: &[f64]) -> f64 {
        assert_eq!(precise.len(), approx.len());
        if precise.is_empty() {
            return 0.0;
        }
        let scale = self.size as f64;
        let sum: f64 = precise
            .iter()
            .zip(approx)
            .map(|(p, a)| ((p - a).abs() / scale).min(1.0))
            .sum();
        sum / precise.len() as f64
    }
}

/// Serialises a frame as a binary PGM image (for the Figure 17 artefacts).
pub fn frame_to_pgm(frame: &[f32], size: usize) -> Vec<u8> {
    let mut out = format!("P5\n{size} {size}\n255\n").into_bytes();
    out.extend(frame.iter().map(|p| p.clamp(0.0, 255.0) as u8));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::evaluate;
    use crate::transport::{ApproxTransport, PreciseTransport};
    use anoc_core::threshold::ErrorThreshold;

    #[test]
    fn rendering_is_deterministic_and_bounded() {
        let k = Bodytrack::new(32, 2, 4, 9);
        let (fa, ta) = k.render();
        let (fb, tb) = k.render();
        assert_eq!(fa, fb);
        assert_eq!(ta, tb);
        assert_eq!(fa.len(), 4);
        assert!(fa[0].iter().all(|p| (0.0..=255.0).contains(p)));
        assert!(fa[0].iter().any(|p| *p > 50.0), "blobs visible");
    }

    #[test]
    fn tracker_follows_blobs_precisely() {
        let k = Bodytrack::new(48, 2, 8, 3);
        let (frames, truth) = k.render();
        let tracked = k.track(&frames, &truth[0]);
        // The centroid tracker should stay within a few pixels of truth.
        for (t_frame, g_frame) in tracked.iter().zip(&truth) {
            for (t, g) in t_frame.iter().zip(g_frame) {
                let d = ((t.0 - g.0).powi(2) + (t.1 - g.1).powi(2)).sqrt();
                assert!(d < 6.0, "tracker drifted {d} pixels");
            }
        }
    }

    #[test]
    fn approximate_output_differs_slightly() {
        let k = Bodytrack::new(32, 2, 6, 5);
        let mut t = ApproxTransport::fp_vaxx(ErrorThreshold::from_percent(10).unwrap());
        let (p, a, err) = evaluate(&k, &mut t);
        assert_eq!(p.len(), a.len());
        // Figure 17's story: visually indistinguishable, a few percent off.
        assert!(err < 0.15, "vector difference {err}");
    }

    #[test]
    fn pgm_has_header_and_payload() {
        let frame = vec![128.0f32; 16 * 16];
        let pgm = frame_to_pgm(&frame, 16);
        assert!(pgm.starts_with(b"P5\n16 16\n255\n"));
        assert_eq!(pgm.len(), 13 + 256);
        assert_eq!(pgm[13], 128);
    }

    #[test]
    fn kernel_runs_end_to_end() {
        let k = Bodytrack::new(32, 2, 3, 1);
        let out = k.run(&mut PreciseTransport);
        assert_eq!(out.len(), 3 * 2 * 2); // frames × blobs × (x, y)
    }
}
