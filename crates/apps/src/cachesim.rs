//! A multi-core private-cache simulator, the substrate of the paper's
//! Pin-based output-error study (§5.4): "We model a system with 16 cores and
//! each core has a 64 KB two-way L1 private data cache of cache line size of
//! 64 Bytes. We emulate packet response whenever a miss happens, that
//! requires a data response from another node."
//!
//! On a miss, the block fetched from the shared backing store travels through
//! the configured [`BlockTransport`] — approximating it exactly once per
//! transfer, like a real data-response packet crossing the NoC.

use anoc_core::data::{CacheBlock, DataType};

use crate::transport::BlockTransport;

/// Geometry of each core's private data cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of cores (each with a private L1D).
    pub cores: usize,
    /// Cache capacity per core, in bytes.
    pub capacity_bytes: usize,
    /// Associativity (ways).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
}

impl CacheConfig {
    /// The paper's §5.4 configuration: 16 cores, 64 KB, 2-way, 64 B lines.
    pub fn paper() -> Self {
        CacheConfig {
            cores: 16,
            capacity_bytes: 64 * 1024,
            ways: 2,
            line_bytes: 64,
        }
    }

    /// Number of sets per cache.
    pub fn sets(&self) -> usize {
        self.capacity_bytes / (self.ways * self.line_bytes)
    }

    /// Words per line.
    pub fn words_per_line(&self) -> usize {
        self.line_bytes / 4
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::paper()
    }
}

#[derive(Debug, Clone)]
struct Line {
    tag: u64,
    valid: bool,
    words: Vec<u32>,
    lru: u64,
}

/// Access statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read/write hits.
    pub hits: u64,
    /// Misses (each caused one block transfer over the network).
    pub misses: u64,
    /// Blocks transferred through the transport.
    pub transfers: u64,
}

impl CacheStats {
    /// Miss ratio over all accesses.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// The shared word-addressable backing store, with an approximable address
/// range (the hand-annotated data region of §5.1).
#[derive(Debug, Clone)]
pub struct Memory {
    words: Vec<u32>,
    dtype: DataType,
    approx_range: std::ops::Range<usize>,
}

impl Memory {
    /// Creates a memory of `words` zeroed words; no region is approximable.
    pub fn new(words: usize, dtype: DataType) -> Self {
        Memory {
            words: vec![0; words],
            dtype,
            approx_range: 0..0,
        }
    }

    /// Marks `[start, end)` (word addresses) as approximable.
    #[must_use]
    pub fn with_approx_range(mut self, start: usize, end: usize) -> Self {
        assert!(
            start <= end && end <= self.words.len(),
            "range out of bounds"
        );
        self.approx_range = start..end;
        self
    }

    /// Word count.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the memory is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Raw word access (backing-store truth).
    pub fn word(&self, addr: usize) -> u32 {
        self.words[addr]
    }

    /// Writes a word directly (e.g. input initialization).
    pub fn set_word(&mut self, addr: usize, value: u32) {
        self.words[addr] = value;
    }

    /// Stores an `f32` at a word address.
    pub fn set_f32(&mut self, addr: usize, value: f32) {
        self.words[addr] = value.to_bits();
    }

    /// Reads an `f32` from a word address (backing-store truth).
    pub fn f32_at(&self, addr: usize) -> f32 {
        f32::from_bits(self.words[addr])
    }
}

/// The multi-core cache simulator.
pub struct CacheSim {
    config: CacheConfig,
    caches: Vec<Vec<Line>>, // per core: sets*ways lines
    stats: CacheStats,
    tick: u64,
}

impl std::fmt::Debug for CacheSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheSim")
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish()
    }
}

impl CacheSim {
    /// Creates the cache hierarchy.
    pub fn new(config: CacheConfig) -> Self {
        let lines_per_core = config.sets() * config.ways;
        CacheSim {
            config,
            caches: (0..config.cores)
                .map(|_| {
                    (0..lines_per_core)
                        .map(|_| Line {
                            tag: 0,
                            valid: false,
                            words: vec![0; config.words_per_line()],
                            lru: 0,
                        })
                        .collect()
                })
                .collect(),
            stats: CacheStats::default(),
            tick: 0,
        }
    }

    /// Access statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reads the word at `addr` as seen by `core` — hitting in its private
    /// cache, or fetching the line from memory through `transport` on a
    /// miss (approximating it if the line lies in the approximable range).
    pub fn read_word(
        &mut self,
        core: usize,
        addr: usize,
        memory: &Memory,
        transport: &mut dyn BlockTransport,
    ) -> u32 {
        self.tick += 1;
        let wpl = self.config.words_per_line();
        let line_addr = (addr / wpl) as u64;
        let set = (line_addr as usize) % self.config.sets();
        let base = set * self.config.ways;
        // Lookup.
        for w in 0..self.config.ways {
            let line = &mut self.caches[core][base + w];
            if line.valid && line.tag == line_addr {
                line.lru = self.tick;
                self.stats.hits += 1;
                return line.words[addr % wpl];
            }
        }
        // Miss: fetch through the network.
        self.stats.misses += 1;
        self.stats.transfers += 1;
        let start = (line_addr as usize) * wpl;
        let words: Vec<u32> = (0..wpl)
            .map(|i| memory.words.get(start + i).copied().unwrap_or(0))
            .collect();
        let approximable = memory.approx_range.contains(&start)
            && memory.approx_range.contains(&(start + wpl - 1));
        let block = CacheBlock::new(words, memory.dtype, approximable);
        let received = transport.transmit(block);
        // Victim: LRU way.
        let victim = (0..self.config.ways)
            .min_by_key(|w| self.caches[core][base + w].lru)
            .unwrap_or(0); // ways >= 1 (validated by CacheConfig); way 0 if not
        let line = &mut self.caches[core][base + victim];
        line.tag = line_addr;
        line.valid = true;
        line.lru = self.tick;
        line.words.copy_from_slice(received.words());
        line.words[addr % wpl]
    }

    /// Writes the word at `addr` as `core` (write-allocate, write-through to
    /// the backing store — dirty-line writeback does not change what the
    /// approximation study measures, since data responses are the only
    /// transfers that may be approximated).
    pub fn write_word(
        &mut self,
        core: usize,
        addr: usize,
        value: u32,
        memory: &mut Memory,
        transport: &mut dyn BlockTransport,
    ) {
        // Allocate (fetching through the network on a miss), then update
        // both the cached copy and the backing store.
        self.read_word(core, addr, memory, transport);
        let wpl = self.config.words_per_line();
        let line_addr = (addr / wpl) as u64;
        let set = (line_addr as usize) % self.config.sets();
        let base = set * self.config.ways;
        for w in 0..self.config.ways {
            let line = &mut self.caches[core][base + w];
            if line.valid && line.tag == line_addr {
                line.words[addr % wpl] = value;
                break;
            }
        }
        memory.set_word(addr, value);
    }

    /// Writes an `f32` through the cache.
    pub fn write_f32(
        &mut self,
        core: usize,
        addr: usize,
        value: f32,
        memory: &mut Memory,
        transport: &mut dyn BlockTransport,
    ) {
        self.write_word(core, addr, value.to_bits(), memory, transport);
    }

    /// Reads an `f32` through the cache.
    pub fn read_f32(
        &mut self,
        core: usize,
        addr: usize,
        memory: &Memory,
        transport: &mut dyn BlockTransport,
    ) -> f32 {
        f32::from_bits(self.read_word(core, addr, memory, transport))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{ApproxTransport, PreciseTransport};
    use anoc_core::threshold::ErrorThreshold;

    fn small_config() -> CacheConfig {
        CacheConfig {
            cores: 2,
            capacity_bytes: 1024,
            ways: 2,
            line_bytes: 64,
        }
    }

    #[test]
    fn paper_geometry() {
        let c = CacheConfig::paper();
        assert_eq!(c.sets(), 512);
        assert_eq!(c.words_per_line(), 16);
    }

    #[test]
    fn hit_after_miss() {
        let mut sim = CacheSim::new(small_config());
        let mut mem = Memory::new(256, DataType::Int);
        mem.set_word(5, 1234);
        let mut t = PreciseTransport;
        assert_eq!(sim.read_word(0, 5, &mem, &mut t), 1234);
        assert_eq!(sim.stats().misses, 1);
        assert_eq!(sim.read_word(0, 5, &mem, &mut t), 1234);
        assert_eq!(sim.stats().hits, 1);
        // Another word in the same line also hits.
        assert_eq!(sim.read_word(0, 6, &mem, &mut t), 0);
        assert_eq!(sim.stats().hits, 2);
    }

    #[test]
    fn caches_are_private_per_core() {
        let mut sim = CacheSim::new(small_config());
        let mem = Memory::new(256, DataType::Int);
        let mut t = PreciseTransport;
        sim.read_word(0, 0, &mem, &mut t);
        sim.read_word(1, 0, &mem, &mut t);
        assert_eq!(sim.stats().misses, 2, "each core misses separately");
    }

    #[test]
    fn lru_evicts_oldest_way() {
        let cfg = small_config(); // 8 sets, 2 ways
        let mut sim = CacheSim::new(cfg);
        let mem = Memory::new(4096, DataType::Int);
        let mut t = PreciseTransport;
        let sets = cfg.sets();
        let wpl = cfg.words_per_line();
        // Three lines mapping to set 0: line 0, sets, 2*sets.
        sim.read_word(0, 0, &mem, &mut t);
        sim.read_word(0, sets * wpl, &mem, &mut t);
        sim.read_word(0, 2 * sets * wpl, &mem, &mut t); // evicts line 0
        assert_eq!(sim.stats().misses, 3);
        sim.read_word(0, sets * wpl, &mem, &mut t); // still resident
        assert_eq!(sim.stats().hits, 1);
        sim.read_word(0, 0, &mem, &mut t); // was evicted
        assert_eq!(sim.stats().misses, 4);
    }

    #[test]
    fn approximable_range_is_approximated_and_rest_is_exact() {
        let mut sim = CacheSim::new(small_config());
        let mut mem = Memory::new(256, DataType::F32).with_approx_range(0, 128);
        for a in 0..256 {
            mem.set_f32(a, 1000.0 + a as f32);
        }
        let mut t = ApproxTransport::di_vaxx(ErrorThreshold::from_percent(10).unwrap());
        // Warm the dictionary with repeated fetches (distinct cores so every
        // access misses and transfers).
        for core in 0..2 {
            for a in (0..256).step_by(16) {
                let v = sim.read_f32(core, a, &mem, &mut t);
                let truth = mem.f32_at(a);
                if a < 128 {
                    assert!((v - truth).abs() / truth <= 0.10 + 1e-6);
                } else {
                    assert_eq!(v, truth, "non-approximable range must be exact");
                }
            }
        }
        assert!(sim.stats().transfers >= 32);
        assert!(sim.stats().miss_ratio() > 0.0);
    }

    #[test]
    fn write_through_updates_cache_and_memory() {
        let mut sim = CacheSim::new(small_config());
        let mut mem = Memory::new(256, DataType::Int);
        let mut t = PreciseTransport;
        sim.write_word(0, 9, 777, &mut mem, &mut t);
        assert_eq!(mem.word(9), 777);
        // Subsequent read hits and sees the written value.
        let before = sim.stats().misses;
        assert_eq!(sim.read_word(0, 9, &mem, &mut t), 777);
        assert_eq!(sim.stats().misses, before);
        // Another core reads the fresh value from memory (its own miss).
        assert_eq!(sim.read_word(1, 9, &mem, &mut t), 777);
        let mut tf = PreciseTransport;
        sim.write_f32(0, 12, 1.5, &mut mem, &mut tf);
        assert_eq!(sim.read_f32(0, 12, &mem, &mut tf), 1.5);
    }

    #[test]
    fn memory_helpers() {
        let mut mem = Memory::new(8, DataType::F32);
        assert_eq!(mem.len(), 8);
        assert!(!mem.is_empty());
        mem.set_f32(3, 2.5);
        assert_eq!(mem.f32_at(3), 2.5);
        assert_eq!(mem.word(3), 2.5f32.to_bits());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_approx_range_rejected() {
        let _ = Memory::new(4, DataType::Int).with_approx_range(0, 10);
    }
}
