//! The streamcluster kernel: online k-medians clustering.
//!
//! PARSEC's streamcluster assigns streamed points to cluster centers. The
//! approximable data are the point coordinates; the paper notes this is its
//! most error-sensitive benchmark because "by approximating the coordinates,
//! the cost between points and centers might deviate from the precise one and
//! lead to mismatch of centers" (§5.4). The output is the per-point
//! assignment, and the error metric is the fraction of points assigned to a
//! different center than in the precise run.

use anoc_core::rng::Pcg32;

use crate::kernel::ApproxKernel;
use crate::transport::BlockTransport;

/// The streamcluster kernel configuration.
#[derive(Debug, Clone, Copy)]
pub struct Streamcluster {
    /// Number of points clustered.
    pub points: usize,
    /// Number of cluster centers.
    pub k: usize,
    /// Point dimensionality.
    pub dims: usize,
    /// Lloyd refinement iterations.
    pub iterations: usize,
    /// Input-generation seed.
    pub seed: u64,
}

impl Streamcluster {
    /// A clustering problem of `points` points into `k` clusters.
    pub fn new(points: usize, k: usize, seed: u64) -> Self {
        Streamcluster {
            points,
            k,
            dims: 4,
            iterations: 5,
            seed,
        }
    }
}

impl Default for Streamcluster {
    fn default() -> Self {
        Streamcluster::new(512, 8, 1)
    }
}

fn squared_distance(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = (*x - *y) as f64;
            d * d
        })
        .sum()
}

impl ApproxKernel for Streamcluster {
    fn name(&self) -> &'static str {
        "streamcluster"
    }

    fn run(&self, transport: &mut dyn BlockTransport) -> Vec<f64> {
        // anoc-lint: rng-site: seeded from the workload's config seed with a fixed per-app stream
        let mut rng = Pcg32::new(self.seed, 0x73747265);
        let d = self.dims;
        // Points drawn around `k` ground-truth blobs plus noise.
        let blob_centers: Vec<Vec<f32>> = (0..self.k)
            .map(|_| (0..d).map(|_| rng.f32() * 100.0).collect())
            .collect();
        let mut coords = vec![0f32; self.points * d];
        for p in 0..self.points {
            let blob = &blob_centers[rng.below(self.k as u32) as usize];
            for j in 0..d {
                coords[p * d + j] = blob[j] + rng.normal_with(0.0, 6.0) as f32;
            }
        }
        // The streamed coordinates are the approximable region.
        let coords = transport.transmit_f32(&coords);
        // Lloyd's algorithm from deterministic initial centers.
        let mut centers: Vec<Vec<f32>> = (0..self.k)
            .map(|c| coords[c * d..(c + 1) * d].to_vec())
            .collect();
        let mut assign = vec![0usize; self.points];
        for _ in 0..self.iterations {
            for p in 0..self.points {
                let pt = &coords[p * d..(p + 1) * d];
                assign[p] = (0..self.k)
                    .min_by(|&a, &b| {
                        squared_distance(pt, &centers[a])
                            .partial_cmp(&squared_distance(pt, &centers[b]))
                            // Finite coords never produce NaN; Equal keeps the
                            // lower index, matching min_by tie-breaking.
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .unwrap_or(0); // k >= 1 (constructor invariant); center 0 if not
            }
            for (c, center) in centers.iter_mut().enumerate() {
                let members: Vec<usize> = (0..self.points).filter(|p| assign[*p] == c).collect();
                if members.is_empty() {
                    continue;
                }
                for (j, coord) in center.iter_mut().enumerate() {
                    *coord = members.iter().map(|p| coords[p * d + j]).sum::<f32>()
                        / members.len() as f32;
                }
            }
        }
        assign.into_iter().map(|a| a as f64).collect()
    }

    /// Fraction of points whose cluster assignment changed.
    fn output_error(&self, precise: &[f64], approx: &[f64]) -> f64 {
        assert_eq!(precise.len(), approx.len());
        if precise.is_empty() {
            return 0.0;
        }
        let mismatches = precise.iter().zip(approx).filter(|(a, b)| a != b).count();
        mismatches as f64 / precise.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::evaluate;
    use crate::transport::{ApproxTransport, PreciseTransport};
    use anoc_core::threshold::ErrorThreshold;

    #[test]
    fn deterministic_assignments() {
        let k = Streamcluster::new(128, 4, 2);
        let a = k.run(&mut PreciseTransport);
        assert_eq!(a, k.run(&mut PreciseTransport));
        assert_eq!(a.len(), 128);
        // All k clusters should be used on blob-structured data.
        let used: std::collections::BTreeSet<u64> = a.iter().map(|x| *x as u64).collect();
        assert!(used.len() >= 3, "only {} clusters used", used.len());
    }

    #[test]
    fn error_metric_counts_mismatches() {
        let k = Streamcluster::default();
        let e = k.output_error(&[0.0, 1.0, 2.0, 3.0], &[0.0, 1.0, 2.0, 1.0]);
        assert!((e - 0.25).abs() < 1e-12);
        assert_eq!(k.output_error(&[], &[]), 0.0);
    }

    #[test]
    fn approximation_perturbs_but_does_not_destroy_clustering() {
        let k = Streamcluster::new(256, 6, 7);
        let mut t = ApproxTransport::fp_vaxx(ErrorThreshold::from_percent(10).unwrap());
        let (_, _, err) = evaluate(&k, &mut t);
        // The paper singles streamcluster out as its worst case; expect a
        // visible but bounded mismatch fraction.
        assert!(err < 0.5, "mismatch fraction {err}");
    }
}
