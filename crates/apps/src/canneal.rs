//! The canneal kernel: simulated-annealing placement cost minimisation.
//!
//! PARSEC's canneal minimises routing cost by swapping netlist elements with
//! simulated annealing. The model kernel anneals element positions on a grid;
//! the shared approximable data are the element coordinates read when
//! evaluating wirelength. The output is the final total wirelength and the
//! error metric its relative deviation.

use anoc_core::rng::Pcg32;

use crate::kernel::ApproxKernel;
use crate::transport::BlockTransport;

/// The canneal kernel configuration.
#[derive(Debug, Clone, Copy)]
pub struct Canneal {
    /// Number of placed elements.
    pub elements: usize,
    /// Number of two-pin nets.
    pub nets: usize,
    /// Annealing steps.
    pub steps: usize,
    /// Input-generation seed.
    pub seed: u64,
}

impl Canneal {
    /// An annealing problem of `elements` elements and `nets` nets.
    pub fn new(elements: usize, nets: usize, steps: usize, seed: u64) -> Self {
        Canneal {
            elements,
            nets,
            steps,
            seed,
        }
    }

    fn wirelength(positions: &[i32], nets: &[(u32, u32)]) -> f64 {
        nets.iter()
            .map(|(a, b)| {
                let (ax, ay) = (positions[*a as usize * 2], positions[*a as usize * 2 + 1]);
                let (bx, by) = (positions[*b as usize * 2], positions[*b as usize * 2 + 1]);
                ((ax - bx).abs() + (ay - by).abs()) as f64
            })
            .sum()
    }
}

impl Default for Canneal {
    fn default() -> Self {
        Canneal::new(128, 256, 2_000, 1)
    }
}

impl ApproxKernel for Canneal {
    fn name(&self) -> &'static str {
        "canneal"
    }

    fn run(&self, transport: &mut dyn BlockTransport) -> Vec<f64> {
        // anoc-lint: rng-site: seeded from the workload's config seed with a fixed per-app stream
        let mut rng = Pcg32::new(self.seed, 0x63616e6e);
        let grid = 256i32;
        let mut positions: Vec<i32> = (0..self.elements * 2)
            .map(|_| rng.below(grid as u32) as i32)
            .collect();
        let nets: Vec<(u32, u32)> = (0..self.nets)
            .map(|_| {
                let a = rng.below(self.elements as u32);
                let mut b = rng.below(self.elements as u32);
                while b == a {
                    b = rng.below(self.elements as u32);
                }
                (a, b)
            })
            .collect();
        let mut temperature = 100.0f64;
        // Cost decisions read the shared (approximable) coordinate data.
        let mut viewed = transport.transmit_i32(&positions);
        let mut cost = Canneal::wirelength(&viewed, &nets);
        for step in 0..self.steps {
            // Propose a swap of two elements' positions.
            let i = rng.below(self.elements as u32) as usize;
            let mut j = rng.below(self.elements as u32) as usize;
            while j == i {
                j = rng.below(self.elements as u32) as usize;
            }
            positions.swap(i * 2, j * 2);
            positions.swap(i * 2 + 1, j * 2 + 1);
            // Periodically refresh the transported view (a real run streams
            // the affected cache blocks; per-epoch refresh bounds transport
            // calls while keeping decisions on approximated data).
            if step % 64 == 0 {
                viewed = transport.transmit_i32(&positions);
            } else {
                viewed.swap(i * 2, j * 2);
                viewed.swap(i * 2 + 1, j * 2 + 1);
            }
            let new_cost = Canneal::wirelength(&viewed, &nets);
            let accept = new_cost < cost || rng.f64() < ((cost - new_cost) / temperature).exp();
            if accept {
                cost = new_cost;
            } else {
                positions.swap(i * 2, j * 2);
                positions.swap(i * 2 + 1, j * 2 + 1);
                viewed.swap(i * 2, j * 2);
                viewed.swap(i * 2 + 1, j * 2 + 1);
            }
            temperature *= 0.999;
        }
        // Final quality judged on the true positions.
        vec![Canneal::wirelength(&positions, &nets)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::evaluate;
    use crate::transport::{ApproxTransport, PreciseTransport};
    use anoc_core::threshold::ErrorThreshold;

    #[test]
    fn annealing_reduces_wirelength() {
        let k = Canneal::new(64, 128, 3_000, 2);
        let final_cost = k.run(&mut PreciseTransport)[0];
        // Initial random placement cost for the same instance:
        let baseline = {
            let mut rng = Pcg32::new(2, 0x63616e6e);
            let positions: Vec<i32> = (0..64 * 2).map(|_| rng.below(256) as i32).collect();
            let nets: Vec<(u32, u32)> = (0..128)
                .map(|_| {
                    let a = rng.below(64);
                    let mut b = rng.below(64);
                    while b == a {
                        b = rng.below(64);
                    }
                    (a, b)
                })
                .collect();
            Canneal::wirelength(&positions, &nets)
        };
        assert!(
            final_cost < baseline,
            "annealed {final_cost} vs initial {baseline}"
        );
    }

    #[test]
    fn deterministic() {
        let k = Canneal::new(32, 64, 500, 7);
        assert_eq!(k.run(&mut PreciseTransport), k.run(&mut PreciseTransport));
    }

    #[test]
    fn approximate_annealing_lands_near_precise_cost() {
        let k = Canneal::new(64, 128, 1_500, 3);
        let mut t = ApproxTransport::fp_vaxx(ErrorThreshold::from_percent(10).unwrap());
        let (_, _, err) = evaluate(&k, &mut t);
        // Annealing is robust to noisy cost estimates; the final cost should
        // stay in the same ballpark.
        assert!(err < 0.30, "relative cost deviation {err}");
    }

    #[test]
    fn wirelength_of_coincident_points_is_zero() {
        let positions = vec![5, 5, 5, 5];
        assert_eq!(Canneal::wirelength(&positions, &[(0, 1)]), 0.0);
        let positions = vec![0, 0, 3, 4];
        assert_eq!(Canneal::wirelength(&positions, &[(0, 1)]), 7.0);
    }
}
