//! The x264 kernel: 8×8 DCT transform coding of a frame.
//!
//! H.264 encoding spends its cycles on transform/quantisation of integer
//! residuals. The model kernel runs a synthetic frame through DCT →
//! quantisation → dequantisation → IDCT, with the residual data shipped
//! through the transport. The output is the reconstructed frame and the
//! error metric is the RMSE relative to the 255 peak (a PSNR-style measure).

use anoc_core::rng::Pcg32;

use crate::kernel::ApproxKernel;
use crate::transport::BlockTransport;

/// Transform block edge (8×8, as in H.264's high profile).
const B: usize = 8;

/// The x264 kernel configuration.
#[derive(Debug, Clone, Copy)]
pub struct X264 {
    /// Frame edge length in pixels (multiple of 8).
    pub size: usize,
    /// Quantisation step.
    pub qstep: f64,
    /// Input-generation seed.
    pub seed: u64,
}

impl X264 {
    /// Encodes one `size`×`size` frame.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a multiple of 8.
    pub fn new(size: usize, seed: u64) -> Self {
        assert_eq!(size % B, 0, "frame size must be a multiple of 8");
        X264 {
            size,
            qstep: 12.0,
            seed,
        }
    }
}

impl Default for X264 {
    fn default() -> Self {
        X264::new(64, 1)
    }
}

/// 2D DCT-II of one 8×8 block (separable, direct form).
pub fn dct8(block: &[f64; 64]) -> [f64; 64] {
    let mut out = [0f64; 64];
    for u in 0..B {
        for v in 0..B {
            let cu = if u == 0 { (0.5f64).sqrt() } else { 1.0 };
            let cv = if v == 0 { (0.5f64).sqrt() } else { 1.0 };
            let mut sum = 0.0;
            for y in 0..B {
                for x in 0..B {
                    sum += block[y * B + x]
                        * ((2 * y + 1) as f64 * u as f64 * std::f64::consts::PI / 16.0).cos()
                        * ((2 * x + 1) as f64 * v as f64 * std::f64::consts::PI / 16.0).cos();
                }
            }
            out[u * B + v] = 0.25 * cu * cv * sum;
        }
    }
    out
}

/// Inverse 2D DCT of one 8×8 block.
pub fn idct8(coeffs: &[f64; 64]) -> [f64; 64] {
    let mut out = [0f64; 64];
    for y in 0..B {
        for x in 0..B {
            let mut sum = 0.0;
            for u in 0..B {
                for v in 0..B {
                    let cu = if u == 0 { (0.5f64).sqrt() } else { 1.0 };
                    let cv = if v == 0 { (0.5f64).sqrt() } else { 1.0 };
                    sum += cu
                        * cv
                        * coeffs[u * B + v]
                        * ((2 * y + 1) as f64 * u as f64 * std::f64::consts::PI / 16.0).cos()
                        * ((2 * x + 1) as f64 * v as f64 * std::f64::consts::PI / 16.0).cos();
                }
            }
            out[y * B + x] = 0.25 * sum;
        }
    }
    out
}

impl X264 {
    /// Renders the synthetic source frame (smooth gradients + texture).
    pub fn source_frame(&self) -> Vec<i32> {
        // anoc-lint: rng-site: seeded from the workload's config seed with a fixed per-app stream
        let mut rng = Pcg32::new(self.seed, 0x78323634);
        let s = self.size;
        (0..s * s)
            .map(|i| {
                let (x, y) = (i % s, i / s);
                let base = 40.0
                    + 60.0 * ((x as f64 / s as f64) * std::f64::consts::PI).sin()
                    + 60.0 * ((y as f64 / s as f64) * std::f64::consts::PI).cos();
                let noise = rng.normal_with(0.0, 6.0);
                (base + noise).clamp(0.0, 255.0) as i32
            })
            .collect()
    }
}

impl ApproxKernel for X264 {
    fn name(&self) -> &'static str {
        "x264"
    }

    fn run(&self, transport: &mut dyn BlockTransport) -> Vec<f64> {
        let frame = self.source_frame();
        // The luminance plane travels as floats (as in the motion-search
        // and rate-distortion stages); it is the annotated approximable
        // region. Note that the plain 8-bit residuals would compress
        // *exactly* under FPC (they fit the sign-extended-halfword row), so
        // the float plane is where approximation actually bites.
        let frame_f32: Vec<f32> = frame.iter().map(|p| *p as f32).collect();
        let frame: Vec<i32> = transport
            .transmit_f32(&frame_f32)
            .into_iter()
            .map(|p| p as i32)
            .collect();
        let s = self.size;
        let mut recon = vec![0f64; s * s];
        for by in (0..s).step_by(B) {
            for bx in (0..s).step_by(B) {
                let mut block = [0f64; 64];
                for y in 0..B {
                    for x in 0..B {
                        block[y * B + x] = frame[(by + y) * s + bx + x] as f64;
                    }
                }
                let mut coeffs = dct8(&block);
                for c in &mut coeffs {
                    *c = (*c / self.qstep).round() * self.qstep;
                }
                let rec = idct8(&coeffs);
                for y in 0..B {
                    for x in 0..B {
                        recon[(by + y) * s + bx + x] = rec[y * B + x].clamp(0.0, 255.0);
                    }
                }
            }
        }
        recon
    }

    /// RMSE of the reconstructed frame relative to the 255 peak.
    fn output_error(&self, precise: &[f64], approx: &[f64]) -> f64 {
        anoc_core::metrics::rmse(precise, approx) / 255.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::evaluate;
    use crate::transport::{ApproxTransport, PreciseTransport};
    use anoc_core::threshold::ErrorThreshold;

    #[test]
    fn dct_idct_roundtrip() {
        let mut block = [0f64; 64];
        for (i, b) in block.iter_mut().enumerate() {
            *b = ((i * 7) % 255) as f64;
        }
        let rec = idct8(&dct8(&block));
        for (a, b) in block.iter().zip(&rec) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn dct_of_constant_block_is_dc_only() {
        let block = [100f64; 64];
        let c = dct8(&block);
        assert!((c[0] - 800.0).abs() < 1e-9); // 8 * 100
        for coeff in &c[1..] {
            assert!(coeff.abs() < 1e-9);
        }
    }

    #[test]
    fn quantisation_loss_is_moderate() {
        let k = X264::new(32, 3);
        let out = k.run(&mut PreciseTransport);
        let src: Vec<f64> = k.source_frame().iter().map(|p| *p as f64).collect();
        let rmse = anoc_core::metrics::rmse(&src, &out);
        assert!(rmse > 0.1, "quantisation should lose something");
        assert!(rmse < 12.0, "but not destroy the frame (rmse {rmse})");
    }

    #[test]
    fn approximation_degrades_gracefully() {
        let k = X264::new(32, 5);
        let mut t = ApproxTransport::fp_vaxx(ErrorThreshold::from_percent(10).unwrap());
        let (_, _, err) = evaluate(&k, &mut t);
        // Pixel-domain 10% errors after transform coding: small PSNR-style
        // degradation.
        assert!(err < 0.15, "relative rmse {err}");
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn odd_sizes_rejected() {
        let _ = X264::new(30, 1);
    }
}
