//! The SSCA2 substrate: R-MAT small-world graph generation and Brandes
//! betweenness centrality (BC).
//!
//! SSCA2's kernel 4 computes betweenness centrality on an R-MAT graph; the
//! paper modifies it "to evaluate betweenness centrality (BC) in real-world
//! graphs" and approximates "the floating-point pair-wise dependencies that
//! is used for centrality calculation" (§5.1). The approximate run therefore
//! passes each source's dependency vector through the transport before
//! accumulation, and the error metric is the pair-wise BC difference (§5.4).

use anoc_core::rng::Pcg32;

use crate::transport::BlockTransport;

/// An undirected graph in adjacency-list form.
#[derive(Debug, Clone)]
pub struct Graph {
    adj: Vec<Vec<u32>>,
}

impl Graph {
    /// Builds a graph with `nodes` vertices and no edges.
    pub fn new(nodes: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); nodes],
        }
    }

    /// Generates an R-MAT graph (the SSCA2 generator): `nodes` must be a
    /// power of two; `edges` undirected edges are inserted with the classic
    /// skewed quadrant probabilities (a, b, c, d) = (0.57, 0.19, 0.19, 0.05),
    /// producing a scale-free, small-world structure.
    pub fn rmat(nodes: usize, edges: usize, seed: u64) -> Self {
        assert!(nodes.is_power_of_two(), "R-MAT needs a power-of-two size");
        let mut g = Graph::new(nodes);
        // anoc-lint: rng-site: seeded from the caller-supplied graph seed, fixed R-MAT stream
        let mut rng = Pcg32::new(seed, 0x726d_6174);
        let bits = nodes.trailing_zeros();
        let mut inserted = 0usize;
        while inserted < edges {
            let (mut u, mut v) = (0usize, 0usize);
            for _ in 0..bits {
                let r = rng.f64();
                let (du, dv) = if r < 0.57 {
                    (0, 0)
                } else if r < 0.76 {
                    (0, 1)
                } else if r < 0.95 {
                    (1, 0)
                } else {
                    (1, 1)
                };
                u = (u << 1) | du;
                v = (v << 1) | dv;
            }
            if u == v {
                continue;
            }
            if g.adj[u].contains(&(v as u32)) {
                continue;
            }
            g.adj[u].push(v as u32);
            g.adj[v].push(u as u32);
            inserted += 1;
        }
        g
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Neighbours of `v`.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adj[v]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }
}

/// Betweenness centrality via Brandes' algorithm, with the per-source
/// pair-wise dependency vectors optionally routed through an approximate
/// transport (`None` = exact accumulation).
///
/// `sources` bounds the number of BFS sources (SSCA2 samples sources on
/// large graphs); pass `usize::MAX` for the exact full computation.
pub fn betweenness_centrality(
    graph: &Graph,
    sources: usize,
    transport: Option<&mut dyn BlockTransport>,
) -> Vec<f64> {
    let n = graph.len();
    let mut bc = vec![0f64; n];
    let mut transport = transport;
    let source_count = sources.min(n);
    for s in 0..source_count {
        // Brandes forward phase: BFS computing sigma (path counts) and the
        // predecessor DAG.
        let mut sigma = vec![0f64; n];
        let mut dist = vec![i64::MAX; n];
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut order = Vec::with_capacity(n);
        sigma[s] = 1.0;
        dist[s] = 0;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &w in graph.neighbors(v) {
                let w = w as usize;
                if dist[w] == i64::MAX {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
                if dist[w] == dist[v] + 1 {
                    sigma[w] += sigma[v];
                    preds[w].push(v as u32);
                }
            }
        }
        // Backward phase: accumulate pair-wise dependencies.
        let mut delta = vec![0f64; n];
        for &v in order.iter().rev() {
            for &p in &preds[v] {
                let p = p as usize;
                delta[p] += sigma[p] / sigma[v] * (1.0 + delta[v]);
            }
        }
        // The dependency vector is what SSCA2 communicates between the
        // BFS workers and the accumulation step; approximate it in flight.
        if let Some(t) = transport.as_deref_mut() {
            let as_f32: Vec<f32> = delta.iter().map(|d| *d as f32).collect();
            let rx = t.transmit_f32(&as_f32);
            for (d, r) in delta.iter_mut().zip(rx) {
                *d = r as f64;
            }
        }
        for v in 0..n {
            if v != s {
                bc[v] += delta[v];
            }
        }
    }
    bc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::ApproxTransport;
    use anoc_core::threshold::ErrorThreshold;

    /// A path graph 0-1-2-3-4: interior nodes have known BC.
    fn path_graph() -> Graph {
        let mut g = Graph::new(5);
        for i in 0..4u32 {
            g.adj[i as usize].push(i + 1);
            g.adj[(i + 1) as usize].push(i);
        }
        g
    }

    #[test]
    fn path_graph_centrality_is_exact() {
        let g = path_graph();
        let bc = betweenness_centrality(&g, usize::MAX, None);
        // For a path of 5 nodes (directed-pairs convention of Brandes with
        // all sources): node 2 lies on 0-3,0-4,1-3,1-4,3-0... => BC counts
        // each ordered pair, so node 2 has 4*2 = 8... compute: pairs through
        // node 2: (0,3),(0,4),(1,3),(1,4) and reverses = 8.
        assert_eq!(bc[2], 8.0);
        assert_eq!(bc[1], 6.0); // (0,2),(0,3),(0,4) and reverses
        assert_eq!(bc[0], 0.0);
        assert_eq!(bc[4], 0.0);
    }

    #[test]
    fn star_graph_centrality() {
        // Star: node 0 is the hub of 4 leaves; all leaf pairs pass via hub.
        let mut g = Graph::new(5);
        for leaf in 1..5u32 {
            g.adj[0].push(leaf);
            g.adj[leaf as usize].push(0);
        }
        let bc = betweenness_centrality(&g, usize::MAX, None);
        assert_eq!(bc[0], 12.0); // 4*3 ordered leaf pairs
        for score in bc.iter().skip(1) {
            assert_eq!(*score, 0.0);
        }
    }

    #[test]
    fn rmat_generates_requested_size() {
        let g = Graph::rmat(64, 192, 5);
        assert_eq!(g.len(), 64);
        assert_eq!(g.num_edges(), 192);
        assert!(!g.is_empty());
        // Scale-free tendency: max degree well above mean degree.
        let max_deg = (0..64).map(|v| g.degree(v)).max().unwrap();
        let mean_deg = 2.0 * 192.0 / 64.0;
        assert!(max_deg as f64 > mean_deg * 1.5, "max {max_deg}");
    }

    #[test]
    fn rmat_is_deterministic() {
        let a = Graph::rmat(32, 64, 9);
        let b = Graph::rmat(32, 64, 9);
        for v in 0..32 {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rmat_rejects_non_power_of_two() {
        let _ = Graph::rmat(20, 40, 1);
    }

    #[test]
    fn approximate_bc_stays_close() {
        let g = Graph::rmat(64, 256, 11);
        let exact = betweenness_centrality(&g, usize::MAX, None);
        let mut t = ApproxTransport::fp_vaxx(ErrorThreshold::from_percent(10).unwrap());
        let approx = betweenness_centrality(&g, usize::MAX, Some(&mut t));
        let err = anoc_core::metrics::mean_relative_error(&exact, &approx, 1.0);
        assert!(err < 0.10, "pair-wise BC error {err}");
        // And it isn't trivially identical everywhere (approximation happened)
        // unless every dependency was exactly representable.
        assert_eq!(exact.len(), approx.len());
    }

    #[test]
    fn sampled_sources_bound_work() {
        let g = Graph::rmat(64, 256, 13);
        let full = betweenness_centrality(&g, usize::MAX, None);
        let sampled = betweenness_centrality(&g, 16, None);
        // Sampled BC is a partial sum, never exceeding the full score.
        for (s, f) in sampled.iter().zip(&full) {
            assert!(s <= f || (f - s).abs() < 1e-9);
        }
    }
}
