//! Property-based tests for the AVCL's central guarantee: a masked match can
//! never violate the configured error threshold (Guaranteed policy), plus
//! structural invariants of thresholds, patterns and window budgets.

use anoc_core::avcl::{Avcl, MaskPolicy};
use anoc_core::data::DataType;
use anoc_core::threshold::ErrorThreshold;
use anoc_core::window::WindowBudget;
use proptest::prelude::*;

proptest! {
    /// The hardware (shift-based) error range never exceeds the exact range.
    #[test]
    fn shift_range_is_conservative(pct in 1u32..=100, v in any::<u32>()) {
        let t = ErrorThreshold::from_percent(pct).unwrap();
        prop_assert!(t.error_range(v) <= t.error_range_exact(v));
    }

    /// Integer approximation: every value matching a word's don't-care
    /// pattern is within the threshold of the word.
    #[test]
    fn int_threshold_guarantee(
        pct in 1u32..=100,
        word in any::<u32>(),
        noise in any::<u32>(),
    ) {
        let avcl = Avcl::new(ErrorThreshold::from_percent(pct).unwrap());
        let p = avcl.approx_pattern(word, DataType::Int);
        // Candidate = word with arbitrary don't-care bits.
        let candidate = (word & !p.mask()) | (noise & p.mask());
        prop_assert!(p.matches(candidate));
        let err = Avcl::relative_error(word, candidate, DataType::Int).unwrap();
        prop_assert!(
            err <= pct as f64 / 100.0 + 1e-12,
            "word={word:#x} cand={candidate:#x} err={err}"
        );
    }

    /// Float approximation: the same guarantee holds on the value domain,
    /// and sign/exponent are never touched.
    #[test]
    fn float_threshold_guarantee(
        pct in 1u32..=100,
        value in prop::num::f32::NORMAL,
        noise in any::<u32>(),
    ) {
        let avcl = Avcl::new(ErrorThreshold::from_percent(pct).unwrap());
        let word = value.to_bits();
        let p = avcl.approx_pattern(word, DataType::F32);
        let candidate = (word & !p.mask()) | (noise & p.mask());
        let cand_val = f32::from_bits(candidate);
        prop_assert_eq!(cand_val.is_sign_positive(), value.is_sign_positive());
        let err = Avcl::relative_error(word, candidate, DataType::F32).unwrap();
        prop_assert!(err <= pct as f64 / 100.0 + 1e-6, "{value} -> {cand_val}: {err}");
    }

    /// Special floats (zero, denormal, inf, NaN) always demand exact match.
    #[test]
    fn special_floats_bypass(pct in 1u32..=100, mantissa in 0u32..(1 << 23), sign in any::<bool>()) {
        let avcl = Avcl::new(ErrorThreshold::from_percent(pct).unwrap());
        for exp in [0u32, 0xFF] {
            let word = ((sign as u32) << 31) | (exp << 23) | mantissa;
            let p = avcl.approx_pattern(word, DataType::F32);
            prop_assert!(p.is_exact());
        }
    }

    /// The relaxed policy admits at least everything the guaranteed policy
    /// admits (it is a widening).
    #[test]
    fn relaxed_widens_guaranteed(pct in 1u32..=100, word in any::<u32>()) {
        let t = ErrorThreshold::from_percent(pct).unwrap();
        let g = Avcl::new(t).approx_pattern(word, DataType::Int);
        let r = Avcl::with_policy(t, MaskPolicy::Relaxed).approx_pattern(word, DataType::Int);
        prop_assert_eq!(g.mask() & !r.mask(), 0, "relaxed mask must cover guaranteed mask");
    }

    /// `allows` agrees with first principles.
    #[test]
    fn allows_matches_arithmetic(pct in 0u32..=100, p in any::<u32>(), a in any::<u32>()) {
        let t = if pct == 0 {
            ErrorThreshold::exact()
        } else {
            ErrorThreshold::from_percent(pct).unwrap()
        };
        let expected = (p.abs_diff(a) as u128) * 100 <= (p as u128) * (pct as u128);
        prop_assert_eq!(t.allows(p, a), expected);
    }

    /// Window budgets never let a window spend more than `window × base`.
    #[test]
    fn window_budget_bounded(
        window in 1u32..32,
        base in 1u32..=25,
        spend_fracs in prop::collection::vec(0.0f64..=1.0, 1..200),
    ) {
        let mut b = WindowBudget::new(window, base);
        let mut spent_this_window = 0.0;
        let mut i = 0u32;
        for f in spend_fracs {
            let allowance = b.next_threshold().percent() as f64;
            let spend = allowance * f / 100.0;
            spent_this_window += spend * 100.0;
            prop_assert!(
                spent_this_window <= (window * base) as f64 + 1e-6,
                "window overspent: {spent_this_window}"
            );
            b.record(spend);
            i += 1;
            if i.is_multiple_of(window) {
                spent_this_window = 0.0;
            }
        }
    }

    /// PCG stays in bounds and is deterministic.
    #[test]
    fn pcg_below_is_in_bounds(seed in any::<u64>(), bound in 1u32..=1_000_000) {
        let mut a = anoc_core::rng::Pcg32::seed_from_u64(seed);
        let mut b = anoc_core::rng::Pcg32::seed_from_u64(seed);
        for _ in 0..32 {
            let x = a.below(bound);
            prop_assert!(x < bound);
            prop_assert_eq!(x, b.below(bound));
        }
    }
}
