//! The end-to-end matching guarantee behind the fault campaign's bound
//! checker: whenever a Guaranteed-policy AVCL *accepts* an approximate match
//! between a word and a dictionary reference, the delivered value is within
//! the configured error threshold — over random words, references,
//! thresholds and data types. This is exactly the invariant
//! `NocSim::set_bound_check` audits on every delivered word, so any
//! counterexample here would be a latent fatal `SimError::BoundViolation`.

use anoc_core::avcl::{Avcl, MaskPolicy};
use anoc_core::data::DataType;
use anoc_core::threshold::ErrorThreshold;
use proptest::prelude::*;

fn check_accepted_error(avcl: &Avcl, word: u32, reference: u32, dtype: DataType, pct: u32) {
    if !avcl.accepts(word, reference, dtype) {
        return;
    }
    // An accepted match means `reference` is delivered in place of `word`.
    match Avcl::relative_error(word, reference, dtype) {
        Some(err) => assert!(
            err <= pct as f64 / 100.0 + 1e-6,
            "{dtype:?} word={word:#010x} ref={reference:#010x} pct={pct} err={err}"
        ),
        // Incomparable values (float specials) may only match exactly.
        None => assert_eq!(
            word, reference,
            "{dtype:?} accepted an incomparable non-identical pair"
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    /// Random integer word/reference pairs: acceptance implies the bound.
    #[test]
    fn accepted_int_matches_respect_the_bound(
        pct in 1u32..=100,
        word in any::<u32>(),
        reference in any::<u32>(),
    ) {
        let avcl = Avcl::new(ErrorThreshold::from_percent(pct).unwrap());
        check_accepted_error(&avcl, word, reference, DataType::Int, pct);
    }

    /// Near-miss integer pairs (reference = word + small delta) sit right at
    /// the acceptance boundary, where an off-by-one in the mask width would
    /// first leak past the bound.
    #[test]
    fn near_boundary_int_matches_respect_the_bound(
        pct in 1u32..=100,
        word in any::<u32>(),
        delta in -65_536i64..=65_536,
    ) {
        let avcl = Avcl::new(ErrorThreshold::from_percent(pct).unwrap());
        let reference = (word as i64).wrapping_add(delta) as u32;
        check_accepted_error(&avcl, word, reference, DataType::Int, pct);
    }

    /// Random float bit patterns, including specials: acceptance implies the
    /// bound (or exactness where relative error is undefined).
    #[test]
    fn accepted_float_matches_respect_the_bound(
        pct in 1u32..=100,
        word in any::<u32>(),
        reference in any::<u32>(),
    ) {
        let avcl = Avcl::new(ErrorThreshold::from_percent(pct).unwrap());
        check_accepted_error(&avcl, word, reference, DataType::F32, pct);
    }

    /// Floats that share an exponent with the word are the realistic
    /// dictionary-hit population; drive the mantissa distance directly.
    #[test]
    fn same_exponent_float_matches_respect_the_bound(
        pct in 1u32..=100,
        value in prop::num::f32::NORMAL,
        mantissa_noise in 0u32..(1 << 23),
    ) {
        let avcl = Avcl::new(ErrorThreshold::from_percent(pct).unwrap());
        let word = value.to_bits();
        let reference = (word & !((1u32 << 23) - 1)) | mantissa_noise;
        check_accepted_error(&avcl, word, reference, DataType::F32, pct);
    }

    /// The exact threshold accepts only identical words, for every dtype.
    #[test]
    fn exact_threshold_accepts_only_identity(
        word in any::<u32>(),
        reference in any::<u32>(),
    ) {
        let avcl = Avcl::new(ErrorThreshold::exact());
        for dtype in [DataType::Int, DataType::F32] {
            if avcl.accepts(word, reference, dtype) {
                prop_assert_eq!(word, reference);
            }
        }
        prop_assert!(avcl.accepts(word, word, DataType::Int));
    }

    /// The Guaranteed policy is what the simulator's bound checker assumes;
    /// it must never be laxer than the threshold even where the Relaxed
    /// policy is.
    #[test]
    fn guaranteed_policy_is_never_laxer_than_relaxed_bound(
        pct in 1u32..=100,
        word in any::<u32>(),
        reference in any::<u32>(),
    ) {
        let guaranteed = Avcl::new(ErrorThreshold::from_percent(pct).unwrap());
        let relaxed = Avcl::with_policy(
            ErrorThreshold::from_percent(pct).unwrap(),
            MaskPolicy::Relaxed,
        );
        if guaranteed.accepts(word, reference, DataType::Int) {
            prop_assert!(relaxed.accepts(word, reference, DataType::Int));
        }
    }
}
