//! Primitive little-endian binary serialization for simulator snapshots.
//!
//! The snapshot format (DESIGN.md §11) is a flat, versioned byte stream:
//! every multi-byte integer is written little-endian regardless of host
//! byte order, floats travel as the raw bits of their IEEE-754
//! representation, and collections are length-prefixed. [`SnapWriter`] and
//! [`SnapReader`] are the only primitives the per-struct `save_state` /
//! `load_state` hooks compose; keeping them this small is what makes the
//! endian-stability argument auditable. Reads are total: a truncated or
//! malformed stream yields a typed [`SnapError`], never a panic.

use std::fmt;

/// A typed failure while reading a snapshot stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapError {
    /// The stream ended before the expected field.
    Truncated,
    /// A field decoded to a value the target struct cannot hold.
    Invalid(&'static str),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated => write!(f, "snapshot stream truncated"),
            SnapError::Invalid(what) => write!(f, "invalid snapshot field: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Appends little-endian primitives to a growing byte buffer.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        SnapWriter::default()
    }

    /// Consumes the writer, yielding the serialized bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (the on-disk width is host-independent).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes an `f64` as the bits of its IEEE-754 representation, so the
    /// round trip is bit-exact (including NaN payloads and signed zeros).
    pub fn f64_bits(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes raw bytes verbatim (the caller is responsible for framing).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Reads little-endian primitives from a byte slice, tracking position.
#[derive(Debug)]
pub struct SnapReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader over `data`, positioned at the start.
    pub fn new(data: &'a [u8]) -> Self {
        SnapReader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether the whole stream has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated);
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `usize` stored as a `u64`, rejecting values the host cannot
    /// index with.
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        usize::try_from(self.u64()?).map_err(|_| SnapError::Invalid("usize overflow"))
    }

    /// Reads a bool stored as one byte; any value other than 0/1 is invalid.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Invalid("bool byte")),
        }
    }

    /// Reads an `f64` stored as IEEE-754 bits.
    pub fn f64_bits(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads exactly `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 3);
        w.usize(12345);
        w.bool(true);
        w.bool(false);
        w.f64_bits(-0.0);
        w.f64_bits(f64::NAN);
        w.bytes(b"tail");
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.u8(), Ok(7));
        assert_eq!(r.u32(), Ok(0xdead_beef));
        assert_eq!(r.u64(), Ok(u64::MAX - 3));
        assert_eq!(r.usize(), Ok(12345));
        assert_eq!(r.bool(), Ok(true));
        assert_eq!(r.bool(), Ok(false));
        assert_eq!(r.f64_bits().map(f64::to_bits), Ok((-0.0f64).to_bits()));
        assert_eq!(r.f64_bits().map(f64::is_nan), Ok(true));
        assert_eq!(r.bytes(4), Ok(&b"tail"[..]));
        assert!(r.is_exhausted());
    }

    #[test]
    fn layout_is_little_endian() {
        let mut w = SnapWriter::new();
        w.u32(0x0102_0304);
        assert_eq!(w.into_bytes(), vec![4, 3, 2, 1]);
    }

    #[test]
    fn truncation_is_typed_not_panicking() {
        let mut r = SnapReader::new(&[1, 2]);
        assert_eq!(r.u32(), Err(SnapError::Truncated));
        // A failed read consumes nothing.
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.u8(), Ok(1));
        assert_eq!(r.bytes(2), Err(SnapError::Truncated));
    }

    #[test]
    fn invalid_bool_is_rejected() {
        let mut r = SnapReader::new(&[2]);
        assert!(matches!(r.bool(), Err(SnapError::Invalid(_))));
        let mut w = SnapWriter::new();
        assert!(w.is_empty());
        w.u64(u64::MAX);
        assert_eq!(w.len(), 8);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(r.usize().or(Ok::<usize, SnapError>(0)).is_ok());
        let err = SnapError::Invalid("x");
        assert!(err.to_string().contains("invalid"));
        assert!(SnapError::Truncated.to_string().contains("truncated"));
    }
}
