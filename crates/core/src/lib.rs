//! # anoc-core
//!
//! Core data model and the **VAXX** approximate value compute logic (AVCL) of
//! the APPROX-NoC framework (Boyapati et al., ISCA 2017).
//!
//! This crate is dependency-free and hosts everything the rest of the
//! workspace shares:
//!
//! * [`data`] — words, cache blocks, data types and approximability metadata;
//! * [`threshold`] — the error-threshold abstraction (`e%` → shift bits);
//! * [`avcl`] — the Approximate Value Compute Logic: error ranges, don't-care
//!   masks, integer and float-mantissa approximation;
//! * [`codec`] — the `BlockEncoder`/`BlockDecoder` traits every compression
//!   mechanism implements, plus the encoded network representation;
//! * [`metrics`] — error/quality/compression accumulators;
//! * [`rng`] — a tiny deterministic PCG random number generator so that whole
//!   simulations are pure functions of a `u64` seed;
//! * [`snap`] — endian-stable binary primitives for simulator snapshots.
//!
//! ## Example
//!
//! Approximate a word within a 10% error threshold:
//!
//! ```
//! use anoc_core::avcl::Avcl;
//! use anoc_core::data::DataType;
//! use anoc_core::threshold::ErrorThreshold;
//!
//! let t = ErrorThreshold::from_percent(10).unwrap();
//! let avcl = Avcl::new(t);
//! let pattern = avcl.approx_pattern(1000, DataType::Int);
//! // 1000 with a 10% threshold tolerates an error range of 1000 >> 4 = 62,
//! // so the low 5 bits become don't-cares (2^5 - 1 = 31 <= 62).
//! assert_eq!(pattern.dont_care_bits(), 5);
//! assert!(pattern.matches(1000 ^ 0b11111));
//! assert!(!pattern.matches(2000));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod avcl;
pub mod codec;
pub mod control;
pub mod data;
pub mod metrics;
pub mod rng;
pub mod snap;
pub mod threshold;
pub mod window;

pub use avcl::{ApproxPattern, Avcl, MaskPolicy};
pub use codec::{BlockDecoder, BlockEncoder, EncodeStats, EncodedBlock, Notification, WordCode};
pub use control::QualityController;
pub use data::{CacheBlock, DataType, NodeId, WORD_BYTES};
pub use threshold::ErrorThreshold;
pub use window::WindowBudget;
