//! Error, quality and compression accumulators.
//!
//! The paper reports *data value quality* (Figure 9, right axis): one minus
//! the mean relative error actually incurred across all transmitted words —
//! typically far better than the threshold because many words compress
//! exactly and the rest match in close proximity. It also reports
//! application-level output error (Figure 16) via app-specific metrics; the
//! generic building blocks (MRE, RMSE, PSNR) live here.

use crate::avcl::Avcl;
use crate::data::{CacheBlock, DataType};

/// Accumulates per-word relative error to produce the data value quality
/// metric of Figure 9.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QualityAccumulator {
    words: u64,
    error_sum: f64,
    max_error: f64,
}

impl QualityAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one transmitted word pair (precise vs what arrived).
    ///
    /// Non-finite relative errors (NaN payloads, division by a zero precise
    /// value when the approximation differs) are clamped to 1.0 — a fully
    /// wrong word — so a single pathological word cannot dominate the mean.
    pub fn record_word(&mut self, precise: u32, approx: u32, dtype: DataType) {
        let err = match Avcl::relative_error(precise, approx, dtype) {
            Some(e) if e.is_finite() => e.min(1.0),
            _ => {
                if precise == approx {
                    0.0
                } else {
                    1.0
                }
            }
        };
        self.words += 1;
        self.error_sum += err;
        if err > self.max_error {
            self.max_error = err;
        }
    }

    /// Records every word of a block pair. The blocks must be equally long.
    ///
    /// # Panics
    ///
    /// Panics if the two blocks have different lengths.
    pub fn record_block(&mut self, precise: &CacheBlock, approx: &CacheBlock) {
        assert_eq!(precise.len(), approx.len(), "block length mismatch");
        for (p, a) in precise.words().iter().zip(approx.words()) {
            self.record_word(*p, *a, precise.dtype());
        }
    }

    /// Number of words recorded.
    pub fn words(&self) -> u64 {
        self.words
    }

    /// Mean relative error over all recorded words.
    pub fn mean_relative_error(&self) -> f64 {
        if self.words == 0 {
            0.0
        } else {
            self.error_sum / self.words as f64
        }
    }

    /// Largest single-word relative error observed.
    pub fn max_relative_error(&self) -> f64 {
        self.max_error
    }

    /// Data value quality: `1 - mean relative error` (Figure 9's right axis).
    pub fn quality(&self) -> f64 {
        1.0 - self.mean_relative_error()
    }

    /// The raw sum of per-word relative errors (for exact persistence).
    pub fn error_sum(&self) -> f64 {
        self.error_sum
    }

    /// Rebuilds an accumulator from its raw components, the inverse of
    /// reading [`words`](Self::words), [`error_sum`](Self::error_sum) and
    /// [`max_relative_error`](Self::max_relative_error).
    pub fn from_raw(words: u64, error_sum: f64, max_error: f64) -> Self {
        QualityAccumulator {
            words,
            error_sum,
            max_error,
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &QualityAccumulator) {
        self.words += other.words;
        self.error_sum += other.error_sum;
        self.max_error = self.max_error.max(other.max_error);
    }
}

/// Mean relative error between two real-valued sequences, with `eps` guarding
/// near-zero references. Used by the application output-error metrics.
pub fn mean_relative_error(reference: &[f64], candidate: &[f64], eps: f64) -> f64 {
    assert_eq!(reference.len(), candidate.len(), "sequence length mismatch");
    if reference.is_empty() {
        return 0.0;
    }
    let mut sum = 0.0;
    for (r, c) in reference.iter().zip(candidate) {
        let denom = r.abs().max(eps);
        sum += ((c - r).abs() / denom).min(1.0);
    }
    sum / reference.len() as f64
}

/// Root-mean-square error between two sequences.
pub fn rmse(reference: &[f64], candidate: &[f64]) -> f64 {
    assert_eq!(reference.len(), candidate.len(), "sequence length mismatch");
    if reference.is_empty() {
        return 0.0;
    }
    let sum: f64 = reference
        .iter()
        .zip(candidate)
        .map(|(r, c)| (r - c) * (r - c))
        .sum();
    (sum / reference.len() as f64).sqrt()
}

/// Peak signal-to-noise ratio in dB for image-like data with the given peak
/// value. Returns `f64::INFINITY` for identical inputs.
pub fn psnr(reference: &[f64], candidate: &[f64], peak: f64) -> f64 {
    let e = rmse(reference, candidate);
    // anoc-lint: allow(D003): exact-zero RMSE sentinel selects infinite PSNR
    if e == 0.0 {
        f64::INFINITY
    } else {
        20.0 * (peak / e).log10()
    }
}

/// Arithmetic mean of a slice; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean of a slice of positive values; 0 for an empty slice.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|x| x.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::CacheBlock;

    #[test]
    fn quality_of_identical_stream_is_one() {
        let mut q = QualityAccumulator::new();
        let block = CacheBlock::from_i32(&[1, 2, 3]);
        q.record_block(&block, &block);
        assert_eq!(q.quality(), 1.0);
        assert_eq!(q.words(), 3);
        assert_eq!(q.max_relative_error(), 0.0);
    }

    #[test]
    fn quality_tracks_mean_error() {
        let mut q = QualityAccumulator::new();
        q.record_word(100, 110, DataType::Int); // 10% error
        q.record_word(100, 100, DataType::Int); // 0% error
        assert!((q.mean_relative_error() - 0.05).abs() < 1e-12);
        assert!((q.quality() - 0.95).abs() < 1e-12);
        assert!((q.max_relative_error() - 0.10).abs() < 1e-12);
    }

    #[test]
    fn pathological_words_clamped() {
        let mut q = QualityAccumulator::new();
        q.record_word(0, 12345, DataType::Int); // infinite rel err -> 1.0
        assert_eq!(q.mean_relative_error(), 1.0);
        let mut qf = QualityAccumulator::new();
        let nan = f32::NAN.to_bits();
        qf.record_word(nan, nan, DataType::F32); // same bits -> 0
        assert_eq!(qf.mean_relative_error(), 0.0);
    }

    #[test]
    fn merge_accumulators() {
        let mut a = QualityAccumulator::new();
        a.record_word(10, 11, DataType::Int);
        let mut b = QualityAccumulator::new();
        b.record_word(10, 10, DataType::Int);
        a.merge(&b);
        assert_eq!(a.words(), 2);
        assert!((a.mean_relative_error() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn mre_and_rmse() {
        let r = [1.0, 2.0, 4.0];
        let c = [1.1, 2.0, 4.0];
        assert!((mean_relative_error(&r, &c, 1e-9) - 0.1 / 3.0).abs() < 1e-9);
        assert!((rmse(&r, &c) - (0.01f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(mean_relative_error(&[], &[], 1e-9), 0.0);
        assert_eq!(rmse(&[], &[]), 0.0);
    }

    #[test]
    fn psnr_identical_is_infinite() {
        let r = [0.5, 0.25];
        assert_eq!(psnr(&r, &r, 1.0), f64::INFINITY);
        assert!(psnr(&[0.0], &[0.1], 1.0) > 0.0);
    }

    #[test]
    fn means() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }
}
