//! Words, cache blocks, data types and approximability metadata.
//!
//! APPROX-NoC operates on cache blocks that are sequences of 4-byte words
//! (Figure 3 of the paper shows a 24 B block of six 4 B words; the full-system
//! evaluation uses 64 B lines of sixteen words). A block carries metadata —
//! whether it is safe to approximate and the data type of its words — which
//! the paper assumes travels with the access request for the block.

use std::fmt;

/// Size of one data word in bytes. APPROX-NoC matches and encodes 4-byte
/// words, both for the static frequent-pattern table and the dictionary.
pub const WORD_BYTES: usize = 4;

/// Size of one data word in bits.
pub const WORD_BITS: u32 = 32;

/// Identifier of a network node (a router/NI endpoint).
///
/// Dictionary-based codecs keep per-destination encoded-index vectors and
/// per-source valid bits, so node identity is part of the codec interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Returns the node id as a `usize`, for indexing per-node tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v as u16)
    }
}

/// The data type of the words of a cache block.
///
/// The AVCL handles integers natively; for IEEE-754 single-precision floats it
/// approximates only the mantissa field, reusing the integer approximate logic
/// (Figure 4). The paper conservatively compresses only blocks whose words all
/// share one data type, because per-word type metadata would be too expensive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DataType {
    /// 32-bit two's-complement integers.
    #[default]
    Int,
    /// IEEE-754 single-precision floating point.
    F32,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "int"),
            DataType::F32 => write!(f, "f32"),
        }
    }
}

/// A cache block waiting to be transmitted: a sequence of 4-byte words plus
/// the metadata the approximation engine checks before engaging (Figure 2).
#[derive(Debug, Clone, PartialEq)]
pub struct CacheBlock {
    words: Vec<u32>,
    dtype: DataType,
    approximable: bool,
}

impl CacheBlock {
    /// Creates a block from raw words.
    ///
    /// # Examples
    ///
    /// ```
    /// use anoc_core::data::{CacheBlock, DataType};
    /// let block = CacheBlock::new(vec![1, 2, 3, 4], DataType::Int, true);
    /// assert_eq!(block.len(), 4);
    /// assert_eq!(block.size_bytes(), 16);
    /// ```
    pub fn new(words: Vec<u32>, dtype: DataType, approximable: bool) -> Self {
        CacheBlock {
            words,
            dtype,
            approximable,
        }
    }

    /// Creates an integer block that is *not* approximable (must be delivered
    /// bit-exactly).
    pub fn precise(words: Vec<u32>) -> Self {
        CacheBlock::new(words, DataType::Int, false)
    }

    /// Creates a block from `f32` values, marked approximable.
    ///
    /// ```
    /// use anoc_core::data::CacheBlock;
    /// let block = CacheBlock::from_f32(&[1.5, -2.25]);
    /// assert_eq!(block.as_f32(), vec![1.5, -2.25]);
    /// ```
    pub fn from_f32(values: &[f32]) -> Self {
        CacheBlock::new(
            values.iter().map(|v| v.to_bits()).collect(),
            DataType::F32,
            true,
        )
    }

    /// Creates a block from `i32` values, marked approximable.
    pub fn from_i32(values: &[i32]) -> Self {
        CacheBlock::new(
            values.iter().map(|v| *v as u32).collect(),
            DataType::Int,
            true,
        )
    }

    /// The words of the block.
    #[inline]
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Mutable access to the words of the block.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u32] {
        &mut self.words
    }

    /// Consumes the block and returns its words.
    pub fn into_words(self) -> Vec<u32> {
        self.words
    }

    /// Number of words in the block.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the block holds no words.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Size of the (uncompressed) block in bytes.
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.words.len() * WORD_BYTES
    }

    /// Size of the (uncompressed) block in bits.
    #[inline]
    pub fn size_bits(&self) -> u64 {
        self.words.len() as u64 * WORD_BITS as u64
    }

    /// The data type shared by all words of the block.
    #[inline]
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// Whether the compiler/programmer annotated this block as safe to
    /// approximate. Non-approximable blocks bypass the VAXX engine entirely.
    #[inline]
    pub fn is_approximable(&self) -> bool {
        self.approximable
    }

    /// Overrides the approximable flag, returning the modified block.
    #[must_use]
    pub fn with_approximable(mut self, approximable: bool) -> Self {
        self.approximable = approximable;
        self
    }

    /// Interprets the words as `f32` values.
    pub fn as_f32(&self) -> Vec<f32> {
        self.words.iter().map(|w| f32::from_bits(*w)).collect()
    }

    /// Interprets the words as `i32` values.
    pub fn as_i32(&self) -> Vec<i32> {
        self.words.iter().map(|w| *w as i32).collect()
    }
}

impl fmt::Display for CacheBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CacheBlock[{} x {} words{}]",
            self.len(),
            self.dtype,
            if self.approximable { ", approx" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_roundtrips_f32() {
        let vals = [0.0f32, 1.5, -3.25, f32::MIN_POSITIVE];
        let block = CacheBlock::from_f32(&vals);
        assert_eq!(block.as_f32(), vals);
        assert_eq!(block.dtype(), DataType::F32);
        assert!(block.is_approximable());
    }

    #[test]
    fn block_roundtrips_i32() {
        let vals = [0i32, -1, i32::MAX, i32::MIN, 42];
        let block = CacheBlock::from_i32(&vals);
        assert_eq!(block.as_i32(), vals);
    }

    #[test]
    fn precise_block_is_not_approximable() {
        let block = CacheBlock::precise(vec![1, 2, 3]);
        assert!(!block.is_approximable());
        assert!(block.with_approximable(true).is_approximable());
    }

    #[test]
    fn sizes() {
        let block = CacheBlock::from_i32(&[0; 16]);
        assert_eq!(block.size_bytes(), 64);
        assert_eq!(block.size_bits(), 512);
        assert!(!block.is_empty());
        assert!(CacheBlock::precise(vec![]).is_empty());
    }

    #[test]
    fn node_id_display_and_index() {
        let n = NodeId(7);
        assert_eq!(n.to_string(), "n7");
        assert_eq!(n.index(), 7);
        assert_eq!(NodeId::from(7usize), NodeId::from(7u16));
    }
}
