//! Window-based cumulative error budgets — the paper's §7 future work.
//!
//! Instead of a conservative per-word error threshold, a *window* of words
//! shares one cumulative error budget: words that compress exactly donate
//! their unused tolerance to later words, "so as to achieve more approximate
//! matches. This can be applicable especially in cases of video/image
//! applications where the error rate over a frame is more appropriate than a
//! conservative per word error threshold."

use crate::threshold::ErrorThreshold;

/// A sliding per-window error budget.
///
/// The budget is `window × base_percent` percentage points of relative error
/// per window of words; each word may spend up to the remaining budget
/// (capped at `max_percent`), and the window resets after `window` words.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowBudget {
    window: u32,
    base_percent: u32,
    max_percent: u32,
    used_percent: f64,
    seen: u32,
}

impl WindowBudget {
    /// Creates a budget of `base_percent`% average error per word over
    /// windows of `window` words. Individual words are capped at
    /// `4 × base_percent` (at most 100%).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `base_percent` is not in `1..=100`.
    pub fn new(window: u32, base_percent: u32) -> Self {
        assert!(window > 0, "window must hold at least one word");
        assert!(
            (1..=100).contains(&base_percent),
            "base percentage must be in 1..=100"
        );
        WindowBudget {
            window,
            base_percent,
            max_percent: (base_percent * 4).min(100),
            used_percent: 0.0,
            seen: 0,
        }
    }

    /// Words per window.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// The configured average per-word error percentage.
    pub fn base_percent(&self) -> u32 {
        self.base_percent
    }

    /// Remaining budget in the current window, in percentage points.
    pub fn remaining_percent(&self) -> f64 {
        (self.window as f64 * self.base_percent as f64) - self.used_percent
    }

    /// The error threshold available to the *next* word: the remaining
    /// budget (at least 0, at most the per-word cap). Returns
    /// [`ErrorThreshold::exact`] when the budget is exhausted.
    pub fn next_threshold(&self) -> ErrorThreshold {
        let avail = self.remaining_percent().floor();
        if avail < 1.0 {
            return ErrorThreshold::exact();
        }
        let pct = (avail as u32).min(self.max_percent);
        // pct is floored to >= 1 and clamped to max_percent; exact (no
        // approximation) is the conservative default if that ever broke.
        ErrorThreshold::from_percent(pct).unwrap_or_else(|_| ErrorThreshold::exact())
    }

    /// Records the relative error actually incurred by a word (`0.0` for an
    /// exact transmission) and advances the window.
    pub fn record(&mut self, relative_error: f64) {
        self.used_percent += (relative_error.max(0.0) * 100.0).min(self.max_percent as f64);
        self.seen += 1;
        if self.seen == self.window {
            self.seen = 0;
            self.used_percent = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_window_offers_pooled_budget() {
        let b = WindowBudget::new(8, 10);
        // 8 words x 10% = 80 points available, capped at 40% per word.
        assert_eq!(b.remaining_percent(), 80.0);
        assert_eq!(b.next_threshold().percent(), 40);
    }

    #[test]
    fn exact_words_donate_budget() {
        let mut b = WindowBudget::new(4, 10);
        b.record(0.0);
        b.record(0.0);
        // Two exact words: 40 points still available for the remaining two.
        assert_eq!(b.next_threshold().percent(), 40);
    }

    #[test]
    fn spending_shrinks_the_allowance() {
        let mut b = WindowBudget::new(4, 10);
        b.record(0.35); // 35 points of the 40 spent
        assert_eq!(b.next_threshold().percent(), 5);
        b.record(0.05);
        assert!(b.next_threshold().is_exact(), "budget exhausted");
    }

    #[test]
    fn window_resets() {
        let mut b = WindowBudget::new(2, 10);
        b.record(0.20);
        b.record(0.0); // window boundary
        assert_eq!(b.remaining_percent(), 20.0);
        assert_eq!(b.next_threshold().percent(), 20);
    }

    #[test]
    fn average_error_bounded_by_base() {
        // Property: however the budget is spent, the recorded average per
        // window never exceeds the base percentage.
        let mut b = WindowBudget::new(8, 10);
        let mut spent = 0.0;
        for i in 0..8 {
            let t = b.next_threshold();
            // Adversarially spend the full allowance every time.
            let e = t.percent() as f64 / 100.0;
            spent += e;
            b.record(e);
            let _ = i;
        }
        assert!(spent * 100.0 <= 8.0 * 10.0 + 1e-9, "spent {spent}");
    }

    #[test]
    #[should_panic(expected = "window must hold")]
    fn zero_window_rejected() {
        let _ = WindowBudget::new(0, 10);
    }

    #[test]
    #[should_panic(expected = "base percentage")]
    fn bad_percent_rejected() {
        let _ = WindowBudget::new(4, 0);
    }
}
