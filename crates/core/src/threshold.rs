//! Error thresholds and the shift-based error-range arithmetic of VAXX.
//!
//! The paper (§3.2) avoids multipliers on the packetization critical path by
//! precomputing `100 / e` for an error threshold of `e%` and realising the
//! error range of a value as a right shift:
//!
//! ```text
//! error_range = value * (e / 100)  =>  value / (100 / e)  =>  value >> shift
//! ```
//!
//! We round the shift **up** (`shift = ceil(log2(100 / e))`) so the hardware
//! range is never larger than the mathematically exact range — the threshold
//! becomes a hard guarantee instead of a soft target. The exact multiply-based
//! range is kept alongside as a software oracle for tests and ablations.

use std::fmt;

/// Error raised when constructing an invalid [`ErrorThreshold`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThresholdError {
    /// The percentage was zero; use [`ErrorThreshold::exact`] for a 0% setting.
    ZeroPercent,
    /// The percentage exceeded 100.
    TooLarge(u32),
}

impl fmt::Display for ThresholdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThresholdError::ZeroPercent => {
                write!(
                    f,
                    "error threshold of 0% requested; use ErrorThreshold::exact"
                )
            }
            ThresholdError::TooLarge(p) => {
                write!(f, "error threshold {p}% exceeds 100%")
            }
        }
    }
}

impl std::error::Error for ThresholdError {}

/// An application-supplied error threshold, determined by the compiler or
/// annotated by the programmer (§1), convertible at configuration time into
/// the shift amount used by the hardware.
///
/// `ErrorThreshold::exact()` (0%) degenerates to exact matching: the error
/// range of every value is zero and no bits become don't-cares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ErrorThreshold {
    /// Percentage in `[0, 100]`. 0 means exact.
    percent: u32,
    /// Precomputed `ceil(log2(100 / percent))`; `u32::BITS` when exact so any
    /// 32-bit value shifts to a zero range.
    shift: u32,
}

impl ErrorThreshold {
    /// Creates a threshold of `percent`% (must be in `1..=100`).
    ///
    /// # Errors
    ///
    /// Returns [`ThresholdError::ZeroPercent`] for 0 and
    /// [`ThresholdError::TooLarge`] for values above 100.
    ///
    /// # Examples
    ///
    /// ```
    /// use anoc_core::threshold::ErrorThreshold;
    /// let t = ErrorThreshold::from_percent(25)?;
    /// // 100 / 25 = 4 => shift by 2: the paper's example (value 128 -> range 32).
    /// assert_eq!(t.error_range(128), 32);
    /// # Ok::<(), anoc_core::threshold::ThresholdError>(())
    /// ```
    pub fn from_percent(percent: u32) -> Result<Self, ThresholdError> {
        if percent == 0 {
            return Err(ThresholdError::ZeroPercent);
        }
        if percent > 100 {
            return Err(ThresholdError::TooLarge(percent));
        }
        let divisor = 100.0 / percent as f64;
        // ceil(log2(divisor)), computed without floating-point log to stay
        // exact at the power-of-two boundaries (e.g. 25% -> 4 -> shift 2).
        let mut shift = 0u32;
        while (1u64 << shift) < divisor.ceil() as u64 {
            shift += 1;
        }
        Ok(ErrorThreshold { percent, shift })
    }

    /// The 0% threshold: exact matching only.
    pub fn exact() -> Self {
        ErrorThreshold {
            percent: 0,
            shift: u32::BITS,
        }
    }

    /// The threshold percentage.
    #[inline]
    pub fn percent(&self) -> u32 {
        self.percent
    }

    /// Whether this threshold demands exact matching.
    #[inline]
    pub fn is_exact(&self) -> bool {
        self.percent == 0
    }

    /// The precomputed shift amount (`ceil(log2(100/e))`).
    #[inline]
    pub fn shift_bits(&self) -> u32 {
        self.shift
    }

    /// The hardware error range of `magnitude`: `magnitude >> shift`.
    ///
    /// Because the shift is rounded up this is never larger than the exact
    /// range, so any approximation built from it respects the threshold.
    #[inline]
    pub fn error_range(&self, magnitude: u32) -> u32 {
        if self.shift >= u32::BITS {
            0
        } else {
            magnitude >> self.shift
        }
    }

    /// The mathematically exact error range `floor(magnitude * e / 100)`.
    /// Used as the software oracle for tests and the multiply-vs-shift
    /// ablation; not what the proposed hardware computes.
    #[inline]
    pub fn error_range_exact(&self, magnitude: u32) -> u32 {
        ((magnitude as u64 * self.percent as u64) / 100) as u32
    }

    /// Checks the threshold as a real-valued relative-error bound:
    /// `|approx - precise| <= precise * e / 100` (integer arithmetic, no
    /// rounding slack).
    pub fn allows(&self, precise: u32, approx: u32) -> bool {
        let diff = precise.abs_diff(approx) as u64;
        diff * 100 <= precise as u64 * self.percent as u64
    }
}

impl Default for ErrorThreshold {
    /// The paper's default operating point: 10%.
    fn default() -> Self {
        // 10 is always a valid percentage; keep the constructor total.
        ErrorThreshold::from_percent(10).unwrap_or_else(|_| ErrorThreshold::exact())
    }
}

impl fmt::Display for ErrorThreshold {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}%", self.percent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_25_percent() {
        // §3.2: "for an error threshold of 25%, the number of shift bits is 4"
        // (the paper calls 100/e = 4 the shift amount; the binary shift is 2)
        // "when the data pattern value is 128, the error_range ... is 32".
        let t = ErrorThreshold::from_percent(25).unwrap();
        assert_eq!(t.shift_bits(), 2);
        assert_eq!(t.error_range(128), 32);
    }

    #[test]
    fn default_is_ten_percent() {
        let t = ErrorThreshold::default();
        assert_eq!(t.percent(), 10);
        // 100/10 = 10, ceil(log2 10) = 4 => conservative range v/16 <= v/10.
        assert_eq!(t.shift_bits(), 4);
        assert_eq!(t.error_range(160), 10);
        assert_eq!(t.error_range_exact(160), 16);
    }

    #[test]
    fn hardware_range_never_exceeds_exact_range() {
        for pct in [1, 2, 5, 10, 20, 25, 33, 50, 75, 100] {
            let t = ErrorThreshold::from_percent(pct).unwrap();
            for v in [0u32, 1, 7, 9, 100, 128, 1 << 20, u32::MAX] {
                assert!(
                    t.error_range(v) <= t.error_range_exact(v),
                    "pct={pct} v={v}"
                );
            }
        }
    }

    #[test]
    fn exact_threshold_has_zero_range() {
        let t = ErrorThreshold::exact();
        assert!(t.is_exact());
        assert_eq!(t.error_range(u32::MAX), 0);
        assert!(t.allows(5, 5));
        assert!(!t.allows(5, 6));
    }

    #[test]
    fn invalid_percentages_rejected() {
        assert_eq!(
            ErrorThreshold::from_percent(0),
            Err(ThresholdError::ZeroPercent)
        );
        assert_eq!(
            ErrorThreshold::from_percent(101),
            Err(ThresholdError::TooLarge(101))
        );
        assert!(ErrorThreshold::from_percent(100).is_ok());
        let _ = ThresholdError::ZeroPercent.to_string();
        let _ = ThresholdError::TooLarge(101).to_string();
    }

    #[test]
    fn allows_is_tight() {
        let t = ErrorThreshold::from_percent(20).unwrap();
        assert!(t.allows(10, 12)); // 2 <= 10*0.2
        assert!(!t.allows(10, 13)); // 3 > 2
        assert!(t.allows(0, 0));
        assert!(!t.allows(0, 1)); // zero tolerates nothing
    }

    #[test]
    fn display() {
        assert_eq!(ErrorThreshold::default().to_string(), "10%");
        assert_eq!(ErrorThreshold::exact().to_string(), "0%");
    }
}
