//! Runtime error-threshold control.
//!
//! §1: the error threshold "can be determined by the compiler or annotated by
//! the programmer and **can be dynamically adjusted at run time**". §2.2 adds
//! that approximable applications still need QoS guarantees and cites Rumba's
//! online quality management. [`QualityController`] is that loop: it watches
//! the realized output/data quality and adjusts the threshold percentage —
//! additive-increase when quality has slack, multiplicative-decrease when the
//! QoS floor is violated — so the network harvests as much approximation as
//! the application's quality budget allows.

use crate::threshold::ErrorThreshold;

/// An AIMD controller for the runtime error threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityController {
    target_quality: f64,
    percent: u32,
    min_percent: u32,
    max_percent: u32,
    /// Additive step (percentage points) when quality has slack.
    step_up: u32,
}

impl QualityController {
    /// Creates a controller holding realized quality above `target_quality`
    /// (e.g. `0.97`), starting from `initial_percent` and confined to
    /// `[min_percent, max_percent]`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < target_quality <= 1.0` and
    /// `min_percent <= initial_percent <= max_percent <= 100`.
    pub fn new(
        target_quality: f64,
        initial_percent: u32,
        min_percent: u32,
        max_percent: u32,
    ) -> Self {
        assert!(
            target_quality > 0.0 && target_quality <= 1.0,
            "quality target must be in (0, 1]"
        );
        assert!(
            min_percent <= initial_percent && initial_percent <= max_percent && max_percent <= 100,
            "threshold bounds must satisfy min <= initial <= max <= 100"
        );
        QualityController {
            target_quality,
            percent: initial_percent,
            min_percent,
            max_percent,
            step_up: 2,
        }
    }

    /// The paper's defaults: hold data quality above 97% (its Figure 9
    /// observation), thresholds between 1% and 20%, starting at 10%.
    pub fn paper_defaults() -> Self {
        QualityController::new(0.97, 10, 1, 20)
    }

    /// The current threshold percentage.
    pub fn percent(&self) -> u32 {
        self.percent
    }

    /// The current threshold object (`exact` when driven to 0 — cannot
    /// happen with `min_percent >= 1`).
    pub fn threshold(&self) -> ErrorThreshold {
        // Percent is clamped into 1..=100, so this never falls back; exact
        // (no approximation) is the conservative default if it ever did.
        ErrorThreshold::from_percent(self.percent.max(1))
            .unwrap_or_else(|_| ErrorThreshold::exact())
    }

    /// The quality floor being enforced.
    pub fn target_quality(&self) -> f64 {
        self.target_quality
    }

    /// Feeds one epoch's realized quality (`1 - mean relative error`, or an
    /// application-level accuracy) and returns the threshold for the next
    /// epoch. AIMD: halve on violation, step up gently when there is slack.
    pub fn observe(&mut self, realized_quality: f64) -> ErrorThreshold {
        if realized_quality < self.target_quality {
            self.percent = (self.percent / 2).max(self.min_percent);
        } else {
            // Only grow when there is real headroom, to avoid oscillating on
            // the floor.
            let slack = realized_quality - self.target_quality;
            if slack > (1.0 - self.target_quality) * 0.25 {
                self.percent = (self.percent + self.step_up).min(self.max_percent);
            }
        }
        self.threshold()
    }
}

impl Default for QualityController {
    fn default() -> Self {
        QualityController::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_halves_the_threshold() {
        let mut c = QualityController::paper_defaults();
        assert_eq!(c.percent(), 10);
        c.observe(0.90); // below the 0.97 floor
        assert_eq!(c.percent(), 5);
        c.observe(0.90);
        assert_eq!(c.percent(), 2);
        c.observe(0.50);
        c.observe(0.50);
        assert_eq!(c.percent(), 1, "clamped at the minimum");
    }

    #[test]
    fn slack_grows_the_threshold_gently() {
        let mut c = QualityController::paper_defaults();
        for _ in 0..20 {
            c.observe(0.999); // lots of headroom
        }
        assert_eq!(c.percent(), 20, "clamped at the maximum");
    }

    #[test]
    fn near_target_quality_holds_steady() {
        let mut c = QualityController::paper_defaults();
        for _ in 0..10 {
            c.observe(0.975); // above floor, within the no-grow band
        }
        assert_eq!(c.percent(), 10);
    }

    #[test]
    fn converges_under_a_simple_plant() {
        // A toy plant where realized quality = 1 - percent/200 (i.e. 20%
        // threshold -> 0.90 quality): the controller must settle where
        // quality ~ target.
        let mut c = QualityController::new(0.96, 20, 1, 40);
        let mut pct = c.percent();
        for _ in 0..50 {
            let quality = 1.0 - pct as f64 / 200.0;
            pct = c.observe(quality).percent();
        }
        let final_quality = 1.0 - pct as f64 / 200.0;
        assert!(
            final_quality >= 0.955,
            "settled at {pct}% -> quality {final_quality}"
        );
        assert!(pct >= 4, "should not collapse to the minimum: {pct}");
    }

    #[test]
    fn threshold_object_matches_percent() {
        let c = QualityController::paper_defaults();
        assert_eq!(c.threshold().percent(), 10);
        assert_eq!(c.target_quality(), 0.97);
        assert_eq!(QualityController::default(), c);
    }

    #[test]
    #[should_panic(expected = "quality target")]
    fn bad_target_rejected() {
        let _ = QualityController::new(0.0, 10, 1, 20);
    }

    #[test]
    #[should_panic(expected = "threshold bounds")]
    fn bad_bounds_rejected() {
        let _ = QualityController::new(0.97, 30, 1, 20);
    }
}
